//! End-to-end integration: generated text logs re-enter through the
//! parser, flow through tagging and filtering, and meet the
//! operational-context machinery — across all five systems.

use sclog::core::Study;
use sclog::filter::{AlertFilter, SpatioTemporalFilter};
use sclog::opctx::{ContextLog, Disposition, OpState};
use sclog::parse::LogReader;
use sclog::rules::RuleSet;
use sclog::simgen::{generate, generate_categories, Scale};
use sclog::types::{CategoryRegistry, SystemId, Timestamp, ALL_SYSTEMS};

/// Rendered logs re-parse almost losslessly on every system; the only
/// rejections are corrupted lines (whose rate the generator controls).
#[test]
fn render_parse_round_trip_all_systems() {
    for &sys in &ALL_SYSTEMS {
        let log = generate(sys, Scale::new(0.002, 0.0001), 77);
        let text = log.render();
        let mut reader = LogReader::for_system(sys);
        reader.push_text(&text);
        let stats = reader.stats();
        assert_eq!(stats.total(), log.len() as u64, "{sys}: line count");
        assert!(
            stats.parsed as f64 >= 0.995 * log.len() as f64,
            "{sys}: parsed {} of {}",
            stats.parsed,
            log.len()
        );
        // Parsed timestamps are monotone modulo corruption and syslog
        // second-granularity ties.
        let msgs = reader.messages();
        let inversions = msgs.windows(2).filter(|w| w[1].time < w[0].time).count();
        assert!(
            inversions as f64 <= 0.01 * msgs.len() as f64,
            "{sys}: {inversions} time inversions"
        );
    }
}

/// Tagging the re-parsed text agrees with tagging the original
/// structured messages: the text form carries everything the rules
/// need.
#[test]
fn tagging_survives_text_round_trip() {
    let log = generate(SystemId::Liberty, Scale::new(0.1, 0.0001), 78);
    let mut registry = CategoryRegistry::new();
    let rules = RuleSet::builtin(SystemId::Liberty, &mut registry);
    let direct = rules.tag_messages(&log.messages, &log.interner);

    let mut reader = LogReader::for_system(SystemId::Liberty);
    reader.push_text(&log.render());
    let (msgs, ctx, _) = reader.into_parts();
    let reparsed = rules.tag_messages(&msgs, &ctx.interner);

    // Counts agree to within the few lines corruption rejected.
    let diff = (direct.len() as i64 - reparsed.len() as i64).unsigned_abs();
    assert!(
        diff <= 3,
        "direct {} vs reparsed {}",
        direct.len(),
        reparsed.len()
    );
}

/// The full study pipeline holds its invariants on every system.
#[test]
fn study_invariants_all_systems() {
    let study = Study::new(0.002, 0.0001, 79);
    for &sys in &ALL_SYSTEMS {
        let run = study.run_system(sys);
        assert!(run.filtered_alerts() <= run.raw_alerts(), "{sys}");
        // Filtered output is exactly what the paper's filter produces.
        let refiltered = SpatioTemporalFilter::paper().filter(&run.tagged.alerts);
        assert_eq!(refiltered, run.filtered, "{sys}");
        // Ground-truth coverage: filtering keeps at least one alert for
        // nearly every failure that produced any tagged alert.
        let s = sclog::filter::score(&run.tagged.alerts, &run.filtered);
        assert!(
            s.coverage() > 0.9,
            "{sys}: filter lost {} of {} failures",
            s.lost,
            s.failures
        );
    }
}

/// The paper's operational-context story, end to end: the CIODEXIT
/// alert ("ciodb exited normally") is harmless during maintenance and
/// actionable in production.
#[test]
fn operational_context_disambiguates_generated_alerts() {
    // Full-scale CIODEXIT (66 raw alerts over the window).
    let log = generate_categories(
        SystemId::BlueGeneL,
        Scale::new(1.0, 0.00001),
        80,
        Some(&["CIODEXIT"]),
    );
    let mut registry = CategoryRegistry::new();
    let rules = RuleSet::builtin(SystemId::BlueGeneL, &mut registry);
    let tagged = rules.tag_messages(&log.messages, &log.interner);
    assert!(!tagged.is_empty(), "CIODEXIT alerts generated and tagged");

    // Declare scheduled maintenance covering the first alert.
    let first = tagged.alerts.first().expect("non-empty").time;
    let spec = SystemId::BlueGeneL.spec();
    let mut ctx = ContextLog::new(spec.start(), OpState::ProductionUptime);
    if first > spec.start() {
        ctx.transition(
            first - sclog::types::Duration::from_mins(30),
            OpState::ScheduledDowntime,
            "ciodb maintenance",
        )
        .expect("transition");
        ctx.transition(
            first + sclog::types::Duration::from_mins(30),
            OpState::ProductionUptime,
            "maintenance complete",
        )
        .expect("transition");
    }
    assert_eq!(ctx.classify(first), Disposition::MaintenanceArtifact);
    // A later alert (outside the declared window) demands action.
    if let Some(later) = tagged
        .alerts
        .iter()
        .find(|a| a.time > first + sclog::types::Duration::from_hours(2))
    {
        assert_eq!(ctx.classify(later.time), Disposition::Actionable);
    }
}

/// Determinism across the whole stack: identical seeds give identical
/// filtered alert streams.
#[test]
fn whole_pipeline_is_deterministic() {
    let a = Study::new(0.005, 0.0001, 81).run_system(SystemId::RedStorm);
    let b = Study::new(0.005, 0.0001, 81).run_system(SystemId::RedStorm);
    assert_eq!(a.filtered, b.filtered);
    assert_eq!(a.log.render(), b.log.render());
}

/// Red Storm's two logging paths coexist in one log and both parse.
#[test]
fn red_storm_mixed_paths() {
    let log = generate(SystemId::RedStorm, Scale::new(0.002, 0.0001), 82);
    let text = log.render();
    let ev_lines = text.lines().filter(|l| l.starts_with("EV ")).count();
    let syslog_lines = text.lines().count() - ev_lines;
    assert!(ev_lines > 0, "event-path lines present");
    assert!(syslog_lines > 0, "syslog-path lines present");
    let mut reader = LogReader::for_system(SystemId::RedStorm);
    reader.push_text(&text);
    assert!(reader.stats().parsed as f64 >= 0.995 * log.len() as f64);
    // Severities appear only on the syslog path.
    let with_sev = reader
        .messages()
        .iter()
        .filter(|m| !m.severity.is_none())
        .count();
    assert!(with_sev > 0 && with_sev <= syslog_lines);
    let _ = Timestamp::EPOCH;
}
