//! Equivalence of the prefiltered tagging engine and the brute-force
//! all-rules path.
//!
//! The Aho-Corasick prescan is pure optimization: a candidate-rule
//! bitset plus an always-check set for factor-less rules must never
//! change which rule fires. These tests pin that down on generated
//! logs for all five systems, and separately check that every
//! catalog rule's extracted literal factors actually occur in the
//! rule's own example line — the soundness property the prescan
//! depends on.

use sclog::parse::render_native;
use sclog::rules::catalog::{catalog, example_body, example_value, fill_template};
use sclog::rules::{Predicate, RuleSet};
use sclog::simgen::{generate, Scale};
use sclog::types::{CategoryRegistry, ALL_SYSTEMS};
use sclog_testkit::{check_n, Gen};

/// Generation dominates runtime; mirrors `prop_invariants.rs`.
const PIPELINE_CASES: u64 = 12;

#[test]
fn prefiltered_tagging_equals_brute_force_on_generated_logs() {
    check_n(
        "prefiltered tagging equals brute force on generated logs",
        PIPELINE_CASES,
        |g| {
            let sys = *g.pick(&ALL_SYSTEMS);
            let seed = g.below(10_000);
            let log = generate(sys, Scale::new(0.002, 0.00005), seed);
            let mut registry = CategoryRegistry::new();
            let rules = RuleSet::builtin(sys, &mut registry);
            let pre = rules.tag_messages(&log.messages, &log.interner);
            let brute = rules.tag_messages_unfiltered(&log.messages, &log.interner);
            assert_eq!(
                pre.alerts, brute.alerts,
                "{sys} seed {seed}: prescan changed the tagging"
            );
        },
    );
}

#[test]
fn prefiltered_tagging_equals_brute_force_per_line() {
    // Line-level check including corrupted/garbled lines the message
    // path may render oddly: tag each rendered line both ways.
    check_n(
        "prefiltered tagging equals brute force per line",
        PIPELINE_CASES,
        |g: &mut Gen| {
            let sys = *g.pick(&ALL_SYSTEMS);
            let seed = g.below(10_000);
            let log = generate(sys, Scale::new(0.002, 0.00002), seed);
            let mut registry = CategoryRegistry::new();
            let rules = RuleSet::builtin(sys, &mut registry);
            for msg in &log.messages {
                let line = render_native(msg, &log.interner);
                assert_eq!(
                    rules.tag_line(&line),
                    rules.tag_line_unfiltered(&line),
                    "{sys} seed {seed}: divergence on line {line:?}"
                );
            }
        },
    );
}

#[test]
fn every_rule_factor_occurs_in_its_example_line() {
    // If a rule has required literals, its own example line — which
    // the rule must match by construction of the catalog — has to
    // contain at least one of them. A violation means the prescan
    // would suppress that rule on its canonical alert. Factors from
    // field-position rules may live in the facility or severity
    // token rather than the body, so check against the rendered-line
    // approximation `facility severity body` as well as the body.
    for &sys in &ALL_SYSTEMS {
        for spec in catalog(sys) {
            let pred = Predicate::parse(spec.rule)
                .unwrap_or_else(|e| panic!("rule {} failed to compile: {e}", spec.name));
            let Some(literals) = pred.required_literals() else {
                continue;
            };
            assert!(
                !literals.is_empty(),
                "{sys}/{}: empty factor set should be None",
                spec.name
            );
            let body = example_body(spec);
            let facility = fill_template(spec.facility, example_value);
            // The two native-line shapes around the body: syslog's
            // `facility: body` and BG/L's `FACILITY SEVERITY body`.
            let syslog = format!("{facility}: {body}");
            let bgl = format!(
                "{facility} {} {body}",
                format!("{:?}", spec.severity).to_uppercase()
            );
            assert!(
                literals
                    .iter()
                    .any(|l| syslog.contains(l.as_str()) || bgl.contains(l.as_str())),
                "{sys}/{}: none of the extracted factors {literals:?} \
                 occur in the example lines {syslog:?} / {bgl:?}",
                spec.name
            );
        }
    }
}
