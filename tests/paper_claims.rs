//! Integration tests asserting the paper's headline quantitative and
//! qualitative claims on regenerated data.

use sclog::core::tables::SeverityTable;
use sclog::core::Study;
use sclog::filter::{score, AlertFilter, SerialFilter, SpatioTemporalFilter};
use sclog::rules::catalog::catalog;
use sclog::simgen::{generate, Scale};
use sclog::stats::{interarrivals, ks_test, Distribution, Exponential};
use sclog::types::{Alert, AlertType, SystemId, Timestamp, ALL_SYSTEMS};
use std::collections::HashMap;

/// Table 5: tagging FATAL/FAILURE as alerts on BG/L gives ~0% false
/// negatives but a ~59% false-positive rate.
#[test]
fn severity_baseline_fp_rate_is_high_on_bgl() {
    let run = Study::new(0.02, 0.02, 101).run_system(SystemId::BlueGeneL);
    let table = SeverityTable::table5(&run);
    let fp = table.baseline_false_positive_rate(&["FATAL", "FAILURE"]);
    assert!((fp - 0.5934).abs() < 0.08, "fp rate {fp} (paper: 0.5934)");
    // False-negative side: essentially every expert alert is
    // FATAL/FAILURE.
    let flagged_alerts: u64 = table
        .rows
        .iter()
        .filter(|r| r.0 == "FATAL" || r.0 == "FAILURE")
        .map(|r| r.2)
        .sum();
    assert!(flagged_alerts as f64 > 0.999 * table.alert_total() as f64);
}

/// Table 3's flip, asserted from ground truth (no tagging, so this
/// stays fast at the larger alert scale the filtered mix needs):
/// hardware dominates raw alerts, software dominates filtered alerts.
#[test]
fn filtering_flips_type_mix_from_hardware_to_software() {
    let mut raw: HashMap<AlertType, u64> = HashMap::new();
    let mut filt: HashMap<AlertType, u64> = HashMap::new();
    for &sys in &ALL_SYSTEMS {
        let log = generate(sys, Scale::new(0.02, 0.0001), 102);
        let types: HashMap<&str, AlertType> = catalog(sys)
            .iter()
            .map(|s| (s.name, s.alert_type))
            .collect();
        // Build the alert stream straight from ground truth.
        let mut alerts: Vec<Alert> = Vec::new();
        let mut cat_ids: HashMap<&str, u16> = HashMap::new();
        for (i, (truth, cat)) in log.truth.iter().zip(&log.truth_category).enumerate() {
            if let (Some(f), Some(name)) = (truth, cat) {
                let next = cat_ids.len() as u16;
                let id = *cat_ids.entry(name).or_insert(next);
                alerts.push(
                    Alert::new(
                        log.messages[i].time,
                        log.messages[i].source,
                        sclog::types::CategoryId::from_index(id),
                        i,
                    )
                    .with_failure(*f),
                );
                *raw.entry(types[name]).or_insert(0) += 1;
            }
        }
        let kept = SpatioTemporalFilter::paper().filter(&alerts);
        let names: Vec<&str> = {
            let mut v = vec![""; cat_ids.len()];
            for (name, id) in &cat_ids {
                v[*id as usize] = name;
            }
            v
        };
        for a in &kept {
            *filt.entry(types[names[a.category.index()]]).or_insert(0) += 1;
        }
    }
    let raw_total: u64 = raw.values().sum();
    let filt_total: u64 = filt.values().sum();
    let raw_hw = raw[&AlertType::Hardware] as f64 / raw_total as f64;
    let filt_hw = *filt.get(&AlertType::Hardware).unwrap_or(&0) as f64 / filt_total as f64;
    let filt_sw = *filt.get(&AlertType::Software).unwrap_or(&0) as f64 / filt_total as f64;
    assert!(raw_hw > 0.9, "raw hardware share {raw_hw} (paper: 0.9804)");
    assert!(
        filt_sw > filt_hw,
        "software should dominate filtered alerts"
    );
    assert!(
        filt_hw < 0.4,
        "filtered hardware share {filt_hw} (paper: 0.1878)"
    );
}

/// Figure 5 vs Figure 6: ECC interarrivals pass an exponential KS test;
/// the cascading PBS_CHK stream does not.
#[test]
fn ecc_is_exponential_pbs_is_not() {
    let study = Study::new(1.0, 0.00002, 103);
    let ecc_run = study.run_subset(SystemId::Thunderbird, &["ECC"]);
    let ecc = ecc_run
        .registry
        .lookup(SystemId::Thunderbird, "ECC")
        .expect("cat");
    let times: Vec<Timestamp> = ecc_run
        .filtered
        .iter()
        .filter(|a| a.category == ecc)
        .map(|a| a.time)
        .collect();
    let gaps = interarrivals(&times, 1.0);
    let fit = Exponential::fit(&gaps);
    let ks = ks_test(&gaps, |x| fit.cdf(x));
    assert!(
        ks.p_value > 0.01,
        "ECC should look exponential, p = {}",
        ks.p_value
    );

    // PBS_CHK on Liberty: episodic bug window, decidedly not
    // exponential over the whole span.
    let lib = Study::new(1.0, 0.00002, 103).run_subset(SystemId::Liberty, &["PBS_CHK"]);
    let pbs = lib
        .registry
        .lookup(SystemId::Liberty, "PBS_CHK")
        .expect("cat");
    let times: Vec<Timestamp> = lib
        .filtered
        .iter()
        .filter(|a| a.category == pbs)
        .map(|a| a.time)
        .collect();
    let gaps = interarrivals(&times, 1.0);
    let fit = Exponential::fit(&gaps);
    let ks = ks_test(&gaps, |x| fit.cdf(x));
    assert!(
        ks.p_value < 0.01,
        "PBS_CHK should reject exponential, p = {}",
        ks.p_value
    );
}

/// Section 3.3.2: the simultaneous filter never keeps more than the
/// serial baseline, loses at most a bounded handful of true positives,
/// and removes strictly more redundancy on at least one system.
#[test]
fn simultaneous_vs_serial_tradeoff() {
    let study = Study::new(0.002, 0.0001, 104);
    let mut any_strictly_better = false;
    for &sys in &ALL_SYSTEMS {
        let run = study.run_system(sys);
        let raw = &run.tagged.alerts;
        let simul = SpatioTemporalFilter::paper().filter(raw);
        let serial = SerialFilter::paper().filter(raw);
        assert!(simul.len() <= serial.len(), "{sys}");
        let s_sim = score(raw, &simul);
        let s_ser = score(raw, &serial);
        // "At most one true positive was removed on any single machine"
        // — allow a small bound at our scale.
        assert!(
            s_sim.lost.saturating_sub(s_ser.lost) <= 3,
            "{sys}: simultaneous lost {} vs serial {}",
            s_sim.lost,
            s_ser.lost
        );
        if simul.len() < serial.len() {
            any_strictly_better = true;
        }
    }
    assert!(
        any_strictly_better,
        "simultaneous should remove extra redundancy somewhere"
    );
}

/// Table 2 calibration: regenerated message and alert counts track the
/// paper's, scaled.
#[test]
fn table2_counts_track_paper() {
    const SCALE: f64 = 0.002;
    let paper: [(SystemId, u64, u64); 5] = [
        (SystemId::BlueGeneL, 4_747_963, 348_460),
        (SystemId::Thunderbird, 211_212_192, 3_248_239),
        (SystemId::RedStorm, 219_096_168, 1_665_744),
        (SystemId::Spirit, 272_298_969, 172_816_564),
        (SystemId::Liberty, 265_569_231, 2452),
    ];
    let study = Study::new(SCALE, SCALE, 105);
    for (sys, msgs, alerts) in paper {
        let run = study.run_system(sys);
        let expect_msgs = msgs as f64 * SCALE;
        let expect_alerts = alerts as f64 * SCALE;
        let got_msgs = run.messages() as f64;
        let got_alerts = run.raw_alerts() as f64;
        assert!(
            (got_msgs - expect_msgs).abs() / expect_msgs < 0.35,
            "{sys}: messages {got_msgs} vs {expect_msgs}"
        );
        // Liberty's 2452 alerts scale to ~5; give small counts room.
        let tol = if expect_alerts < 100.0 { 1.0 } else { 0.35 };
        assert!(
            (got_alerts - expect_alerts).abs() / expect_alerts <= tol,
            "{sys}: alerts {got_alerts} vs {expect_alerts}"
        );
    }
}

/// "Using logs to compare machines is absurd": Spirit (1028 procs)
/// produces vastly more alerts than Liberty (512 procs) at the same
/// scale, despite being a similar machine — reporting redundancy, not
/// reliability.
#[test]
fn alert_counts_do_not_rank_reliability() {
    let study = Study::new(0.002, 0.0001, 106);
    let spirit = study.run_system(SystemId::Spirit);
    let liberty = study.run_system(SystemId::Liberty);
    assert!(spirit.raw_alerts() > 1000 * liberty.raw_alerts().max(1));
    // Yet their *failure* counts are the same order of magnitude.
    let sf = spirit.log.failure_count as f64;
    let lf = liberty.log.failure_count.max(1) as f64;
    assert!(sf / lf < 50.0, "failures: spirit {sf} vs liberty {lf}");
}
