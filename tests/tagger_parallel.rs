//! Regression: parallel tagging must be byte-identical to serial
//! tagging for every thread count, on a realistic generated log large
//! enough to actually engage the parallel path (≥ 4096 messages).

use sclog::rules::RuleSet;
use sclog::simgen::{generate, Scale};
use sclog::types::{CategoryRegistry, SystemId};

#[test]
fn parallel_tagging_is_identical_for_thread_counts_1_through_8() {
    let log = generate(SystemId::Liberty, Scale::new(0.01, 0.00003), 11);
    assert!(
        log.messages.len() >= 4096,
        "need enough messages to engage the parallel path, got {}",
        log.messages.len()
    );
    let mut registry = CategoryRegistry::new();
    let rules = RuleSet::builtin(SystemId::Liberty, &mut registry);
    let serial = rules.tag_messages(&log.messages, &log.interner);
    for threads in 1..=8 {
        let parallel = rules.tag_messages_parallel(&log.messages, &log.interner, threads);
        assert_eq!(
            serial.alerts, parallel.alerts,
            "thread count {threads} diverged from serial"
        );
    }
}

#[test]
fn parallel_tagging_handles_chunk_boundary_counts() {
    // Thread counts that do not divide the message count evenly stress
    // the base-index arithmetic of the last (short) chunk.
    let log = generate(SystemId::Spirit, Scale::new(0.0002, 0.00002), 13);
    let mut registry = CategoryRegistry::new();
    let rules = RuleSet::builtin(SystemId::Spirit, &mut registry);
    let serial = rules.tag_messages(&log.messages, &log.interner);
    for threads in [3, 5, 7] {
        let parallel = rules.tag_messages_parallel(&log.messages, &log.interner, threads);
        assert_eq!(serial.alerts, parallel.alerts, "threads={threads}");
    }
}
