//! Deterministic-replay golden snapshots: one fixed master seed must
//! reproduce an identical simulated log text AND identical filter
//! output, byte for byte, across builds and platforms.
//!
//! This pins the whole seeded stack — xoshiro256++ stream, seed
//! derivation, distribution samplers, generator event order, rule
//! matching, and filter decisions. Any unintentional change to one of
//! them shows up as a snapshot diff.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! SCLOG_BLESS=1 cargo test --test replay_snapshot
//! ```

use sclog::filter::{AlertFilter, SpatioTemporalFilter};
use sclog::rules::RuleSet;
use sclog::simgen::{generate, Scale};
use sclog::types::{CategoryRegistry, SystemId};

const MASTER_SEED: u64 = 20_070_625;

fn snapshot(sys: SystemId, alert_scale: f64, bg_scale: f64) -> String {
    let log = generate(sys, Scale::new(alert_scale, bg_scale), MASTER_SEED);
    let mut registry = CategoryRegistry::new();
    let rules = RuleSet::builtin(sys, &mut registry);
    let tagged = rules.tag_messages(&log.messages, &log.interner);
    let kept = SpatioTemporalFilter::paper().filter(&tagged.alerts);

    let mut out = String::new();
    out.push_str(&format!(
        "# replay snapshot: system={sys} scale=({alert_scale},{bg_scale}) seed={MASTER_SEED}\n\
         # {} messages, {} tagged alerts, {} kept after T=5s filter\n\
         --- rendered log ---\n",
        log.messages.len(),
        tagged.len(),
        kept.len(),
    ));
    out.push_str(&log.render());
    out.push_str("--- filtered alerts (micros\tsource\tcategory) ---\n");
    for a in &kept {
        out.push_str(&format!(
            "{}\t{}\t{}\n",
            a.time.as_micros(),
            log.interner.name(a.source),
            registry.name(a.category),
        ));
    }
    out
}

fn check(name: &str, got: &str) {
    let path = format!(
        "{}/tests/golden/replay_{name}.snap",
        env!("CARGO_MANIFEST_DIR")
    );
    if std::env::var_os("SCLOG_BLESS").is_some() {
        std::fs::write(&path, got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("golden {path} missing ({e}); regenerate with SCLOG_BLESS=1"));
    if got != want {
        let mismatch = got
            .lines()
            .zip(want.lines())
            .position(|(g, w)| g != w)
            .map(|i| {
                format!(
                    "first diff at line {}:\n  got:  {}\n  want: {}",
                    i + 1,
                    got.lines().nth(i).unwrap_or(""),
                    want.lines().nth(i).unwrap_or(""),
                )
            })
            .unwrap_or_else(|| "line counts differ".to_owned());
        panic!("replay snapshot {name} diverged ({mismatch})");
    }
}

#[test]
fn liberty_replay_matches_golden_snapshot() {
    check("liberty", &snapshot(SystemId::Liberty, 0.01, 0.000001));
}

#[test]
fn bgl_replay_matches_golden_snapshot() {
    check("bgl", &snapshot(SystemId::BlueGeneL, 0.0002, 0.00005));
}

#[test]
fn replay_is_reproducible_within_process() {
    // The snapshot files pin cross-build determinism; this pins
    // same-process determinism without touching disk.
    let a = snapshot(SystemId::Liberty, 0.01, 0.000001);
    let b = snapshot(SystemId::Liberty, 0.01, 0.000001);
    assert_eq!(a, b);
}
