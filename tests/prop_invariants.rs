//! Cross-crate property tests: whole-pipeline invariants under random
//! seeds and scales.
//!
//! Ported from proptest to the in-tree `sclog-testkit` harness; set
//! `SCLOG_PROP_CASES` / `SCLOG_PROP_SEED` to rescale or replay.

use sclog::filter::{AlertFilter, SerialFilter, SpatioTemporalFilter};
use sclog::parse::LogReader;
use sclog::rules::RuleSet;
use sclog::simgen::{generate, Scale};
use sclog::types::{CategoryRegistry, SystemId, ALL_SYSTEMS};
use sclog_testkit::{check_n, Gen};

fn any_system(g: &mut Gen) -> SystemId {
    *g.pick(&ALL_SYSTEMS)
}

/// The generation step dominates runtime, so these pipeline properties
/// run fewer cases than the suite default (matching the old
/// `ProptestConfig::with_cases(12)`).
const PIPELINE_CASES: u64 = 12;

#[test]
fn pipeline_invariants_hold_for_any_seed() {
    check_n(
        "pipeline invariants hold for any seed",
        PIPELINE_CASES,
        |g| {
            let sys = any_system(g);
            let seed = g.below(10_000);
            let log = generate(sys, Scale::new(0.001, 0.00005), seed);
            // Messages sorted.
            assert!(log.messages.windows(2).all(|w| w[0].time <= w[1].time));
            // Truth arrays parallel.
            assert_eq!(log.messages.len(), log.truth.len());

            let mut registry = CategoryRegistry::new();
            let rules = RuleSet::builtin(sys, &mut registry);
            let mut tagged = rules.tag_messages(&log.messages, &log.interner);
            tagged.attach_truth(&log.truth);

            // Tagged alerts reference valid messages, in order.
            assert!(tagged
                .alerts
                .windows(2)
                .all(|w| w[0].message_index < w[1].message_index));
            for a in &tagged.alerts {
                assert!(a.message_index < log.messages.len());
                assert_eq!(a.time, log.messages[a.message_index].time);
            }

            // Filter laws: subsequence, idempotence, simultaneous ≤ serial.
            let simul = SpatioTemporalFilter::paper().filter(&tagged.alerts);
            let serial = SerialFilter::paper().filter(&tagged.alerts);
            assert!(simul.len() <= serial.len());
            assert_eq!(SpatioTemporalFilter::paper().filter(&simul), simul);
            assert!(simul.len() <= tagged.alerts.len());
        },
    );
}

#[test]
fn rendered_logs_always_reparse() {
    check_n("rendered logs always reparse", PIPELINE_CASES, |g| {
        let sys = any_system(g);
        let seed = g.below(10_000);
        let log = generate(sys, Scale::new(0.0005, 0.00005), seed);
        let text = log.render();
        let mut reader = LogReader::for_system(sys);
        reader.push_text(&text);
        let stats = reader.stats();
        assert_eq!(stats.total(), log.messages.len() as u64);
        assert!(
            stats.parsed as f64 >= 0.99 * log.messages.len() as f64,
            "{sys} seed {seed}: parsed {} of {}",
            stats.parsed,
            log.messages.len()
        );
    });
}

#[test]
fn compression_round_trips_on_generated_logs() {
    check_n(
        "compression round-trips on generated logs",
        PIPELINE_CASES,
        |g| {
            let seed = g.below(1_000);
            let log = generate(SystemId::Liberty, Scale::new(0.001, 0.00002), seed);
            let text = log.render();
            let tokens = sclog::parse::compress::tokenize(text.as_bytes());
            assert_eq!(
                sclog::parse::compress::detokenize(&tokens),
                text.into_bytes()
            );
        },
    );
}
