//! Cross-crate property tests: whole-pipeline invariants under random
//! seeds and scales.

use proptest::prelude::*;
use sclog::filter::{AlertFilter, SerialFilter, SpatioTemporalFilter};
use sclog::parse::LogReader;
use sclog::rules::RuleSet;
use sclog::simgen::{generate, Scale};
use sclog::types::{CategoryRegistry, SystemId};

fn any_system() -> impl Strategy<Value = SystemId> {
    prop_oneof![
        Just(SystemId::BlueGeneL),
        Just(SystemId::Thunderbird),
        Just(SystemId::RedStorm),
        Just(SystemId::Spirit),
        Just(SystemId::Liberty),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pipeline_invariants_hold_for_any_seed(
        sys in any_system(),
        seed in 0u64..10_000,
    ) {
        let log = generate(sys, Scale::new(0.001, 0.00005), seed);
        // Messages sorted.
        prop_assert!(log.messages.windows(2).all(|w| w[0].time <= w[1].time));
        // Truth arrays parallel.
        prop_assert_eq!(log.messages.len(), log.truth.len());

        let mut registry = CategoryRegistry::new();
        let rules = RuleSet::builtin(sys, &mut registry);
        let mut tagged = rules.tag_messages(&log.messages, &log.interner);
        tagged.attach_truth(&log.truth);

        // Tagged alerts reference valid messages, in order.
        prop_assert!(tagged.alerts.windows(2).all(|w| w[0].message_index < w[1].message_index));
        for a in &tagged.alerts {
            prop_assert!(a.message_index < log.messages.len());
            prop_assert_eq!(a.time, log.messages[a.message_index].time);
        }

        // Filter laws: subsequence, idempotence, simultaneous ≤ serial.
        let simul = SpatioTemporalFilter::paper().filter(&tagged.alerts);
        let serial = SerialFilter::paper().filter(&tagged.alerts);
        prop_assert!(simul.len() <= serial.len());
        prop_assert_eq!(&SpatioTemporalFilter::paper().filter(&simul), &simul);
        prop_assert!(simul.len() <= tagged.alerts.len());
    }

    #[test]
    fn rendered_logs_always_reparse(
        sys in any_system(),
        seed in 0u64..10_000,
    ) {
        let log = generate(sys, Scale::new(0.0005, 0.00005), seed);
        let text = log.render();
        let mut reader = LogReader::for_system(sys);
        reader.push_text(&text);
        let stats = reader.stats();
        prop_assert_eq!(stats.total(), log.messages.len() as u64);
        prop_assert!(stats.parsed as f64 >= 0.99 * log.messages.len() as f64,
            "parsed {} of {}", stats.parsed, log.messages.len());
    }

    #[test]
    fn compression_round_trips_on_generated_logs(
        seed in 0u64..1_000,
    ) {
        let log = generate(SystemId::Liberty, Scale::new(0.001, 0.00002), seed);
        let text = log.render();
        let tokens = sclog::parse::compress::tokenize(text.as_bytes());
        prop_assert_eq!(sclog::parse::compress::detokenize(&tokens), text.into_bytes());
    }
}
