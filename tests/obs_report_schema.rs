//! Golden test pinning the `sclog.obs.v1` report schema.
//!
//! An instrumented ingest run exercises every report section — stages,
//! workers, counters, gauges (bounded and unbounded), and the
//! chunk-size histogram — so the set of JSON object keys appearing in
//! its report is the schema's full vocabulary. That key set is pinned
//! in `tests/golden/obs_report_keys.txt`; adding, renaming, or
//! dropping a field shows up as a diff against the golden file, which
//! is the signal to bump the schema tag and update consumers.

use sclog::core::pipeline::{self, IngestConfig};
use sclog::filter::SpatioTemporalFilter;
use sclog::obs::ObsConfig;
use sclog::rules::RuleSet;
use sclog::simgen::{generate, Scale};
use sclog::types::json::validate;
use sclog::types::{CategoryRegistry, SystemId};
use std::collections::BTreeSet;

/// Every JSON object key in `json`, in sorted order. A key is a string
/// immediately followed by `:`; string values never precede a colon in
/// this schema.
fn keys(json: &str) -> BTreeSet<String> {
    let b = json.as_bytes();
    let mut keys = BTreeSet::new();
    let mut i = 0;
    while i < b.len() {
        if b[i] == b'"' {
            let start = i + 1;
            let mut j = start;
            while j < b.len() && b[j] != b'"' {
                if b[j] == b'\\' {
                    j += 1;
                }
                j += 1;
            }
            if j + 1 < b.len() && b[j + 1] == b':' {
                keys.insert(json[start..j].to_string());
            }
            i = j + 1;
        }
        i += 1;
    }
    keys
}

#[test]
fn obs_report_keys_match_golden() {
    let log = generate(SystemId::Liberty, Scale::new(0.005, 0.0001), 77);
    let text = log.render();
    let mut registry = CategoryRegistry::new();
    let rules = RuleSet::builtin(SystemId::Liberty, &mut registry);
    let filter = SpatioTemporalFilter::paper();
    let config = IngestConfig {
        obs: ObsConfig::on(),
        ..IngestConfig::with_threads(2)
    };
    let result =
        pipeline::ingest_stream(SystemId::Liberty, text.as_bytes(), &rules, &filter, config)
            .unwrap();
    let report = result.obs.expect("obs on yields a report");
    let json = report.to_json();
    validate(&json).expect("report JSON parses");
    assert!(json.starts_with("{\"schema\":\"sclog.obs.v1\""));

    // The run must populate every section, or the key sweep is hollow.
    assert!(!report.stages.is_empty());
    assert!(!report.workers.is_empty());
    assert!(!report.counters.is_empty());
    assert!(report.gauges.iter().any(|g| g.bound.is_some()));
    assert!(report.histograms.iter().any(|h| h.count > 0));

    let actual = keys(&json);
    let golden: BTreeSet<String> = include_str!("golden/obs_report_keys.txt")
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect();
    assert_eq!(
        actual,
        golden,
        "sclog.obs.v1 key set changed; if intentional, bump the schema \
         tag and regenerate tests/golden/obs_report_keys.txt:\n{}",
        actual.iter().cloned().collect::<Vec<_>>().join("\n")
    );
}
