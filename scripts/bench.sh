#!/usr/bin/env sh
# Regenerates every BENCH_*.json at the repo root from a release bench
# run. Each bench writes one JSON record per line on stdout (the
# captured file) and human-readable summaries on stderr (passed
# through).
#
# Knobs: SCLOG_BENCH_SAMPLES / SCLOG_BENCH_WARMUP rescale every
# benchmark; the defaults below favor stable medians over speed.
# Comparison pairs (serial vs parallel, batch vs streaming) interleave
# their samples inside the harness, but numbers from a loaded host
# still wander — rerun and compare before trusting a small delta.
set -eu

cd "$(dirname "$0")/.."

: "${SCLOG_BENCH_SAMPLES:=20}"
: "${SCLOG_BENCH_WARMUP:=2}"
export SCLOG_BENCH_SAMPLES SCLOG_BENCH_WARMUP

echo "== tagger_bench -> BENCH_tagger.json (samples=$SCLOG_BENCH_SAMPLES)"
cargo bench --offline -p sclog-bench --bench tagger_bench > BENCH_tagger.json

echo "== pipeline_bench -> BENCH_pipeline.json (samples=$SCLOG_BENCH_SAMPLES)"
cargo bench --offline -p sclog-bench --bench pipeline_bench > BENCH_pipeline.json

echo "bench: wrote BENCH_tagger.json BENCH_pipeline.json"
