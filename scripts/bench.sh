#!/usr/bin/env sh
# Regenerates every BENCH_*.json at the repo root from a release bench
# run. Each bench writes one JSON record per line on stdout (the
# captured file) and human-readable summaries on stderr (passed
# through).
#
# Knobs: SCLOG_BENCH_SAMPLES / SCLOG_BENCH_WARMUP rescale every
# benchmark; the defaults below favor stable medians over speed.
# Comparison pairs (serial vs parallel, batch vs streaming) interleave
# their samples inside the harness, but numbers from a loaded host
# still wander — rerun and compare before trusting a small delta.
#
# BENCH_tagger.json carries two non-timing record types alongside the
# per-arm timings:
#   {"record":"tiers"}            one per system, from a counted serial
#                                 pass: lines, prefilter_gated,
#                                 rule_checks, vm_eligible,
#                                 dfa_resolved, vm_fallback,
#                                 dfa_cache_evictions, matches — the
#                                 three-tier engine's work breakdown
#                                 (vm_eligible == dfa_resolved +
#                                 vm_fallback always)
#   {"record":"parallel_speedup"} serial/parallel median ratio for the
#                                 prefiltered engine; emitted only when
#                                 the host has more than one CPU, so a
#                                 single-core ratio is never mistaken
#                                 for a parallelism measurement
#
# BENCH_pipeline.json also carries one observability snapshot: a
# {"record":"obs"} line from an instrumented (untimed) study run, with
#   threads    worker count the run used
#   coverage   fraction of recorded thread time attributed to spans
#   report     the full sclog.obs.v1 document — wall_ns,
#              attributed_ns, coverage, stages[] (name/wall_ns/busy_ns/
#              wait_ns/items/bytes/spans), workers[] (label/wall_ns/
#              busy_ns/wait_ns/items/jobs/utilization), counters[]
#              (name/value), gauges[] (name/current/peak/bound),
#              histograms[] (name/count/sum/buckets[le,count])
# so a timing regression in the timed arms can be read against the
# stage waterfall captured on the same host. Timed arms always run
# with obs off; the snapshot run is separate and never timed.
#
# BENCH_store.json carries two derived records alongside the per-arm
# timings (append throughput, pruned vs full scan, cold boot):
#   {"record":"prune_speedup"}    full-scan / pruned-scan median ratio
#                                 for a one-day one-system window over
#                                 a 16-day five-system store — the
#                                 zone-map payoff (expected well above
#                                 the 5x floor verify.sh enforces)
#   {"record":"cold_boot"}        resimulate / cold-boot median ratio:
#                                 opening sealed segments and scanning
#                                 them versus re-running simulation +
#                                 parse + tag + filter, the boot path
#                                 sclogd --data replaces
set -eu

cd "$(dirname "$0")/.."

: "${SCLOG_BENCH_SAMPLES:=20}"
: "${SCLOG_BENCH_WARMUP:=2}"
export SCLOG_BENCH_SAMPLES SCLOG_BENCH_WARMUP

# First line of every BENCH file is a host record, so numbers are never
# compared across machines by accident. thread_cap is the worker count
# the bench actually uses: tagger_bench pins 4 workers, pipeline_bench
# takes min(available cores, 8).
cpus=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
host_record() {
    printf '{"record":"host","cpus":%s,"thread_cap":%s,"samples":%s,"warmup":%s}\n' \
        "$cpus" "$1" "$SCLOG_BENCH_SAMPLES" "$SCLOG_BENCH_WARMUP"
}
pipeline_cap=$cpus
[ "$pipeline_cap" -gt 8 ] && pipeline_cap=8

echo "== tagger_bench -> BENCH_tagger.json (samples=$SCLOG_BENCH_SAMPLES)"
{
    host_record 4
    cargo bench --offline -p sclog-bench --bench tagger_bench
} > BENCH_tagger.json

echo "== pipeline_bench -> BENCH_pipeline.json (samples=$SCLOG_BENCH_SAMPLES)"
{
    host_record "$pipeline_cap"
    cargo bench --offline -p sclog-bench --bench pipeline_bench
} > BENCH_pipeline.json

echo "== store_bench -> BENCH_store.json (samples=$SCLOG_BENCH_SAMPLES)"
{
    host_record 1
    cargo bench --offline -p sclog-bench --bench store_bench
} > BENCH_store.json

echo "bench: wrote BENCH_tagger.json BENCH_pipeline.json BENCH_store.json (host: $cpus cpus)"
