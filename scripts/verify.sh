#!/usr/bin/env sh
# Tier-1 verification, runnable with no network and no registry cache:
# the workspace is hermetic (path-only dependencies, std-only code), so
# --offline must always succeed. Formatting is checked too, so CI and
# local runs agree on the tree's canonical form.
#
# Modes:
#   scripts/verify.sh                the full tier-1 run (includes the
#                                    bench smoke)
#   scripts/verify.sh --bench-smoke  only the bench smoke: run the
#                                    tagger and pipeline benches at
#                                    minimal sample counts to prove the
#                                    harness, the prefiltered/brute
#                                    equivalence assertion, and the
#                                    pipeline's in-flight bound still
#                                    hold
set -eu

cd "$(dirname "$0")/.."

bench_smoke() {
    echo "== bench smoke: tagger_bench (SCLOG_BENCH_SAMPLES=3, SCLOG_BENCH_WARMUP=1)"
    SCLOG_BENCH_SAMPLES=3 SCLOG_BENCH_WARMUP=1 \
        cargo bench --offline -p sclog-bench --bench tagger_bench >/dev/null
    echo "== bench smoke: pipeline_bench (SCLOG_BENCH_SAMPLES=3, SCLOG_BENCH_WARMUP=1)"
    SCLOG_BENCH_SAMPLES=3 SCLOG_BENCH_WARMUP=1 \
        cargo bench --offline -p sclog-bench --bench pipeline_bench >/dev/null
}

if [ "${1-}" = "--bench-smoke" ]; then
    bench_smoke
    echo "verify: OK (bench smoke)"
    exit 0
fi

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo build --workspace --release --offline"
cargo build --workspace --release --offline

echo "== cargo test -q --workspace --offline"
cargo test -q --workspace --offline

bench_smoke

echo "verify: OK"
