#!/usr/bin/env sh
# Tier-1 verification, runnable with no network and no registry cache:
# the workspace is hermetic (path-only dependencies, std-only code), so
# --offline must always succeed. Formatting is checked too, so CI and
# local runs agree on the tree's canonical form.
#
# Modes:
#   scripts/verify.sh                the full tier-1 run (includes the
#                                    lint gate and the bench and obs
#                                    smokes)
#   scripts/verify.sh --lint         only the lint gate: source hygiene
#                                    (scripts/tidy.sh) plus the static
#                                    rule-catalog audit checked against
#                                    the committed AUDIT.json snapshot
#   scripts/verify.sh --bench-smoke  only the bench smoke: run the
#                                    tagger and pipeline benches at
#                                    minimal sample counts to prove the
#                                    harness, the prefiltered/brute
#                                    equivalence assertion, and the
#                                    pipeline's in-flight bound still
#                                    hold
#   scripts/verify.sh --obs-smoke    only the observability smoke: run
#                                    a small instrumented study
#                                    (obs_report --check) and validate
#                                    the emitted sclog.obs.v1 JSON —
#                                    well-formed, required stage/
#                                    counter/gauge keys present, span
#                                    coverage >= 95%, gauge peaks
#                                    within their bounds
#   scripts/verify.sh --serve-smoke  only the server smoke: boot sclogd
#                                    against a five-system simulated
#                                    ingest on an ephemeral port, query
#                                    every endpoint (filters,
#                                    aggregations, /obs), check failure
#                                    classification (400/404/405),
#                                    drive it into overload to observe
#                                    503 + Retry-After, and shut down
#                                    cleanly
#   scripts/verify.sh --store-smoke  only the store smoke: sclogd
#                                    --store-smoke drives the on-disk
#                                    segment store end to end — ingest
#                                    through the WAL, survive a torn
#                                    tail and a truncated frame, seal,
#                                    cold-boot from the segments, and
#                                    serve the recovered alerts over a
#                                    real socket
#   scripts/verify.sh --trace-smoke  only the tracing smoke: boot
#                                    sclogd, issue one full-scan query
#                                    and one tightly-filtered query,
#                                    and assert /obs/queries ranks and
#                                    explains them via per-request
#                                    ScanStats while /obs/timeline
#                                    accumulates sampler deltas
#   scripts/verify.sh --model-check  only the model check: rebuild the
#                                    workspace with --cfg sclog_model
#                                    (into its own target dir, so the
#                                    normal build's fingerprints are
#                                    untouched) and exhaustively
#                                    explore every sync protocol's
#                                    schedules via sclog-check,
#                                    including the seeded-mutant
#                                    detection tests; explored-schedule
#                                    counts are printed per harness
set -eu

cd "$(dirname "$0")/.."

# Deny warnings everywhere, and export once so every cargo invocation
# in every mode shares one fingerprint (no rebuild churn between the
# build, the lint gate's `cargo run`, tests, and the bench smoke).
RUSTFLAGS="${RUSTFLAGS:-} -Dwarnings"
export RUSTFLAGS

lint() {
    echo "== tidy (source hygiene)"
    sh scripts/tidy.sh
    echo "== sclog-audit --check AUDIT.json (rule-catalog static analysis)"
    cargo run -q --offline --release -p sclog-audit -- --check AUDIT.json
}

bench_smoke() {
    echo "== bench smoke: tagger_bench (SCLOG_BENCH_SAMPLES=3, SCLOG_BENCH_WARMUP=1)"
    tagger_out=$(SCLOG_BENCH_SAMPLES=3 SCLOG_BENCH_WARMUP=1 \
        cargo bench --offline -p sclog-bench --bench tagger_bench)
    # Throughput floor: the prefiltered serial engine must stay within
    # an order of magnitude of its captured speed (hundreds of
    # ns/element; see BENCH_tagger.json). The generous 25000 ns/elem
    # ceiling only trips on a catastrophic regression — e.g. the
    # prescan or DFA tier silently disabled — not on host jitter.
    echo "$tagger_out" | awk '
        /"name":"tagger_[a-z]+\/serial_prefiltered"/ {
            if (match($0, /"median_ns_per_element":[0-9.]+/)) {
                v = substr($0, RSTART + 24, RLENGTH - 24) + 0
                seen += 1
                if (v > 25000) {
                    printf "bench-smoke FAILED: %s ns/elem exceeds the 25000 floor\n", v
                    exit 1
                }
            }
        }
        END {
            if (seen < 2) {
                printf "bench-smoke FAILED: expected 2 serial_prefiltered records, saw %d\n", seen
                exit 1
            }
        }'
    echo "   tagger throughput floor OK"
    echo "== bench smoke: pipeline_bench (SCLOG_BENCH_SAMPLES=3, SCLOG_BENCH_WARMUP=1)"
    SCLOG_BENCH_SAMPLES=3 SCLOG_BENCH_WARMUP=1 \
        cargo bench --offline -p sclog-bench --bench pipeline_bench >/dev/null
    echo "== bench smoke: store_bench (SCLOG_BENCH_SAMPLES=3, SCLOG_BENCH_WARMUP=1)"
    store_out=$(SCLOG_BENCH_SAMPLES=3 SCLOG_BENCH_WARMUP=1 \
        cargo bench --offline -p sclog-bench --bench store_bench)
    # Zone-map floor: a one-day one-system window over the 16-day
    # five-system store must prune to at least a 5x speedup over the
    # full scan. Typical ratios are an order of magnitude above the
    # floor, so a trip means pruning stopped working, not host jitter.
    echo "$store_out" | awk '
        /"record":"prune_speedup"/ {
            if (match($0, /"speedup":[0-9.]+/)) {
                v = substr($0, RSTART + 10, RLENGTH - 10) + 0
                seen = 1
                if (v < 5) {
                    printf "bench-smoke FAILED: prune speedup %sx below the 5x floor\n", v
                    exit 1
                }
            }
        }
        END {
            if (!seen) {
                print "bench-smoke FAILED: no prune_speedup record emitted"
                exit 1
            }
        }'
    echo "   store prune-speedup floor OK"
}

obs_smoke() {
    echo "== obs smoke: obs_report --check (instrumented study, report validation)"
    cargo run -q --offline --release -p sclog-bench --bin obs_report -- --check \
        >/dev/null
}

serve_smoke() {
    echo "== serve smoke: sclogd --smoke (endpoints, overload 503, shutdown)"
    cargo run -q --offline --release -p sclogd -- --smoke >/dev/null
}

store_smoke() {
    echo "== store smoke: sclogd --store-smoke (WAL crash recovery, cold boot, queries)"
    cargo run -q --offline --release -p sclogd -- --store-smoke >/dev/null
}

trace_smoke() {
    echo "== trace smoke: sclogd --trace-smoke (slow-query log, scan stats, timeline)"
    cargo run -q --offline --release -p sclogd -- --trace-smoke >/dev/null
}

model_check() {
    echo "== model check: sclog-check under --cfg sclog_model (exhaustive schedule exploration)"
    # Separate target dir: the cfg changes every crate's fingerprint,
    # and sharing target/ would force a full rebuild of the normal
    # configuration on the next plain cargo command.
    RUSTFLAGS="$RUSTFLAGS --cfg sclog_model" CARGO_TARGET_DIR=target/model \
        cargo test -q --offline -p sclog-sync -p sclog-check -- --nocapture
}

if [ "${1-}" = "--bench-smoke" ]; then
    bench_smoke
    echo "verify: OK (bench smoke)"
    exit 0
fi

if [ "${1-}" = "--obs-smoke" ]; then
    obs_smoke
    echo "verify: OK (obs smoke)"
    exit 0
fi

if [ "${1-}" = "--serve-smoke" ]; then
    serve_smoke
    echo "verify: OK (serve smoke)"
    exit 0
fi

if [ "${1-}" = "--store-smoke" ]; then
    store_smoke
    echo "verify: OK (store smoke)"
    exit 0
fi

if [ "${1-}" = "--trace-smoke" ]; then
    trace_smoke
    echo "verify: OK (trace smoke)"
    exit 0
fi

if [ "${1-}" = "--model-check" ]; then
    model_check
    echo "verify: OK (model check)"
    exit 0
fi

if [ "${1-}" = "--lint" ]; then
    lint
    echo "verify: OK (lint)"
    exit 0
fi

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo build --workspace --release --offline (RUSTFLAGS=-Dwarnings)"
cargo build --workspace --release --offline

lint

echo "== cargo test -q --workspace --offline"
cargo test -q --workspace --offline

bench_smoke

obs_smoke

serve_smoke

store_smoke

trace_smoke

model_check

echo "verify: OK"
