#!/usr/bin/env sh
# Tier-1 verification, runnable with no network and no registry cache:
# the workspace is hermetic (path-only dependencies, std-only code), so
# --offline must always succeed. Formatting is checked too, so CI and
# local runs agree on the tree's canonical form.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo build --workspace --release --offline"
cargo build --workspace --release --offline

echo "== cargo test -q --workspace --offline"
cargo test -q --workspace --offline

echo "verify: OK"
