#!/usr/bin/env sh
# Source hygiene for the workspace — pure grep/shell, no extra tools.
#
# Enforced invariants:
#   1. Every crate root (src/lib.rs and crates/*/src/lib.rs) carries
#      both `#![forbid(unsafe_code)]` and `#![warn(missing_docs)]`.
#   2. No `dbg!(`, `todo!()`, or `unimplemented!()` in non-test source
#      (test modules and tests/ trees may use whatever they like).
#   3. No registry dependencies anywhere: every [dependencies]-section
#      entry in every Cargo.toml must be a `sclog-*` workspace path
#      crate, keeping the build hermetic and `--offline`-safe.
#   4. No raw `Instant::now()` in the pipeline/rules hot paths
#      (crates/core/src, crates/rules/src): all timing there goes
#      through sclog-obs spans, which are zero-cost when observability
#      is off. Test modules are exempt, as are sclog-obs itself and
#      the bench harness, which own the clock.
#   5. The lazy DFA's state cache stays bounded: every state-interning
#      site in crates/rules/src/dfa.rs must sit behind the max_states
#      guard, so per-pattern memory cannot grow with input.
#   6. The on-disk segment schema has exactly one version pin:
#      SEGMENT_FORMAT_VERSION is defined once, in
#      crates/types/src/segment.rs, and every other use imports it —
#      a second definition is how two crates silently write
#      incompatible files.
#   7. The model-checked sync protocols stay on the sclog-sync facade:
#      channel.rs, pool.rs, recorder.rs, and server.rs must not name
#      std::sync::{Mutex, Condvar, RwLock} outside their test modules.
#      A direct std lock there is invisible to the model checker — the
#      schedule exploration silently stops covering it. (std atomics
#      are allowed where documented: single-writer hot-path data, not
#      sync protocol.)
#   8. Every `model::mutation(...)` call site sits directly under a
#      `#[cfg(sclog_model)]` gate, so the seeded bugs cannot compile
#      into a release binary. (The function itself is only *defined*
#      under the cfg, so an ungated call would fail the normal build —
#      this check catches it at tidy time, with a better message.)
#   9. The trace/timeline wire schema has exactly one version pin:
#      TRACE_FORMAT_VERSION is defined once, in
#      crates/types/src/trace.rs, and every other use imports it —
#      mirroring check 6 for the sclog.trace.v1 reports.
#
# Runs standalone or as part of scripts/verify.sh --lint.
set -eu

cd "$(dirname "$0")/.."

fail=0
complain() {
    echo "tidy: $*" >&2
    fail=1
}

# -- 1. lint headers on every crate root ------------------------------
for root in src/lib.rs crates/*/src/lib.rs; do
    grep -q '^#!\[forbid(unsafe_code)\]' "$root" ||
        complain "$root: missing #![forbid(unsafe_code)]"
    grep -q '^#!\[warn(missing_docs)\]' "$root" ||
        complain "$root: missing #![warn(missing_docs)]"
done

# -- 2. no debug/stub macros in non-test code -------------------------
# Scan src/ trees only (tests/ and benches/ are exempt), then drop
# lines inside #[cfg(test)] modules by the cheap-but-effective rule
# that in this codebase test modules live at the end of the file after
# a `mod tests` marker.
for srcdir in src crates/*/src; do
    [ -d "$srcdir" ] || continue
    for f in $(find "$srcdir" -name '*.rs'); do
        # Cut the file at the first `mod tests` so in-file unit tests
        # are not scanned.
        awk '/^ *(#\[cfg\(test\)\]|mod tests)/ { exit } { print }' "$f" |
            grep -n -e 'dbg!(' -e 'todo!()' -e 'unimplemented!()' /dev/stdin |
            while IFS=: read -r line text; do
                echo "tidy: $f:$line: banned macro in non-test code: $text" >&2
            done
        if awk '/^ *(#\[cfg\(test\)\]|mod tests)/ { exit } { print }' "$f" |
            grep -q -e 'dbg!(' -e 'todo!()' -e 'unimplemented!()'; then
            fail=1
        fi
    done
done

# -- 3. hermetic dependency policy ------------------------------------
# In every Cargo.toml, each dependency line must reference an sclog-*
# path crate (either `x.workspace = true` or an inline `{ path = … }`).
for manifest in Cargo.toml crates/*/Cargo.toml; do
    deps=$(awk '
        /^\[/ { in_deps = ($0 ~ /^\[(workspace\.)?(dev-|build-)?dependencies\]/) ; next }
        in_deps && NF && $0 !~ /^#/ { print }
    ' "$manifest")
    if [ -n "$deps" ]; then
        bad=$(printf '%s\n' "$deps" | grep -v '^sclog-' || true)
        if [ -n "$bad" ]; then
            complain "$manifest: non-workspace dependency: $(printf '%s' "$bad" | head -1)"
        fi
        nonpath=$(printf '%s\n' "$deps" |
            grep -v -e '\.workspace *= *true' -e 'path *=' || true)
        if [ -n "$nonpath" ]; then
            complain "$manifest: registry dependency (no path): $(printf '%s' "$nonpath" | head -1)"
        fi
    fi
done

# -- 4. no raw clocks in instrumented hot paths -----------------------
# Pipeline and rules code must time itself through sclog-obs spans so
# a disabled recorder costs nothing; a bare Instant::now() there is a
# timing path the run report cannot see. (Same mod-tests cut as #2;
# sclog-obs itself and the bench harness own the clock and are not
# scanned.)
for srcdir in crates/core/src crates/rules/src; do
    for f in $(find "$srcdir" -name '*.rs'); do
        if awk '/^ *(#\[cfg\(test\)\]|mod tests)/ { exit } { print }' "$f" |
            grep -q 'Instant::now()'; then
            complain "$f: raw Instant::now() in pipeline/rules hot path (use sclog-obs spans)"
        fi
    done
done

# -- 5. DFA state cache is provably bounded ---------------------------
# The lazy determinizer interns subset states on demand; the one thing
# standing between that and unbounded memory on adversarial input is
# the max_states check in make_state. Make sure the guard (and the
# clear-on-overflow eviction next to it) are still present, and that
# states are only ever interned through make_state.
dfa=crates/rules/src/dfa.rs
if [ -f "$dfa" ]; then
    grep -q 'self\.states\.len() >= self\.max_states' "$dfa" ||
        complain "$dfa: max_states overflow guard missing from the state-interning path"
    grep -q 'self\.evictions += 1' "$dfa" ||
        complain "$dfa: cache overflow no longer counts an eviction"
    pushes=$(awk '/^ *(#\[cfg\(test\)\]|mod tests)/ { exit } /self\.states\.push/ { n += 1 } END { print n + 0 }' "$dfa")
    if [ "$pushes" -ne 1 ]; then
        complain "$dfa: expected exactly 1 state-interning site (found $pushes); new sites must respect max_states"
    fi
else
    complain "$dfa: missing (the DFA tier is load-bearing for the tag hot path)"
fi

# -- 6. one segment-format version pin --------------------------------
# Every writer and reader of the on-disk store must share the one
# SEGMENT_FORMAT_VERSION constant in crates/types/src/segment.rs. A
# const defined anywhere else can drift from it and corrupt stores
# that mix the two writers.
seg=crates/types/src/segment.rs
if [ -f "$seg" ]; then
    grep -q '^pub const SEGMENT_FORMAT_VERSION' "$seg" ||
        complain "$seg: SEGMENT_FORMAT_VERSION definition missing"
    extra=$(grep -rn 'const SEGMENT_FORMAT_VERSION' src crates --include='*.rs' |
        grep -v '^crates/types/src/segment\.rs:' || true)
    if [ -n "$extra" ]; then
        complain "duplicate SEGMENT_FORMAT_VERSION definition: $(printf '%s' "$extra" | head -1)"
    fi
else
    complain "$seg: missing (the segment schema is load-bearing for the on-disk store)"
fi

# -- 7. sync protocols ride the facade --------------------------------
# The model-checked protocol files must take their locks from
# sclog-sync, never std::sync directly — a std lock is a blind spot
# the checker cannot schedule around. Same mod-tests cut as #2 (tests
# run natively and may use std).
for f in crates/core/src/pipeline/channel.rs crates/rules/src/pool.rs \
    crates/obs/src/recorder.rs crates/sclogd/src/server.rs \
    crates/sclogd/src/sampler.rs crates/sclogd/src/trace.rs; do
    [ -f "$f" ] || { complain "$f: missing (model-checked protocol file)"; continue; }
    hit=$(awk '/^ *(#\[cfg\(test\)\]|mod tests)/ { exit } { print NR ":" $0 }' "$f" |
        grep -E 'std::sync.*\b(Mutex|Condvar|RwLock)\b' || true)
    if [ -n "$hit" ]; then
        complain "$f: direct std::sync lock in a model-checked protocol (use sclog_sync): $(printf '%s' "$hit" | head -1)"
    fi
done

# -- 8. every seeded-mutant call site is cfg-gated ---------------------
# model::mutation() only exists under --cfg sclog_model; each call must
# carry the cfg within the three preceding lines (idiomatically, the
# attribute sits directly on the `if` statement), so no mutation flag
# can survive into a release build.
for f in $(find src crates/*/src -name '*.rs' 2>/dev/null); do
    bad=$(awk '
        {
            buf[NR % 4] = $0
            if ($0 ~ /model::mutation\(/ && $0 !~ /^ *\/\//) {
                ok = 0
                for (i = 0; i < 4; i++) if (buf[i] ~ /cfg\(sclog_model\)/) ok = 1
                if (!ok) { printf "%d:%s\n", NR, $0 }
            }
        }' "$f")
    if [ -n "$bad" ]; then
        complain "$f: model::mutation() call without #[cfg(sclog_model)] nearby: $(printf '%s' "$bad" | head -1)"
    fi
done

# -- 9. one trace-format version pin ----------------------------------
# Every producer of sclog.trace.v1 reports must share the one
# TRACE_FORMAT_VERSION constant in crates/types/src/trace.rs, exactly
# as check 6 pins the segment schema.
tracev=crates/types/src/trace.rs
if [ -f "$tracev" ]; then
    grep -q '^pub const TRACE_FORMAT_VERSION' "$tracev" ||
        complain "$tracev: TRACE_FORMAT_VERSION definition missing"
    extra=$(grep -rn 'const TRACE_FORMAT_VERSION' src crates --include='*.rs' |
        grep -v '^crates/types/src/trace\.rs:' || true)
    if [ -n "$extra" ]; then
        complain "duplicate TRACE_FORMAT_VERSION definition: $(printf '%s' "$extra" | head -1)"
    fi
else
    complain "$tracev: missing (the trace schema is load-bearing for /obs/queries and /obs/timeline)"
fi

if [ "$fail" -ne 0 ]; then
    echo "tidy: FAILED" >&2
    exit 1
fi
echo "tidy: OK"
