//! A miniature version of the paper's whole study: run all five
//! systems through the pipeline and print the log-characteristics and
//! alert-type tables.
//!
//! ```sh
//! cargo run --release --example alert_study
//! ```

use sclog::core::tables::{Table1, Table2, Table3};
use sclog::core::Study;

fn main() {
    println!("What Supercomputers Say — miniature five-system study\n");
    println!("{}", Table1::build().render());

    // 0.2% of the paper's alert and background volumes.
    let study = Study::new(0.002, 0.0002, 7);
    let runs = study.run_all();

    println!("{}", Table2::build(&runs).render());
    println!("{}", Table3::build(&runs).render());

    for run in &runs {
        let truth_failures = run.log.failure_count;
        println!(
            "{:<14} {:>9} msgs  {:>8} alerts  {:>6} filtered  {:>5} true failures",
            run.system.spec().name,
            run.messages(),
            run.raw_alerts(),
            run.filtered_alerts(),
            truth_failures,
        );
    }
    println!(
        "\nNote how filtering collapses Spirit's disk storms by orders of\n\
         magnitude while Liberty's small alert set barely shrinks — 'more\n\
         alerts does not imply a less reliable system'."
    );
}
