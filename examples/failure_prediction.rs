//! Mine precursor rules from a Liberty run and evaluate an ensemble of
//! per-category predictors, as Section 4 of the paper recommends.
//!
//! ```sh
//! cargo run --release --example failure_prediction
//! ```

use sclog::core::Study;
use sclog::predict::{
    evaluate, failure_onsets, mine_precursors, Ensemble, PrecursorPredictor, Predictor,
    RateThresholdPredictor,
};
use sclog::types::{Duration, SystemId};

fn main() {
    let run = Study::new(1.0, 0.00005, 9).run_system(SystemId::Liberty);
    let alerts = &run.tagged.alerts;
    println!("Liberty run: {} alerts\n", alerts.len());

    println!("mined precursor rules (30-minute window):");
    for r in mine_precursors(alerts, Duration::from_mins(30), 3, 3.0)
        .iter()
        .take(5)
    {
        println!(
            "  {:<9} -> {:<9} confidence {:.2}  lift {:>8.1}  support {}",
            run.registry.name(r.precursor),
            run.registry.name(r.target),
            r.confidence,
            r.lift,
            r.support
        );
    }

    let target = run
        .registry
        .lookup(SystemId::Liberty, "GM_LANAI")
        .expect("category");
    let precursor = run
        .registry
        .lookup(SystemId::Liberty, "GM_PAR")
        .expect("category");
    let failures = failure_onsets(alerts, target);
    let horizon = Duration::from_hours(4);
    println!(
        "\npredicting GM_LANAI failures ({} of them), horizon 4 h:",
        failures.len()
    );

    let predictors: Vec<Box<dyn Predictor>> = vec![
        Box::new(RateThresholdPredictor::new(
            None,
            Duration::from_mins(30),
            5,
        )),
        Box::new(PrecursorPredictor::new(precursor)),
        Box::new(
            Ensemble::new()
                .with(RateThresholdPredictor::new(
                    None,
                    Duration::from_mins(30),
                    5,
                ))
                .with(PrecursorPredictor::new(precursor)),
        ),
    ];
    for p in &predictors {
        let s = evaluate(&p.warnings(alerts), &failures, horizon);
        println!("  {:<26} {s}", p.name());
    }
}
