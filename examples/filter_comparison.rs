//! Compare the paper's simultaneous filter against the serial
//! prior-work baseline and Tsao-style tupling, using the simulator's
//! ground truth to score each.
//!
//! ```sh
//! cargo run --release --example filter_comparison
//! ```

use sclog::core::Study;
use sclog::filter::{
    compare, score, AdaptiveFilter, AlertFilter, SerialFilter, SpatioTemporalFilter, TupleFilter,
};
use sclog::types::{Duration, SystemId};

fn main() {
    let run = Study::new(0.02, 0.0002, 5).run_system(SystemId::Spirit);
    let raw = &run.tagged.alerts;
    println!(
        "Spirit run: {} raw alerts from {} true failures\n",
        raw.len(),
        run.log.failure_count
    );

    let filters: Vec<Box<dyn AlertFilter>> = vec![
        Box::new(SpatioTemporalFilter::paper()),
        Box::new(SerialFilter::paper()),
        Box::new(TupleFilter::paper()),
        Box::new(AdaptiveFilter::learn(
            raw,
            0.8,
            Duration::from_secs(5),
            Duration::from_secs(1),
            Duration::from_secs(600),
        )),
    ];
    println!(
        "{:<14} {:>8} {:>12} {:>10} {:>6} {:>9}",
        "filter", "kept", "compression", "coverage", "lost", "residual"
    );
    for f in &filters {
        let kept = f.filter(raw);
        let s = score(raw, &kept);
        println!(
            "{:<14} {:>8} {:>11.1}x {:>10.4} {:>6} {:>9}",
            f.name(),
            s.kept,
            s.compression(),
            s.coverage(),
            s.lost,
            s.residual_redundancy
        );
    }

    let simul = SpatioTemporalFilter::paper().filter(raw);
    let serial = SerialFilter::paper().filter(raw);
    let diff = compare(&serial, &simul);
    println!(
        "\nserial keeps {} alerts the simultaneous filter removes (shared-cause\n\
         redundancy the serial pipeline misses), at a cost of {} extra kept by\n\
         simultaneous only.",
        diff.only_first.len(),
        diff.only_second.len()
    );
}
