//! Quickstart: generate a Liberty-style log, parse it back from text,
//! tag alerts with the expert ruleset, and filter them with the
//! paper's Algorithm 3.1.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sclog::filter::{AlertFilter, SpatioTemporalFilter};
use sclog::parse::LogReader;
use sclog::rules::RuleSet;
use sclog::simgen::{generate, Scale};
use sclog::types::{CategoryRegistry, SystemId};

fn main() {
    // 1. Generate two weeks' worth of Liberty-shaped logging (alerts at
    //    10% of the paper's volume, background at 0.01%).
    let log = generate(SystemId::Liberty, Scale::new(0.1, 0.0001), 42);
    let text = log.render();
    println!("generated {} log lines, e.g.:", text.lines().count());
    for line in text.lines().take(3) {
        println!("  {line}");
    }

    // 2. Parse the raw text back (this is where real logs would enter).
    let mut reader = LogReader::for_system(SystemId::Liberty);
    reader.push_text(&text);
    println!(
        "\nparsed {} messages ({} rejected as corrupted)",
        reader.stats().parsed,
        reader.stats().rejected()
    );
    let (messages, ctx, _) = reader.into_parts();

    // 3. Tag alerts with the administrators' expert rules.
    let mut registry = CategoryRegistry::new();
    let rules = RuleSet::builtin(SystemId::Liberty, &mut registry);
    let tagged = rules.tag_messages(&messages, &ctx.interner);
    println!("tagged {} alerts", tagged.len());

    // 4. Filter redundant alerts (Algorithm 3.1, T = 5 s).
    let kept = SpatioTemporalFilter::paper().filter(&tagged.alerts);
    println!("filtered to {} alerts:", kept.len());
    let mut counts: Vec<(String, usize)> = Vec::new();
    for a in &kept {
        let name = registry.name(a.category).to_owned();
        match counts.iter_mut().find(|(n, _)| *n == name) {
            Some((_, c)) => *c += 1,
            None => counts.push((name, 1)),
        }
    }
    counts.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    for (name, count) in counts {
        println!("  {name:<10} {count}");
    }
}
