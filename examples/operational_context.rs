//! The paper's operational-context proposal in action: log state
//! transitions, compute RAS metrics, and disambiguate the infamous
//! `ciodb exited normally` message.
//!
//! ```sh
//! cargo run --example operational_context
//! ```

use sclog::opctx::{ContextLog, OpState, RasMetrics, Transition};
use sclog::types::{Duration, SystemId};

fn main() {
    let spec = SystemId::BlueGeneL.spec();
    let start = spec.start();
    let mut ctx = ContextLog::new(start, OpState::ProductionUptime);
    let h = Duration::from_hours(1);

    ctx.transition(
        start + h * 200,
        OpState::ScheduledDowntime,
        "ciodb maintenance",
    )
    .unwrap();
    ctx.transition(
        start + h * 206,
        OpState::ProductionUptime,
        "maintenance complete",
    )
    .unwrap();
    ctx.transition(
        start + h * 900,
        OpState::UnscheduledDowntime,
        "midplane failure",
    )
    .unwrap();
    ctx.transition(
        start + h * 912,
        OpState::ProductionUptime,
        "midplane swapped",
    )
    .unwrap();

    println!("operational-context log (what the paper asks operators to record):");
    print!("{}", ctx.to_log_bodies());

    // The transition lines round-trip through plain log text.
    let rebuilt =
        ContextLog::from_log_bodies(start, OpState::ProductionUptime, &ctx.to_log_bodies())
            .expect("parses");
    assert_eq!(rebuilt, ctx);

    let msg = "BGLMASTER FAILURE ciodb exited normally with exit code 0";
    println!("\ndisambiguating: {msg:?}");
    for (when, t) in [
        ("during maintenance", start + h * 203),
        ("during production ", start + h * 500),
    ] {
        println!("  {when}: {:?}", ctx.classify(t));
    }

    let end = start + spec.span();
    let m = RasMetrics::compute(&ctx, end);
    println!("\nRAS metrics over the whole window:");
    println!("  availability            {:.5}", m.availability());
    println!(
        "  scheduled availability  {:.5}",
        m.scheduled_availability()
    );
    println!(
        "  work lost to failures   {:.0} proc-hours",
        m.work_lost_node_hours(spec.processors)
    );
    let sample = Transition::from_log_body(
        "OPCTX 1117843200 production-uptime -> engineering-time : dedicated system test",
    )
    .expect("parses");
    println!("\nparsed external transition line: {sample:?}");
}
