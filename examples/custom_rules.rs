//! Maintain expert rules as a plain text file, the way the paper's
//! administrators kept theirs for logsurfer.
//!
//! ```sh
//! cargo run --example custom_rules
//! ```

use sclog::rules::{export_builtin, parse_ruleset, RuleSet};
use sclog::simgen::{generate, Scale};
use sclog::types::{CategoryRegistry, SystemId};

fn main() {
    // Export the built-in Liberty ruleset to the text format...
    let mut text = export_builtin(SystemId::Liberty);
    println!("built-in Liberty ruleset:\n{text}");

    // ...and extend it with a site-specific rule: this site considers
    // any NTP desynchronization on an admin node alert-worthy.
    text.push_str("NTP_DESYNC S ($4 ~ /^ladmin/ && /synchronized to/)\n");

    let defs = parse_ruleset(&text).expect("ruleset parses");
    let mut registry = CategoryRegistry::new();
    let rules = RuleSet::from_defs(SystemId::Liberty, &defs, &mut registry);
    println!(
        "loaded {} rules ({} built-in + 1 custom)\n",
        rules.len(),
        defs.len() - 1
    );

    // Tag a generated log with the extended ruleset.
    let log = generate(SystemId::Liberty, Scale::new(0.1, 0.0002), 17);
    let tagged = rules.tag_messages(&log.messages, &log.interner);
    let mut counts: Vec<(&str, u64)> = tagged
        .counts_by_category()
        .into_iter()
        .map(|(cat, n)| (registry.name(cat), n))
        .collect();
    counts.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!("alerts by category (note the custom NTP_DESYNC tag):");
    for (name, n) in counts {
        println!("  {name:<12} {n}");
    }
}
