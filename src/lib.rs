//! `sclog` — umbrella crate for the reproduction of *What Supercomputers
//! Say: A Study of Five System Logs* (Oliner & Stearley, DSN 2007).
//!
//! This crate re-exports the workspace members under stable module names
//! so that downstream users (and the `examples/` binaries) only need one
//! dependency:
//!
//! ```
//! use sclog::types::SystemId;
//!
//! assert_eq!(SystemId::RedStorm.spec().top500_rank, 9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sclog_core as core;
pub use sclog_desim as desim;
pub use sclog_filter as filter;
pub use sclog_obs as obs;
pub use sclog_opctx as opctx;
pub use sclog_parse as parse;
pub use sclog_predict as predict;
pub use sclog_rules as rules;
pub use sclog_simgen as simgen;
pub use sclog_stats as stats;
pub use sclog_types as types;
