//! Hazard-rate estimation and reliability-oriented summaries.
//!
//! The paper cautions against computing MTTF-style metrics from log
//! contents, but *conditional* failure behavior — "given the last
//! failure was `t` ago, how likely is one now?" — is exactly what
//! interarrival samples can support, and what distinguishes the
//! memoryless ECC stream (flat hazard) from clustered software
//! failures (decreasing hazard: the longer the quiet, the safer).

use crate::ecdf::Ecdf;

/// Empirical hazard curve over interarrival gaps.
#[derive(Debug, Clone)]
pub struct HazardCurve {
    /// Bin edges (seconds), length `rates.len() + 1`.
    pub edges: Vec<f64>,
    /// Estimated hazard rate in each bin (events/second).
    pub rates: Vec<f64>,
}

impl HazardCurve {
    /// Estimates the hazard over `bins` equal-probability bins (each
    /// bin holds the same share of the sample, so estimates have
    /// comparable variance).
    ///
    /// The per-bin estimate is the exponential-corrected life-table
    /// form `h = −ln(1 − d/n_at_risk) / Δt` (with `d` the gaps ending
    /// in the bin), which is exact for memoryless data at any bin
    /// width — so an exponential sample really does produce a flat
    /// curve, even in the wide tail bins.
    ///
    /// # Panics
    ///
    /// Panics if `gaps` has fewer than `2 × bins` observations or
    /// `bins == 0`.
    pub fn estimate(gaps: &[f64], bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(
            gaps.len() >= 2 * bins,
            "need at least {} observations for {} bins",
            2 * bins,
            bins
        );
        let ecdf = Ecdf::new(gaps.to_vec());
        let n = ecdf.len() as f64;
        let mut edges = Vec::with_capacity(bins + 1);
        for i in 0..=bins {
            edges.push(ecdf.quantile(i as f64 / bins as f64));
        }
        // Deduplicate identical edges (heavy ties at syslog's 1 s
        // granularity) by nudging.
        for i in 1..edges.len() {
            if edges[i] <= edges[i - 1] {
                edges[i] = edges[i - 1] * (1.0 + 1e-9) + 1e-12;
            }
        }
        let values = ecdf.values();
        let mut rates = Vec::with_capacity(bins);
        for i in 0..bins {
            let (lo, hi) = (edges[i], edges[i + 1]);
            let deaths = values.iter().filter(|&&x| x > lo && x <= hi).count() as f64;
            let at_risk = n - values.iter().filter(|&&x| x <= lo).count() as f64;
            let width = hi - lo;
            rates.push(if at_risk > 0.0 && width > 0.0 {
                // Clamp to keep the estimator finite when every
                // at-risk gap dies in the bin (the final bin).
                let frac = (deaths / at_risk).min(1.0 - 0.5 / at_risk.max(1.0));
                -(1.0 - frac).ln() / width
            } else {
                0.0
            });
        }
        HazardCurve { edges, rates }
    }

    /// A flatness score: the ratio of the maximum to the minimum
    /// positive hazard. An exponential sample gives a value near 1
    /// (sampling noise aside); clustered samples give large values.
    pub fn flatness_ratio(&self) -> f64 {
        let positives: Vec<f64> = self.rates.iter().copied().filter(|&r| r > 0.0).collect();
        if positives.is_empty() {
            return 1.0;
        }
        let max = positives.iter().copied().fold(f64::MIN, f64::max);
        let min = positives.iter().copied().fold(f64::MAX, f64::min);
        max / min
    }

    /// True if the hazard is monotonically non-increasing (clustered /
    /// "infant mortality" failure behavior).
    pub fn is_decreasing(&self) -> bool {
        self.rates.windows(2).all(|w| w[1] <= w[0] * 1.2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sclog_desim::RngStream;

    #[test]
    fn exponential_hazard_is_flat() {
        let mut rng = RngStream::from_seed(1);
        let gaps: Vec<f64> = (0..20_000).map(|_| rng.exponential(0.01)).collect();
        let h = HazardCurve::estimate(&gaps, 8);
        // Every bin's hazard is near the true rate 0.01.
        for (i, &r) in h.rates.iter().enumerate() {
            assert!(
                (r - 0.01).abs() < 0.004,
                "bin {i}: hazard {r} far from 0.01"
            );
        }
        assert!(h.flatness_ratio() < 2.0, "ratio {}", h.flatness_ratio());
    }

    #[test]
    fn lognormal_hazard_is_not_flat() {
        let mut rng = RngStream::from_seed(2);
        let gaps: Vec<f64> = (0..20_000).map(|_| rng.lognormal(4.0, 1.5)).collect();
        let h = HazardCurve::estimate(&gaps, 8);
        assert!(h.flatness_ratio() > 3.0, "ratio {}", h.flatness_ratio());
    }

    #[test]
    fn pareto_hazard_is_decreasing() {
        let mut rng = RngStream::from_seed(3);
        let gaps: Vec<f64> = (0..20_000).map(|_| rng.pareto(1.0, 1.5)).collect();
        let h = HazardCurve::estimate(&gaps, 6);
        assert!(h.is_decreasing(), "{:?}", h.rates);
    }

    #[test]
    fn edges_are_monotone_even_with_ties() {
        let gaps = vec![1.0; 50];
        let h = HazardCurve::estimate(&gaps, 4);
        assert!(h.edges.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    #[should_panic(expected = "observations")]
    fn too_few_observations_panics() {
        let _ = HazardCurve::estimate(&[1.0, 2.0], 4);
    }
}
