//! Goodness-of-fit tests.
//!
//! The paper reports that "in even the best visual fit cases, heavy
//! tails result in very poor statistical goodness-of-fit metrics"
//! (Section 4). These tests let the reproduction quantify exactly that:
//! one-sample Kolmogorov–Smirnov against a fitted CDF, and a χ² test on
//! binned counts.

use crate::special::chi2_cdf;

/// Result of a Kolmogorov–Smirnov test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// The KS statistic `D = sup |F_n(x) − F(x)|`.
    pub statistic: f64,
    /// Asymptotic p-value (Kolmogorov distribution).
    pub p_value: f64,
    /// Sample size.
    pub n: usize,
}

/// One-sample KS test of `sample` against a theoretical CDF.
///
/// Uses the standard D statistic over the sorted sample and the
/// asymptotic Kolmogorov p-value with the `sqrt(n)+0.12+0.11/sqrt(n)`
/// effective-size correction.
///
/// Note: strictly, fitting parameters on the same sample biases the KS
/// p-value upward (a Lilliefors correction would be needed for exact
/// levels); the paper's conclusions rest on *gross* differences in fit
/// quality, which this test resolves easily.
///
/// # Examples
///
/// ```
/// use sclog_stats::ks_test;
///
/// // A uniform sample against the uniform CDF: a good fit.
/// let xs: Vec<f64> = (1..=1000).map(|i| i as f64 / 1000.0).collect();
/// let r = ks_test(&xs, |x| x.clamp(0.0, 1.0));
/// assert!(r.p_value > 0.9);
/// ```
///
/// # Panics
///
/// Panics if the sample is empty.
pub fn ks_test(sample: &[f64], cdf: impl Fn(f64) -> f64) -> KsResult {
    assert!(!sample.is_empty(), "KS test of empty sample");
    let mut xs = sample.to_vec();
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    let nf = n as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        let f = cdf(x).clamp(0.0, 1.0);
        let lo = i as f64 / nf;
        let hi = (i + 1) as f64 / nf;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    KsResult {
        statistic: d,
        p_value: ks_p_value(d, n),
        n,
    }
}

/// Two-sample KS test.
///
/// # Panics
///
/// Panics if either sample is empty.
pub fn ks_test_two_sample(a: &[f64], b: &[f64]) -> KsResult {
    assert!(!a.is_empty() && !b.is_empty(), "KS test of empty sample");
    let ea = crate::ecdf::Ecdf::new(a.to_vec());
    let eb = crate::ecdf::Ecdf::new(b.to_vec());
    let mut d: f64 = 0.0;
    for &x in ea.values().iter().chain(eb.values()) {
        d = d.max((ea.eval(x) - eb.eval(x)).abs());
    }
    let na = a.len() as f64;
    let nb = b.len() as f64;
    let ne = na * nb / (na + nb);
    KsResult {
        statistic: d,
        p_value: kolmogorov_sf((ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d),
        n: a.len() + b.len(),
    }
}

fn ks_p_value(d: f64, n: usize) -> f64 {
    let sn = (n as f64).sqrt();
    kolmogorov_sf((sn + 0.12 + 0.11 / sn) * d)
}

/// Kolmogorov distribution survival function
/// `Q(λ) = 2 Σ (−1)^{j−1} exp(−2 j² λ²)`.
fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda < 1e-8 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64).powi(2) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Result of a χ² goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chi2Result {
    /// The χ² statistic.
    pub statistic: f64,
    /// Degrees of freedom used.
    pub dof: usize,
    /// p-value from the χ² distribution.
    pub p_value: f64,
}

/// χ² test of observed counts against expected counts.
///
/// Bins with expected count below 5 are merged into their neighbor, per
/// standard practice. `fitted_params` reduces the degrees of freedom.
///
/// # Panics
///
/// Panics if the slices have different lengths, fewer than 2 usable
/// bins remain, or any expected count is negative.
pub fn chi_square_gof(observed: &[u64], expected: &[f64], fitted_params: usize) -> Chi2Result {
    assert_eq!(observed.len(), expected.len(), "length mismatch");
    assert!(
        expected.iter().all(|&e| e >= 0.0),
        "negative expected count"
    );
    // Merge small-expectation bins left to right.
    let mut obs_m: Vec<f64> = Vec::new();
    let mut exp_m: Vec<f64> = Vec::new();
    let (mut o_acc, mut e_acc) = (0.0, 0.0);
    for (&o, &e) in observed.iter().zip(expected) {
        o_acc += o as f64;
        e_acc += e;
        if e_acc >= 5.0 {
            obs_m.push(o_acc);
            exp_m.push(e_acc);
            o_acc = 0.0;
            e_acc = 0.0;
        }
    }
    if e_acc > 0.0 || o_acc > 0.0 {
        if let (Some(lo), Some(le)) = (obs_m.last_mut(), exp_m.last_mut()) {
            *lo += o_acc;
            *le += e_acc;
        } else {
            obs_m.push(o_acc);
            exp_m.push(e_acc);
        }
    }
    assert!(obs_m.len() >= 2, "need at least two bins after merging");
    let statistic: f64 = obs_m
        .iter()
        .zip(&exp_m)
        .map(|(&o, &e)| (o - e).powi(2) / e.max(1e-12))
        .sum();
    let dof = obs_m.len().saturating_sub(1 + fitted_params).max(1);
    Chi2Result {
        statistic,
        dof,
        p_value: 1.0 - chi2_cdf(statistic, dof as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sclog_desim::RngStream;

    #[test]
    fn ks_accepts_true_model() {
        let mut rng = RngStream::from_seed(10);
        let xs: Vec<f64> = (0..2000).map(|_| rng.exponential(2.0)).collect();
        let r = ks_test(&xs, |x| 1.0 - (-2.0 * x).exp());
        assert!(r.p_value > 0.05, "p {}", r.p_value);
        assert!(r.statistic < 0.05);
        assert_eq!(r.n, 2000);
    }

    #[test]
    fn ks_rejects_wrong_model() {
        let mut rng = RngStream::from_seed(11);
        let xs: Vec<f64> = (0..2000).map(|_| rng.lognormal(0.0, 2.0)).collect();
        // Exponential CDF with the matching mean — still a bad model.
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let r = ks_test(&xs, |x| 1.0 - (-x / mean).exp());
        assert!(r.p_value < 1e-6, "p {}", r.p_value);
    }

    #[test]
    fn ks_two_sample_same_vs_different() {
        let mut rng = RngStream::from_seed(12);
        let a: Vec<f64> = (0..1500).map(|_| rng.exponential(1.0)).collect();
        let b: Vec<f64> = (0..1500).map(|_| rng.exponential(1.0)).collect();
        let c: Vec<f64> = (0..1500).map(|_| rng.exponential(4.0)).collect();
        assert!(ks_test_two_sample(&a, &b).p_value > 0.01);
        assert!(ks_test_two_sample(&a, &c).p_value < 1e-6);
    }

    #[test]
    fn kolmogorov_sf_limits() {
        assert!((kolmogorov_sf(1e-12) - 1.0).abs() < 1e-9);
        assert!(kolmogorov_sf(3.0) < 1e-6);
        // Known value: Q(1.0) ≈ 0.27.
        assert!((kolmogorov_sf(1.0) - 0.27).abs() < 0.01);
    }

    #[test]
    fn chi2_accepts_fair_die() {
        let observed = [98u64, 105, 102, 96, 103, 96];
        let expected = [100.0; 6];
        let r = chi_square_gof(&observed, &expected, 0);
        assert_eq!(r.dof, 5);
        assert!(r.p_value > 0.5, "p {}", r.p_value);
    }

    #[test]
    fn chi2_rejects_loaded_die() {
        let observed = [200u64, 80, 80, 80, 80, 80];
        let expected = [100.0; 6];
        let r = chi_square_gof(&observed, &expected, 0);
        assert!(r.p_value < 1e-6, "p {}", r.p_value);
    }

    #[test]
    fn chi2_merges_sparse_bins() {
        let observed = [50u64, 1, 0, 1, 48];
        let expected = [50.0, 1.0, 0.5, 1.0, 47.5];
        // Bins 2..4 have tiny expectations; merging must not panic.
        let r = chi_square_gof(&observed, &expected, 0);
        assert!(r.p_value > 0.1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn chi2_length_mismatch_panics() {
        let _ = chi_square_gof(&[1, 2], &[1.0], 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn ks_empty_panics() {
        let _ = ks_test(&[], |x| x);
    }
}
