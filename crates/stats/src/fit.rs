//! Maximum-likelihood fitting of interarrival-time models.
//!
//! Section 4 of the paper fits failure interarrival models: ECC alerts
//! look exponential and "roughly log normal with a heavy left tail",
//! while most other categories fit nothing well. This module provides
//! the four families the paper's discussion touches (exponential,
//! log-normal, Weibull, Pareto), MLE fitting, and AIC-based model
//! selection, so the benches can reproduce both the good fits
//! (Figure 5) and the bad ones.

use crate::special::{ln_gamma, std_normal_cdf};
use std::fmt;

/// A continuous positive-support distribution that can be fitted to a
/// sample and evaluated.
pub trait Distribution: fmt::Debug {
    /// Human-readable family name (`"exponential"`, …).
    fn name(&self) -> &'static str;

    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative distribution at `x`.
    fn cdf(&self, x: f64) -> f64;

    /// Number of fitted parameters (for AIC).
    fn param_count(&self) -> usize;

    /// Log-likelihood of a sample under this distribution.
    fn log_likelihood(&self, xs: &[f64]) -> f64 {
        xs.iter().map(|&x| self.pdf(x).max(1e-300).ln()).sum()
    }

    /// Akaike information criterion for a sample.
    fn aic(&self, xs: &[f64]) -> f64 {
        2.0 * self.param_count() as f64 - 2.0 * self.log_likelihood(xs)
    }

    /// Distribution mean, if finite.
    fn mean(&self) -> Option<f64>;
}

fn assert_positive_sample(xs: &[f64]) {
    assert!(!xs.is_empty(), "cannot fit an empty sample");
    assert!(
        xs.iter().all(|&x| x > 0.0 && x.is_finite()),
        "sample must be positive and finite"
    );
}

/// Exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    /// Rate parameter (events per unit time).
    pub lambda: f64,
}

impl Exponential {
    /// MLE fit: `lambda = 1 / mean`.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or contains non-positive values.
    pub fn fit(xs: &[f64]) -> Self {
        assert_positive_sample(xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        Exponential { lambda: 1.0 / mean }
    }
}

impl Distribution for Exponential {
    fn name(&self) -> &'static str {
        "exponential"
    }
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.lambda * (-self.lambda * x).exp()
        }
    }
    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            1.0 - (-self.lambda * x).exp()
        }
    }
    fn param_count(&self) -> usize {
        1
    }
    fn mean(&self) -> Option<f64> {
        Some(1.0 / self.lambda)
    }
}

/// Log-normal distribution: `ln X ~ N(mu, sigma²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    /// Location of the underlying normal.
    pub mu: f64,
    /// Scale of the underlying normal.
    pub sigma: f64,
}

impl LogNormal {
    /// MLE fit: sample mean/std of `ln x`.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or contains non-positive values.
    pub fn fit(xs: &[f64]) -> Self {
        assert_positive_sample(xs);
        let logs: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
        let mu = logs.iter().sum::<f64>() / logs.len() as f64;
        let var = logs.iter().map(|l| (l - mu).powi(2)).sum::<f64>() / logs.len() as f64;
        LogNormal {
            mu,
            sigma: var.sqrt().max(1e-12),
        }
    }
}

impl Distribution for LogNormal {
    fn name(&self) -> &'static str {
        "lognormal"
    }
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (x * self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            std_normal_cdf((x.ln() - self.mu) / self.sigma)
        }
    }
    fn param_count(&self) -> usize {
        2
    }
    fn mean(&self) -> Option<f64> {
        Some((self.mu + self.sigma * self.sigma / 2.0).exp())
    }
}

/// Weibull distribution with shape `k` and scale `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    /// Shape parameter.
    pub k: f64,
    /// Scale parameter.
    pub lambda: f64,
}

impl Weibull {
    /// MLE fit via Newton iteration on the shape's profile likelihood.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or contains non-positive values.
    pub fn fit(xs: &[f64]) -> Self {
        assert_positive_sample(xs);
        let n = xs.len() as f64;
        let mean_ln = xs.iter().map(|x| x.ln()).sum::<f64>() / n;
        // Solve g(k) = sum(x^k ln x)/sum(x^k) - 1/k - mean_ln = 0.
        let mut k = 1.0;
        for _ in 0..100 {
            let (mut s0, mut s1, mut s2) = (0.0, 0.0, 0.0);
            for &x in xs {
                let xk = x.powf(k);
                let lx = x.ln();
                s0 += xk;
                s1 += xk * lx;
                s2 += xk * lx * lx;
            }
            let g = s1 / s0 - 1.0 / k - mean_ln;
            let gp = (s2 * s0 - s1 * s1) / (s0 * s0) + 1.0 / (k * k);
            let step = g / gp;
            k -= step;
            if k.is_nan() || k < 1e-6 {
                k = 1e-6;
            }
            if step.abs() < 1e-10 {
                break;
            }
        }
        let lambda = (xs.iter().map(|x| x.powf(k)).sum::<f64>() / n).powf(1.0 / k);
        Weibull { k, lambda }
    }
}

impl Distribution for Weibull {
    fn name(&self) -> &'static str {
        "weibull"
    }
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        let r = x / self.lambda;
        (self.k / self.lambda) * r.powf(self.k - 1.0) * (-r.powf(self.k)).exp()
    }
    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            1.0 - (-(x / self.lambda).powf(self.k)).exp()
        }
    }
    fn param_count(&self) -> usize {
        2
    }
    fn mean(&self) -> Option<f64> {
        Some(self.lambda * (ln_gamma(1.0 + 1.0 / self.k)).exp())
    }
}

/// Pareto (type I) distribution with minimum `xm` and shape `alpha`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    /// Scale: the distribution's minimum.
    pub xm: f64,
    /// Tail index.
    pub alpha: f64,
}

impl Pareto {
    /// MLE fit: `xm = min(x)`, `alpha = n / sum ln(x/xm)`.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or contains non-positive values.
    pub fn fit(xs: &[f64]) -> Self {
        assert_positive_sample(xs);
        let xm = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let denom: f64 = xs.iter().map(|x| (x / xm).ln()).sum();
        let alpha = if denom <= 0.0 {
            f64::INFINITY
        } else {
            xs.len() as f64 / denom
        };
        Pareto { xm, alpha }
    }
}

impl Distribution for Pareto {
    fn name(&self) -> &'static str {
        "pareto"
    }
    fn pdf(&self, x: f64) -> f64 {
        if x < self.xm {
            0.0
        } else {
            self.alpha * self.xm.powf(self.alpha) / x.powf(self.alpha + 1.0)
        }
    }
    fn cdf(&self, x: f64) -> f64 {
        if x < self.xm {
            0.0
        } else {
            1.0 - (self.xm / x).powf(self.alpha)
        }
    }
    fn param_count(&self) -> usize {
        2
    }
    fn mean(&self) -> Option<f64> {
        (self.alpha > 1.0).then(|| self.alpha * self.xm / (self.alpha - 1.0))
    }
}

/// One candidate model's scorecard within a [`FitReport`].
#[derive(Debug, Clone)]
pub struct FittedModel {
    /// Family name.
    pub name: &'static str,
    /// Fitted parameters rendered for display, e.g. `λ=0.004`.
    pub params: String,
    /// Log-likelihood on the sample.
    pub log_likelihood: f64,
    /// Akaike information criterion (lower is better).
    pub aic: f64,
    /// Kolmogorov–Smirnov statistic against the sample.
    pub ks_stat: f64,
    /// Asymptotic KS p-value.
    pub ks_p: f64,
}

/// Result of fitting all candidate families to a sample.
#[derive(Debug, Clone)]
pub struct FitReport {
    /// Candidate models sorted by ascending AIC (best first).
    pub models: Vec<FittedModel>,
    /// Sample size.
    pub n: usize,
}

impl FitReport {
    /// Fits exponential, log-normal, Weibull, and Pareto models to a
    /// positive sample and ranks them by AIC.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or contains non-positive values.
    pub fn fit_all(xs: &[f64]) -> Self {
        assert_positive_sample(xs);
        let exp = Exponential::fit(xs);
        let lnorm = LogNormal::fit(xs);
        let weib = Weibull::fit(xs);
        let pareto = Pareto::fit(xs);
        let dists: [(&dyn Distribution, String); 4] = [
            (&exp, format!("λ={:.6}", exp.lambda)),
            (&lnorm, format!("μ={:.4} σ={:.4}", lnorm.mu, lnorm.sigma)),
            (&weib, format!("k={:.4} λ={:.4}", weib.k, weib.lambda)),
            (
                &pareto,
                format!("xm={:.4} α={:.4}", pareto.xm, pareto.alpha),
            ),
        ];
        let mut models: Vec<FittedModel> = dists
            .iter()
            .map(|(d, params)| {
                let ks = crate::gof::ks_test(xs, |x| d.cdf(x));
                FittedModel {
                    name: d.name(),
                    params: params.clone(),
                    log_likelihood: d.log_likelihood(xs),
                    aic: d.aic(xs),
                    ks_stat: ks.statistic,
                    ks_p: ks.p_value,
                }
            })
            .collect();
        models.sort_by(|a, b| a.aic.total_cmp(&b.aic));
        FitReport {
            models,
            n: xs.len(),
        }
    }

    /// The best model by AIC.
    pub fn best(&self) -> &FittedModel {
        &self.models[0]
    }

    /// Whether even the best model is a statistically poor fit at the
    /// given significance level — the paper's "very poor statistical
    /// goodness-of-fit" observation.
    pub fn all_fits_poor(&self, alpha: f64) -> bool {
        self.models.iter().all(|m| m.ks_p < alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sclog_desim::RngStream;

    #[test]
    fn exponential_fit_recovers_rate() {
        let mut rng = RngStream::from_seed(1);
        let xs: Vec<f64> = (0..20_000).map(|_| rng.exponential(0.25)).collect();
        let fit = Exponential::fit(&xs);
        assert!((fit.lambda - 0.25).abs() < 0.01, "lambda {}", fit.lambda);
        assert!((fit.mean().unwrap() - 4.0).abs() < 0.2);
    }

    #[test]
    fn lognormal_fit_recovers_params() {
        let mut rng = RngStream::from_seed(2);
        let xs: Vec<f64> = (0..20_000).map(|_| rng.lognormal(2.0, 0.7)).collect();
        let fit = LogNormal::fit(&xs);
        assert!((fit.mu - 2.0).abs() < 0.03, "mu {}", fit.mu);
        assert!((fit.sigma - 0.7).abs() < 0.03, "sigma {}", fit.sigma);
    }

    #[test]
    fn weibull_fit_recovers_params() {
        let mut rng = RngStream::from_seed(3);
        let xs: Vec<f64> = (0..20_000).map(|_| rng.weibull(1.7, 3.0)).collect();
        let fit = Weibull::fit(&xs);
        assert!((fit.k - 1.7).abs() < 0.1, "k {}", fit.k);
        assert!((fit.lambda - 3.0).abs() < 0.1, "lambda {}", fit.lambda);
    }

    #[test]
    fn pareto_fit_recovers_params() {
        let mut rng = RngStream::from_seed(4);
        let xs: Vec<f64> = (0..20_000).map(|_| rng.pareto(2.0, 2.5)).collect();
        let fit = Pareto::fit(&xs);
        assert!((fit.xm - 2.0).abs() < 0.01, "xm {}", fit.xm);
        assert!((fit.alpha - 2.5).abs() < 0.1, "alpha {}", fit.alpha);
    }

    #[test]
    fn cdf_pdf_consistency() {
        // Numerically integrate the pdf and compare with the cdf.
        let dists: Vec<Box<dyn Distribution>> = vec![
            Box::new(Exponential { lambda: 0.5 }),
            Box::new(LogNormal {
                mu: 0.0,
                sigma: 1.0,
            }),
            Box::new(Weibull {
                k: 2.0,
                lambda: 1.5,
            }),
            Box::new(Pareto {
                xm: 1.0,
                alpha: 3.0,
            }),
        ];
        for d in &dists {
            let mut acc = 0.0;
            let dx = 0.001;
            let mut x = 0.0;
            while x < 10.0 {
                acc += d.pdf(x + dx / 2.0) * dx;
                x += dx;
            }
            let cdf = d.cdf(10.0);
            assert!(
                (acc - cdf).abs() < 0.01,
                "{}: integral {acc} vs cdf {cdf}",
                d.name()
            );
        }
    }

    #[test]
    fn aic_prefers_true_family() {
        let mut rng = RngStream::from_seed(5);
        let xs: Vec<f64> = (0..5000).map(|_| rng.exponential(1.0)).collect();
        let report = FitReport::fit_all(&xs);
        // Exponential (1 param) should win or be within a whisker of
        // Weibull (its 2-param superset).
        let best = report.best();
        assert!(
            best.name == "exponential" || best.name == "weibull",
            "best {}",
            best.name
        );
        let exp_model = report
            .models
            .iter()
            .find(|m| m.name == "exponential")
            .unwrap();
        assert!(
            exp_model.ks_p > 0.01,
            "exp should fit, p={}",
            exp_model.ks_p
        );
    }

    #[test]
    fn lognormal_sample_rejects_exponential() {
        let mut rng = RngStream::from_seed(6);
        let xs: Vec<f64> = (0..5000).map(|_| rng.lognormal(1.0, 1.5)).collect();
        let report = FitReport::fit_all(&xs);
        assert_eq!(report.best().name, "lognormal");
        let exp_model = report
            .models
            .iter()
            .find(|m| m.name == "exponential")
            .unwrap();
        assert!(exp_model.ks_p < 0.01, "exp should be rejected");
        assert!(!report.all_fits_poor(0.01));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn fit_empty_panics() {
        let _ = Exponential::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn fit_nonpositive_panics() {
        let _ = LogNormal::fit(&[1.0, 0.0]);
    }

    #[test]
    fn pareto_infinite_mean_below_alpha_one() {
        let p = Pareto {
            xm: 1.0,
            alpha: 0.9,
        };
        assert_eq!(p.mean(), None);
    }
}
