//! Correlation measures: Pearson/Spearman, lagged cross-correlation,
//! and spatial co-occurrence.
//!
//! Figure 3 of the paper shows GM_LANAI and GM_PAR alerts on Liberty
//! with a clear but inexact correlation; Section 4 recounts discovering
//! the Linux SMP clock bug *because* CPU alerts were spatially
//! correlated across nodes, unlike the independent ECC alerts. These
//! functions reproduce both analyses.

use sclog_types::{Duration, NodeId, Timestamp};
use std::collections::HashSet;

/// Pearson correlation coefficient of two equal-length series.
///
/// Returns 0 for degenerate (constant) series.
///
/// # Panics
///
/// Panics if the series lengths differ or are empty.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    assert!(!xs.is_empty(), "empty series");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx).powi(2);
        syy += (y - my).powi(2);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

/// Spearman rank correlation (Pearson on average ranks).
///
/// # Panics
///
/// Panics if the series lengths differ or are empty.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    pearson(&ranks(xs), &ranks(ys))
}

/// Average ranks of a series (ties share the mean rank).
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Normalized cross-correlation of two series at integer lags in
/// `-max_lag..=max_lag`.
///
/// Returns `(lag, correlation)` pairs; positive lag means `ys` trails
/// `xs` (an `xs` event tends to precede a `ys` event).
///
/// # Panics
///
/// Panics if the series lengths differ or `max_lag >= len`.
pub fn cross_correlation(xs: &[f64], ys: &[f64], max_lag: usize) -> Vec<(i64, f64)> {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    assert!(max_lag < xs.len(), "max_lag must be below series length");
    let mut out = Vec::with_capacity(2 * max_lag + 1);
    for lag in -(max_lag as i64)..=(max_lag as i64) {
        let (a, b) = if lag >= 0 {
            (&xs[..xs.len() - lag as usize], &ys[lag as usize..])
        } else {
            (&xs[(-lag) as usize..], &ys[..ys.len() - (-lag) as usize])
        };
        out.push((lag, pearson(a, b)));
    }
    out
}

/// The lag (within `max_lag`) with the highest cross-correlation.
pub fn best_lag(xs: &[f64], ys: &[f64], max_lag: usize) -> (i64, f64) {
    cross_correlation(xs, ys, max_lag)
        .into_iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("cross_correlation is never empty")
}

/// Result of a spatial co-occurrence analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpatialCooccurrence {
    /// Number of time windows containing at least one event.
    pub active_windows: usize,
    /// Mean number of *distinct sources* per active window.
    pub mean_sources_per_window: f64,
    /// Fraction of active windows where ≥ 2 distinct sources fired.
    pub multi_source_fraction: f64,
}

/// Measures how spatially correlated a category's events are.
///
/// Slices time into `window`-wide bins and asks: when this category
/// fires at all, how many *distinct nodes* fire together? Independent
/// physical failures (ECC) give a multi-source fraction near the value
/// expected under random scattering; a shared-cause bug (the SMP clock
/// bug under communication-heavy jobs) gives a much higher one.
///
/// # Panics
///
/// Panics if `window` is not positive.
pub fn spatial_cooccurrence(
    events: &[(Timestamp, NodeId)],
    window: Duration,
) -> SpatialCooccurrence {
    assert!(window.as_micros() > 0, "window must be positive");
    if events.is_empty() {
        return SpatialCooccurrence {
            active_windows: 0,
            mean_sources_per_window: 0.0,
            multi_source_fraction: 0.0,
        };
    }
    use std::collections::HashMap;
    let mut per_window: HashMap<i64, HashSet<NodeId>> = HashMap::new();
    for &(t, node) in events {
        per_window
            .entry(t.as_micros().div_euclid(window.as_micros()))
            .or_default()
            .insert(node);
    }
    let active = per_window.len();
    let total_sources: usize = per_window.values().map(|s| s.len()).sum();
    let multi = per_window.values().filter(|s| s.len() >= 2).count();
    SpatialCooccurrence {
        active_windows: active,
        mean_sources_per_window: total_sources as f64 / active as f64,
        multi_source_fraction: multi as f64 / active as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_and_inverse() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((pearson(&xs, &[2.0, 4.0, 6.0, 8.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &[8.0, 6.0, 4.0, 2.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[5.0; 4]), 0.0);
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let xs: [f64; 5] = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|&x| x.exp()).collect();
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
        // Pearson is below 1 for the same data.
        assert!(pearson(&xs, &ys) < 0.99);
    }

    #[test]
    fn ranks_handle_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn cross_correlation_finds_shift() {
        // ys is xs delayed by 3.
        let n = 200;
        let xs: Vec<f64> = (0..n).map(|i| ((i % 17) as f64).sin()).collect();
        let mut ys = vec![0.0; n];
        ys[3..n].copy_from_slice(&xs[..n - 3]);
        let (lag, corr) = best_lag(&xs, &ys, 10);
        assert_eq!(lag, 3);
        assert!(corr > 0.95);
    }

    #[test]
    fn spatial_cooccurrence_independent_vs_correlated() {
        let w = Duration::from_secs(10);
        // Independent: 100 events in 100 separate windows, random nodes.
        let independent: Vec<(Timestamp, NodeId)> = (0..100u32)
            .map(|i| {
                (
                    Timestamp::from_secs(i64::from(i) * 100),
                    NodeId::from_index(i % 7),
                )
            })
            .collect();
        let si = spatial_cooccurrence(&independent, w);
        assert_eq!(si.active_windows, 100);
        assert_eq!(si.multi_source_fraction, 0.0);

        // Correlated: bursts of 5 nodes in the same window.
        let mut correlated = Vec::new();
        for b in 0..20i64 {
            for node in 0..5u32 {
                correlated.push((
                    Timestamp::from_secs(b * 1000 + i64::from(node)),
                    NodeId::from_index(node),
                ));
            }
        }
        let sc = spatial_cooccurrence(&correlated, w);
        assert_eq!(sc.active_windows, 20);
        assert!(sc.multi_source_fraction > 0.99);
        assert!(sc.mean_sources_per_window > 4.9);
    }

    #[test]
    fn spatial_cooccurrence_empty() {
        let s = spatial_cooccurrence(&[], Duration::from_secs(1));
        assert_eq!(s.active_windows, 0);
        assert_eq!(s.mean_sources_per_window, 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn pearson_length_mismatch_panics() {
        let _ = pearson(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "max_lag")]
    fn cross_correlation_big_lag_panics() {
        let _ = cross_correlation(&[1.0, 2.0], &[1.0, 2.0], 5);
    }
}
