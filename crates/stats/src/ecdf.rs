//! Empirical cumulative distribution functions.

/// Empirical CDF of a sample.
///
/// # Examples
///
/// ```
/// use sclog_stats::Ecdf;
///
/// let e = Ecdf::new(vec![3.0, 1.0, 2.0, 2.0]);
/// assert_eq!(e.eval(0.5), 0.0);
/// assert_eq!(e.eval(2.0), 0.75);
/// assert_eq!(e.eval(10.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF, sorting the sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or contains NaN.
    pub fn new(mut sample: Vec<f64>) -> Self {
        assert!(!sample.is_empty(), "ECDF of empty sample");
        assert!(
            sample.iter().all(|x| !x.is_nan()),
            "ECDF sample contains NaN"
        );
        sample.sort_by(f64::total_cmp);
        Ecdf { sorted: sample }
    }

    /// `F(x)` — the fraction of the sample ≤ `x`.
    pub fn eval(&self, x: f64) -> f64 {
        self.sorted.partition_point(|&v| v <= x) as f64 / self.sorted.len() as f64
    }

    /// Sample size.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false — construction rejects empty samples.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The sorted sample values.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// The empirical quantile function (inverse CDF).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        crate::summary::quantile_sorted(&self.sorted, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_function_semantics() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.9), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.len(), 4);
        assert!(!e.is_empty());
    }

    #[test]
    fn handles_duplicates() {
        let e = Ecdf::new(vec![5.0; 10]);
        assert_eq!(e.eval(4.999), 0.0);
        assert_eq!(e.eval(5.0), 1.0);
    }

    #[test]
    fn quantiles_from_sorted() {
        let e = Ecdf::new(vec![4.0, 1.0, 3.0, 2.0]);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(1.0), 4.0);
        assert_eq!(e.quantile(0.5), 2.5);
        assert_eq!(e.values(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_rejected() {
        let _ = Ecdf::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Ecdf::new(vec![1.0, f64::NAN]);
    }
}
