//! Linear and logarithmic histograms.
//!
//! Figure 6 of the paper plots "the log distribution of interarrival
//! times after filtering" — a histogram over logarithmically spaced
//! bins, whose **modality** is the finding (bimodal on BG/L, unimodal on
//! Spirit). [`Histogram`] supports both binnings and a simple smoothed
//! peak count for asserting modality in tests.

/// Default number of logarithmic bins per decade, a resolution similar
/// to the paper's Figure 6 plots.
pub const LOG10_BINS_PER_DECADE: usize = 5;

/// Binning scheme for a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Binning {
    /// Equal-width bins covering `[lo, hi)`.
    Linear {
        /// Inclusive lower edge of the first bin.
        lo: f64,
        /// Exclusive upper edge of the last bin.
        hi: f64,
    },
    /// Logarithmically spaced bins covering `[lo, hi)`; requires
    /// `lo > 0`.
    Log10 {
        /// Inclusive lower edge (must be positive).
        lo: f64,
        /// Exclusive upper edge.
        hi: f64,
    },
}

/// A fixed-bin histogram with under/overflow counters.
///
/// # Examples
///
/// ```
/// use sclog_stats::Histogram;
///
/// let mut h = Histogram::linear(0.0, 10.0, 5);
/// for x in [0.5, 2.5, 2.7, 9.9, 12.0] {
///     h.add(x);
/// }
/// assert_eq!(h.counts(), &[1, 2, 0, 0, 1]);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    binning: Binning,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a linear histogram over `[lo, hi)` with `bins` bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn linear(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "lo must be below hi");
        Histogram {
            binning: Binning::Linear { lo, hi },
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Creates a log10 histogram over `[lo, hi)` with
    /// `bins_per_decade` bins per factor of ten.
    ///
    /// # Panics
    ///
    /// Panics if `lo <= 0`, `lo >= hi`, or `bins_per_decade == 0`.
    pub fn log10(lo: f64, hi: f64, bins_per_decade: usize) -> Self {
        assert!(lo > 0.0, "log histogram needs positive lo");
        assert!(lo < hi, "lo must be below hi");
        assert!(bins_per_decade > 0, "need at least one bin per decade");
        let decades = (hi / lo).log10();
        let bins = (decades * bins_per_decade as f64).ceil().max(1.0) as usize;
        Histogram {
            binning: Binning::Log10 { lo, hi },
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        match self.bin_of(x) {
            BinIndex::Under => self.underflow += 1,
            BinIndex::Over => self.overflow += 1,
            BinIndex::In(i) => self.counts[i] += 1,
        }
    }

    /// Adds every observation in a slice.
    pub fn add_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    fn bin_of(&self, x: f64) -> BinIndex {
        let n = self.counts.len() as f64;
        let frac = match self.binning {
            Binning::Linear { lo, hi } => (x - lo) / (hi - lo),
            Binning::Log10 { lo, hi } => {
                if x <= 0.0 {
                    return BinIndex::Under;
                }
                (x / lo).log10() / (hi / lo).log10()
            }
        };
        if frac < 0.0 {
            BinIndex::Under
        } else if frac >= 1.0 {
            BinIndex::Over
        } else {
            BinIndex::In(((frac * n) as usize).min(self.counts.len() - 1))
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below the first bin.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the last bin edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations including under/overflow.
    pub fn total(&self) -> u64 {
        self.underflow + self.overflow + self.counts.iter().sum::<u64>()
    }

    /// The `(lo, hi)` edges of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bin index out of range");
        let n = self.counts.len() as f64;
        match self.binning {
            Binning::Linear { lo, hi } => {
                let w = (hi - lo) / n;
                (lo + w * i as f64, lo + w * (i + 1) as f64)
            }
            Binning::Log10 { lo, hi } => {
                let lw = (hi / lo).log10() / n;
                (
                    lo * 10f64.powf(lw * i as f64),
                    lo * 10f64.powf(lw * (i + 1) as f64),
                )
            }
        }
    }

    /// Geometric/arithmetic center of bin `i` (matching the binning).
    pub fn bin_center(&self, i: usize) -> f64 {
        let (lo, hi) = self.bin_edges(i);
        match self.binning {
            Binning::Linear { .. } => (lo + hi) / 2.0,
            Binning::Log10 { .. } => (lo * hi).sqrt(),
        }
    }

    /// Number of local maxima in the (lightly smoothed) bin counts —
    /// the modality check used for Figure 6.
    ///
    /// Smooths with a centered 3-bin moving average, then counts bins
    /// that strictly exceed both neighbors and carry at least
    /// `min_peak_frac` of the total mass.
    pub fn peak_count(&self, min_peak_frac: f64) -> usize {
        let n = self.counts.len();
        if n < 3 || self.total() == 0 {
            return usize::from(self.counts.iter().any(|&c| c > 0));
        }
        let smooth: Vec<f64> = (0..n)
            .map(|i| {
                let lo = i.saturating_sub(1);
                let hi = (i + 1).min(n - 1);
                let span = (hi - lo + 1) as f64;
                (lo..=hi).map(|j| self.counts[j] as f64).sum::<f64>() / span
            })
            .collect();
        let thresh = min_peak_frac * self.total() as f64;
        let mut peaks = 0;
        for i in 0..n {
            let left = if i == 0 { -1.0 } else { smooth[i - 1] };
            let right = if i == n - 1 { -1.0 } else { smooth[i + 1] };
            if smooth[i] > left && smooth[i] > right && smooth[i] >= thresh {
                peaks += 1;
            }
        }
        peaks
    }

    /// Renders a compact ASCII sketch of the histogram, one row per bin.
    pub fn to_ascii(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let (lo, hi) = self.bin_edges(i);
            let bar = "#".repeat((c as usize * width).div_ceil(max as usize).min(width));
            out.push_str(&format!("[{lo:>10.3}, {hi:>10.3}) {c:>8} {bar}\n"));
        }
        out
    }
}

enum BinIndex {
    Under,
    In(usize),
    Over,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_binning() {
        let mut h = Histogram::linear(0.0, 10.0, 10);
        h.add_all(&[0.0, 0.99, 1.0, 9.99]);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.counts()[9], 1);
        h.add(-0.1);
        h.add(10.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn log_binning_covers_decades() {
        let h = Histogram::log10(0.01, 1000.0, 2);
        // 5 decades * 2 bins = 10 bins.
        assert_eq!(h.counts().len(), 10);
        let (lo, _) = h.bin_edges(0);
        assert!((lo - 0.01).abs() < 1e-12);
        let (_, hi) = h.bin_edges(9);
        assert!((hi - 1000.0).abs() / 1000.0 < 1e-9);
    }

    #[test]
    fn log_binning_places_values() {
        let mut h = Histogram::log10(1.0, 100.0, 1);
        h.add_all(&[1.5, 9.9, 10.1, 99.0]);
        assert_eq!(h.counts(), &[2, 2]);
        h.add(0.5);
        assert_eq!(h.underflow(), 1);
        h.add(-3.0); // non-positive goes to underflow, not a panic
        assert_eq!(h.underflow(), 2);
    }

    #[test]
    fn mass_is_conserved() {
        let mut h = Histogram::log10(0.1, 1e4, 4);
        let xs: Vec<f64> = (1..1000).map(|i| i as f64 * 0.37).collect();
        h.add_all(&xs);
        assert_eq!(h.total(), xs.len() as u64);
    }

    #[test]
    fn bin_centers_are_inside_edges() {
        let h = Histogram::log10(0.01, 100.0, 3);
        for i in 0..h.counts().len() {
            let (lo, hi) = h.bin_edges(i);
            let c = h.bin_center(i);
            assert!(lo < c && c < hi);
        }
    }

    #[test]
    fn peak_count_unimodal() {
        let mut h = Histogram::linear(0.0, 10.0, 20);
        // Triangular distribution peaked at 5 (sum of two uniforms).
        for i in 0..1000 {
            let a = (i as f64 * 0.618_034).fract();
            let b = (i as f64 * 0.414_214).fract();
            h.add(2.0 + 3.0 * (a + b));
        }
        assert_eq!(h.peak_count(0.01), 1);
    }

    #[test]
    fn peak_count_bimodal() {
        let mut h = Histogram::log10(0.01, 1e5, 2);
        // Mode 1 near 0.1s (unfiltered redundancy), mode 2 near 1000s.
        for i in 0..500 {
            let a = (i as f64 * 0.618_034).fract();
            let b = (i as f64 * 0.414_214).fract();
            h.add(0.05 * 10f64.powf(a + b)); // peaked at ~0.5 in log space
            h.add(300.0 * 10f64.powf(a + b));
        }
        assert_eq!(h.peak_count(0.02), 2);
    }

    #[test]
    fn empty_histogram_has_no_peaks() {
        let h = Histogram::linear(0.0, 1.0, 5);
        assert_eq!(h.peak_count(0.1), 0);
    }

    #[test]
    fn ascii_render_is_nonempty() {
        let mut h = Histogram::linear(0.0, 4.0, 4);
        h.add_all(&[0.5, 1.5, 1.6]);
        let s = h.to_ascii(10);
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains('#'));
    }

    #[test]
    #[should_panic(expected = "positive lo")]
    fn log_rejects_nonpositive_lo() {
        let _ = Histogram::log10(0.0, 1.0, 2);
    }
}
