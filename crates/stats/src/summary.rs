//! Summary statistics.

/// One-pass (Welford) summary of a sample: count, mean, variance,
/// min/max. Quantiles require the sorted-sample constructor.
///
/// # Examples
///
/// ```
/// use sclog_stats::Summary;
///
/// let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.count(), 4);
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Accumulates one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Builds a summary from a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Summary::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (+∞ for an empty summary).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (−∞ for an empty summary).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another summary into this one (parallel Welford).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

/// Sample skewness (Fisher-Pearson, adjusted). Heavy right tails —
/// the paper's recurring theme — give large positive values.
///
/// # Panics
///
/// Panics if fewer than 3 observations.
pub fn skewness(xs: &[f64]) -> f64 {
    assert!(xs.len() >= 3, "skewness needs at least 3 observations");
    let n = xs.len() as f64;
    let mu = xs.iter().sum::<f64>() / n;
    let m2: f64 = xs.iter().map(|x| (x - mu).powi(2)).sum::<f64>() / n;
    let m3: f64 = xs.iter().map(|x| (x - mu).powi(3)).sum::<f64>() / n;
    if m2 <= 0.0 {
        return 0.0;
    }
    let g1 = m3 / m2.powf(1.5);
    ((n * (n - 1.0)).sqrt() / (n - 2.0)) * g1
}

/// Sample excess kurtosis. Zero for a normal sample; large for heavy
/// tails.
///
/// # Panics
///
/// Panics if fewer than 4 observations.
pub fn excess_kurtosis(xs: &[f64]) -> f64 {
    assert!(xs.len() >= 4, "kurtosis needs at least 4 observations");
    let n = xs.len() as f64;
    let mu = xs.iter().sum::<f64>() / n;
    let m2: f64 = xs.iter().map(|x| (x - mu).powi(2)).sum::<f64>() / n;
    let m4: f64 = xs.iter().map(|x| (x - mu).powi(4)).sum::<f64>() / n;
    if m2 <= 0.0 {
        return 0.0;
    }
    m4 / (m2 * m2) - 3.0
}

/// Quantile of a sample by linear interpolation (the "type 7" estimator).
///
/// Sorts a copy of the data; for repeated quantile queries sort once and
/// use [`quantile_sorted`].
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    quantile_sorted(&v, q)
}

/// Quantile of an already-sorted sample.
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile_sorted(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile q out of range: {q}");
    let pos = q * (xs.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        xs[lo]
    } else {
        let frac = pos - lo as f64;
        xs[lo] * (1.0 - frac) + xs[hi] * frac
    }
}

/// Median convenience wrapper around [`quantile`].
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Summary::from_slice(&xs);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Naive unbiased variance = 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let whole = Summary::from_slice(&xs);
        let mut a = Summary::from_slice(&xs[..37]);
        let b = Summary::from_slice(&xs[37..]);
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.count(), whole.count());

        let mut empty = Summary::new();
        empty.merge(&whole);
        assert_eq!(empty.count(), whole.count());
        let mut c = whole;
        c.merge(&Summary::new());
        assert_eq!(c.count(), whole.count());
    }

    #[test]
    fn collect_from_iterator() {
        let s: Summary = (1..=3).map(|x| x as f64).collect();
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn quantiles() {
        let xs = [3.0, 1.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(median(&xs), 2.5);
        assert_eq!(quantile(&xs, 0.25), 1.75);
    }

    #[test]
    fn skewness_and_kurtosis() {
        // Symmetric sample: ~0 skewness.
        let sym: Vec<f64> = (-50..=50).map(f64::from).collect();
        assert!(skewness(&sym).abs() < 1e-9);
        // Right-skewed sample: positive.
        let skewed: Vec<f64> = (1..200).map(|i| (f64::from(i) / 20.0).exp()).collect();
        assert!(skewness(&skewed) > 1.0);
        assert!(excess_kurtosis(&skewed) > 1.0);
        // Uniform: negative excess kurtosis (~ -1.2).
        assert!(excess_kurtosis(&sym) < -1.0);
        // Degenerate: zero.
        assert_eq!(skewness(&[1.0, 1.0, 1.0]), 0.0);
        assert_eq!(excess_kurtosis(&[1.0; 4]), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        let _ = quantile(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantile_out_of_range_panics() {
        let _ = quantile(&[1.0], 1.5);
    }
}
