//! Statistics for supercomputer log analysis.
//!
//! Section 4 of the paper models alert timing: interarrival
//! distributions (exponential for ECC, heavy-tailed elsewhere), visual
//! and statistical goodness-of-fit ("heavy tails result in very poor
//! statistical goodness-of-fit metrics"), hourly message-rate time
//! series with regime shifts (Figure 2a), and spatial/temporal
//! correlation across nodes and categories (Figures 3–6). This crate
//! implements the needed machinery from scratch:
//!
//! * [`summary`] — moments, quantiles, online (Welford) accumulation.
//! * [`histogram`] — linear and logarithmic binning, peak detection
//!   (used to show Figure 6a's bimodality).
//! * [`ecdf`] — empirical CDFs.
//! * [`fit`] — MLE fitting of exponential, log-normal, Weibull and
//!   Pareto models, with AIC model selection.
//! * [`gof`] — Kolmogorov–Smirnov and χ² goodness-of-fit tests.
//! * [`timeseries`] — bucketing, moving averages, CUSUM change-point
//!   detection (the Figure 2a OS-upgrade shift).
//! * [`correlation`] — Pearson/Spearman, lagged cross-correlation
//!   (Figure 3), and spatial co-occurrence scoring (the SMP clock bug).
//! * [`special`] — the special functions (`ln Γ`, regularized incomplete
//!   gamma, `erf`) the above need.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod correlation;
pub mod ecdf;
pub mod fit;
pub mod gof;
pub mod hazard;
pub mod histogram;
pub mod special;
pub mod summary;
pub mod timeseries;

pub use ecdf::Ecdf;
pub use fit::{Distribution, Exponential, FitReport, LogNormal, Pareto, Weibull};
pub use gof::{chi_square_gof, ks_test, KsResult};
pub use hazard::HazardCurve;
pub use histogram::{Histogram, LOG10_BINS_PER_DECADE};
pub use summary::Summary;
pub use timeseries::{bucket_counts, cusum_changepoints, moving_average};

/// Extracts interarrival gaps (in seconds) from a sorted sequence of
/// timestamps.
///
/// Non-positive gaps (duplicate timestamps — common at syslog's
/// one-second granularity) are clamped to `min_gap`.
///
/// # Examples
///
/// ```
/// use sclog_stats::interarrivals;
/// use sclog_types::Timestamp;
///
/// let times = [1, 3, 6, 6].map(Timestamp::from_secs);
/// assert_eq!(interarrivals(&times, 0.5), vec![2.0, 3.0, 0.5]);
/// ```
///
/// # Panics
///
/// Panics if `times` is not sorted.
pub fn interarrivals(times: &[sclog_types::Timestamp], min_gap: f64) -> Vec<f64> {
    times
        .windows(2)
        .map(|w| {
            let gap = (w[1] - w[0]).as_secs_f64();
            assert!(gap >= 0.0, "timestamps must be sorted");
            gap.max(min_gap)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sclog_types::Timestamp;

    #[test]
    fn interarrivals_basic() {
        let times = [0, 10, 15].map(Timestamp::from_secs);
        assert_eq!(interarrivals(&times, 0.0), vec![10.0, 5.0]);
        assert!(interarrivals(&times[..1], 0.0).is_empty());
        assert!(interarrivals(&[], 0.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn interarrivals_rejects_unsorted() {
        let times = [10, 0].map(Timestamp::from_secs);
        let _ = interarrivals(&times, 0.0);
    }
}
