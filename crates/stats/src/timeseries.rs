//! Time-series utilities: bucketing, smoothing, change-point detection.
//!
//! Figure 2(a) of the paper plots Liberty's hourly message counts and
//! shows "dramatic shifts in behavior over time" — the first caused by
//! an OS upgrade. The paper argues that "the ability to detect phase
//! shifts in behavior would be a valuable tool"; [`cusum_changepoints`]
//! is that tool.

use sclog_types::{Duration, Timestamp};

/// Buckets event timestamps into fixed-width counts over
/// `[start, start + width * n)` where `n` is chosen to cover `end`.
///
/// Events outside the range are ignored.
///
/// # Examples
///
/// ```
/// use sclog_stats::bucket_counts;
/// use sclog_types::{Duration, Timestamp};
///
/// let events = [10, 20, 70, 130].map(Timestamp::from_secs);
/// let counts = bucket_counts(
///     &events,
///     Timestamp::EPOCH,
///     Timestamp::from_secs(180),
///     Duration::from_secs(60),
/// );
/// assert_eq!(counts, vec![2, 1, 1]);
/// ```
///
/// # Panics
///
/// Panics if `width` is not positive or `end <= start`.
pub fn bucket_counts(
    events: &[Timestamp],
    start: Timestamp,
    end: Timestamp,
    width: Duration,
) -> Vec<u64> {
    assert!(width.as_micros() > 0, "bucket width must be positive");
    assert!(end > start, "end must be after start");
    let span = (end - start).as_micros();
    let w = width.as_micros();
    let n = ((span + w - 1) / w) as usize;
    let mut counts = vec![0u64; n];
    for &t in events {
        if t < start || t >= end {
            continue;
        }
        let i = ((t - start).as_micros() / width.as_micros()) as usize;
        counts[i.min(n - 1)] += 1;
    }
    counts
}

/// Centered moving average with the given window (odd windows are
/// symmetric; even windows lean left).
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn moving_average(xs: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "window must be positive");
    let half = window / 2;
    (0..xs.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + window - half).min(xs.len());
            xs[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// Sample autocorrelation of a series at integer lags `0..=max_lag`.
///
/// Returns one value per lag; lag 0 is always 1 for non-constant
/// series. Bursty alert streams show slowly decaying autocorrelation;
/// independent streams drop to ~0 immediately (the Figure 5 vs
/// Figure 6 contrast in time-series form).
///
/// # Panics
///
/// Panics if `max_lag >= xs.len()`.
pub fn autocorrelation(xs: &[f64], max_lag: usize) -> Vec<f64> {
    assert!(max_lag < xs.len(), "max_lag must be below series length");
    let n = xs.len() as f64;
    let mu = xs.iter().sum::<f64>() / n;
    let var: f64 = xs.iter().map(|x| (x - mu).powi(2)).sum();
    if var <= 0.0 {
        return vec![0.0; max_lag + 1];
    }
    (0..=max_lag)
        .map(|lag| {
            let cov: f64 = xs[..xs.len() - lag]
                .iter()
                .zip(&xs[lag..])
                .map(|(a, b)| (a - mu) * (b - mu))
                .sum();
            cov / var
        })
        .collect()
}

/// A detected mean shift in a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChangePoint {
    /// Index in the series where the new regime begins.
    pub index: usize,
    /// Mean before the shift (since the previous change point).
    pub mean_before: f64,
    /// Mean after the shift (to the next change point).
    pub mean_after: f64,
}

/// Detects mean shifts with a segmented CUSUM scan.
///
/// The series is scanned left to right; within the current segment a
/// two-sided CUSUM accumulates deviations from the segment's running
/// mean, normalized by its running standard deviation. When the
/// statistic exceeds `threshold` (in σ·samples units, e.g. 8.0), a
/// change point is declared at the accumulation start and the scan
/// restarts there.
///
/// Only shifts where the segment means differ by at least
/// `min_rel_shift` (relative to the larger mean) are reported, which
/// suppresses slow drift.
///
/// # Panics
///
/// Panics if `threshold` is not positive.
pub fn cusum_changepoints(xs: &[f64], threshold: f64, min_rel_shift: f64) -> Vec<ChangePoint> {
    assert!(threshold > 0.0, "threshold must be positive");
    let mut points = Vec::new();
    let mut seg_start = 0;
    while seg_start + 4 < xs.len() {
        match scan_segment(&xs[seg_start..], threshold) {
            Some(rel) => {
                let idx = seg_start + rel;
                let before = &xs[seg_start..idx];
                let next_end = xs.len();
                let after = &xs[idx..next_end];
                let mb = mean(before);
                let ma = mean(after);
                let denom = mb.abs().max(ma.abs()).max(1e-12);
                if (ma - mb).abs() / denom >= min_rel_shift {
                    points.push(ChangePoint {
                        index: idx,
                        mean_before: mb,
                        mean_after: ma,
                    });
                }
                seg_start = idx;
            }
            None => break,
        }
    }
    // Recompute per-regime means now that all boundaries are known.
    let bounds: Vec<usize> = std::iter::once(0)
        .chain(points.iter().map(|p| p.index))
        .chain(std::iter::once(xs.len()))
        .collect();
    for (k, p) in points.iter_mut().enumerate() {
        p.mean_before = mean(&xs[bounds[k]..bounds[k + 1]]);
        p.mean_after = mean(&xs[bounds[k + 1]..bounds[k + 2]]);
    }
    points
}

/// Scans one segment; returns the relative index where a shift begins.
fn scan_segment(xs: &[f64], threshold: f64) -> Option<usize> {
    // Reference statistics from a leading warmup (min 8 samples, max
    // a quarter of the segment).
    let warm = (xs.len() / 4).clamp(8, 256).min(xs.len());
    let mu = mean(&xs[..warm]);
    let sd = std_dev(&xs[..warm], mu).max(mu.abs() * 0.05).max(1e-9);
    let (mut pos, mut neg) = (0.0f64, 0.0f64);
    let (mut pos_start, mut neg_start) = (0usize, 0usize);
    for (i, &x) in xs.iter().enumerate() {
        let z = (x - mu) / sd;
        // One-sided CUSUMs with a small drift allowance.
        let drift = 0.5;
        pos = (pos + z - drift).max(0.0);
        if pos == 0.0 {
            pos_start = i + 1;
        }
        neg = (neg - z - drift).max(0.0);
        if neg == 0.0 {
            neg_start = i + 1;
        }
        if pos > threshold {
            return Some(pos_start.max(1));
        }
        if neg > threshold {
            return Some(neg_start.max(1));
        }
    }
    None
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn std_dev(xs: &[f64], mu: f64) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    (xs.iter().map(|x| (x - mu).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_counts_edges() {
        let events = [0, 59, 60, 179].map(Timestamp::from_secs);
        let counts = bucket_counts(
            &events,
            Timestamp::EPOCH,
            Timestamp::from_secs(180),
            Duration::from_secs(60),
        );
        assert_eq!(counts, vec![2, 1, 1]);
    }

    #[test]
    fn bucket_counts_ignores_out_of_range() {
        let events = [-5i64, 10, 500].map(Timestamp::from_secs);
        let counts = bucket_counts(
            &events,
            Timestamp::EPOCH,
            Timestamp::from_secs(100),
            Duration::from_secs(50),
        );
        assert_eq!(counts.iter().sum::<u64>(), 1);
    }

    #[test]
    fn bucket_counts_partial_last_bucket() {
        let counts = bucket_counts(
            &[Timestamp::from_secs(99)],
            Timestamp::EPOCH,
            Timestamp::from_secs(100),
            Duration::from_secs(40),
        );
        assert_eq!(counts.len(), 3); // 40, 40, 20
        assert_eq!(counts[2], 1);
    }

    #[test]
    fn moving_average_smooths() {
        let xs = [0.0, 10.0, 0.0, 10.0, 0.0];
        let ma = moving_average(&xs, 3);
        assert_eq!(ma.len(), 5);
        assert!((ma[2] - 20.0 / 3.0).abs() < 1e-12);
        // Constant series is unchanged.
        let c = moving_average(&[3.0; 10], 5);
        assert!(c.iter().all(|&v| (v - 3.0).abs() < 1e-12));
    }

    #[test]
    fn cusum_detects_single_shift() {
        // Regime 1: mean 10; regime 2: mean 30 (the OS-upgrade pattern
        // of Figure 2a).
        let mut xs = vec![10.0; 200];
        xs.extend(vec![30.0; 200]);
        // Add mild deterministic wiggle.
        for (i, x) in xs.iter_mut().enumerate() {
            *x += ((i * 37) % 7) as f64 - 3.0;
        }
        let cps = cusum_changepoints(&xs, 8.0, 0.3);
        assert_eq!(cps.len(), 1, "{cps:?}");
        let cp = cps[0];
        assert!((195..=210).contains(&cp.index), "index {}", cp.index);
        assert!(cp.mean_before < 15.0 && cp.mean_after > 25.0);
    }

    #[test]
    fn cusum_no_false_positive_on_stationary() {
        let xs: Vec<f64> = (0..400)
            .map(|i| 20.0 + ((i * 13) % 11) as f64 - 5.0)
            .collect();
        let cps = cusum_changepoints(&xs, 10.0, 0.3);
        assert!(cps.is_empty(), "{cps:?}");
    }

    #[test]
    fn cusum_detects_multiple_shifts() {
        let mut xs = vec![10.0; 150];
        xs.extend(vec![40.0; 150]);
        xs.extend(vec![5.0; 150]);
        for (i, x) in xs.iter_mut().enumerate() {
            *x += ((i * 37) % 5) as f64 - 2.0;
        }
        let cps = cusum_changepoints(&xs, 8.0, 0.3);
        assert_eq!(cps.len(), 2, "{cps:?}");
        assert!((140..=160).contains(&cps[0].index));
        assert!((290..=310).contains(&cps[1].index));
    }

    #[test]
    fn cusum_short_series_is_quiet() {
        assert!(cusum_changepoints(&[1.0, 2.0, 3.0], 8.0, 0.1).is_empty());
    }

    #[test]
    fn autocorrelation_shapes() {
        // Alternating series: perfect negative correlation at lag 1.
        let alt: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let ac = autocorrelation(&alt, 2);
        assert!((ac[0] - 1.0).abs() < 1e-12);
        assert!(ac[1] < -0.9);
        assert!(ac[2] > 0.9);
        // Constant series: zeros.
        assert_eq!(autocorrelation(&[5.0; 10], 3), vec![0.0; 4]);
        // Smooth series: slow decay.
        let smooth: Vec<f64> = (0..200).map(|i| (i as f64 / 30.0).sin()).collect();
        let ac = autocorrelation(&smooth, 5);
        assert!(ac[1] > 0.9 && ac[5] > 0.7, "{ac:?}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bucket_counts_zero_width_panics() {
        let _ = bucket_counts(
            &[],
            Timestamp::EPOCH,
            Timestamp::from_secs(1),
            Duration::ZERO,
        );
    }
}
