//! Special functions needed by the fitting and testing code.
//!
//! Implemented from standard numerical recipes (Lanczos approximation
//! for `ln Γ`, series/continued-fraction for the regularized incomplete
//! gamma, Abramowitz–Stegun rational approximation for `erf`), accurate
//! to well beyond what log-analysis goodness-of-fit needs.

/// Natural log of the gamma function, for `x > 0` (Lanczos, g=7, n=9).
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// `P(a, x) = γ(a, x) / Γ(a)`, used for the χ² CDF:
/// `chi2_cdf(x; k) = P(k/2, x/2)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0");
    assert!(x >= 0.0, "gamma_p requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    1.0 - gamma_p(a, x)
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    // Lentz's algorithm for the continued fraction.
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Error function `erf(x)` (Abramowitz & Stegun 7.1.26, |ε| ≤ 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal CDF `Φ(z)`.
pub fn std_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// χ² CDF with `k` degrees of freedom.
///
/// # Panics
///
/// Panics if `k <= 0` or `x < 0`.
pub fn chi2_cdf(x: f64, k: f64) -> f64 {
    assert!(k > 0.0, "chi2_cdf requires k > 0");
    gamma_p(k / 2.0, x / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn ln_gamma_integers() {
        // Γ(n) = (n-1)!
        close(ln_gamma(1.0), 0.0, 1e-10);
        close(ln_gamma(2.0), 0.0, 1e-10);
        close(ln_gamma(5.0), 24f64.ln(), 1e-10);
        close(ln_gamma(10.0), 362_880f64.ln(), 1e-9);
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(pi)
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-9);
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - e^-x
        for x in [0.1, 1.0, 3.0, 10.0] {
            close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-10);
        }
        close(gamma_p(2.5, 0.0), 0.0, 1e-15);
        close(gamma_q(1.0, 2.0), (-2f64).exp(), 1e-10);
    }

    #[test]
    fn chi2_cdf_known_values() {
        // Median of chi2 with k=2 is 2 ln 2.
        close(chi2_cdf(2.0 * 2f64.ln(), 2.0), 0.5, 1e-10);
        // 95th percentile of chi2(1) is ~3.841.
        close(chi2_cdf(3.841, 1.0), 0.95, 1e-3);
        // 95th percentile of chi2(10) is ~18.307.
        close(chi2_cdf(18.307, 10.0), 0.95, 1e-3);
    }

    #[test]
    fn erf_known_values() {
        close(erf(0.0), 0.0, 1e-8);
        close(erf(1.0), 0.842_700_79, 1e-6);
        close(erf(-1.0), -0.842_700_79, 1e-6);
        close(erf(2.0), 0.995_322_27, 1e-6);
    }

    #[test]
    fn normal_cdf_symmetry() {
        close(std_normal_cdf(0.0), 0.5, 1e-8);
        close(std_normal_cdf(1.96), 0.975, 1e-4);
        close(std_normal_cdf(-1.96), 0.025, 1e-4);
    }
}
