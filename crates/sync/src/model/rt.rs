//! The deterministic scheduler at the heart of model mode.
//!
//! One model execution = one run of the checked closure with every
//! facade operation routed through [`Runtime`]. Exactly one model
//! thread is ever runnable-and-running; each facade op is a *yield
//! point* where the scheduler picks the next thread to perform its
//! pending operation. The sequence of picks is the schedule; the DFS
//! in [`super::Model::check`] enumerates schedules by replaying a
//! recorded decision prefix and taking the first untried legal
//! alternative at the deepest branch (see DESIGN.md §14).

use std::collections::{HashSet, VecDeque};
use std::hash::{DefaultHasher, Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe, Location};
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

use sclog_desim::RngStream;

use super::{Failure, FailureKind, ModelAbort};

/// How many trailing trace events a failure report keeps.
const TRACE_CAP: usize = 64;

/// Probability that the PCT sampler injects a spurious wakeup at a
/// decision point where one is possible and budget remains.
const PCT_SPURIOUS_P: f64 = 0.125;

static EPOCHS: StdAtomicU64 = StdAtomicU64::new(0);

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Runtime>, usize)>> =
        const { std::cell::RefCell::new(None) };
    static IN_MODEL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    static IN_EXPLORER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    static IN_INVARIANT: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    static LAST_PANIC: std::cell::RefCell<Option<String>> =
        const { std::cell::RefCell::new(None) };
}

/// What a model thread is waiting for. A thread parked at a yield
/// point is *schedulable* iff its status's precondition holds, so the
/// scheduler never wastes a choice on a thread that would immediately
/// re-block (and a state with no schedulable unfinished thread is, by
/// construction, a deadlock).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    /// At a yield point whose operation can always proceed.
    Runnable,
    /// Wants to acquire mutex `.0`.
    BlockedMutex(usize),
    /// Parked in `Condvar::wait`; only a notify or an injected
    /// spurious wakeup moves it to `Reacquire`.
    BlockedCondvar { cv: usize, mutex: usize },
    /// Woken from a wait; wants to reacquire mutex `.0`.
    Reacquire(usize),
    /// Wants a read lock on rwlock `.0`.
    BlockedRead(usize),
    /// Wants the write lock on rwlock `.0`.
    BlockedWrite(usize),
    /// Joining thread `.0`.
    BlockedJoin(usize),
    /// Done (normally or by abort-unwind).
    Finished,
}

impl Status {
    fn describe(&self) -> String {
        match self {
            Status::Runnable => "runnable".to_string(),
            Status::BlockedMutex(m) => format!("blocked locking mutex #{m}"),
            Status::BlockedCondvar { cv, .. } => {
                format!("waiting on condvar #{cv} (no pending notify)")
            }
            Status::Reacquire(m) => format!("reacquiring mutex #{m} after wakeup"),
            Status::BlockedRead(l) => format!("blocked on read lock #{l}"),
            Status::BlockedWrite(l) => format!("blocked on write lock #{l}"),
            Status::BlockedJoin(t) => format!("joining t{t}"),
            Status::Finished => "finished".to_string(),
        }
    }
}

/// Per-object scheduler state. Object ids are assigned in first-use
/// order within an execution, which is deterministic per schedule.
pub(crate) enum Obj {
    /// A mutex: which thread logically holds it.
    Mutex { held_by: Option<usize> },
    /// A condvar: FIFO queue of waiting thread ids.
    Condvar { waiters: Vec<usize> },
    /// A reader-writer lock.
    RwLock {
        writer: Option<usize>,
        readers: Vec<usize>,
    },
    /// An atomic cell (bool/u64/usize all model as u64).
    Atomic { value: u64 },
}

pub(crate) struct ThreadState {
    pub(crate) status: Status,
    /// Operations performed so far — part of the state hash, so two
    /// states only merge when every thread is at the same point of
    /// its own history.
    ops: u64,
    site: &'static Location<'static>,
    name: String,
}

/// One decision point on the DFS path.
#[derive(Clone, Debug)]
pub(crate) struct Branch {
    /// Number of choices that existed here (replay divergence check).
    pub(crate) n: usize,
    /// Index of the choice taken on the current execution.
    pub(crate) taken: usize,
    /// Whether the previously running thread was still schedulable.
    /// If so, choice 0 is "continue it" and every other choice is a
    /// preemption; if not, the switch is forced and free.
    pub(crate) prev_runnable: bool,
    /// Preemptions consumed before this decision.
    pub(crate) preemptions_before: usize,
    /// State hash at this decision, inserted into the done-state set
    /// once the whole subtree below it has been explored.
    pub(crate) hash: u64,
}

#[derive(Clone, Copy, Debug)]
enum Choice {
    /// Schedule thread `.0` to perform its pending operation.
    Run(usize),
    /// Spuriously wake condvar-waiter `.0` and schedule it.
    Spurious(usize),
}

/// Scheduling strategy for one execution.
pub(crate) enum Mode {
    /// Replay `path[..]`, then extend depth-first (choice 0).
    Dfs { path: Vec<Branch>, cursor: usize },
    /// PCT-style randomized priorities with change points.
    Pct {
        rng: RngStream,
        prios: Vec<u64>,
        change_points: Vec<u64>,
        next_low: u64,
    },
}

pub(crate) struct SchedState {
    pub(crate) threads: Vec<ThreadState>,
    pub(crate) objects: Vec<Obj>,
    running: Option<usize>,
    mode: Mode,
    preemptions: usize,
    spurious_left: u32,
    pub(crate) steps: u64,
    trace: VecDeque<String>,
    pub(crate) failure: Option<Failure>,
    pub(crate) aborting: bool,
    pub(crate) pruned_exit: bool,
    done: bool,
}

/// Per-execution limits and knobs, copied from the `Model` builder.
/// (The preemption bound lives in the explorer, not here: it
/// constrains which DFS alternatives are *generated*, never how a
/// single execution runs.)
pub(crate) struct ExecCfg {
    pub(crate) max_steps: u64,
    /// Active seeded-mutation name; only read by `model::mutation`,
    /// which exists solely under `--cfg sclog_model`.
    #[cfg_attr(not(sclog_model), allow(dead_code))]
    pub(crate) mutation: Option<String>,
    pub(crate) pruning: bool,
}

type Invariant = (String, Box<dyn Fn() + Send + Sync>);

/// The shared scheduler for one model execution. Every model thread
/// holds an `Arc` to it; the explorer holds one more and reads the
/// outcome after `wait_done`.
pub struct Runtime {
    sched: StdMutex<SchedState>,
    cv: StdCondvar,
    invariants: StdMutex<Vec<Invariant>>,
    pub(crate) cfg: ExecCfg,
    done_states: Arc<StdMutex<HashSet<u64>>>,
    pub(crate) epoch: u64,
}

fn abort_unwind() -> ! {
    std::panic::resume_unwind(Box::new(ModelAbort))
}

impl Runtime {
    pub(crate) fn new(cfg: ExecCfg, mode: Mode, spurious_budget: u32) -> Arc<Self> {
        Self::with_done_states(cfg, mode, spurious_budget, Arc::default())
    }

    pub(crate) fn with_done_states(
        cfg: ExecCfg,
        mode: Mode,
        spurious_budget: u32,
        done_states: Arc<StdMutex<HashSet<u64>>>,
    ) -> Arc<Self> {
        Arc::new(Runtime {
            sched: StdMutex::new(SchedState {
                threads: Vec::new(),
                objects: Vec::new(),
                // The root thread registers as t0 and starts
                // pre-scheduled; its first pick is not a decision.
                running: Some(0),
                mode,
                preemptions: 0,
                spurious_left: spurious_budget,
                steps: 0,
                trace: VecDeque::new(),
                failure: None,
                aborting: false,
                pruned_exit: false,
                done: false,
            }),
            cv: StdCondvar::new(),
            invariants: StdMutex::new(Vec::new()),
            cfg,
            done_states,
            epoch: EPOCHS.fetch_add(1, Ordering::Relaxed) + 1,
        })
    }

    /// The runtime and model-thread index of the calling OS thread,
    /// if it is a model thread of a live execution.
    pub(crate) fn current() -> Option<(Arc<Runtime>, usize)> {
        CURRENT.with(|c| c.borrow().clone())
    }

    pub(crate) fn set_current(rt: Arc<Runtime>, me: usize) {
        CURRENT.with(|c| *c.borrow_mut() = Some((rt, me)));
        IN_MODEL.set(true);
    }

    pub(crate) fn in_invariant() -> bool {
        IN_INVARIANT.get()
    }

    pub(crate) fn take_last_panic() -> Option<String> {
        LAST_PANIC.take()
    }

    /// Mark the calling (explorer) thread for the duration of
    /// [`run_execution`](super::Model::check)'s inner scope: std's
    /// "a scoped thread panicked" re-panic lands on it at every
    /// aborted execution's teardown and must not hit stderr.
    pub(crate) fn set_in_explorer(v: bool) {
        IN_EXPLORER.set(v);
    }

    /// Install the process-wide panic hook that silences panics on
    /// model threads (they are captured and reported through
    /// [`Failure`] instead) and scoped-join teardown noise on the
    /// explorer thread, while deferring to the previous hook
    /// everywhere else.
    pub(crate) fn install_panic_hook() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if IN_MODEL.get() {
                    LAST_PANIC.with(|p| *p.borrow_mut() = Some(info.to_string()));
                } else if IN_EXPLORER.get() && info.to_string().contains("scoped thread panicked") {
                    // Expected teardown shape; the explorer swallows
                    // the payload right after this hook runs.
                } else {
                    prev(info);
                }
            }));
        });
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SchedState> {
        self.sched
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub(crate) fn is_aborting(&self) -> bool {
        self.lock().aborting
    }

    /// Register a new model thread; returns its index. The thread
    /// becomes a scheduling choice immediately but does not run until
    /// picked (its OS thread parks in [`Runtime::thread_start`]).
    pub(crate) fn register_thread(&self, name: &str, site: &'static Location<'static>) -> usize {
        let mut st = self.lock();
        let idx = st.threads.len();
        st.threads.push(ThreadState {
            status: Status::Runnable,
            ops: 0,
            site,
            name: name.to_string(),
        });
        if let Mode::Pct { rng, prios, .. } = &mut st.mode {
            prios.push(1_000_000 + rng.below(1_000_000));
        }
        idx
    }

    pub(crate) fn register_obj(&self, obj: Obj) -> usize {
        let mut st = self.lock();
        st.objects.push(obj);
        st.objects.len() - 1
    }

    pub(crate) fn register_invariant(&self, name: &str, f: Box<dyn Fn() + Send + Sync>) {
        self.invariants
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push((name.to_string(), f));
    }

    fn check_invariants(self: &Arc<Self>) {
        let invs = self
            .invariants
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if invs.is_empty() {
            return;
        }
        IN_INVARIANT.set(true);
        for (name, f) in invs.iter() {
            if catch_unwind(AssertUnwindSafe(|| f())).is_err() {
                IN_INVARIANT.set(false);
                let msg = LAST_PANIC
                    .take()
                    .unwrap_or_else(|| "invariant closure panicked".to_string());
                let msg = format!("invariant '{name}' violated: {msg}");
                drop(invs);
                let mut st = self.lock();
                self.record_failure_locked(&mut st, FailureKind::Invariant, msg);
                drop(st);
                abort_unwind();
            }
        }
        IN_INVARIANT.set(false);
    }

    fn record_failure_locked(&self, st: &mut SchedState, kind: FailureKind, message: String) {
        // First failure wins; and once an abort (failure or prune
        // exit) is underway, secondary panics from the teardown
        // itself — e.g. std scope's "a scoped thread panicked"
        // replacement payload — are noise, not findings.
        if st.failure.is_none() && !st.aborting {
            let path = match &st.mode {
                Mode::Dfs { path, .. } => path.iter().map(|b| b.taken).collect(),
                Mode::Pct { .. } => Vec::new(),
            };
            st.failure = Some(Failure {
                kind,
                message,
                trace: st.trace.iter().cloned().collect(),
                path,
            });
        }
        st.aborting = true;
        self.cv.notify_all();
    }

    /// Record a real (non-abort) panic from a model thread.
    pub(crate) fn record_panic(&self, me: usize, msg: String) {
        let mut st = self.lock();
        let name = st.threads[me].name.clone();
        self.record_failure_locked(
            &mut st,
            FailureKind::Panic,
            format!("t{me} ({name}) panicked: {msg}"),
        );
    }

    fn is_runnable(st: &SchedState, t: usize) -> bool {
        match st.threads[t].status {
            Status::Runnable => true,
            Status::BlockedMutex(m) | Status::Reacquire(m) => {
                matches!(st.objects[m], Obj::Mutex { held_by: None })
            }
            Status::BlockedCondvar { .. } => false,
            Status::BlockedRead(l) => {
                matches!(st.objects[l], Obj::RwLock { writer: None, .. })
            }
            Status::BlockedWrite(l) => {
                matches!(&st.objects[l], Obj::RwLock { writer: None, readers } if readers.is_empty())
            }
            Status::BlockedJoin(t2) => st.threads[t2].status == Status::Finished,
            Status::Finished => false,
        }
    }

    /// All choices at this decision point: schedulable threads
    /// (previously running thread first, so choice 0 never preempts),
    /// then — only if at least one thread can actually run — spurious
    /// wakeups. A state where *only* a spurious wakeup could make
    /// progress is a lost wakeup, and must be reported as a deadlock
    /// rather than silently rescued.
    fn compute_choices(st: &SchedState, prev: Option<usize>) -> Vec<Choice> {
        let mut out = Vec::new();
        if let Some(p) = prev {
            if Self::is_runnable(st, p) {
                out.push(Choice::Run(p));
            }
        }
        for t in 0..st.threads.len() {
            if Some(t) != prev && Self::is_runnable(st, t) {
                out.push(Choice::Run(t));
            }
        }
        if out.is_empty() {
            return out;
        }
        if st.spurious_left > 0 {
            for t in 0..st.threads.len() {
                if let Status::BlockedCondvar { mutex, .. } = st.threads[t].status {
                    if matches!(st.objects[mutex], Obj::Mutex { held_by: None }) {
                        out.push(Choice::Spurious(t));
                    }
                }
            }
        }
        out
    }

    fn state_hash(st: &SchedState) -> u64 {
        let mut h = DefaultHasher::new();
        st.threads.len().hash(&mut h);
        for t in &st.threads {
            t.ops.hash(&mut h);
            match t.status {
                Status::Runnable => 0u8.hash(&mut h),
                Status::BlockedMutex(m) => (1u8, m).hash(&mut h),
                Status::BlockedCondvar { cv, mutex } => (2u8, cv, mutex).hash(&mut h),
                Status::Reacquire(m) => (3u8, m).hash(&mut h),
                Status::BlockedRead(l) => (4u8, l).hash(&mut h),
                Status::BlockedWrite(l) => (5u8, l).hash(&mut h),
                Status::BlockedJoin(j) => (6u8, j).hash(&mut h),
                Status::Finished => 7u8.hash(&mut h),
            }
        }
        st.objects.len().hash(&mut h);
        for o in &st.objects {
            match o {
                Obj::Mutex { held_by } => (0u8, held_by).hash(&mut h),
                Obj::Condvar { waiters } => (1u8, waiters).hash(&mut h),
                Obj::RwLock { writer, readers } => (2u8, writer, readers).hash(&mut h),
                Obj::Atomic { value } => (3u8, value).hash(&mut h),
            }
        }
        st.preemptions.hash(&mut h);
        st.spurious_left.hash(&mut h);
        h.finish()
    }

    /// Pick the next thread to run. Called with the scheduler locked
    /// by the thread giving up the slot (`prev`).
    fn schedule_next(&self, st: &mut SchedState, prev: Option<usize>) {
        st.running = None;
        let prev_runnable = prev.is_some_and(|p| Self::is_runnable(st, p));
        let choices = Self::compute_choices(st, prev);
        if choices.is_empty() {
            if st.threads.iter().all(|t| t.status == Status::Finished) {
                st.done = true;
                self.cv.notify_all();
                return;
            }
            let mut lines = vec!["deadlock: no schedulable thread".to_string()];
            for (i, t) in st.threads.iter().enumerate() {
                if t.status != Status::Finished {
                    lines.push(format!(
                        "  t{i} ({}) {} @ {}:{}",
                        t.name,
                        t.status.describe(),
                        t.site.file(),
                        t.site.line()
                    ));
                }
            }
            self.record_failure_locked(st, FailureKind::Deadlock, lines.join("\n"));
            return;
        }
        let hash = Self::state_hash(st);
        let nchoices = choices.len();
        let taken = match &mut st.mode {
            Mode::Dfs { path, cursor } => {
                if *cursor < path.len() {
                    let b = &path[*cursor];
                    if b.n != nchoices {
                        let msg = format!(
                            "replay divergence at decision {}: recorded {} choices, recomputed {}",
                            *cursor, b.n, nchoices
                        );
                        self.record_failure_locked(st, FailureKind::Internal, msg);
                        return;
                    }
                    let t = path[*cursor].taken;
                    *cursor += 1;
                    t
                } else {
                    if self.cfg.pruning
                        && self
                            .done_states
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .contains(&hash)
                    {
                        st.pruned_exit = true;
                        st.aborting = true;
                        self.cv.notify_all();
                        return;
                    }
                    path.push(Branch {
                        n: nchoices,
                        taken: 0,
                        prev_runnable,
                        preemptions_before: st.preemptions,
                        hash,
                    });
                    *cursor += 1;
                    0
                }
            }
            Mode::Pct {
                rng,
                prios,
                change_points,
                next_low,
            } => {
                let run_len = choices
                    .iter()
                    .filter(|c| matches!(c, Choice::Run(_)))
                    .count();
                let n_spur = nchoices - run_len;
                if n_spur > 0 && rng.chance(PCT_SPURIOUS_P) {
                    run_len + rng.below(n_spur as u64) as usize
                } else {
                    if change_points.contains(&st.steps) {
                        // Priority change point: demote the thread
                        // that would be picked, below every initial
                        // priority.
                        if let Some(victim) = choices[..run_len]
                            .iter()
                            .filter_map(|c| match c {
                                Choice::Run(t) => Some(*t),
                                Choice::Spurious(_) => None,
                            })
                            .max_by_key(|&t| prios[t])
                        {
                            prios[victim] = *next_low;
                            *next_low = next_low.saturating_sub(1);
                        }
                    }
                    let (best, _) = choices[..run_len]
                        .iter()
                        .enumerate()
                        .filter_map(|(i, c)| match c {
                            Choice::Run(t) => Some((i, prios[*t])),
                            Choice::Spurious(_) => None,
                        })
                        .max_by_key(|&(_, p)| p)
                        .expect("run choices nonempty");
                    best
                }
            }
        };
        let choice = choices[taken];
        if prev_runnable && !matches!((choice, prev), (Choice::Run(t), Some(p)) if t == p) {
            st.preemptions += 1;
        }
        match choice {
            Choice::Run(t) => st.running = Some(t),
            Choice::Spurious(t) => {
                let Status::BlockedCondvar { cv, mutex } = st.threads[t].status else {
                    unreachable!("spurious choice for a non-waiting thread");
                };
                if let Obj::Condvar { waiters } = &mut st.objects[cv] {
                    waiters.retain(|&w| w != t);
                }
                st.threads[t].status = Status::Reacquire(mutex);
                st.spurious_left -= 1;
                let step = st.steps;
                Self::push_trace(st, format!("step {step}: spurious wakeup of t{t}"));
                st.running = Some(t);
            }
        }
        self.cv.notify_all();
    }

    fn push_trace(st: &mut SchedState, line: String) {
        if st.trace.len() == TRACE_CAP {
            st.trace.pop_front();
        }
        st.trace.push_back(line);
    }

    /// The core yield point. `prepare` runs before the scheduling
    /// decision (it publishes the op's precondition as the thread's
    /// new status and may mutate object state, e.g. a condvar wait
    /// releasing its mutex); `perform` runs once the thread is
    /// scheduled and commits the operation.
    pub(crate) fn yield_op<R>(
        self: &Arc<Self>,
        me: usize,
        site: &'static Location<'static>,
        desc: &str,
        prepare: impl FnOnce(&mut SchedState) -> Status,
        perform: impl FnOnce(&mut SchedState, usize) -> R,
    ) -> R {
        self.check_invariants();
        let mut st = self.lock();
        if st.aborting {
            drop(st);
            abort_unwind();
        }
        st.steps += 1;
        if st.steps > self.cfg.max_steps {
            let msg = format!(
                "step budget exceeded ({} ops): livelock or a harness too large for the budget",
                self.cfg.max_steps
            );
            self.record_failure_locked(&mut st, FailureKind::StepBudget, msg);
            drop(st);
            abort_unwind();
        }
        let status = prepare(&mut st);
        st.threads[me].status = status;
        st.threads[me].site = site;
        self.schedule_next(&mut st, Some(me));
        while st.running != Some(me) && !st.aborting {
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if st.aborting {
            drop(st);
            abort_unwind();
        }
        st.threads[me].status = Status::Runnable;
        st.threads[me].ops += 1;
        let step = st.steps;
        let name = st.threads[me].name.clone();
        Self::push_trace(
            &mut st,
            format!(
                "step {step}: t{me} ({name}) {desc} @ {}:{}",
                site.file(),
                site.line()
            ),
        );
        perform(&mut st, me)
    }

    /// Park a freshly spawned model thread until first scheduled.
    pub(crate) fn thread_start(&self, me: usize) {
        let mut st = self.lock();
        while st.running != Some(me) && !st.aborting {
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if st.aborting {
            drop(st);
            abort_unwind();
        }
    }

    /// Mark a model thread finished and hand the slot to the next.
    pub(crate) fn thread_finish(&self, me: usize) {
        let mut st = self.lock();
        st.threads[me].status = Status::Finished;
        if st.aborting {
            if st.threads.iter().all(|t| t.status == Status::Finished) {
                st.done = true;
            }
            self.cv.notify_all();
            return;
        }
        if st.running == Some(me) {
            st.steps += 1;
            self.schedule_next(&mut st, Some(me));
        }
        if st.threads.iter().all(|t| t.status == Status::Finished) {
            st.done = true;
        }
        self.cv.notify_all();
    }

    /// Block the explorer until every model thread has finished
    /// (normally, by failure abort, or by prune-exit).
    pub(crate) fn wait_done(&self) {
        let mut st = self.lock();
        while !st.done {
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Outcome of a finished execution:
    /// `(dfs_path, failure, pruned_exit, steps)`.
    pub(crate) fn final_state(&self) -> (Vec<Branch>, Option<Failure>, bool, u64) {
        let st = self.lock();
        let path = match &st.mode {
            Mode::Dfs { path, .. } => path.clone(),
            Mode::Pct { .. } => Vec::new(),
        };
        (path, st.failure.clone(), st.pruned_exit, st.steps)
    }

    // ---- object-state accessors for the primitives ------------------

    pub(crate) fn mutex_holder_mut<'a>(st: &'a mut SchedState, id: usize) -> &'a mut Option<usize> {
        match &mut st.objects[id] {
            Obj::Mutex { held_by } => held_by,
            _ => unreachable!("object #{id} is not a mutex"),
        }
    }

    pub(crate) fn condvar_waiters_mut<'a>(st: &'a mut SchedState, id: usize) -> &'a mut Vec<usize> {
        match &mut st.objects[id] {
            Obj::Condvar { waiters } => waiters,
            _ => unreachable!("object #{id} is not a condvar"),
        }
    }

    pub(crate) fn rwlock_mut<'a>(
        st: &'a mut SchedState,
        id: usize,
    ) -> (&'a mut Option<usize>, &'a mut Vec<usize>) {
        match &mut st.objects[id] {
            Obj::RwLock { writer, readers } => (writer, readers),
            _ => unreachable!("object #{id} is not a rwlock"),
        }
    }

    pub(crate) fn atomic_mut<'a>(st: &'a mut SchedState, id: usize) -> &'a mut u64 {
        match &mut st.objects[id] {
            Obj::Atomic { value } => value,
            _ => unreachable!("object #{id} is not an atomic"),
        }
    }

    /// Wake thread `t` out of a condvar wait (notify path): it leaves
    /// the waiter queue and competes to reacquire its mutex.
    pub(crate) fn wake_waiter(st: &mut SchedState, t: usize) {
        let Status::BlockedCondvar { cv, mutex } = st.threads[t].status else {
            unreachable!("notify target t{t} is not waiting");
        };
        if let Obj::Condvar { waiters } = &mut st.objects[cv] {
            waiters.retain(|&w| w != t);
        }
        st.threads[t].status = Status::Reacquire(mutex);
    }

    /// Non-yielding release of a logically held mutex (guard drop).
    pub(crate) fn release_mutex(&self, id: usize, me: usize) {
        let mut st = self.lock();
        let aborting = st.aborting;
        let holder = Self::mutex_holder_mut(&mut st, id);
        if aborting {
            // Tolerate anything while tearing an execution down.
            if *holder == Some(me) {
                *holder = None;
            }
            return;
        }
        assert_eq!(
            *holder,
            Some(me),
            "model mutex #{id} released by a thread that does not hold it"
        );
        *holder = None;
    }

    /// Non-yielding release of an rwlock side (guard drop).
    pub(crate) fn release_rwlock(&self, id: usize, me: usize, write: bool) {
        let mut st = self.lock();
        let aborting = st.aborting;
        let (writer, readers) = Self::rwlock_mut(&mut st, id);
        if write {
            if !aborting {
                assert_eq!(*writer, Some(me), "model rwlock #{id} write-released badly");
            }
            if *writer == Some(me) {
                *writer = None;
            }
        } else if let Some(pos) = readers.iter().position(|&r| r == me) {
            readers.remove(pos);
        } else if !aborting {
            panic!("model rwlock #{id} read-released by a non-reader");
        }
    }

    /// Read an atomic's value without a scheduling point — used by
    /// invariant closures (which must not affect the schedule) and by
    /// abort-mode teardown.
    pub(crate) fn peek_atomic(&self, id: usize) -> u64 {
        let mut st = self.lock();
        *Self::atomic_mut(&mut st, id)
    }

    /// Write an atomic's value without a scheduling point (abort-mode
    /// teardown only).
    pub(crate) fn poke_atomic(&self, id: usize, v: u64) {
        let mut st = self.lock();
        *Self::atomic_mut(&mut st, id) = v;
    }
}

/// Identity cell tying a facade object to its per-execution scheduler
/// slot. Lazily registered on first use; re-use across executions is
/// a harness bug and panics with advice.
pub(crate) struct ObjCell {
    slot: StdMutex<Option<(u64, usize)>>,
}

impl ObjCell {
    pub(crate) const fn new() -> Self {
        ObjCell {
            slot: StdMutex::new(None),
        }
    }

    pub(crate) fn ensure(&self, rt: &Runtime, make: impl FnOnce() -> Obj) -> usize {
        let mut slot = self
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match *slot {
            Some((epoch, id)) if epoch == rt.epoch => id,
            Some(_) => panic!(
                "sclog-sync object reused across model executions — \
                 construct sync objects inside the checked closure"
            ),
            None => {
                let id = rt.register_obj(make());
                *slot = Some((rt.epoch, id));
                id
            }
        }
    }

    pub(crate) fn get(&self) -> usize {
        self.slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .expect("model object used before registration")
            .1
    }
}
