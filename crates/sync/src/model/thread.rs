//! Model-mode threading: every spawn registers the thread with the
//! scheduler, every join is a scheduling point, and scoped spawns are
//! pre-joined through the scheduler before `std::thread::scope`'s
//! implicit join (which the scheduler cannot see) runs.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe, Location};
use std::sync::Arc;

use super::rt::{Runtime, Status};
use super::ModelAbort;

pub use std::thread::Scope;

thread_local! {
    /// Stack of scope frames on the spawning thread; each frame
    /// collects the model indices spawned inside it so `scope` can
    /// scheduler-join them before std's implicit join.
    static SCOPES: std::cell::RefCell<Vec<Vec<usize>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

fn ctx() -> (Arc<Runtime>, usize) {
    Runtime::current().expect(
        "sclog-sync model thread op outside a model run — \
         spawn threads inside Model::check's closure",
    )
}

/// Run a model thread: park until first scheduled, run the closure,
/// convert any real panic into a recorded [`Failure`](super::Failure)
/// plus an abort-unwind, and hand the scheduling slot on.
pub(crate) fn thread_body<T>(rt: Arc<Runtime>, me: usize, f: impl FnOnce() -> T) -> T {
    Runtime::set_current(rt.clone(), me);
    let res = catch_unwind(AssertUnwindSafe(|| {
        rt.thread_start(me);
        f()
    }));
    match res {
        Ok(v) => {
            rt.thread_finish(me);
            v
        }
        Err(payload) => {
            if !payload.is::<ModelAbort>() {
                let msg = Runtime::take_last_panic().unwrap_or_else(|| {
                    payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "panicked with a non-string payload".to_string())
                });
                rt.record_panic(me, msg);
            }
            rt.thread_finish(me);
            resume_unwind(Box::new(ModelAbort))
        }
    }
}

fn join_point(rt: &Arc<Runtime>, me: usize, target: usize, site: &'static Location<'static>) {
    if rt.is_aborting() {
        // Teardown: the target is being unwound and will exit on its
        // own; the inner std join below suffices.
        return;
    }
    rt.yield_op(
        me,
        site,
        "join",
        |_st| Status::BlockedJoin(target),
        |_st, _me| (),
    );
}

/// Model `thread::scope`. Passes the *std* scope straight through
/// (so lifetimes match std exactly); spawning must go through
/// [`spawn_in`] so the scheduler sees it.
#[track_caller]
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
{
    let (rt, me) = ctx();
    let site = Location::caller();
    SCOPES.with_borrow_mut(|s| s.push(Vec::new()));
    std::thread::scope(|s| {
        let out = catch_unwind(AssertUnwindSafe(|| f(s)));
        let children = SCOPES.with_borrow_mut(|s| s.pop().unwrap_or_default());
        match out {
            Ok(out) => {
                // Scheduler-join every child spawned in this frame
                // before std's implicit join blocks this OS thread
                // for real.
                for idx in children {
                    join_point(&rt, me, idx, site);
                }
                out
            }
            Err(payload) => {
                // The scope body panicked with children possibly
                // still parked in the scheduler. Record the failure
                // *now* — which flips the execution to aborting and
                // wakes every parked thread — or std's implicit join
                // below would wait forever on threads that are never
                // scheduled again.
                if !payload.is::<ModelAbort>() {
                    let msg = Runtime::take_last_panic().unwrap_or_else(|| {
                        payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "panicked with a non-string payload".to_string())
                    });
                    rt.record_panic(me, msg);
                }
                resume_unwind(payload)
            }
        }
    })
}

/// Model scoped spawn (facade equivalent of `scope.spawn(f)`).
#[track_caller]
pub fn spawn_in<'scope, 'env, F, T>(
    scope: &'scope Scope<'scope, 'env>,
    f: F,
) -> ScopedJoinHandle<'scope, T>
where
    F: FnOnce() -> T + Send + 'scope,
    T: Send + 'scope,
{
    let (rt, _me) = ctx();
    let idx = rt.register_thread("spawned", Location::caller());
    SCOPES.with_borrow_mut(|s| {
        let frame = s
            .last_mut()
            .expect("spawn_in outside sclog_sync::thread::scope in a model run");
        frame.push(idx);
    });
    let rt2 = rt.clone();
    let inner = scope.spawn(move || thread_body(rt2, idx, f));
    ScopedJoinHandle { inner, idx, rt }
}

/// Model free spawn. The thread joins the explored schedule; if it is
/// never joined it must still finish before the closure's schedule
/// can complete (otherwise the checker reports a deadlock).
#[track_caller]
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (rt, _me) = ctx();
    let idx = rt.register_thread("spawned", Location::caller());
    let rt2 = rt.clone();
    let inner = std::thread::spawn(move || thread_body(rt2, idx, f));
    JoinHandle { inner, idx, rt }
}

/// Handle to a model scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
    idx: usize,
    rt: Arc<Runtime>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Join the thread (a scheduling point).
    #[track_caller]
    pub fn join(self) -> std::thread::Result<T> {
        let (rt, me) = ctx();
        debug_assert!(Arc::ptr_eq(&rt, &self.rt));
        join_point(&rt, me, self.idx, Location::caller());
        self.inner.join()
    }
}

/// Handle to a free-spawned model thread.
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    idx: usize,
    rt: Arc<Runtime>,
}

impl<T> JoinHandle<T> {
    /// Join the thread (a scheduling point).
    #[track_caller]
    pub fn join(self) -> std::thread::Result<T> {
        let (rt, me) = ctx();
        debug_assert!(Arc::ptr_eq(&rt, &self.rt));
        join_point(&rt, me, self.idx, Location::caller());
        self.inner.join()
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle")
            .field("idx", &self.idx)
            .finish()
    }
}

impl<T> std::fmt::Debug for ScopedJoinHandle<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScopedJoinHandle")
            .field("idx", &self.idx)
            .finish()
    }
}
