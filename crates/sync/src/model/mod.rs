//! The deterministic model checker behind `--cfg sclog_model`.
//!
//! [`Model::check`] runs a closure repeatedly, once per explored
//! schedule. All concurrency inside the closure must go through the
//! facade types (which resolve to [`sync`] in model builds) and
//! [`thread`]; the scheduler then controls every interleaving:
//!
//! - exactly one thread runs at a time; every facade operation is a
//!   scheduling point,
//! - schedules are enumerated DFS over the decision tree, bounded by
//!   a *preemption bound* (choices that switch away from a thread
//!   that could have continued),
//! - condvar waits can be woken *spuriously*, up to a per-execution
//!   budget, so `if`-instead-of-`while` waits are caught,
//! - states are hashed (thread statuses + op counts, object states,
//!   budgets) and subtrees already fully explored from an identical
//!   state are pruned,
//! - a state where no thread can proceed is reported as a deadlock —
//!   including "lost wakeup" states that only a spurious wakeup
//!   could rescue.
//!
//! This module is compiled in *every* build (so the checker itself is
//! exercised by normal tier-1 tests); only the facade aliasing in the
//! crate root is switched by `--cfg sclog_model`. See DESIGN.md §14.

pub mod rt;
pub mod sync;
pub mod thread;

use std::collections::HashSet;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe, Location};
use std::sync::{Arc, Mutex as StdMutex};
use std::time::{Duration, Instant};

use sclog_desim::{derive_seed, RngStream};

use rt::{Branch, ExecCfg, Mode, Runtime};

/// Panic payload used to tear down an execution after a failure (or a
/// prune-exit). Model threads unwind with this; the explorer swallows
/// it. Never observed by user code.
pub struct ModelAbort;

/// Why a model execution failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// No schedulable thread, unfinished threads remain (includes
    /// lost-wakeup states).
    Deadlock,
    /// A model thread panicked (assertion in the protocol or the
    /// harness closure).
    Panic,
    /// A registered invariant's closure panicked at a scheduling
    /// point.
    Invariant,
    /// An execution exceeded the per-schedule step budget (livelock
    /// or an oversized harness).
    StepBudget,
    /// The checker itself misbehaved (replay divergence) — always a
    /// bug in sclog-sync or a nondeterministic harness.
    Internal,
}

/// A counterexample schedule found by the checker.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Classification of the failure.
    pub kind: FailureKind,
    /// Human-readable description (deadlock listing, panic message).
    pub message: String,
    /// The last scheduling events before the failure, oldest first.
    pub trace: Vec<String>,
    /// The DFS decision path (choice index per decision) that
    /// reproduces the failure; empty for PCT failures (replay those
    /// by seed).
    pub path: Vec<usize>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{:?}: {}", self.kind, self.message)?;
        if !self.path.is_empty() {
            writeln!(f, "decision path: {:?}", self.path)?;
        }
        if !self.trace.is_empty() {
            writeln!(f, "schedule tail:")?;
            for line in &self.trace {
                writeln!(f, "  {line}")?;
            }
        }
        Ok(())
    }
}

/// Outcome of a [`Model::check`] or [`Model::pct`] run.
#[derive(Debug)]
pub struct Report {
    /// Harness name, echoed into messages.
    pub name: String,
    /// Executions run (including the failing one, if any).
    pub schedules: u64,
    /// Executions cut short because their state was already fully
    /// explored (DFS mode only).
    pub pruned: u64,
    /// Whether the schedule space was exhausted (DFS) / all
    /// iterations ran (PCT) within the budgets.
    pub complete: bool,
    /// The first counterexample found, if any.
    pub failure: Option<Failure>,
    /// Deepest decision path seen (DFS mode).
    pub max_depth: usize,
    /// Wall-clock time spent exploring.
    pub elapsed: Duration,
}

impl Report {
    /// One-line summary for harness output (schedule counts are part
    /// of the `verify.sh --model-check` contract).
    pub fn summary(&self) -> String {
        format!(
            "model-check {}: {} schedules ({} pruned), depth {}, {:?}, complete={}, {}",
            self.name,
            self.schedules,
            self.pruned,
            self.max_depth,
            self.elapsed,
            self.complete,
            if self.failure.is_some() {
                "FAILED"
            } else {
                "ok"
            }
        )
    }

    /// Panic if a counterexample was found or the exploration did not
    /// complete within its budgets.
    #[track_caller]
    pub fn require_pass(&self) {
        if let Some(fail) = &self.failure {
            panic!("model-check {} found a counterexample:\n{fail}", self.name);
        }
        assert!(
            self.complete,
            "model-check {}: exploration incomplete after {} schedules in {:?} — raise the budgets",
            self.name, self.schedules, self.elapsed
        );
    }

    /// Panic unless a counterexample was found; returns it. Used by
    /// mutation tests to prove the checker detects seeded bugs.
    #[track_caller]
    pub fn require_failure(&self) -> &Failure {
        self.failure.as_ref().unwrap_or_else(|| {
            panic!(
                "model-check {}: expected a counterexample, but {} schedules passed (complete={})",
                self.name, self.schedules, self.complete
            )
        })
    }
}

/// Builder for a model-checking run.
#[derive(Clone, Debug)]
pub struct Model {
    preemption_bound: usize,
    spurious_budget: u32,
    max_steps: u64,
    max_schedules: u64,
    max_time: Duration,
    mutation: Option<String>,
    pruning: bool,
}

impl Default for Model {
    fn default() -> Self {
        Model {
            preemption_bound: 2,
            spurious_budget: 1,
            max_steps: 10_000,
            max_schedules: 1_000_000,
            max_time: Duration::from_secs(60),
            mutation: None,
            pruning: true,
        }
    }
}

impl Model {
    /// A model with the default budgets (preemption bound 2, one
    /// spurious wakeup per execution, 60 s / 1 M schedules).
    pub fn new() -> Self {
        Model::default()
    }

    /// Maximum preemptive context switches per schedule. Most real
    /// concurrency bugs need ≤ 2 (the PCT observation); raising it
    /// grows the space combinatorially.
    pub fn preemption_bound(mut self, bound: usize) -> Self {
        self.preemption_bound = bound;
        self
    }

    /// Spurious wakeups injectable per execution.
    pub fn spurious_budget(mut self, budget: u32) -> Self {
        self.spurious_budget = budget;
        self
    }

    /// Per-execution operation budget (livelock guard).
    pub fn max_steps(mut self, steps: u64) -> Self {
        self.max_steps = steps;
        self
    }

    /// Hard cap on explored schedules.
    pub fn max_schedules(mut self, schedules: u64) -> Self {
        self.max_schedules = schedules;
        self
    }

    /// Hard wall-clock budget for the whole exploration.
    pub fn max_time(mut self, t: Duration) -> Self {
        self.max_time = t;
        self
    }

    /// Enable a named seeded mutation (see
    /// [`mutation`](crate::model::mutation)) for this run.
    pub fn with_mutation(mut self, name: &str) -> Self {
        self.mutation = Some(name.to_string());
        self
    }

    /// Toggle done-state hash pruning (on by default). Pruning
    /// assumes protocol control flow does not depend on the *values*
    /// carried through the primitives — true for every protocol in
    /// this tree; disable it to double-check a suspicious harness.
    pub fn pruning(mut self, on: bool) -> Self {
        self.pruning = on;
        self
    }

    fn exec_cfg(&self) -> ExecCfg {
        ExecCfg {
            max_steps: self.max_steps,
            mutation: self.mutation.clone(),
            pruning: self.pruning,
        }
    }

    /// Exhaustively explore `f`'s schedules (DFS under the preemption
    /// bound), returning the first counterexample or a completeness
    /// report. `f` runs once per schedule and must be deterministic
    /// apart from scheduling.
    pub fn check<F>(&self, name: &str, f: F) -> Report
    where
        F: Fn() + Sync,
    {
        Runtime::install_panic_hook();
        let start = Instant::now();
        let done_states: Arc<StdMutex<HashSet<u64>>> = Arc::default();
        let mut path: Vec<Branch> = Vec::new();
        let mut schedules = 0u64;
        let mut pruned = 0u64;
        let mut max_depth = 0usize;
        let mut failure = None;
        let mut complete = false;
        loop {
            if schedules >= self.max_schedules || start.elapsed() >= self.max_time {
                break;
            }
            let rt = Runtime::with_done_states(
                self.exec_cfg(),
                Mode::Dfs {
                    path: std::mem::take(&mut path),
                    cursor: 0,
                },
                self.spurious_budget,
                done_states.clone(),
            );
            run_execution(&rt, &f);
            schedules += 1;
            let (p, fail, pruned_exit, _steps) = rt.final_state();
            max_depth = max_depth.max(p.len());
            if pruned_exit {
                pruned += 1;
            }
            if fail.is_some() {
                failure = fail;
                break;
            }
            path = p;
            // Backtrack: pop fully-explored branches (their subtree
            // states become prunable), advance the deepest branch
            // with a legal untried alternative.
            let mut advanced = false;
            while let Some(last) = path.last_mut() {
                if let Some(k) = next_alternative(last, self.preemption_bound) {
                    last.taken = k;
                    advanced = true;
                    break;
                }
                done_states
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .insert(last.hash);
                path.pop();
            }
            if !advanced {
                complete = true;
                break;
            }
        }
        Report {
            name: name.to_string(),
            schedules,
            pruned,
            complete,
            failure,
            max_depth,
            elapsed: start.elapsed(),
        }
    }

    /// PCT-style randomized exploration: each iteration assigns
    /// random thread priorities with `depth - 1` priority change
    /// points, reaching interleavings deeper than the DFS preemption
    /// bound. Failures report the iteration seed for deterministic
    /// replay.
    pub fn pct<F>(
        &self,
        name: &str,
        master_seed: u64,
        iterations: u64,
        depth: usize,
        f: F,
    ) -> Report
    where
        F: Fn() + Sync,
    {
        Runtime::install_panic_hook();
        let start = Instant::now();
        let mut schedules = 0u64;
        let mut failure = None;
        let mut complete = true;
        let mut est_len = 64u64;
        for iter in 0..iterations {
            if start.elapsed() >= self.max_time {
                complete = false;
                break;
            }
            let iter_seed = derive_seed(master_seed, &format!("{name}/{iter}"));
            let mut rng = RngStream::from_seed(iter_seed);
            let change_points = (0..depth.saturating_sub(1))
                .map(|_| rng.below(est_len.max(1)))
                .collect();
            let rt = Runtime::new(
                self.exec_cfg(),
                Mode::Pct {
                    rng,
                    prios: Vec::new(),
                    change_points,
                    next_low: 1000,
                },
                self.spurious_budget,
            );
            run_execution(&rt, &f);
            schedules += 1;
            let (_, fail, _, steps) = rt.final_state();
            est_len = steps.max(1);
            if let Some(mut fl) = fail {
                fl.message = format!(
                    "[PCT iteration {iter}, seed {iter_seed:#018x} (master {master_seed:#x}): \
                     rerun Model::pct with this master seed to replay] {}",
                    fl.message
                );
                failure = Some(fl);
                break;
            }
        }
        Report {
            name: name.to_string(),
            schedules,
            pruned: 0,
            complete,
            failure,
            max_depth: 0,
            elapsed: start.elapsed(),
        }
    }
}

/// Is the named seeded mutation active in the current model run?
///
/// Only compiled under `--cfg sclog_model`, so any call site that is
/// not itself `#[cfg(sclog_model)]`-gated breaks the normal build —
/// the compiler guarantees mutations are absent from release builds
/// (`tidy.sh` check 8 additionally greps for the gate).
#[cfg(sclog_model)]
pub fn mutation(name: &str) -> bool {
    Runtime::current().is_some_and(|(rt, _)| rt.cfg.mutation.as_deref() == Some(name))
}

/// Register a protocol invariant for the current execution. The
/// closure runs at **every** subsequent scheduling point, on whichever
/// thread is yielding; it must be read-only (atomic loads are allowed
/// and do not themselves become scheduling points; locking panics).
/// A panic inside the closure is reported as [`FailureKind::
/// Invariant`] with the given name.
pub fn register_invariant(name: &str, f: impl Fn() + Send + Sync + 'static) {
    let (rt, _) = Runtime::current()
        .expect("register_invariant outside a model run — call it inside Model::check's closure");
    rt.register_invariant(name, Box::new(f));
}

fn next_alternative(b: &Branch, preemption_bound: usize) -> Option<usize> {
    if b.taken + 1 >= b.n {
        return None;
    }
    // Choice 0 continues the previously-running thread whenever that
    // is possible; every other choice is then a preemption and needs
    // budget. When the switch was forced, all choices are free.
    if b.prev_runnable && b.preemptions_before >= preemption_bound {
        return None;
    }
    Some(b.taken + 1)
}

fn run_execution<F>(rt: &Arc<Runtime>, f: &F)
where
    F: Fn() + Sync,
{
    rt::Runtime::set_in_explorer(true);
    let res = catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| {
            let root = rt.register_thread("main", Location::caller());
            debug_assert_eq!(root, 0, "root thread must register first");
            let rt2 = rt.clone();
            s.spawn(move || thread::thread_body(rt2, root, f));
            rt.wait_done();
        });
    }));
    rt::Runtime::set_in_explorer(false);
    if let Err(payload) = res {
        // Execution teardown unwinds every model thread with
        // ModelAbort; std's scope replaces an unjoined child's panic
        // payload with a plain "a scoped thread panicked" string, so
        // both shapes are expected here. Anything else is a bug in
        // the explorer itself.
        let scoped_noise = payload
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("scoped thread panicked"));
        if !payload.is::<ModelAbort>() && !scoped_noise {
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::{AtomicU64, Condvar, Mutex};
    use super::{thread, FailureKind, Model};
    use std::sync::atomic::Ordering::SeqCst;
    use std::sync::Arc;

    #[test]
    fn counter_protocol_passes_and_explores_many_schedules() {
        let r = Model::new().preemption_bound(2).check("counter", || {
            let c = Arc::new(Mutex::new(0u32));
            thread::scope(|s| {
                for _ in 0..2 {
                    let c = c.clone();
                    thread::spawn_in(s, move || {
                        *c.lock().unwrap() += 1;
                    });
                }
            });
            assert_eq!(*c.lock().unwrap(), 2);
        });
        r.require_pass();
        assert!(r.schedules > 1, "expected >1 schedule, got {}", r.schedules);
    }

    #[test]
    fn abba_lock_order_deadlock_is_found() {
        let r = Model::new().preemption_bound(2).check("abba", || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            thread::scope(|s| {
                let (a2, b2) = (a.clone(), b.clone());
                thread::spawn_in(s, move || {
                    let _g = a2.lock().unwrap();
                    let _h = b2.lock().unwrap();
                });
                let _g = b.lock().unwrap();
                let _h = a.lock().unwrap();
            });
        });
        let fail = r.require_failure();
        assert_eq!(fail.kind, FailureKind::Deadlock, "{fail}");
    }

    #[test]
    fn missing_notify_is_a_lost_wakeup_deadlock() {
        let r = Model::new().check("lost_wakeup", || {
            let m = Arc::new(Mutex::new(false));
            let cv = Arc::new(Condvar::new());
            thread::scope(|s| {
                let (m2, cv2) = (m.clone(), cv.clone());
                thread::spawn_in(s, move || {
                    let mut flag = m2.lock().unwrap();
                    while !*flag {
                        flag = cv2.wait(flag).unwrap();
                    }
                });
                *m.lock().unwrap() = true;
                // Bug: no cv.notify_one() — the waiter can never wake.
            });
        });
        let fail = r.require_failure();
        assert_eq!(fail.kind, FailureKind::Deadlock, "{fail}");
        assert!(
            fail.message.contains("condvar"),
            "deadlock report should name the condvar wait: {fail}"
        );
    }

    #[test]
    fn if_instead_of_while_wait_is_caught_by_spurious_wakeup() {
        let r = Model::new().spurious_budget(1).check("if_wait", || {
            let m = Arc::new(Mutex::new(0u32));
            let cv = Arc::new(Condvar::new());
            thread::scope(|s| {
                let (m2, cv2) = (m.clone(), cv.clone());
                thread::spawn_in(s, move || {
                    let mut items = m2.lock().unwrap();
                    // Bug: `if`, not `while` — a spurious wakeup
                    // falls through with the predicate still false.
                    if *items == 0 {
                        items = cv2.wait(items).unwrap();
                    }
                    assert!(*items > 0, "woke with nothing to consume");
                });
                *m.lock().unwrap() += 1;
                cv.notify_one();
            });
        });
        let fail = r.require_failure();
        assert_eq!(fail.kind, FailureKind::Panic, "{fail}");
        assert!(
            fail.message.contains("woke with nothing"),
            "unexpected failure: {fail}"
        );
    }

    #[test]
    fn torn_read_modify_write_race_is_found() {
        // Non-atomic increment (load; store) on a shared atomic: some
        // schedule loses an update, and the checker must find it.
        let r = Model::new().preemption_bound(2).check("rmw_race", || {
            let c = Arc::new(AtomicU64::new(0));
            thread::scope(|s| {
                for _ in 0..2 {
                    let c = c.clone();
                    thread::spawn_in(s, move || {
                        let v = c.load(SeqCst);
                        c.store(v + 1, SeqCst);
                    });
                }
            });
            assert_eq!(c.load(SeqCst), 2, "lost update");
        });
        let fail = r.require_failure();
        assert_eq!(fail.kind, FailureKind::Panic, "{fail}");
    }

    #[test]
    fn fetch_add_increment_passes() {
        let r = Model::new().preemption_bound(2).check("fetch_add", || {
            let c = Arc::new(AtomicU64::new(0));
            thread::scope(|s| {
                for _ in 0..2 {
                    let c = c.clone();
                    thread::spawn_in(s, move || {
                        c.fetch_add(1, SeqCst);
                    });
                }
            });
            assert_eq!(c.load(SeqCst), 2);
        });
        r.require_pass();
    }

    #[test]
    fn pct_finds_the_rmw_race_and_reports_the_seed() {
        let r = Model::new().pct("pct_rmw", 0x5c10_6000, 256, 3, || {
            let c = Arc::new(AtomicU64::new(0));
            thread::scope(|s| {
                for _ in 0..2 {
                    let c = c.clone();
                    thread::spawn_in(s, move || {
                        let v = c.load(SeqCst);
                        c.store(v + 1, SeqCst);
                    });
                }
            });
            assert_eq!(c.load(SeqCst), 2, "lost update");
        });
        let fail = r.require_failure();
        assert!(
            fail.message.contains("seed 0x"),
            "PCT failure must print a replay seed: {}",
            fail.message
        );
    }

    #[test]
    fn registered_invariant_violation_is_reported_with_its_name() {
        let r = Model::new().check("invariant", || {
            let c = Arc::new(AtomicU64::new(0));
            let c2 = c.clone();
            super::register_invariant("counter_below_two", move || {
                assert!(c2.load(SeqCst) < 2, "counter reached two");
            });
            c.fetch_add(1, SeqCst);
            c.fetch_add(1, SeqCst);
            c.fetch_add(0, SeqCst); // one more scheduling point after the violation
        });
        let fail = r.require_failure();
        assert_eq!(fail.kind, FailureKind::Invariant, "{fail}");
        assert!(fail.message.contains("counter_below_two"), "{fail}");
    }
}
