//! Model-mode replacements for the `std::sync` primitives.
//!
//! Each primitive stores its data in an inner std container (so no
//! `unsafe` is needed for access) but routes *permission* through the
//! [`Runtime`](super::rt::Runtime) scheduler: once the scheduler has
//! granted logical ownership, the inner `try_lock` is guaranteed to
//! succeed. During an abort-unwind (a failure was recorded and every
//! thread is being torn down) the primitives degrade to plain
//! pass-through operations so `Drop` impls in protocol code can run
//! to completion.

use std::panic::Location;
use std::sync::atomic::Ordering;
use std::sync::{Arc, LockResult, TryLockError};
use std::sync::{Mutex as StdMutex, RwLock as StdRwLock};

use super::rt::{Obj, ObjCell, Runtime, Status};

fn ctx() -> (Arc<Runtime>, usize) {
    Runtime::current().expect(
        "sclog-sync model primitive used outside a model run — \
         create sync objects and threads inside Model::check's closure",
    )
}

// ---------------------------------------------------------------- Mutex

/// Model mutex: logical ownership decided by the scheduler, data held
/// in an inner `std::sync::Mutex` that is only ever `try_lock`ed
/// after the grant.
pub struct Mutex<T> {
    id: ObjCell,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new model mutex.
    pub const fn new(t: T) -> Self {
        Mutex {
            id: ObjCell::new(),
            inner: StdMutex::new(t),
        }
    }

    fn grab_inner(&self) -> std::sync::MutexGuard<'_, T> {
        match self.inner.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => {
                unreachable!("model mutex storage locked without a scheduler grant")
            }
        }
    }

    /// Acquire the mutex (a scheduling point). Never returns `Err`:
    /// the model has no poisoning (a panic aborts the execution), but
    /// the signature matches std so call sites compile unchanged.
    #[track_caller]
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let (rt, me) = ctx();
        if rt.is_aborting() {
            let inner = match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            return Ok(MutexGuard {
                lock: self,
                inner: Some(inner),
                rt,
                me,
                abort: true,
            });
        }
        let id = self.id.ensure(&rt, || Obj::Mutex { held_by: None });
        rt.yield_op(
            me,
            Location::caller(),
            "lock",
            |_st| Status::BlockedMutex(id),
            |st, me| {
                let holder = Runtime::mutex_holder_mut(st, id);
                debug_assert!(holder.is_none(), "mutex granted while held");
                *holder = Some(me);
            },
        );
        Ok(MutexGuard {
            lock: self,
            inner: Some(self.grab_inner()),
            rt,
            me,
            abort: false,
        })
    }

    /// Consume the mutex, returning the data.
    pub fn into_inner(self) -> LockResult<T> {
        match self.inner.into_inner() {
            Ok(t) => Ok(t),
            Err(p) => Ok(p.into_inner()),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard for a model [`Mutex`]. Dropping releases logical ownership
/// without a scheduling point (matching how std unlock cannot block).
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    rt: Arc<Runtime>,
    me: usize,
    abort: bool,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard storage present")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard storage present")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if !self.abort {
            self.rt.release_mutex(self.lock.id.get(), self.me);
        }
    }
}

// -------------------------------------------------------------- Condvar

/// Model condition variable with FIFO wakeup order and explicit
/// spurious-wakeup injection (the scheduler may wake any waiter
/// whose mutex is free, consuming the execution's spurious budget).
pub struct Condvar {
    id: ObjCell,
}

impl Condvar {
    /// Create a new model condvar.
    pub const fn new() -> Self {
        Condvar { id: ObjCell::new() }
    }

    /// Release the guard's mutex, wait to be notified (or spuriously
    /// woken), reacquire, and return the guard. Two scheduling
    /// points: the release+park, and the reacquire.
    #[track_caller]
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let (rt, me) = ctx();
        if rt.is_aborting() {
            // Waiting during teardown would park forever; unwind
            // instead. (Protocol `Drop` impls in this tree never
            // call `wait`, so this cannot double-panic.)
            drop(guard);
            std::panic::resume_unwind(Box::new(super::ModelAbort));
        }
        let lock = guard.lock;
        let mid = lock.id.get();
        let cid = self.id.ensure(&rt, || Obj::Condvar {
            waiters: Vec::new(),
        });
        // Atomic release-and-enqueue: dropping the guard frees the
        // mutex without a scheduling point, and no other thread runs
        // before `yield_op`'s prepare closure enqueues us.
        drop(guard);
        rt.yield_op(
            me,
            Location::caller(),
            "wait",
            |st| {
                Runtime::condvar_waiters_mut(st, cid).push(me);
                Status::BlockedCondvar {
                    cv: cid,
                    mutex: mid,
                }
            },
            |st, me| {
                let holder = Runtime::mutex_holder_mut(st, mid);
                debug_assert!(holder.is_none(), "wait woken while mutex held");
                *holder = Some(me);
            },
        );
        Ok(MutexGuard {
            lock,
            inner: Some(lock.grab_inner()),
            rt,
            me,
            abort: false,
        })
    }

    /// Wake the longest-waiting thread, if any (a scheduling point).
    #[track_caller]
    pub fn notify_one(&self) {
        let (rt, me) = ctx();
        if rt.is_aborting() {
            return;
        }
        let cid = self.id.ensure(&rt, || Obj::Condvar {
            waiters: Vec::new(),
        });
        rt.yield_op(
            me,
            Location::caller(),
            "notify_one",
            |_st| Status::Runnable,
            |st, _me| {
                if let Some(&t) = Runtime::condvar_waiters_mut(st, cid).first() {
                    Runtime::wake_waiter(st, t);
                }
            },
        );
    }

    /// Wake every waiting thread (a scheduling point).
    #[track_caller]
    pub fn notify_all(&self) {
        let (rt, me) = ctx();
        if rt.is_aborting() {
            return;
        }
        let cid = self.id.ensure(&rt, || Obj::Condvar {
            waiters: Vec::new(),
        });
        rt.yield_op(
            me,
            Location::caller(),
            "notify_all",
            |_st| Status::Runnable,
            |st, _me| {
                let waiters = Runtime::condvar_waiters_mut(st, cid).clone();
                for t in waiters {
                    Runtime::wake_waiter(st, t);
                }
            },
        );
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

// --------------------------------------------------------------- RwLock

/// Model reader-writer lock: readers share, writers exclude, no
/// writer preference (acquisition order is a scheduler choice, which
/// is exactly what the checker wants to explore).
pub struct RwLock<T> {
    id: ObjCell,
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new model rwlock.
    pub const fn new(t: T) -> Self {
        RwLock {
            id: ObjCell::new(),
            inner: StdRwLock::new(t),
        }
    }

    fn ensure(&self, rt: &Runtime) -> usize {
        self.id.ensure(rt, || Obj::RwLock {
            writer: None,
            readers: Vec::new(),
        })
    }

    /// Acquire a shared read lock (a scheduling point).
    #[track_caller]
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        let (rt, me) = ctx();
        if rt.is_aborting() {
            let inner = match self.inner.read() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            return Ok(RwLockReadGuard {
                lock: self,
                inner: Some(inner),
                rt,
                me,
                abort: true,
            });
        }
        let id = self.ensure(&rt);
        rt.yield_op(
            me,
            Location::caller(),
            "read",
            |_st| Status::BlockedRead(id),
            |st, me| {
                let (writer, readers) = Runtime::rwlock_mut(st, id);
                debug_assert!(writer.is_none(), "read granted under a writer");
                readers.push(me);
            },
        );
        let inner = match self.inner.try_read() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => {
                unreachable!("model rwlock storage write-locked without a grant")
            }
        };
        Ok(RwLockReadGuard {
            lock: self,
            inner: Some(inner),
            rt,
            me,
            abort: false,
        })
    }

    /// Acquire the exclusive write lock (a scheduling point).
    #[track_caller]
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        let (rt, me) = ctx();
        if rt.is_aborting() {
            let inner = match self.inner.write() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            return Ok(RwLockWriteGuard {
                lock: self,
                inner: Some(inner),
                rt,
                me,
                abort: true,
            });
        }
        let id = self.ensure(&rt);
        rt.yield_op(
            me,
            Location::caller(),
            "write",
            |_st| Status::BlockedWrite(id),
            |st, me| {
                let (writer, readers) = Runtime::rwlock_mut(st, id);
                debug_assert!(
                    writer.is_none() && readers.is_empty(),
                    "write granted while held"
                );
                *writer = Some(me);
            },
        );
        let inner = match self.inner.try_write() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => {
                unreachable!("model rwlock storage locked without a grant")
            }
        };
        Ok(RwLockWriteGuard {
            lock: self,
            inner: Some(inner),
            rt,
            me,
            abort: false,
        })
    }
}

/// Shared guard for a model [`RwLock`].
pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    rt: Arc<Runtime>,
    me: usize,
    abort: bool,
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard storage present")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if !self.abort {
            self.rt.release_rwlock(self.lock.id.get(), self.me, false);
        }
    }
}

/// Exclusive guard for a model [`RwLock`].
pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    rt: Arc<Runtime>,
    me: usize,
    abort: bool,
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard storage present")
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard storage present")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if !self.abort {
            self.rt.release_rwlock(self.lock.id.get(), self.me, true);
        }
    }
}

// -------------------------------------------------------------- Atomics

/// Shared implementation for the modeled atomics: every access is a
/// scheduling point and every access is sequentially consistent (the
/// scheduler serializes them; the declared `Ordering` is accepted for
/// source compatibility and recorded nowhere).
struct AtomicCell {
    id: ObjCell,
    init: u64,
}

impl AtomicCell {
    const fn new(init: u64) -> Self {
        AtomicCell {
            id: ObjCell::new(),
            init,
        }
    }

    fn ensure(&self, rt: &Runtime) -> usize {
        let init = self.init;
        self.id.ensure(rt, || Obj::Atomic { value: init })
    }

    #[track_caller]
    fn rmw(&self, desc: &str, f: impl FnOnce(u64) -> u64) -> u64 {
        let (rt, me) = ctx();
        let id = self.ensure(&rt);
        if Runtime::in_invariant() {
            panic!("model invariants must be read-only (attempted atomic {desc})");
        }
        if rt.is_aborting() {
            let old = rt.peek_atomic(id);
            rt.poke_atomic(id, f(old));
            return old;
        }
        rt.yield_op(
            me,
            Location::caller(),
            desc,
            |_st| Status::Runnable,
            |st, _me| {
                let v = Runtime::atomic_mut(st, id);
                let old = *v;
                *v = f(old);
                old
            },
        )
    }

    #[track_caller]
    fn load(&self) -> u64 {
        let (rt, me) = ctx();
        let id = self.ensure(&rt);
        if Runtime::in_invariant() || rt.is_aborting() {
            return rt.peek_atomic(id);
        }
        rt.yield_op(
            me,
            Location::caller(),
            "load",
            |_st| Status::Runnable,
            |st, _me| *Runtime::atomic_mut(st, id),
        )
    }
}

/// Model `AtomicU64`.
pub struct AtomicU64 {
    cell: AtomicCell,
}

impl AtomicU64 {
    /// Create a new modeled atomic.
    pub const fn new(v: u64) -> Self {
        AtomicU64 {
            cell: AtomicCell::new(v),
        }
    }

    /// Load the value (a scheduling point).
    #[track_caller]
    pub fn load(&self, _order: Ordering) -> u64 {
        self.cell.load()
    }

    /// Store a value (a scheduling point).
    #[track_caller]
    pub fn store(&self, v: u64, _order: Ordering) {
        self.cell.rmw("store", |_| v);
    }

    /// Add, returning the previous value (a scheduling point).
    #[track_caller]
    pub fn fetch_add(&self, v: u64, _order: Ordering) -> u64 {
        self.cell.rmw("fetch_add", |old| old.wrapping_add(v))
    }

    /// Subtract, returning the previous value (a scheduling point).
    #[track_caller]
    pub fn fetch_sub(&self, v: u64, _order: Ordering) -> u64 {
        self.cell.rmw("fetch_sub", |old| old.wrapping_sub(v))
    }

    /// Max, returning the previous value (a scheduling point).
    #[track_caller]
    pub fn fetch_max(&self, v: u64, _order: Ordering) -> u64 {
        self.cell.rmw("fetch_max", |old| old.max(v))
    }

    /// Swap, returning the previous value (a scheduling point).
    #[track_caller]
    pub fn swap(&self, v: u64, _order: Ordering) -> u64 {
        self.cell.rmw("swap", |_| v)
    }
}

/// Model `AtomicUsize`.
pub struct AtomicUsize {
    cell: AtomicCell,
}

impl AtomicUsize {
    /// Create a new modeled atomic.
    pub const fn new(v: usize) -> Self {
        AtomicUsize {
            cell: AtomicCell::new(v as u64),
        }
    }

    /// Load the value (a scheduling point).
    #[track_caller]
    pub fn load(&self, _order: Ordering) -> usize {
        self.cell.load() as usize
    }

    /// Store a value (a scheduling point).
    #[track_caller]
    pub fn store(&self, v: usize, _order: Ordering) {
        self.cell.rmw("store", |_| v as u64);
    }

    /// Add, returning the previous value (a scheduling point).
    #[track_caller]
    pub fn fetch_add(&self, v: usize, _order: Ordering) -> usize {
        self.cell.rmw("fetch_add", |old| old.wrapping_add(v as u64)) as usize
    }

    /// Subtract, returning the previous value (a scheduling point).
    #[track_caller]
    pub fn fetch_sub(&self, v: usize, _order: Ordering) -> usize {
        self.cell.rmw("fetch_sub", |old| old.wrapping_sub(v as u64)) as usize
    }
}

/// Model `AtomicBool`.
pub struct AtomicBool {
    cell: AtomicCell,
}

impl AtomicBool {
    /// Create a new modeled atomic.
    pub const fn new(v: bool) -> Self {
        AtomicBool {
            cell: AtomicCell::new(v as u64),
        }
    }

    /// Load the value (a scheduling point).
    #[track_caller]
    pub fn load(&self, _order: Ordering) -> bool {
        self.cell.load() != 0
    }

    /// Store a value (a scheduling point).
    #[track_caller]
    pub fn store(&self, v: bool, _order: Ordering) {
        self.cell.rmw("store", |_| v as u64);
    }

    /// Swap, returning the previous value (a scheduling point).
    #[track_caller]
    pub fn swap(&self, v: bool, _order: Ordering) -> bool {
        self.cell.rmw("swap", |_| v as u64) != 0
    }
}

// Reading an atomic is a scheduling point, which a Debug impl must
// never be (formatting can run outside any checked execution), so
// these print only the type name — matching std only in shape.
macro_rules! opaque_debug {
    ($($ty:ident),*) => {$(
        impl std::fmt::Debug for $ty {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_struct(stringify!($ty)).finish_non_exhaustive()
            }
        }
    )*};
}

opaque_debug!(AtomicU64, AtomicUsize, AtomicBool, Condvar);
