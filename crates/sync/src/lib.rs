//! Synchronization facade for the sclog workspace.
//!
//! Every hand-rolled sync protocol in the tree (the bounded MPSC
//! channel, `TagPool`'s job/result queues, the `InFlightGauge` permit
//! accounting, the obs recorder's registry sealing, `sclogd`'s
//! accept/worker handoff) imports its primitives from this crate
//! instead of `std::sync` (`scripts/tidy.sh` check 7 enforces it).
//!
//! In a normal build the facade is a literal re-export of `std::sync`
//! and `std::thread` — zero cost, zero behavior change. Under
//! `--cfg sclog_model` (set by `scripts/verify.sh --model-check`) the
//! same names resolve to the deterministic model runtime in
//! [`model`]: every acquire/wait/notify/atomic op becomes a scheduling
//! point of a controlled scheduler that runs exactly one thread at a
//! time and explores interleavings exhaustively under a preemption
//! bound (DESIGN.md §14). `crates/check` hosts the harnesses.
//!
//! The only API difference from `std::sync` is scoped spawning: call
//! sites use [`thread::spawn_in`]`(scope, f)` instead of
//! `scope.spawn(f)` so the model runtime can intercept thread
//! creation without wrapping `std::thread::Scope` (which is invariant
//! over its lifetime and cannot be re-borrowed shorter).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;

// Containers and error plumbing are mode-independent: the model
// runtime models scheduling, not memory, so `Arc` stays `Arc` and the
// poison types keep call sites (`unwrap_or_else(PoisonError::
// into_inner)`) compiling unchanged in both modes.
pub use std::sync::{Arc, LockResult, PoisonError, Weak};

#[cfg(not(sclog_model))]
pub use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(sclog_model)]
pub use model::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Atomics facade. `Ordering` is always the std enum; under model
/// mode the orderings are recorded for traces but every access is
/// sequentially consistent (the scheduler serializes all of them).
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    #[cfg(not(sclog_model))]
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};

    #[cfg(sclog_model)]
    pub use crate::model::sync::{AtomicBool, AtomicU64, AtomicUsize};
}

/// Threading facade. Normal builds pass straight through to
/// `std::thread`; model builds register every spawned thread with the
/// scheduler so it becomes part of the explored interleaving.
pub mod thread {
    pub use std::thread::Scope;

    #[cfg(not(sclog_model))]
    pub use std::thread::{scope, JoinHandle, ScopedJoinHandle};

    #[cfg(sclog_model)]
    pub use crate::model::thread::{scope, JoinHandle, ScopedJoinHandle};

    /// Spawn a scoped thread. Equivalent to `scope.spawn(f)`; exists
    /// as a free function so the model build can intercept the spawn
    /// (see the crate docs).
    #[cfg(not(sclog_model))]
    #[inline]
    pub fn spawn_in<'scope, 'env, F, T>(
        scope: &'scope Scope<'scope, 'env>,
        f: F,
    ) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        scope.spawn(f)
    }

    #[cfg(sclog_model)]
    pub use crate::model::thread::spawn_in;

    /// Spawn a free (non-scoped) thread.
    #[cfg(not(sclog_model))]
    #[inline]
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        std::thread::spawn(f)
    }

    #[cfg(sclog_model)]
    pub use crate::model::thread::spawn;
}

/// Assert a protocol invariant.
///
/// Expands to `debug_assert!` in normal builds (free in release, same
/// as the pre-facade code) but to a hard `assert!` under model mode,
/// so the checker verifies the invariant on **every** explored
/// schedule rather than only the schedules a live run happens to hit.
#[cfg(not(sclog_model))]
#[macro_export]
macro_rules! model_assert {
    ($($arg:tt)*) => {
        debug_assert!($($arg)*)
    };
}

/// Assert a protocol invariant (model build: hard assert on every
/// explored schedule).
#[cfg(sclog_model)]
#[macro_export]
macro_rules! model_assert {
    ($($arg:tt)*) => {
        assert!($($arg)*)
    };
}
