//! Study configuration and execution.

use crate::pipeline::{self, PipelineStats};
use sclog_filter::{AlertFilter, SpatioTemporalFilter};
use sclog_obs::ObsConfig;
use sclog_rules::RuleSet;
use sclog_simgen::{GenLog, Scale};
use sclog_types::{Alert, CategoryRegistry, ObsReport, SystemId, ALL_SYSTEMS};

/// A configured reproduction study.
///
/// Generation scale and seed are fixed at construction so every run is
/// reproducible; systems are run independently. Execution is the
/// streaming pipeline ([`crate::pipeline`]): tagging, truth attachment
/// and filtering proceed over bounded batches, with results identical
/// to the batch passes at any [`Study::threads`] / [`Study::chunk_size`]
/// setting.
#[derive(Debug, Clone, Copy)]
pub struct Study {
    scale: Scale,
    seed: u64,
    /// Worker threads; 0 = auto (`available_parallelism`, capped at 8).
    threads: usize,
    /// Messages per pipeline batch.
    chunk: usize,
    /// Observability; off by default.
    obs: ObsConfig,
}

impl Study {
    /// Creates a study at the given alert/background scales and seed.
    ///
    /// # Panics
    ///
    /// Panics if scales are outside `(0, 1]` (see
    /// [`sclog_simgen::Scale`]).
    pub fn new(alert_scale: f64, background_scale: f64, seed: u64) -> Self {
        Study::with_scale(Scale::new(alert_scale, background_scale), seed)
    }

    /// Creates a study from a prebuilt [`Scale`].
    pub fn with_scale(scale: Scale, seed: u64) -> Self {
        Study {
            scale,
            seed,
            threads: 0,
            chunk: pipeline::DEFAULT_CHUNK_MESSAGES,
            obs: ObsConfig::off(),
        }
    }

    /// Turns observability on or off for runs of this study. When on,
    /// each [`SystemRun`] carries an [`ObsReport`] — the per-stage
    /// waterfall, worker utilisation, prefilter effectiveness and
    /// in-flight gauges of its pipeline run. Off (the default) adds no
    /// work to the pipeline at all.
    pub fn obs(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Overrides the worker thread count; `0` restores the default
    /// (`available_parallelism`, capped at 8). Benches and tests use
    /// this to pin parallelism deterministically.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides the pipeline batch size in messages.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn chunk_size(mut self, chunk: usize) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        self.chunk = chunk;
        self
    }

    /// The configured scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The configured seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The worker thread count a run will use.
    pub fn resolved_threads(&self) -> usize {
        if self.threads != 0 {
            return self.threads;
        }
        std::thread::available_parallelism().map_or(1, |n| n.get().min(8))
    }

    /// Runs the full pipeline for one system: generate, tag with the
    /// built-in expert ruleset, attach ground truth, filter with the
    /// paper's Algorithm 3.1 at `T = 5 s`.
    pub fn run_system(&self, system: SystemId) -> SystemRun {
        self.run(system, None)
    }

    /// Runs the pipeline restricted to a subset of alert categories
    /// (background is still generated) — for drill-down analyses that
    /// would otherwise pay for a dominant category's volume.
    ///
    /// # Panics
    ///
    /// Panics if a named category does not exist on the system.
    pub fn run_subset(&self, system: SystemId, categories: &[&str]) -> SystemRun {
        self.run(system, Some(categories))
    }

    fn run(&self, system: SystemId, only: Option<&[&str]>) -> SystemRun {
        let log = sclog_simgen::generate_categories(system, self.scale, self.seed, only);
        let mut registry = CategoryRegistry::new();
        let rules = RuleSet::builtin(system, &mut registry);
        let recorder = self.obs.recorder();
        // Study-level metrics must register before the pipeline's
        // first worker shard seals the recorder. Category names are
        // known here (the ruleset just populated the registry), so the
        // report can carry per-category tag counts.
        let gen_messages = recorder.counter("simgen.messages");
        let gen_failures = recorder.counter("simgen.failures");
        let category_counters: Vec<_> = if recorder.enabled() {
            registry
                .iter()
                .map(|(id, def)| (id, recorder.counter(&format!("category.{}", def.name))))
                .collect()
        } else {
            Vec::new()
        };
        let (tagged, filtered, stats) = pipeline::tag_filter_stream_with(
            &rules,
            &log.messages,
            &log.interner,
            Some(&log.truth),
            &SpatioTemporalFilter::paper(),
            self.resolved_threads(),
            self.chunk,
            &recorder,
        );
        let obs = self.obs.is_enabled().then(|| {
            // A fresh shard after the run (sealing only stops new
            // *definitions*, not new shards) to flush whole-run tallies.
            let tr = recorder.thread("study");
            tr.add(gen_messages, log.len() as u64);
            tr.add(gen_failures, log.failure_count);
            let by_category = tagged.counts_by_category();
            for (id, counter) in &category_counters {
                tr.add(*counter, by_category.get(id).copied().unwrap_or(0));
            }
            recorder.snapshot().report()
        });
        SystemRun {
            system,
            log,
            registry,
            tagged,
            filtered,
            stats,
            obs,
        }
    }

    /// Runs the pipeline as three materialized batch passes — the
    /// reference implementation the streaming path must match
    /// bit-for-bit. Kept for equivalence tests and the batch side of
    /// `pipeline_bench`.
    pub fn run_system_batch(&self, system: SystemId) -> SystemRun {
        let log = sclog_simgen::generate_categories(system, self.scale, self.seed, None);
        let mut registry = CategoryRegistry::new();
        let rules = RuleSet::builtin(system, &mut registry);
        let mut tagged =
            rules.tag_messages_parallel(&log.messages, &log.interner, self.resolved_threads());
        tagged.attach_truth(&log.truth);
        let filtered = SpatioTemporalFilter::paper().filter(&tagged.alerts);
        let n = log.messages.len();
        let stats = PipelineStats {
            threads: self.resolved_threads(),
            batches: 1,
            peak_in_flight_batches: 1,
            in_flight_bound_batches: 1,
            peak_in_flight_messages: n,
            in_flight_bound_messages: Some(n),
        };
        SystemRun {
            system,
            log,
            registry,
            tagged,
            filtered,
            stats,
            obs: None,
        }
    }

    /// Runs every system, in the paper's table order.
    pub fn run_all(&self) -> Vec<SystemRun> {
        ALL_SYSTEMS.iter().map(|&s| self.run_system(s)).collect()
    }
}

/// The artifacts of running the pipeline on one system.
#[derive(Debug)]
pub struct SystemRun {
    /// Which system.
    pub system: SystemId,
    /// The generated log (messages, ground truth, interner).
    pub log: GenLog,
    /// Category registry populated by the ruleset.
    pub registry: CategoryRegistry,
    /// Expert-tagged alerts, with ground truth attached.
    pub tagged: sclog_rules::TaggedLog,
    /// Alerts surviving Algorithm 3.1 at the paper threshold.
    pub filtered: Vec<Alert>,
    /// What the pipeline observed about its working set.
    pub stats: PipelineStats,
    /// The run report, when the study had [`Study::obs`] turned on.
    /// `None` for batch-reference runs, which are not instrumented.
    pub obs: Option<ObsReport>,
}

impl SystemRun {
    /// Observed categories (those with at least one tagged alert).
    pub fn observed_categories(&self) -> usize {
        self.tagged.counts_by_category().len()
    }

    /// Raw alert count.
    pub fn raw_alerts(&self) -> usize {
        self.tagged.len()
    }

    /// Filtered alert count.
    pub fn filtered_alerts(&self) -> usize {
        self.filtered.len()
    }

    /// Message count.
    pub fn messages(&self) -> usize {
        self.log.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_produces_consistent_run() {
        let study = Study::new(0.01, 0.0002, 7);
        let run = study.run_system(SystemId::Liberty);
        assert_eq!(run.system, SystemId::Liberty);
        assert!(run.raw_alerts() > 0);
        assert!(run.filtered_alerts() > 0);
        assert!(run.filtered_alerts() <= run.raw_alerts());
        assert!(run.messages() > run.raw_alerts());
        assert!(
            run.observed_categories() >= 2,
            "frequent Liberty categories observed"
        );
    }

    #[test]
    fn tagging_recovers_generated_alerts() {
        // Every generated alert message should be tagged by the expert
        // rules (modulo the few corrupted beyond recognition), and tags
        // must agree with ground-truth categories.
        let study = Study::new(0.02, 0.0001, 11);
        let run = study.run_system(SystemId::Liberty);
        let truth_alerts = run.log.truth.iter().filter(|t| t.is_some()).count();
        let tagged = run.raw_alerts();
        assert!(
            (tagged as f64) >= 0.97 * truth_alerts as f64,
            "tagged {tagged} of {truth_alerts} generated alerts"
        );
        // Cross-check category names where ground truth exists.
        let mut mismatches = 0;
        for a in &run.tagged.alerts {
            if let Some(true_name) = run.log.truth_category[a.message_index] {
                if run.registry.name(a.category) != true_name {
                    mismatches += 1;
                }
            }
        }
        assert_eq!(mismatches, 0, "expert tags disagree with ground truth");
    }

    #[test]
    fn runs_are_reproducible() {
        let study = Study::new(0.01, 0.0001, 3);
        let a = study.run_system(SystemId::BlueGeneL);
        let b = study.run_system(SystemId::BlueGeneL);
        assert_eq!(a.tagged.alerts, b.tagged.alerts);
        assert_eq!(a.filtered, b.filtered);
    }

    #[test]
    fn accessors() {
        let study = Study::with_scale(sclog_simgen::Scale::tiny(), 5);
        assert_eq!(study.seed(), 5);
        assert!(study.scale().alerts > 0.0);
    }

    #[test]
    fn threads_override_pins_worker_count() {
        let study = Study::new(0.01, 0.0001, 3);
        assert_eq!(study.threads(3).resolved_threads(), 3);
        assert_eq!(
            study.threads(3).threads(0).resolved_threads(),
            study.resolved_threads()
        );
        assert!(study.resolved_threads() >= 1, "auto resolves to something");
    }

    #[test]
    fn streaming_run_matches_batch_reference() {
        let study = Study::new(0.01, 0.0002, 13);
        let batch = study.run_system_batch(SystemId::Liberty);
        for (threads, chunk) in [(1, 512), (2, 64), (4, 4096)] {
            let run = study
                .threads(threads)
                .chunk_size(chunk)
                .run_system(SystemId::Liberty);
            assert_eq!(
                run.tagged.alerts, batch.tagged.alerts,
                "t={threads} c={chunk}"
            );
            assert_eq!(run.filtered, batch.filtered, "t={threads} c={chunk}");
        }
    }

    #[test]
    fn run_reports_bounded_working_set() {
        let study = Study::new(0.01, 0.0002, 13).threads(2).chunk_size(64);
        let run = study.run_system(SystemId::Liberty);
        let bound = run.stats.in_flight_bound_messages.unwrap();
        assert!(run.stats.peak_in_flight_messages <= bound);
        assert!(
            bound < run.messages(),
            "streaming working set is a fraction of the log"
        );
        let batch = study.run_system_batch(SystemId::Liberty);
        assert_eq!(batch.stats.peak_in_flight_messages, batch.messages());
    }

    #[test]
    fn obs_off_by_default_and_report_when_on() {
        let study = Study::new(0.01, 0.0002, 13).threads(2).chunk_size(256);
        let plain = study.run_system(SystemId::Liberty);
        assert!(plain.obs.is_none(), "no report unless asked");

        let run = study.obs(ObsConfig::on()).run_system(SystemId::Liberty);
        let report = run.obs.as_ref().expect("obs on produces a report");
        assert_eq!(
            run.tagged.alerts, plain.tagged.alerts,
            "obs changes nothing"
        );
        assert_eq!(run.filtered, plain.filtered);
        // Stage accounting squares with the run's own outputs.
        assert_eq!(
            report.counter("tagger.lines"),
            Some(run.messages() as u64),
            "every message went through the tag loop"
        );
        assert_eq!(
            report.counter("filter.alerts_in"),
            Some(run.raw_alerts() as u64)
        );
        assert_eq!(
            report.counter("filter.alerts_kept"),
            Some(run.filtered_alerts() as u64)
        );
        assert_eq!(
            report.counter("simgen.messages"),
            Some(run.messages() as u64)
        );
        for stage in ["produce", "tag", "filter"] {
            assert!(report.stage(stage).is_some(), "stage {stage} in waterfall");
        }
        // Gauges mirror PipelineStats, bound included.
        let g = report.gauge("pipeline.in_flight_batches").unwrap();
        assert_eq!(g.peak, run.stats.peak_in_flight_batches as u64);
        assert_eq!(g.bound, Some(run.stats.in_flight_bound_batches as u64));
        assert_eq!(g.current, 0, "everything released by the end");
        // Per-category counters sum to the raw alert count.
        let per_category: u64 = report
            .counters
            .iter()
            .filter(|c| c.name.starts_with("category."))
            .map(|c| c.value)
            .sum();
        assert_eq!(per_category, run.raw_alerts() as u64);
        assert!(report.wall_ns > 0);
        assert!(report.coverage > 0.0);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_rejected() {
        let _ = Study::new(0.01, 0.0001, 3).chunk_size(0);
    }
}
