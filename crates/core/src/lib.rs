//! The study pipeline: generate → parse → tag → filter → analyze.
//!
//! This crate ties the substrates together into the paper's workflow
//! and exposes a typed reproduction API for every table and figure in
//! the evaluation:
//!
//! * [`Study`] — configuration (scale, seed, systems) and execution;
//!   [`SystemRun`] holds one system's generated log, tagged alerts, and
//!   filtered alerts with ground truth attached.
//! * [`tables`] — `Table1` through `Table6`, each a typed row set with
//!   a text renderer matching the paper's layout.
//! * [`figures`] — the data behind Figures 2–6 (time series, per-source
//!   counts, category scatter, interarrival fits, log histograms).
//!
//! # Examples
//!
//! ```
//! use sclog_core::Study;
//! use sclog_types::SystemId;
//!
//! let study = Study::new(0.01, 0.0001, 42);
//! let run = study.run_system(SystemId::Liberty);
//! assert!(run.tagged.len() > 0);
//! assert!(run.filtered.len() <= run.tagged.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod pipeline;
mod study;
pub mod tables;
pub mod text;

pub use pipeline::{IngestConfig, IngestResult, PipelineStats};
pub use sclog_obs::ObsConfig;
pub use study::{Study, SystemRun};
