//! Streaming ingestion of raw log text.
//!
//! Where the study pipeline tags an in-memory generated log, this
//! module ingests *text* — the shape of the paper's real workload,
//! 178 million raw lines — through four overlapped stages:
//!
//! ```text
//!  reader thread        parse stage (caller)      TagPool      consumer thread
//!  ─────────────        ────────────────────      ───────      ───────────────
//!  LineChunker     ──▶  LogReader::push_line ──▶  tag the ──▶  reassemble,
//!  (bounded text        build LineBatch           RAW line     filter stream
//!   channel)            (spans + time/source)
//! ```
//!
//! The tagging stage works on the **raw line text**, not a re-rendered
//! message — exactly how the administrators' awk rules ran — which
//! also skips the render that dominates batch tagging cost. Parsed
//! `Message`s are drained per chunk and dropped once their header
//! fields are copied into [`sclog_rules::LineRef`]s, so no stage ever
//! holds the whole log.
//!
//! [`ingest_batch`] is the materialize-everything reference: identical
//! output, whole-log working set. The equivalence of the two paths
//! (raw-line vs rendered-message tagging included) is covered by
//! property tests over all five systems.

use super::{channel, InFlightGauge, PipeMetrics, PipelineStats, Reassembler, SerialMetrics};
use sclog_filter::{AlertFilter, SpatioTemporalFilter};
use sclog_obs::{Counter, Histogram, ObsConfig, Recorder, Stage, ThreadRecorder};
use sclog_parse::{LineChunker, LogReader, ParseStats};
use sclog_rules::{LineBatch, LineRef, RuleSet, TagPool, TagScratch, TaggedLog};
use sclog_types::{Alert, ObsReport, SourceInterner, SystemId};
use std::io::Read;

/// Tuning knobs for [`ingest_stream`].
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    /// Tagging worker threads (1 = inline serial pipeline).
    pub threads: usize,
    /// Target bytes per text chunk (one pool batch per chunk).
    pub chunk_bytes: usize,
    /// Capacity of the reader→parser text channel, in chunks.
    pub text_queue: usize,
    /// Observability: [`ObsConfig::on`] makes the run carry an
    /// [`ObsReport`] in [`IngestResult::obs`]. Off (the default) costs
    /// nothing.
    pub obs: ObsConfig,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            threads: 1,
            chunk_bytes: sclog_parse::DEFAULT_CHUNK_BYTES,
            text_queue: 4,
            obs: ObsConfig::off(),
        }
    }
}

impl IngestConfig {
    /// A config with the given worker count and default chunking.
    pub fn with_threads(threads: usize) -> Self {
        IngestConfig {
            threads,
            ..IngestConfig::default()
        }
    }
}

/// Everything ingestion produces.
#[derive(Debug)]
pub struct IngestResult {
    /// Alerts the expert rules tagged, in message order.
    pub tagged: TaggedLog,
    /// Alerts surviving the spatio-temporal filter.
    pub filtered: Vec<Alert>,
    /// Line accounting from the parser.
    pub parse: ParseStats,
    /// The interner naming every [`Alert::source`] in `tagged` — kept
    /// so consumers that outlive the call (a query server holding the
    /// alerts) can still resolve node names.
    pub sources: SourceInterner,
    /// Pipeline memory observations.
    pub stats: PipelineStats,
    /// The run report, when [`IngestConfig::obs`] was on.
    pub obs: Option<ObsReport>,
}

/// Ingests raw log text from a reader through the streaming pipeline.
///
/// # Errors
///
/// Returns the first I/O error from `reader`; work completed before
/// the error is discarded.
///
/// # Panics
///
/// Panics if `threads`, `chunk_bytes` or `text_queue` is zero.
pub fn ingest_stream(
    system: SystemId,
    reader: impl Read + Send,
    rules: &RuleSet,
    filter: &SpatioTemporalFilter,
    config: IngestConfig,
) -> std::io::Result<IngestResult> {
    assert!(config.threads > 0, "need at least one thread");
    assert!(
        config.text_queue > 0,
        "text queue capacity must be positive"
    );
    if config.threads == 1 {
        return ingest_serial(system, reader, rules, filter, config);
    }

    let job_cap = config.threads * sclog_rules::pool::JOBS_PER_WORKER;
    let bound_batches = job_cap + config.threads;
    let gauge = InFlightGauge::new(bound_batches);
    let recorder = config.obs.recorder();
    let pipe_metrics = PipeMetrics::register(&recorder);
    let metrics = IngestMetrics::register(&recorder);
    gauge.adopt_into(&recorder);
    let mut log_reader = LogReader::for_system(system);
    let mut batches = 0u64;
    let mut next_index = 0usize;

    let outcome = TagPool::scope_with(rules, config.threads, job_cap, &recorder, |pool| {
        let (text_tx, text_rx) = channel::bounded(config.text_queue);
        let (permit_tx, permit_rx) = channel::bounded::<()>(bound_batches);
        let gauge = &gauge;
        let log_reader = &mut log_reader;
        let batches = &mut batches;
        let next_index = &mut next_index;
        let tr_read = recorder.thread("reader");
        let tr_cons = recorder.thread("consumer");
        let tr_main = recorder.thread("parser");
        std::thread::scope(|s| {
            s.spawn(move || {
                let tr = tr_read;
                let mut chunks = LineChunker::with_target(reader, config.chunk_bytes);
                loop {
                    let item = {
                        // The chunker pulls from the underlying reader
                        // here — this is the stage's real I/O work.
                        let _busy = tr.span(metrics.read);
                        chunks.next()
                    };
                    let Some(chunk) = item else { break };
                    let bytes = chunk.as_ref().map_or(0, |t| t.len()) as u64;
                    tr.stage_items(metrics.read, 1, bytes);
                    let _wait = tr.wait_span(metrics.read);
                    if text_tx.send(chunk).is_err() {
                        break; // parse stage bailed on an earlier error
                    }
                }
                tr.add(metrics.swar_blocks, chunks.swar_blocks());
            });
            let consumer = s.spawn(move || {
                let tr = tr_cons;
                let mut reasm = Reassembler::new();
                let mut alerts = Vec::new();
                let mut filtered = Vec::new();
                let mut stream = filter.stream();
                loop {
                    let received = {
                        let _wait = tr.wait_span(pipe_metrics.filter);
                        pool.recv()
                    };
                    let Some(batch) = received else { break };
                    let _busy = tr.span(pipe_metrics.filter);
                    reasm.push(batch.seq, batch);
                    tr.record_max(pipe_metrics.pending_peak, reasm.pending() as u64);
                    while let Some(b) = reasm.pop_ready() {
                        gauge.release(b.len);
                        let _ = permit_rx.recv();
                        tr.stage_items(pipe_metrics.filter, b.alerts.len() as u64, 0);
                        for a in b.alerts {
                            if stream.push(&a) {
                                filtered.push(a);
                            }
                            alerts.push(a);
                        }
                    }
                }
                if let Some(gap) = reasm.truncation() {
                    panic!("tagging stream truncated: {gap}");
                }
                tr.add(pipe_metrics.alerts_in, stream.pushed());
                tr.add(pipe_metrics.alerts_kept, stream.kept());
                (alerts, filtered)
            });
            let mut err = None;
            loop {
                let item = {
                    let _wait = tr_main.wait_span(metrics.parse);
                    text_rx.recv()
                };
                let Some(item) = item else { break };
                let text = match item {
                    Ok(text) => text,
                    Err(e) => {
                        err = Some(e);
                        break;
                    }
                };
                let lines = {
                    let _busy = tr_main.span(metrics.parse);
                    parse_chunk(log_reader, &text, next_index)
                };
                tr_main.observe(metrics.chunk_bytes, text.len() as u64);
                tr_main.stage_items(metrics.parse, lines.len() as u64, text.len() as u64);
                {
                    // Backpressure: block while the in-flight bound is full.
                    let _wait = tr_main.wait_span(pipe_metrics.produce);
                    permit_tx.send(()).expect("consumer outlives producer");
                }
                let _busy = tr_main.span(pipe_metrics.produce);
                gauge.acquire(lines.len());
                pool.submit_lines(LineBatch { text, lines });
                *batches += 1;
            }
            drop(text_rx); // reader thread unblocks and exits
            drop(permit_tx);
            pool.close();
            let (alerts, filtered) = consumer.join().expect("pipeline consumer panicked");
            metrics.flush_parse(&tr_main, log_reader.stats());
            match err {
                Some(e) => Err(e),
                None => Ok((alerts, filtered)),
            }
        })
    });
    let (alerts, filtered) = outcome?;
    let (_, ctx, parse) = log_reader.into_parts();

    Ok(IngestResult {
        tagged: TaggedLog { alerts },
        filtered,
        parse,
        sources: ctx.interner,
        stats: PipelineStats {
            threads: config.threads,
            batches,
            peak_in_flight_batches: gauge.peak_batches(),
            in_flight_bound_batches: bound_batches,
            peak_in_flight_messages: gauge.peak_messages(),
            in_flight_bound_messages: None,
        },
        obs: config
            .obs
            .is_enabled()
            .then(|| recorder.snapshot().report()),
    })
}

/// Metric handles specific to text ingestion, registered before the
/// pool seals the recorder.
#[derive(Debug, Clone, Copy)]
struct IngestMetrics {
    read: Stage,
    parse: Stage,
    /// Size distribution of the reader's text chunks.
    chunk_bytes: Histogram,
    /// 8-byte SWAR lanes the chunker's newline scan examined.
    swar_blocks: Counter,
    lines_parsed: Counter,
    lines_empty: Counter,
    lines_bad_timestamp: Counter,
    lines_too_short: Counter,
}

impl IngestMetrics {
    fn register(rec: &Recorder) -> Self {
        IngestMetrics {
            read: rec.stage("read"),
            parse: rec.stage("parse"),
            chunk_bytes: rec.histogram("pipeline.chunk_bytes"),
            swar_blocks: rec.counter("chunker.swar_blocks"),
            lines_parsed: rec.counter("parse.lines"),
            lines_empty: rec.counter("parse.empty"),
            lines_bad_timestamp: rec.counter("parse.bad_timestamp"),
            lines_too_short: rec.counter("parse.too_short"),
        }
    }

    /// Flushes the reader's final line accounting (kept as plain
    /// counters in [`ParseStats`] during the run).
    fn flush_parse(&self, tr: &ThreadRecorder, stats: &ParseStats) {
        tr.add(self.lines_parsed, stats.parsed);
        tr.add(self.lines_empty, stats.empty);
        tr.add(self.lines_bad_timestamp, stats.bad_timestamp);
        tr.add(self.lines_too_short, stats.too_short);
    }
}

/// The single-threaded arm: chunked read, parse, raw-line tag and
/// filter inline — one chunk in flight by construction.
fn ingest_serial(
    system: SystemId,
    reader: impl Read,
    rules: &RuleSet,
    filter: &SpatioTemporalFilter,
    config: IngestConfig,
) -> std::io::Result<IngestResult> {
    let recorder = config.obs.recorder();
    let metrics = IngestMetrics::register(&recorder);
    let serial_metrics = SerialMetrics::register(&recorder);
    let tr = recorder.thread("serial");
    let mut log_reader = LogReader::for_system(system);
    let mut scratch = TagScratch::new();
    let mut alerts = Vec::new();
    let mut filtered = Vec::new();
    let mut stream = filter.stream();
    let mut next_index = 0usize;
    let mut batches = 0u64;
    let mut peak = 0usize;
    let mut chunks = LineChunker::with_target(reader, config.chunk_bytes);
    loop {
        let item = {
            let _busy = tr.span(metrics.read);
            chunks.next()
        };
        let Some(chunk) = item else { break };
        let text = chunk?;
        tr.stage_items(metrics.read, 1, text.len() as u64);
        tr.observe(metrics.chunk_bytes, text.len() as u64);
        let lines = {
            let _busy = tr.span(metrics.parse);
            parse_chunk(&mut log_reader, &text, &mut next_index)
        };
        tr.stage_items(metrics.parse, lines.len() as u64, text.len() as u64);
        batches += 1;
        peak = peak.max(lines.len());
        let _busy = tr.span(serial_metrics.tag);
        for line in &lines {
            let raw = &text[line.start..line.end];
            if let Some(category) = rules.tag_line_with(raw, &mut scratch) {
                let alert = Alert::new(line.time, line.source, category, line.index);
                if stream.push(&alert) {
                    filtered.push(alert);
                }
                alerts.push(alert);
            }
        }
        let counts = scratch.take_counts();
        tr.stage_items(serial_metrics.tag, lines.len() as u64, counts.bytes);
        serial_metrics.flush(&tr, counts);
    }
    tr.add(serial_metrics.alerts_in, stream.pushed());
    tr.add(serial_metrics.alerts_kept, stream.kept());
    tr.add(metrics.swar_blocks, chunks.swar_blocks());
    metrics.flush_parse(&tr, log_reader.stats());
    let (_, ctx, parse) = log_reader.into_parts();
    Ok(IngestResult {
        tagged: TaggedLog { alerts },
        filtered,
        parse,
        sources: ctx.interner,
        stats: PipelineStats {
            threads: 1,
            batches,
            peak_in_flight_batches: 1.min(batches as usize),
            in_flight_bound_batches: 1,
            peak_in_flight_messages: peak,
            in_flight_bound_messages: None,
        },
        obs: config
            .obs
            .is_enabled()
            .then(|| recorder.snapshot().report()),
    })
}

/// Parses one text chunk line by line, returning a [`LineRef`] per
/// accepted line (span in `text` plus the parsed header fields).
/// Line splitting matches [`sclog_parse::logical_lines`]:
/// `\n`-separated, a trailing `\r` stripped from both the parsed text
/// and the recorded span — including on a final line that lacks its
/// terminating newline, so a CRLF log cut mid-ending parses the same
/// here as in the batch path.
fn parse_chunk(reader: &mut LogReader, text: &str, next_index: &mut usize) -> Vec<LineRef> {
    let mut spans = Vec::new();
    let mut pos = 0usize;
    for piece in text.split('\n') {
        if pos == text.len() {
            break; // trailing empty piece after a final newline
        }
        let start = pos;
        pos += piece.len() + 1;
        let line = piece.strip_suffix('\r').unwrap_or(piece);
        if reader.push_line(line).is_some() {
            spans.push((start, start + line.len()));
        }
    }
    let messages = reader.take_messages();
    debug_assert_eq!(messages.len(), spans.len());
    spans
        .into_iter()
        .zip(messages)
        .map(|((start, end), msg)| {
            let index = *next_index;
            *next_index += 1;
            LineRef {
                start,
                end,
                index,
                time: msg.time,
                source: msg.source,
            }
        })
        .collect()
}

/// The materialized reference path: parse everything, tag the rendered
/// messages, filter once — identical output to [`ingest_stream`], with
/// the whole log as its working set (reflected in the returned stats).
pub fn ingest_batch(
    system: SystemId,
    text: &str,
    rules: &RuleSet,
    filter: &SpatioTemporalFilter,
    threads: usize,
) -> IngestResult {
    let mut reader = LogReader::for_system(system);
    reader.push_text(text);
    let (messages, ctx, parse) = reader.into_parts();
    let tagged = rules.tag_messages_parallel(&messages, &ctx.interner, threads);
    let filtered = filter.filter(&tagged.alerts);
    let n = messages.len();
    IngestResult {
        tagged,
        filtered,
        parse,
        sources: ctx.interner,
        stats: PipelineStats {
            threads,
            batches: 1,
            peak_in_flight_batches: 1,
            in_flight_bound_batches: 1,
            peak_in_flight_messages: n,
            in_flight_bound_messages: Some(n),
        },
        obs: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sclog_simgen::Scale;
    use sclog_types::CategoryRegistry;

    fn liberty_text() -> String {
        sclog_simgen::generate(SystemId::Liberty, Scale::new(0.01, 0.0002), 17).render()
    }

    fn liberty_rules() -> (RuleSet, CategoryRegistry) {
        let mut registry = CategoryRegistry::new();
        let rules = RuleSet::builtin(SystemId::Liberty, &mut registry);
        (rules, registry)
    }

    #[test]
    fn stream_matches_batch_on_rendered_log() {
        let text = liberty_text();
        let (rules, _) = liberty_rules();
        let filter = SpatioTemporalFilter::paper();
        let batch = ingest_batch(SystemId::Liberty, &text, &rules, &filter, 1);
        for threads in [1, 2, 4] {
            let config = IngestConfig {
                threads,
                chunk_bytes: 8 * 1024,
                text_queue: 3,
                obs: ObsConfig::off(),
            };
            let stream =
                ingest_stream(SystemId::Liberty, text.as_bytes(), &rules, &filter, config).unwrap();
            assert_eq!(stream.tagged.alerts, batch.tagged.alerts, "t={threads}");
            assert_eq!(stream.filtered, batch.filtered, "t={threads}");
            assert_eq!(stream.parse, batch.parse, "t={threads}");
            assert!(stream.stats.peak_in_flight_batches <= stream.stats.in_flight_bound_batches);
            assert!(
                stream.stats.peak_in_flight_messages < batch.stats.peak_in_flight_messages,
                "streaming working set beats whole-log materialization"
            );
        }
    }

    #[test]
    fn chunk_size_does_not_change_output() {
        let text = liberty_text();
        let (rules, _) = liberty_rules();
        let filter = SpatioTemporalFilter::paper();
        let reference = ingest_stream(
            SystemId::Liberty,
            text.as_bytes(),
            &rules,
            &filter,
            IngestConfig::default(),
        )
        .unwrap();
        for chunk_bytes in [64, 1024, 1 << 20] {
            let config = IngestConfig {
                threads: 2,
                chunk_bytes,
                text_queue: 2,
                obs: ObsConfig::off(),
            };
            let run =
                ingest_stream(SystemId::Liberty, text.as_bytes(), &rules, &filter, config).unwrap();
            assert_eq!(
                run.tagged.alerts, reference.tagged.alerts,
                "c={chunk_bytes}"
            );
            assert_eq!(run.filtered, reference.filtered, "c={chunk_bytes}");
        }
    }

    #[test]
    fn io_error_propagates_from_stream() {
        struct FailAfter(usize);
        impl Read for FailAfter {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.0 == 0 {
                    return Err(std::io::Error::other("link down"));
                }
                self.0 -= 1;
                let line = b"Dec 12 00:00:01 ln1 kernel: hello\n";
                buf[..line.len()].copy_from_slice(line);
                Ok(line.len())
            }
        }
        let (rules, _) = liberty_rules();
        let filter = SpatioTemporalFilter::paper();
        for threads in [1, 2] {
            let config = IngestConfig {
                threads,
                chunk_bytes: 16,
                text_queue: 2,
                obs: ObsConfig::off(),
            };
            let err = ingest_stream(SystemId::Liberty, FailAfter(3), &rules, &filter, config)
                .unwrap_err();
            assert_eq!(err.to_string(), "link down", "t={threads}");
        }
    }

    #[test]
    fn crlf_text_streams_identical_to_batch() {
        // ISSUE-6 regression: CRLF line endings — including a final
        // line cut right after its `\r` — must parse and tag the same
        // through the chunked stream as through the batch path, at
        // every chunk size (so the cut can land on any boundary).
        let text = "Dec 12 00:00:01 ln1 pbs_mom: task_check, cannot tm_reply to 9 task 1\r\n\
                    Dec 12 00:00:02 ln2 kernel: quiet line\r\n\
                    Dec 12 00:00:03 ln3 pbs_mom: task_check, cannot tm_reply to 9 task 1\r";
        let (rules, _) = liberty_rules();
        let filter = SpatioTemporalFilter::paper();
        let batch = ingest_batch(SystemId::Liberty, text, &rules, &filter, 1);
        assert_eq!(batch.parse.parsed, 3, "all three CRLF lines parse");
        for threads in [1, 2] {
            for chunk_bytes in [8, 70, 4096] {
                let config = IngestConfig {
                    threads,
                    chunk_bytes,
                    text_queue: 2,
                    obs: ObsConfig::off(),
                };
                let run =
                    ingest_stream(SystemId::Liberty, text.as_bytes(), &rules, &filter, config)
                        .unwrap();
                assert_eq!(
                    run.tagged.alerts, batch.tagged.alerts,
                    "t={threads} c={chunk_bytes}"
                );
                assert_eq!(run.parse, batch.parse, "t={threads} c={chunk_bytes}");
                assert_eq!(
                    run.sources.len(),
                    batch.sources.len(),
                    "t={threads} c={chunk_bytes}: interners agree"
                );
            }
        }
    }

    #[test]
    fn rejected_lines_are_counted_not_tagged() {
        let text = "Dec 12 00:00:01 ln1 pbs_mom: task_check, cannot tm_reply to 9 task 1\n\
                    total garbage\n\
                    \n";
        let (rules, _) = liberty_rules();
        let filter = SpatioTemporalFilter::paper();
        let run = ingest_stream(
            SystemId::Liberty,
            text.as_bytes(),
            &rules,
            &filter,
            IngestConfig::default(),
        )
        .unwrap();
        assert_eq!(run.parse.parsed, 1);
        assert_eq!(run.parse.rejected(), 1);
        assert_eq!(run.parse.empty, 1);
        assert_eq!(run.tagged.alerts.len(), 1);
        assert_eq!(run.tagged.alerts[0].message_index, 0);
    }
}
