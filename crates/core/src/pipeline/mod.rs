//! The streaming bounded-memory pipeline.
//!
//! `Study::run` used to be three fully-materialized batch passes —
//! tag the whole log, attach all truth, filter all alerts — so peak
//! memory was the whole log's alerts and no stage overlapped another.
//! This module runs the same stages over *bounded batches*:
//!
//! ```text
//!  producer (main thread)          TagPool workers          consumer thread
//!  ────────────────────────        ────────────────         ────────────────────
//!  chunk messages ──permit──▶      render + tag      ──▶    Reassembler (by seq)
//!        │     bounded queue       fuse ground truth          │ in order
//!        ▼                         (one TagScratch             ▼
//!  blocks when the pool             per worker)          SpatioTemporalStream
//!  is saturated ◀──────────── backpressure ─────────────  filtered alerts out
//! ```
//!
//! Order and results are bit-identical to the batch path at any thread
//! count and chunk size: workers may finish out of order, but the
//! [`Reassembler`] releases batches strictly in submission order, and
//! within a batch alerts keep message order, so the filter sees the
//! exact sequence the batch path would produce.
//!
//! In-flight data is bounded end to end: the pool's job queue bounds
//! *submitted* batches, and a permit [`channel`] bounds *unprocessed*
//! batches (submitted but not yet filtered), so a fast producer blocks
//! instead of buffering. [`PipelineStats`] reports the measured peak
//! against the configured bound.

pub mod channel;
mod ingest;

pub use ingest::{ingest_batch, ingest_stream, IngestConfig, IngestResult};

use sclog_filter::SpatioTemporalFilter;
use sclog_obs::{PeakGauge, Recorder, Stage, ThreadRecorder};
use sclog_rules::{RuleSet, TagScratch, TaggedLog};
use sclog_types::{Alert, FailureId, Message, SourceInterner};
use std::collections::BTreeMap;

/// Default messages per tagging batch.
pub const DEFAULT_CHUNK_MESSAGES: usize = 4096;

/// Restores submission order over out-of-order completions.
///
/// Push items keyed by their submission sequence number; pop releases
/// them strictly in `0, 1, 2, …` order, holding early arrivals until
/// their predecessors land.
///
/// # Examples
///
/// ```
/// use sclog_core::pipeline::Reassembler;
///
/// let mut r = Reassembler::new();
/// r.push(1, "b");
/// assert_eq!(r.pop_ready(), None, "0 has not arrived yet");
/// r.push(0, "a");
/// assert_eq!(r.pop_ready(), Some("a"));
/// assert_eq!(r.pop_ready(), Some("b"));
/// assert_eq!(r.pop_ready(), None);
/// ```
#[derive(Debug)]
pub struct Reassembler<T> {
    next: u64,
    pending: BTreeMap<u64, T>,
}

impl<T> Reassembler<T> {
    /// Creates an empty reassembler expecting sequence number 0 first.
    pub fn new() -> Self {
        Reassembler {
            next: 0,
            pending: BTreeMap::new(),
        }
    }

    /// Registers a completed item.
    ///
    /// # Panics
    ///
    /// Panics if `seq` was already delivered or registered (a
    /// double-completion bug upstream).
    pub fn push(&mut self, seq: u64, item: T) {
        assert!(seq >= self.next, "sequence {seq} already delivered");
        let prev = self.pending.insert(seq, item);
        assert!(prev.is_none(), "sequence {seq} registered twice");
    }

    /// Releases the next in-order item, if it has arrived.
    pub fn pop_ready(&mut self) -> Option<T> {
        let item = self.pending.remove(&self.next)?;
        self.next += 1;
        Some(item)
    }

    /// Items held out of order, waiting for a predecessor.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Whether every pushed item has been popped.
    pub fn is_drained(&self) -> bool {
        self.pending.is_empty()
    }

    /// Evidence of a truncated stream, to be checked once the input has
    /// ended: `Some` when items are still stuck behind a sequence
    /// number that never arrived (a producer died mid-stream), `None`
    /// when everything reassembled.
    pub fn truncation(&self) -> Option<Truncation> {
        if self.pending.is_empty() {
            return None;
        }
        Some(Truncation {
            missing: self.next,
            held: self.pending.keys().copied().collect(),
        })
    }
}

impl<T> Default for Reassembler<T> {
    fn default() -> Self {
        Reassembler::new()
    }
}

/// A completion stream that ended with a gap: some sequence number
/// never arrived (its producer died mid-stream), stranding later
/// completions behind it. Reported by [`Reassembler::truncation`] so
/// the consumer fails with an explicit diagnosis instead of hanging on
/// — or silently dropping — the stranded work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Truncation {
    /// The first sequence number that never arrived.
    pub missing: u64,
    /// Sequence numbers that did arrive but are stranded behind the
    /// gap, in order.
    pub held: Vec<u64>,
}

impl std::fmt::Display for Truncation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sequence {} never arrived; {} completed batch(es) stranded behind the gap",
            self.missing,
            self.held.len()
        )
    }
}

/// What the pipeline observed about its own memory behaviour.
///
/// "In flight" counts work submitted to the pool but not yet released
/// by the in-order consumer — the pipeline's working set. The batch
/// bound is hard: a permit channel of that capacity gates submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineStats {
    /// Worker threads used (1 = inline serial path).
    pub threads: usize,
    /// Batches submitted over the run.
    pub batches: u64,
    /// Highest number of batches in flight at once.
    pub peak_in_flight_batches: usize,
    /// The permit-channel capacity bounding
    /// [`PipelineStats::peak_in_flight_batches`].
    pub in_flight_bound_batches: usize,
    /// Highest number of messages in flight at once.
    pub peak_in_flight_messages: usize,
    /// Message-level bound, when batches have a fixed message count
    /// (the study pipeline); `None` for byte-chunked ingestion, where
    /// only the batch-level bound is configured.
    pub in_flight_bound_messages: Option<usize>,
}

/// Tags and filters a message slice through the streaming pipeline,
/// with ground truth fused into the tag loop when given.
///
/// Returns the tagged log (truth already attached), the filtered
/// alerts, and the pipeline's memory observations. Output is
/// bit-identical to `tag_messages` + `attach_truth` + batch filter for
/// every `threads`/`chunk` combination.
///
/// # Panics
///
/// Panics if `threads` or `chunk` is zero, or if `truth` is present
/// with a length different from `messages`.
pub fn tag_filter_stream(
    rules: &RuleSet,
    messages: &[Message],
    interner: &SourceInterner,
    truth: Option<&[Option<FailureId>]>,
    filter: &SpatioTemporalFilter,
    threads: usize,
    chunk: usize,
) -> (TaggedLog, Vec<Alert>, PipelineStats) {
    tag_filter_stream_with(
        rules,
        messages,
        interner,
        truth,
        filter,
        threads,
        chunk,
        &Recorder::disabled(),
    )
}

/// [`tag_filter_stream`] with an observability recorder: stages
/// `produce` (chunking + pool submission, with permit waits attributed
/// as queue wait), `tag` (inside the pool workers) and `filter`
/// (in-order reassembly + spatio-temporal filtering, with idle
/// `pool.recv` time as queue wait) appear in the report's waterfall,
/// alongside the in-flight gauges, the reassembler's pending
/// high-water mark, and the tagger's prefilter counters. With
/// [`Recorder::disabled`] this is exactly [`tag_filter_stream`]: no
/// clock is read anywhere.
///
/// # Panics
///
/// As [`tag_filter_stream`].
#[allow(clippy::too_many_arguments)]
pub fn tag_filter_stream_with(
    rules: &RuleSet,
    messages: &[Message],
    interner: &SourceInterner,
    truth: Option<&[Option<FailureId>]>,
    filter: &SpatioTemporalFilter,
    threads: usize,
    chunk: usize,
    recorder: &Recorder,
) -> (TaggedLog, Vec<Alert>, PipelineStats) {
    assert!(threads > 0, "need at least one thread");
    assert!(chunk > 0, "chunk size must be positive");
    if let Some(t) = truth {
        assert_eq!(t.len(), messages.len(), "truth must align with messages");
    }
    if threads == 1 {
        return tag_filter_serial(rules, messages, interner, truth, filter, chunk, recorder);
    }

    let job_cap = threads * sclog_rules::pool::JOBS_PER_WORKER;
    // Unprocessed batches: queued jobs + one per busy worker (the
    // consumer's reassembly window can never hold more, since an
    // out-of-order completion still occupies its submission permit).
    let bound_batches = job_cap + threads;
    let gauge = InFlightGauge::new(bound_batches);
    let metrics = PipeMetrics::register(recorder);
    gauge.adopt_into(recorder);
    let mut batches = 0u64;

    let (alerts, filtered) =
        sclog_rules::TagPool::scope_with(rules, threads, job_cap, recorder, |pool| {
            let (permit_tx, permit_rx) = channel::bounded::<()>(bound_batches);
            let gauge = &gauge;
            let tr_cons = recorder.thread("consumer");
            let tr_prod = recorder.thread("producer");
            sclog_sync::thread::scope(|s| {
                let consumer = sclog_sync::thread::spawn_in(s, move || {
                    let tr = tr_cons;
                    let mut reasm = Reassembler::new();
                    let mut alerts = Vec::new();
                    let mut filtered = Vec::new();
                    let mut stream = filter.stream();
                    loop {
                        let received = {
                            // Idle until a worker completes a batch.
                            let _wait = tr.wait_span(metrics.filter);
                            pool.recv()
                        };
                        let Some(batch) = received else { break };
                        let _busy = tr.span(metrics.filter);
                        reasm.push(batch.seq, batch);
                        tr.record_max(metrics.pending_peak, reasm.pending() as u64);
                        while let Some(b) = reasm.pop_ready() {
                            gauge.release(b.len);
                            let _ = permit_rx.recv();
                            tr.stage_items(metrics.filter, b.alerts.len() as u64, 0);
                            for a in b.alerts {
                                if stream.push(&a) {
                                    filtered.push(a);
                                }
                                alerts.push(a);
                            }
                        }
                    }
                    if let Some(gap) = reasm.truncation() {
                        panic!("tagging stream truncated: {gap}");
                    }
                    tr.add(metrics.alerts_in, stream.pushed());
                    tr.add(metrics.alerts_kept, stream.kept());
                    (alerts, filtered)
                });
                for (k, msgs) in messages.chunks(chunk).enumerate() {
                    {
                        // Backpressure: block here while the bound is full.
                        let _wait = tr_prod.wait_span(metrics.produce);
                        permit_tx.send(()).expect("consumer outlives producer");
                    }
                    let _busy = tr_prod.span(metrics.produce);
                    gauge.acquire(msgs.len());
                    let base = k * chunk;
                    pool.submit_messages(
                        base,
                        msgs,
                        interner,
                        truth.map(|t| &t[base..base + msgs.len()]),
                    );
                    tr_prod.stage_items(metrics.produce, msgs.len() as u64, 0);
                    batches += 1;
                }
                drop(permit_tx);
                pool.close();
                consumer.join().expect("pipeline consumer panicked")
            })
        });

    let stats = PipelineStats {
        threads,
        batches,
        peak_in_flight_batches: gauge.peak_batches(),
        in_flight_bound_batches: bound_batches,
        peak_in_flight_messages: gauge.peak_messages(),
        in_flight_bound_messages: Some(bound_batches * chunk),
    };
    (TaggedLog { alerts }, filtered, stats)
}

/// Metric handles the streaming pipeline registers up front (before
/// any thread shard seals the recorder).
#[derive(Debug, Clone, Copy)]
struct PipeMetrics {
    produce: Stage,
    filter: Stage,
    /// High-water mark of batches the reassembler held out of order.
    pending_peak: sclog_obs::Peak,
    alerts_in: sclog_obs::Counter,
    alerts_kept: sclog_obs::Counter,
}

impl PipeMetrics {
    fn register(rec: &Recorder) -> Self {
        PipeMetrics {
            produce: rec.stage("produce"),
            filter: rec.stage("filter"),
            pending_peak: rec.peak("pipeline.reassembler.pending_peak"),
            alerts_in: rec.counter("filter.alerts_in"),
            alerts_kept: rec.counter("filter.alerts_kept"),
        }
    }
}

/// Serial-arm metric handles: the same names the pool path uses, so a
/// report reads identically at any thread count.
#[derive(Debug, Clone, Copy)]
struct SerialMetrics {
    tag: Stage,
    lines: sclog_obs::Counter,
    bytes: sclog_obs::Counter,
    gated_out: sclog_obs::Counter,
    vm_execs: sclog_obs::Counter,
    matches: sclog_obs::Counter,
    vm_eligible: sclog_obs::Counter,
    dfa_execs: sclog_obs::Counter,
    dfa_bailouts: sclog_obs::Counter,
    dfa_evictions: sclog_obs::Counter,
    alerts_in: sclog_obs::Counter,
    alerts_kept: sclog_obs::Counter,
}

impl SerialMetrics {
    fn register(rec: &Recorder) -> Self {
        SerialMetrics {
            tag: rec.stage("tag"),
            lines: rec.counter("tagger.lines"),
            bytes: rec.counter("tagger.bytes"),
            gated_out: rec.counter("tagger.prefilter.gated_out"),
            vm_execs: rec.counter("tagger.prefilter.vm_execs"),
            matches: rec.counter("tagger.prefilter.matches"),
            vm_eligible: rec.counter("tagger.vm.eligible"),
            dfa_execs: rec.counter("tagger.dfa.execs"),
            dfa_bailouts: rec.counter("tagger.dfa.bailouts"),
            dfa_evictions: rec.counter("tagger.dfa.cache_evictions"),
            alerts_in: rec.counter("filter.alerts_in"),
            alerts_kept: rec.counter("filter.alerts_kept"),
        }
    }

    fn flush(&self, tr: &ThreadRecorder, counts: sclog_rules::TagCounts) {
        tr.add(self.lines, counts.lines);
        tr.add(self.bytes, counts.bytes);
        tr.add(self.gated_out, counts.gated_out);
        tr.add(self.vm_execs, counts.vm_execs);
        tr.add(self.matches, counts.matches);
        tr.add(self.vm_eligible, counts.vm_eligible);
        tr.add(self.dfa_execs, counts.dfa_execs);
        tr.add(self.dfa_bailouts, counts.dfa_bailouts);
        tr.add(self.dfa_evictions, counts.dfa_evictions);
    }
}

/// Tracks in-flight batches and messages, remembering the peaks.
///
/// A thin bundle of two shared [`PeakGauge`]s: the batch gauge carries
/// the permit-channel capacity as its hard bound (never exceeded — the
/// `model_assert!` inside the gauge enforces the permit accounting on
/// every model-checked schedule, see `sclog-check`), the message gauge
/// is unbounded. Works with no recorder at all;
/// [`InFlightGauge::adopt_into`] surfaces both in a run report.
///
/// Clones share the underlying gauges (they are `Arc`-backed), so a
/// clone can be captured by a model-check invariant while the
/// original drives the protocol.
#[derive(Clone)]
pub struct InFlightGauge {
    batches: PeakGauge,
    messages: PeakGauge,
}

impl InFlightGauge {
    /// Creates the gauge pair; `bound_batches` is the hard bound the
    /// permit protocol promises never to exceed.
    pub fn new(bound_batches: usize) -> Self {
        InFlightGauge {
            batches: PeakGauge::new(Some(bound_batches as u64)),
            messages: PeakGauge::new(None),
        }
    }

    /// Registers both gauges with the recorder for the run report.
    pub fn adopt_into(&self, rec: &Recorder) {
        rec.adopt_gauge("pipeline.in_flight_batches", &self.batches);
        rec.adopt_gauge("pipeline.in_flight_messages", &self.messages);
    }

    /// Records a batch of `len` messages entering the pipeline.
    pub fn acquire(&self, len: usize) {
        self.batches.add(1);
        self.messages.add(len as u64);
    }

    /// Records a batch of `len` messages leaving (processed in order).
    pub fn release(&self, len: usize) {
        self.batches.sub(1);
        self.messages.sub(len as u64);
    }

    /// High-water mark of batches simultaneously in flight.
    pub fn peak_batches(&self) -> usize {
        self.batches.peak() as usize
    }

    /// High-water mark of messages simultaneously in flight.
    pub fn peak_messages(&self) -> usize {
        self.messages.peak() as usize
    }

    /// Batches in flight right now (exposed for model-check
    /// invariants; see `sclog-check`).
    pub fn current_batches(&self) -> usize {
        self.batches.current() as usize
    }
}

/// The single-threaded arm: same chunked traversal, no pool — one
/// batch is in flight at a time by construction. Everything happens on
/// one thread, so the report collapses to a single `tag` stage plus
/// the filter counters.
fn tag_filter_serial(
    rules: &RuleSet,
    messages: &[Message],
    interner: &SourceInterner,
    truth: Option<&[Option<FailureId>]>,
    filter: &SpatioTemporalFilter,
    chunk: usize,
    recorder: &Recorder,
) -> (TaggedLog, Vec<Alert>, PipelineStats) {
    let metrics = SerialMetrics::register(recorder);
    let tr = recorder.thread("serial");
    let mut scratch = TagScratch::new();
    let mut alerts = Vec::new();
    let mut filtered = Vec::new();
    let mut stream = filter.stream();
    let mut batches = 0u64;
    let mut peak = 0usize;
    for (k, msgs) in messages.chunks(chunk).enumerate() {
        batches += 1;
        peak = peak.max(msgs.len());
        let base = k * chunk;
        let _busy = tr.span(metrics.tag);
        for (i, msg) in msgs.iter().enumerate() {
            if let Some(category) = rules.tag_message_with(msg, interner, &mut scratch) {
                let mut alert = Alert::new(msg.time, msg.source, category, base + i);
                if let Some(t) = truth {
                    alert.failure = t[base + i];
                }
                if stream.push(&alert) {
                    filtered.push(alert);
                }
                alerts.push(alert);
            }
        }
        let counts = scratch.take_counts();
        tr.stage_items(metrics.tag, msgs.len() as u64, counts.bytes);
        metrics.flush(&tr, counts);
    }
    tr.add(metrics.alerts_in, stream.pushed());
    tr.add(metrics.alerts_kept, stream.kept());
    let stats = PipelineStats {
        threads: 1,
        batches,
        peak_in_flight_batches: 1.min(batches as usize),
        in_flight_bound_batches: 1,
        peak_in_flight_messages: peak,
        in_flight_bound_messages: Some(chunk),
    };
    (TaggedLog { alerts }, filtered, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sclog_filter::AlertFilter;
    use sclog_simgen::Scale;
    use sclog_types::{CategoryRegistry, SystemId};

    fn fixture() -> (sclog_simgen::GenLog, RuleSet) {
        let log = sclog_simgen::generate(SystemId::Liberty, Scale::new(0.01, 0.0002), 9);
        let mut registry = CategoryRegistry::new();
        let rules = RuleSet::builtin(SystemId::Liberty, &mut registry);
        (log, rules)
    }

    #[test]
    fn reassembler_orders_and_guards() {
        let mut r: Reassembler<u32> = Reassembler::default();
        r.push(2, 2);
        r.push(0, 0);
        assert_eq!(r.pending(), 2);
        assert_eq!(r.pop_ready(), Some(0));
        assert_eq!(r.pop_ready(), None, "1 missing");
        r.push(1, 1);
        assert_eq!(r.pop_ready(), Some(1));
        assert_eq!(r.pop_ready(), Some(2));
        assert!(r.is_drained());
    }

    #[test]
    #[should_panic(expected = "already delivered")]
    fn reassembler_rejects_replayed_seq() {
        let mut r = Reassembler::new();
        r.push(0, ());
        r.pop_ready();
        r.push(0, ());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn reassembler_rejects_duplicate_seq() {
        let mut r = Reassembler::new();
        r.push(3, ());
        r.push(3, ());
    }

    #[test]
    fn reassembler_reports_truncation() {
        let mut r = Reassembler::new();
        r.push(0, ());
        r.push(2, ());
        r.push(3, ());
        assert_eq!(r.pop_ready(), Some(()));
        assert_eq!(r.pop_ready(), None, "1 missing");
        let gap = r.truncation().expect("stream is truncated");
        assert_eq!(gap.missing, 1);
        assert_eq!(gap.held, vec![2, 3]);
        let rendered = gap.to_string();
        assert!(rendered.contains("sequence 1"), "{rendered}");
        assert!(rendered.contains("2 completed"), "{rendered}");
        r.push(1, ());
        while r.pop_ready().is_some() {}
        assert_eq!(r.truncation(), None, "gap filled, stream complete");
    }

    #[test]
    fn stream_matches_batch_reference() {
        let (log, rules) = fixture();
        let mut expect = rules.tag_messages(&log.messages, &log.interner);
        expect.attach_truth(&log.truth);
        let filter = SpatioTemporalFilter::paper();
        let expect_filtered = filter.filter(&expect.alerts);
        for (threads, chunk) in [(1, 64), (2, 1), (2, 512), (4, 4096), (3, 1_000_000)] {
            let (tagged, filtered, stats) = tag_filter_stream(
                &rules,
                &log.messages,
                &log.interner,
                Some(&log.truth),
                &filter,
                threads,
                chunk,
            );
            assert_eq!(tagged.alerts, expect.alerts, "t={threads} c={chunk}");
            assert_eq!(filtered, expect_filtered, "t={threads} c={chunk}");
            assert_eq!(stats.batches, log.messages.len().div_ceil(chunk) as u64);
            assert!(stats.peak_in_flight_batches <= stats.in_flight_bound_batches);
            let bound = stats.in_flight_bound_messages.expect("fixed-chunk bound");
            assert!(
                stats.peak_in_flight_messages <= bound,
                "t={threads} c={chunk}: peak {} over bound {bound}",
                stats.peak_in_flight_messages,
            );
        }
    }

    #[test]
    fn truthless_stream_leaves_failures_unset() {
        let (log, rules) = fixture();
        let filter = SpatioTemporalFilter::paper();
        let (tagged, _, _) =
            tag_filter_stream(&rules, &log.messages, &log.interner, None, &filter, 2, 128);
        assert!(!tagged.alerts.is_empty());
        assert!(tagged.alerts.iter().all(|a| a.failure.is_none()));
    }

    #[test]
    fn peak_in_flight_is_bounded_with_tiny_chunks() {
        let (log, rules) = fixture();
        let filter = SpatioTemporalFilter::paper();
        let (_, _, stats) =
            tag_filter_stream(&rules, &log.messages, &log.interner, None, &filter, 4, 8);
        // Whole log would be tens of thousands of messages; the bound
        // keeps the pipeline to a handful of 8-message batches.
        let bound = stats.in_flight_bound_messages.unwrap();
        assert!(bound < log.messages.len() / 10);
        assert!(stats.peak_in_flight_messages <= bound);
    }

    #[test]
    #[should_panic(expected = "truth must align")]
    fn misaligned_truth_rejected() {
        let (log, rules) = fixture();
        let filter = SpatioTemporalFilter::paper();
        let _ = tag_filter_stream(
            &rules,
            &log.messages,
            &log.interner,
            Some(&log.truth[..1]),
            &filter,
            2,
            64,
        );
    }
}
