//! A bounded multi-producer single-consumer channel with backpressure.
//!
//! The workspace is hermetic (no `crossbeam`), so the pipeline's
//! stage-to-stage queues are built on `std` alone: a `VecDeque` ring
//! buffer guarded by a `Mutex`, with two `Condvar`s signalling
//! "not empty" and "not full". A full channel *blocks the sender* —
//! that blocking is the pipeline's backpressure, and is what bounds
//! peak in-flight data no matter how far ahead a fast producer could
//! otherwise run.
//!
//! Disconnection follows `std::sync::mpsc` semantics: sending into a
//! channel whose receiver is gone returns the value back as an error;
//! receiving from a channel whose senders are all gone drains the
//! remaining queue and then reports disconnection.
//!
//! All primitives come from the `sclog-sync` facade (tidy check 7):
//! in normal builds they are `std::sync` re-exports; under
//! `--cfg sclog_model` the `sclog-check` harnesses exhaustively
//! model-check this protocol — no deadlock, no lost wakeup, no
//! message loss or duplication, capacity bound on every schedule —
//! and the seeded `sclog_sync::model::mutation` bugs below prove the
//! checker detects the historical bug shapes (see DESIGN.md §14).

use std::collections::VecDeque;

use sclog_sync::{model_assert, Arc, Condvar, Mutex};

/// Error returned by [`Sender::send`] when the receiver has been
/// dropped; the unsent value is handed back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`]; the unsent value is handed
/// back in both cases.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The ring is full right now; the value was not enqueued. A
    /// blocking [`Sender::send`] would have waited — `try_send` is the
    /// admission-control path that refuses instead.
    Full(T),
    /// The receiver has been dropped; no send can ever succeed again.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// The value that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
        }
    }
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The sending half of a bounded channel; clone it for more producers.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a bounded channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded channel holding at most `capacity` items.
///
/// # Panics
///
/// Panics if `capacity` is zero (a zero-capacity rendezvous channel is
/// not needed by the pipeline and would complicate the ring buffer).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "channel capacity must be positive");
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(capacity),
            senders: 1,
            receiver_alive: true,
        }),
        capacity,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Sends a value, blocking while the channel is full.
    ///
    /// # Errors
    ///
    /// Returns the value back if the receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        loop {
            if !state.receiver_alive {
                return Err(SendError(value));
            }
            if state.queue.len() < self.shared.capacity {
                state.queue.push_back(value);
                model_assert!(
                    state.queue.len() <= self.shared.capacity,
                    "ring buffer exceeded its configured capacity"
                );
                drop(state);
                #[cfg(sclog_model)]
                if sclog_sync::model::mutation("send_skip_notify_ready") {
                    // Seeded bug: deliver without signalling — a
                    // receiver already parked on `not_empty` never
                    // learns the queue became nonempty.
                    return Ok(());
                }
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self.shared.not_full.wait(state).expect("channel poisoned");
        }
    }

    /// Sends a value only if the ring has room right now, never
    /// blocking.
    ///
    /// This is the admission-control primitive: a front-end that must
    /// answer "busy" instead of queueing unboundedly (e.g. `sclogd`'s
    /// accept loop answering 503) calls this and handles
    /// [`TrySendError::Full`] itself.
    ///
    /// # Errors
    ///
    /// [`TrySendError::Disconnected`] if the receiver has been dropped,
    /// [`TrySendError::Full`] if the ring is at capacity.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        if !state.receiver_alive {
            return Err(TrySendError::Disconnected(value));
        }
        if state.queue.len() >= self.shared.capacity {
            return Err(TrySendError::Full(value));
        }
        state.queue.push_back(value);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().expect("channel poisoned").senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        model_assert!(
            state.senders >= 1,
            "sender count underflow: more drops than clones"
        );
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            #[cfg(sclog_model)]
            if sclog_sync::model::mutation("send_drop_no_notify") {
                // Seeded bug: the last producer leaves silently and a
                // receiver parked on `not_empty` hangs forever.
                return;
            }
            // Wake a receiver blocked on an empty queue so it can
            // observe disconnection.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receives the next value, blocking while the channel is empty.
    ///
    /// Returns `None` once every sender is dropped *and* the queue is
    /// drained — the clean end-of-stream signal stage loops match on.
    pub fn recv(&self) -> Option<T> {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        #[cfg(sclog_model)]
        if sclog_sync::model::mutation("recv_if_wait") {
            // Seeded bug: `if` instead of `while` around the wait —
            // a spurious wakeup falls through to a pop on a ring
            // that may still be empty.
            if state.queue.is_empty() && state.senders > 0 {
                state = self.shared.not_empty.wait(state).expect("channel poisoned");
            }
            if state.queue.is_empty() && state.senders == 0 {
                return None;
            }
            let value = state.queue.pop_front().expect("woke to an empty ring");
            drop(state);
            self.shared.not_full.notify_one();
            return Some(value);
        }
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Some(value);
            }
            if state.senders == 0 {
                return None;
            }
            state = self.shared.not_empty.wait(state).expect("channel poisoned");
        }
    }

    /// Iterates over received values until the channel disconnects.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(|| self.recv())
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        state.receiver_alive = false;
        // Senders blocked on a full queue must wake to observe the
        // disconnect (their queued values are dropped with the state).
        state.queue.clear();
        drop(state);
        #[cfg(sclog_model)]
        if sclog_sync::model::mutation("recv_drop_no_notify") {
            // Seeded bug: the exact PR 6 close-while-blocked shape —
            // the receiver departs without waking senders parked on
            // `not_full`, stranding them forever.
            return;
        }
        self.shared.not_full.notify_all();
    }
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sender")
            .field("capacity", &self.shared.capacity)
            .finish()
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Receiver")
            .field("capacity", &self.shared.capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn values_arrive_in_order() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn recv_reports_disconnect_after_drain() {
        let (tx, rx) = bounded(2);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(7));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None, "disconnect is sticky");
    }

    #[test]
    fn send_fails_once_receiver_is_gone() {
        let (tx, rx) = bounded(2);
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }

    #[test]
    fn full_channel_blocks_sender_until_recv() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let sent_second = Arc::new(AtomicUsize::new(0));
        let flag = Arc::clone(&sent_second);
        std::thread::scope(|s| {
            s.spawn(move || {
                tx.send(2).unwrap(); // blocks: capacity 1, queue full
                flag.store(1, Ordering::SeqCst);
            });
            // Give the sender a chance to block (timing-lenient: the
            // assertion below is the real check).
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(sent_second.load(Ordering::SeqCst), 0, "backpressure");
            assert_eq!(rx.recv(), Some(1));
            assert_eq!(rx.recv(), Some(2));
        });
        assert_eq!(sent_second.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn capacity_bounds_queue_depth() {
        let (tx, rx) = bounded(3);
        let produced = 100u32;
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..produced {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<u32> = rx.iter().collect();
            assert_eq!(got.len(), produced as usize);
            assert!(got.windows(2).all(|w| w[0] < w[1]));
        });
    }

    #[test]
    fn multiple_producers_all_drain() {
        let (tx, rx) = bounded(2);
        std::thread::scope(|s| {
            for t in 0..3 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..10 {
                        tx.send(t * 100 + i).unwrap();
                    }
                });
            }
            drop(tx);
            assert_eq!(rx.iter().count(), 30);
        });
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = bounded::<u8>(0);
    }

    #[test]
    fn try_send_refuses_when_full_and_recovers() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv(), Some(1));
        tx.try_send(3).unwrap();
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn try_send_reports_disconnect() {
        let (tx, rx) = bounded(2);
        drop(rx);
        let err = tx.try_send(9).unwrap_err();
        assert_eq!(err, TrySendError::Disconnected(9));
        assert_eq!(err.into_inner(), 9);
    }

    #[test]
    fn receiver_drop_wakes_sender_blocked_on_full_ring() {
        // ISSUE-6 close-while-blocked regression: a sender parked on
        // `not_full` must observe the receiver's departure promptly, not
        // wait out the Condvar. The receiver drops only *after* the
        // sender has had time to block, so the wakeup must come from
        // Receiver::drop's notify_all.
        let (tx, rx) = bounded(1);
        tx.send(0).unwrap();
        std::thread::scope(|s| {
            let blocked = s.spawn(move || tx.send(1));
            std::thread::sleep(Duration::from_millis(20));
            drop(rx);
            assert_eq!(
                blocked.join().unwrap(),
                Err(SendError(1)),
                "blocked sender must return Disconnected, not hang"
            );
        });
    }

    #[test]
    fn sender_drop_wakes_receiver_blocked_on_empty_ring() {
        // The mirror case: a receiver parked on `not_empty` while the
        // last sender drops must wake and report end-of-stream.
        let (tx, rx) = bounded::<u8>(1);
        std::thread::scope(|s| {
            let blocked = s.spawn(move || rx.recv());
            std::thread::sleep(Duration::from_millis(20));
            drop(tx);
            assert_eq!(
                blocked.join().unwrap(),
                None,
                "blocked receiver must observe disconnect, not hang"
            );
        });
    }

    #[test]
    fn receiver_drop_wakes_every_blocked_sender() {
        // Several producers parked on the same full ring: one
        // notify_one would strand the rest, so Receiver::drop must
        // notify_all.
        let (tx, rx) = bounded(1);
        tx.send(0).unwrap();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let tx = tx.clone();
                    s.spawn(move || tx.send(i))
                })
                .collect();
            std::thread::sleep(Duration::from_millis(20));
            drop(rx);
            for h in handles {
                assert!(h.join().unwrap().is_err());
            }
        });
    }

    #[test]
    fn debug_impls() {
        let (tx, rx) = bounded::<u8>(2);
        assert!(format!("{tx:?}").contains("capacity"));
        assert!(format!("{rx:?}").contains("capacity"));
    }
}
