//! Typed reproductions of the paper's Tables 1–6.

use crate::study::SystemRun;
use crate::text::{commas, pct, render_table};
use sclog_types::severity::{ALL_BGL_SEVERITIES, ALL_SYSLOG_SEVERITIES};
use sclog_types::{AlertType, Severity, SystemId, ALL_SYSTEMS};
use std::collections::HashMap;

/// Table 1: system characteristics (static data).
#[derive(Debug, Clone)]
pub struct Table1 {
    /// One row per system, in paper order.
    pub rows: Vec<Table1Row>,
}

/// One Table 1 row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// System name.
    pub system: String,
    /// Owning lab.
    pub owner: &'static str,
    /// Vendor.
    pub vendor: &'static str,
    /// Top500 rank (June 2006).
    pub rank: u32,
    /// Processor count.
    pub procs: u32,
    /// Memory (GB).
    pub memory_gb: u32,
    /// Interconnect.
    pub interconnect: &'static str,
}

impl Table1 {
    /// Builds Table 1 from the system specs.
    pub fn build() -> Self {
        Table1 {
            rows: ALL_SYSTEMS
                .iter()
                .map(|s| {
                    let spec = s.spec();
                    Table1Row {
                        system: spec.name.to_owned(),
                        owner: spec.owner,
                        vendor: spec.vendor,
                        rank: spec.top500_rank,
                        procs: spec.processors,
                        memory_gb: spec.memory_gb,
                        interconnect: spec.interconnect,
                    }
                })
                .collect(),
        }
    }

    /// Renders in the paper's layout.
    pub fn render(&self) -> String {
        render_table(
            &[
                "System",
                "Owner",
                "Vendor",
                "Top500 Rank",
                "Procs",
                "Memory (GB)",
                "Interconnect",
            ],
            &self
                .rows
                .iter()
                .map(|r| {
                    vec![
                        r.system.clone(),
                        r.owner.into(),
                        r.vendor.into(),
                        r.rank.to_string(),
                        commas(u64::from(r.procs)),
                        commas(u64::from(r.memory_gb)),
                        r.interconnect.into(),
                    ]
                })
                .collect::<Vec<_>>(),
        )
    }
}

/// Table 2: log characteristics, computed from the generated logs.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// One row per run.
    pub rows: Vec<Table2Row>,
}

/// One Table 2 row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// System name.
    pub system: String,
    /// Observation start date (ISO).
    pub start_date: String,
    /// Observation days.
    pub days: u32,
    /// Rendered log size in bytes (at the run's scale).
    pub size_bytes: u64,
    /// LZSS-compressed size estimate in bytes (the Table 2 gzip-column
    /// analog; see [`sclog_parse::compress`]).
    pub compressed_bytes: u64,
    /// Bytes per second of observation.
    pub rate: f64,
    /// Message count.
    pub messages: u64,
    /// Raw alert count (expert-tagged).
    pub alerts: u64,
    /// Observed categories.
    pub categories: usize,
}

impl Table2 {
    /// Builds Table 2 from runs.
    pub fn build(runs: &[SystemRun]) -> Self {
        Table2 {
            rows: runs
                .iter()
                .map(|run| {
                    let spec = run.system.spec();
                    let text = run.log.render();
                    let size = text.len() as u64;
                    let compressed = sclog_parse::compress::compressed_size(text.as_bytes()) as u64;
                    Table2Row {
                        system: spec.name.to_owned(),
                        start_date: {
                            let (y, m, d) = spec.start_date;
                            format!("{y:04}-{m:02}-{d:02}")
                        },
                        days: spec.days,
                        size_bytes: size,
                        compressed_bytes: compressed,
                        rate: size as f64 / spec.span().as_secs_f64(),
                        messages: run.messages() as u64,
                        alerts: run.raw_alerts() as u64,
                        categories: run.observed_categories(),
                    }
                })
                .collect(),
        }
    }

    /// Renders in the paper's layout.
    pub fn render(&self) -> String {
        render_table(
            &[
                "System",
                "Start Date",
                "Days",
                "Size (MB)",
                "Compr (MB)",
                "Rate (B/s)",
                "Messages",
                "Alerts",
                "Categories",
            ],
            &self
                .rows
                .iter()
                .map(|r| {
                    vec![
                        r.system.clone(),
                        r.start_date.clone(),
                        r.days.to_string(),
                        format!("{:.3}", r.size_bytes as f64 / 1e6),
                        format!("{:.3}", r.compressed_bytes as f64 / 1e6),
                        format!("{:.3}", r.rate),
                        commas(r.messages),
                        commas(r.alerts),
                        r.categories.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        )
    }
}

/// Table 3: alert type distribution, raw vs filtered.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// `(type, raw count, filtered count)` in Table 3 order.
    pub rows: Vec<(AlertType, u64, u64)>,
}

impl Table3 {
    /// Builds Table 3 by aggregating runs.
    pub fn build(runs: &[SystemRun]) -> Self {
        let mut raw: HashMap<AlertType, u64> = HashMap::new();
        let mut filt: HashMap<AlertType, u64> = HashMap::new();
        for run in runs {
            for a in &run.tagged.alerts {
                *raw.entry(run.registry.def(a.category).alert_type)
                    .or_insert(0) += 1;
            }
            for a in &run.filtered {
                *filt
                    .entry(run.registry.def(a.category).alert_type)
                    .or_insert(0) += 1;
            }
        }
        Table3 {
            rows: sclog_types::alert::ALL_ALERT_TYPES
                .iter()
                .map(|&t| {
                    (
                        t,
                        raw.get(&t).copied().unwrap_or(0),
                        filt.get(&t).copied().unwrap_or(0),
                    )
                })
                .collect(),
        }
    }

    /// Total raw alerts.
    pub fn raw_total(&self) -> u64 {
        self.rows.iter().map(|&(_, r, _)| r).sum()
    }

    /// Total filtered alerts.
    pub fn filtered_total(&self) -> u64 {
        self.rows.iter().map(|&(_, _, f)| f).sum()
    }

    /// The share of one type among raw alerts.
    pub fn raw_share(&self, t: AlertType) -> f64 {
        let total = self.raw_total().max(1);
        self.rows
            .iter()
            .find(|&&(ty, _, _)| ty == t)
            .map_or(0.0, |&(_, r, _)| r as f64 / total as f64)
    }

    /// The share of one type among filtered alerts.
    pub fn filtered_share(&self, t: AlertType) -> f64 {
        let total = self.filtered_total().max(1);
        self.rows
            .iter()
            .find(|&&(ty, _, _)| ty == t)
            .map_or(0.0, |&(_, _, f)| f as f64 / total as f64)
    }

    /// Renders in the paper's layout.
    pub fn render(&self) -> String {
        let rt = self.raw_total();
        let ft = self.filtered_total();
        render_table(
            &["Type", "Raw Count", "Raw %", "Filtered Count", "Filtered %"],
            &self
                .rows
                .iter()
                .map(|&(t, r, f)| {
                    vec![
                        t.name().to_owned(),
                        commas(r),
                        pct(r, rt),
                        commas(f),
                        pct(f, ft),
                    ]
                })
                .collect::<Vec<_>>(),
        )
    }
}

/// Table 4: per-category raw and filtered counts for one system.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// System name.
    pub system: String,
    /// `(type code, category, raw, filtered, example body)` sorted by
    /// descending raw count.
    pub rows: Vec<(char, String, u64, u64, String)>,
}

impl Table4 {
    /// Builds the per-category table for one run.
    pub fn build(run: &SystemRun) -> Self {
        let mut raw: HashMap<_, u64> = run.tagged.counts_by_category();
        let mut filt: HashMap<_, u64> = HashMap::new();
        for a in &run.filtered {
            *filt.entry(a.category).or_insert(0) += 1;
        }
        let mut rows: Vec<(char, String, u64, u64, String)> = raw
            .drain()
            .map(|(cat, r)| {
                let def = run.registry.def(cat);
                let example = sclog_rules::catalog::catalog(run.system)
                    .iter()
                    .find(|s| s.name == def.name)
                    .map(sclog_rules::catalog::example_body)
                    .unwrap_or_default();
                (
                    def.alert_type.code(),
                    def.name.clone(),
                    r,
                    filt.get(&cat).copied().unwrap_or(0),
                    example,
                )
            })
            .collect();
        rows.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.1.cmp(&b.1)));
        Table4 {
            system: run.system.spec().name.to_owned(),
            rows,
        }
    }

    /// Renders in the paper's layout.
    pub fn render(&self) -> String {
        let mut rows: Vec<Vec<String>> = Vec::with_capacity(self.rows.len());
        for (code, name, raw, filt, example) in &self.rows {
            let mut ex = example.clone();
            if ex.len() > 60 {
                ex.truncate(57);
                ex.push_str("...");
            }
            rows.push(vec![
                format!("{code} / {name}"),
                commas(*raw),
                commas(*filt),
                ex,
            ]);
        }
        format!(
            "{}\n{}",
            self.system,
            render_table(
                &["Type/Cat.", "Raw", "Filtered", "Example Message Body"],
                &rows
            )
        )
    }
}

/// Table 5 / Table 6: severity distribution among messages and alerts.
#[derive(Debug, Clone)]
pub struct SeverityTable {
    /// System name.
    pub system: String,
    /// `(severity name, messages, alerts)` in paper order.
    pub rows: Vec<(&'static str, u64, u64)>,
}

impl SeverityTable {
    /// Builds Table 5 (BG/L severities) from the BG/L run.
    ///
    /// # Panics
    ///
    /// Panics if the run is not BG/L.
    pub fn table5(run: &SystemRun) -> Self {
        assert_eq!(run.system, SystemId::BlueGeneL, "Table 5 is BG/L");
        let mut msg_counts = vec![0u64; ALL_BGL_SEVERITIES.len()];
        let mut alert_counts = vec![0u64; ALL_BGL_SEVERITIES.len()];
        let sev_index = |s: Severity| -> Option<usize> {
            s.as_bgl().map(|b| {
                ALL_BGL_SEVERITIES
                    .iter()
                    .position(|&x| x == b)
                    .expect("listed")
            })
        };
        for m in &run.log.messages {
            if let Some(i) = sev_index(m.severity) {
                msg_counts[i] += 1;
            }
        }
        for a in &run.tagged.alerts {
            if let Some(i) = sev_index(run.log.messages[a.message_index].severity) {
                alert_counts[i] += 1;
            }
        }
        SeverityTable {
            system: "Blue Gene/L".to_owned(),
            rows: ALL_BGL_SEVERITIES
                .iter()
                .enumerate()
                .map(|(i, s)| (s.name(), msg_counts[i], alert_counts[i]))
                .collect(),
        }
    }

    /// Builds Table 6 (Red Storm syslog severities) from the Red Storm
    /// run. Event-path messages (no severity) are excluded, as in the
    /// paper.
    ///
    /// # Panics
    ///
    /// Panics if the run is not Red Storm.
    pub fn table6(run: &SystemRun) -> Self {
        assert_eq!(run.system, SystemId::RedStorm, "Table 6 is Red Storm");
        let mut msg_counts = vec![0u64; ALL_SYSLOG_SEVERITIES.len()];
        let mut alert_counts = vec![0u64; ALL_SYSLOG_SEVERITIES.len()];
        let sev_index = |s: Severity| -> Option<usize> {
            s.as_syslog().map(|b| {
                ALL_SYSLOG_SEVERITIES
                    .iter()
                    .position(|&x| x == b)
                    .expect("listed")
            })
        };
        for m in &run.log.messages {
            if let Some(i) = sev_index(m.severity) {
                msg_counts[i] += 1;
            }
        }
        for a in &run.tagged.alerts {
            if let Some(i) = sev_index(run.log.messages[a.message_index].severity) {
                alert_counts[i] += 1;
            }
        }
        SeverityTable {
            system: "Red Storm".to_owned(),
            rows: ALL_SYSLOG_SEVERITIES
                .iter()
                .enumerate()
                .map(|(i, s)| (s.name(), msg_counts[i], alert_counts[i]))
                .collect(),
        }
    }

    /// Total messages carrying a severity.
    pub fn message_total(&self) -> u64 {
        self.rows.iter().map(|&(_, m, _)| m).sum()
    }

    /// Total alerts carrying a severity.
    pub fn alert_total(&self) -> u64 {
        self.rows.iter().map(|&(_, _, a)| a).sum()
    }

    /// The paper's severity-baseline false-positive rate: among
    /// messages at or above the named severity rows, the fraction that
    /// are not alerts. For Table 5 pass `&["FATAL", "FAILURE"]`.
    pub fn baseline_false_positive_rate(&self, alarm_levels: &[&str]) -> f64 {
        let mut flagged = 0u64;
        let mut flagged_alerts = 0u64;
        for &(name, msgs, alerts) in &self.rows {
            if alarm_levels.contains(&name) {
                flagged += msgs;
                flagged_alerts += alerts;
            }
        }
        if flagged == 0 {
            0.0
        } else {
            (flagged - flagged_alerts) as f64 / flagged as f64
        }
    }

    /// Renders in the paper's layout.
    pub fn render(&self) -> String {
        let mt = self.message_total();
        let at = self.alert_total();
        format!(
            "{}\n{}",
            self.system,
            render_table(
                &["Severity", "Messages", "Msg %", "Alerts", "Alert %"],
                &self
                    .rows
                    .iter()
                    .map(|&(name, m, a)| {
                        vec![
                            name.to_owned(),
                            commas(m),
                            pct(m, mt),
                            commas(a),
                            pct(a, at),
                        ]
                    })
                    .collect::<Vec<_>>(),
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::Study;

    fn small_study() -> Study {
        Study::new(0.01, 0.0001, 21)
    }

    #[test]
    fn table1_matches_paper() {
        let t = Table1::build();
        assert_eq!(t.rows.len(), 5);
        assert_eq!(t.rows[0].rank, 1);
        assert_eq!(t.rows[4].procs, 512);
        let text = t.render();
        assert!(text.contains("131,072"));
        assert!(text.contains("Infiniband"));
    }

    #[test]
    fn table2_row_consistency() {
        let run = small_study().run_system(SystemId::Liberty);
        let t = Table2::build(std::slice::from_ref(&run));
        let row = &t.rows[0];
        assert_eq!(row.days, 315);
        assert_eq!(row.messages, run.messages() as u64);
        assert!(row.size_bytes > row.messages * 40);
        assert!(
            row.compressed_bytes > 0 && row.compressed_bytes < row.size_bytes / 2,
            "logs should compress at least 2x: {} of {}",
            row.compressed_bytes,
            row.size_bytes
        );
        assert!(row.rate > 0.0);
        assert!(t.render().contains("2004-12-12"));
    }

    #[test]
    fn table3_shares_sum_to_one() {
        let runs = vec![
            small_study().run_system(SystemId::Liberty),
            small_study().run_system(SystemId::BlueGeneL),
        ];
        let t = Table3::build(&runs);
        let raw_sum: f64 = sclog_types::alert::ALL_ALERT_TYPES
            .iter()
            .map(|&ty| t.raw_share(ty))
            .sum();
        assert!((raw_sum - 1.0).abs() < 1e-9);
        assert!(t.raw_total() >= t.filtered_total());
        assert!(t.render().contains("Hardware"));
    }

    #[test]
    fn table4_sorted_by_raw() {
        let run = small_study().run_system(SystemId::Liberty);
        let t = Table4::build(&run);
        assert!(t.rows.windows(2).all(|w| w[0].2 >= w[1].2));
        assert!(t.rows.iter().all(|r| r.3 <= r.2), "filtered > raw in a row");
        let text = t.render();
        assert!(text.contains("PBS_CHK"));
        assert!(text.starts_with("Liberty"));
    }

    #[test]
    fn table5_fp_rate_near_paper() {
        // The FP rate is a ratio of alert to background FATALs, so the
        // scales must be uniform for the paper's 59.34% to appear.
        let run = Study::new(0.02, 0.02, 31).run_system(SystemId::BlueGeneL);
        let t = SeverityTable::table5(&run);
        // Alerts are overwhelmingly FATAL (Table 5: 99.98%).
        let fatal_row = t.rows.iter().find(|r| r.0 == "FATAL").expect("fatal row");
        assert!(fatal_row.2 > 0);
        // The paper's 59.34% false-positive rate, within tolerance.
        let fp = t.baseline_false_positive_rate(&["FATAL", "FAILURE"]);
        assert!((fp - 0.5934).abs() < 0.08, "fp rate {fp}");
        assert!(t.render().contains("FATAL"));
    }

    #[test]
    fn table6_crit_dominated_by_bus_par() {
        // Seed 3 includes a BUS_PAR storm at this scale (expected storm
        // count is only 0.05; most seeds see none).
        let run = Study::new(0.01, 0.0005, 3).run_system(SystemId::RedStorm);
        let t = SeverityTable::table6(&run);
        let crit = t.rows.iter().find(|r| r.0 == "CRIT").expect("crit row");
        // Nearly all CRIT messages are alerts (1,550,217 of 1,552,910).
        assert!(
            crit.2 as f64 > 0.9 * crit.1 as f64,
            "CRIT alerts {} of {}",
            crit.2,
            crit.1
        );
        // INFO is mostly non-alert.
        let info = t.rows.iter().find(|r| r.0 == "INFO").expect("info row");
        assert!((info.2 as f64) < 0.05 * info.1 as f64);
    }

    #[test]
    #[should_panic(expected = "Table 5 is BG/L")]
    fn table5_rejects_wrong_system() {
        let run = small_study().run_system(SystemId::Liberty);
        let _ = SeverityTable::table5(&run);
    }
}
