//! Plain-text table rendering.

/// Renders an aligned text table: a header row, a rule, then rows.
/// Columns are right-aligned except the first.
///
/// # Examples
///
/// ```
/// use sclog_core::text::render_table;
///
/// let s = render_table(
///     &["System", "Procs"],
///     &[vec!["Liberty".into(), "512".into()]],
/// );
/// assert!(s.contains("Liberty"));
/// assert!(s.lines().count() == 3);
/// ```
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            if i == 0 {
                line.push_str(&format!("{cell:<w$}"));
            } else {
                line.push_str(&format!("{cell:>w$}"));
            }
        }
        line.trim_end().to_owned()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_owned()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a count with thousands separators, e.g. `1,665,744`.
pub fn commas(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats a ratio as a percentage with two decimals, e.g. `98.04`.
pub fn pct(part: u64, whole: u64) -> String {
    if whole == 0 {
        "0.00".to_owned()
    } else {
        format!("{:.2}", part as f64 / whole as f64 * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commas_grouping() {
        assert_eq!(commas(0), "0");
        assert_eq!(commas(999), "999");
        assert_eq!(commas(1000), "1,000");
        assert_eq!(commas(178_081_459), "178,081,459");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(1, 2), "50.00");
        assert_eq!(pct(0, 0), "0.00");
        assert_eq!(pct(174_586_516, 178_081_459), "98.04");
    }

    #[test]
    fn table_alignment() {
        let s = render_table(
            &["Name", "N"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "12345".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows equal width.
        assert!(lines[2].starts_with("a "));
        assert!(lines[3].starts_with("long-name"));
        assert!(lines[2].ends_with("    1"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = render_table(&["A", "B"], &[vec!["x".into()]]);
    }
}
