//! Data behind the paper's Figures 2–6.
//!
//! Each function extracts the exact series a figure plots, so the bench
//! binaries (and tests) can assert the paper's qualitative claims:
//! regime shifts, per-source skew, inter-category correlation,
//! exponential ECC interarrivals, and interarrival modality.

use crate::study::SystemRun;
use sclog_stats::correlation::{best_lag, SpatialCooccurrence};
use sclog_stats::timeseries::ChangePoint;
use sclog_stats::{bucket_counts, cusum_changepoints, interarrivals, FitReport, Histogram};
use sclog_types::{CategoryId, Duration, NodeId, Timestamp};
use std::collections::HashMap;

/// Figure 2(a): hourly message counts plus detected change points.
#[derive(Debug, Clone)]
pub struct Fig2a {
    /// Messages per bucket across the observation window.
    pub counts: Vec<u64>,
    /// Bucket width.
    pub bucket: Duration,
    /// Detected regime shifts (CUSUM).
    pub changepoints: Vec<ChangePoint>,
}

/// Builds Figure 2(a) for a run.
pub fn fig2a(run: &SystemRun, bucket: Duration) -> Fig2a {
    let spec = run.system.spec();
    let times: Vec<Timestamp> = run.log.messages.iter().map(|m| m.time).collect();
    let counts = bucket_counts(&times, spec.start(), spec.end(), bucket);
    let series: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
    let changepoints = cusum_changepoints(&series, 8.0, 0.3);
    Fig2a {
        counts,
        bucket,
        changepoints,
    }
}

/// Figure 2(b): per-source message counts, sorted descending, with the
/// corrupted-source tail separated out.
#[derive(Debug, Clone)]
pub struct Fig2b {
    /// `(source, count)` sorted by descending count.
    pub by_source: Vec<(NodeId, u64)>,
    /// Number of corrupted (unattributable) sources.
    pub corrupted_sources: usize,
}

/// Builds Figure 2(b) for a run.
pub fn fig2b(run: &SystemRun) -> Fig2b {
    let mut counts: HashMap<NodeId, u64> = HashMap::new();
    for m in &run.log.messages {
        *counts.entry(m.source).or_insert(0) += 1;
    }
    let mut by_source: Vec<(NodeId, u64)> = counts.into_iter().collect();
    by_source.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let corrupted_sources = by_source
        .iter()
        .filter(|(n, _)| run.log.interner.name(*n).starts_with('\u{fffd}'))
        .count();
    Fig2b {
        by_source,
        corrupted_sources,
    }
}

/// Figure 3: two categories' daily alert counts and their lagged
/// cross-correlation.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// First category's bucketed counts.
    pub series_a: Vec<f64>,
    /// Second category's bucketed counts.
    pub series_b: Vec<f64>,
    /// Best (lag, correlation) within ±7 buckets.
    pub best: (i64, f64),
}

/// Builds Figure 3: the relationship between two categories' filtered
/// alert streams (GM_PAR and GM_LANAI on Liberty in the paper).
///
/// Returns `None` if either category never fires in the run.
pub fn fig3(run: &SystemRun, cat_a: &str, cat_b: &str, bucket: Duration) -> Option<Fig3> {
    let spec = run.system.spec();
    let a = run.registry.lookup(run.system, cat_a)?;
    let b = run.registry.lookup(run.system, cat_b)?;
    let times_of = |cat: CategoryId| -> Vec<Timestamp> {
        run.tagged
            .alerts
            .iter()
            .filter(|al| al.category == cat)
            .map(|al| al.time)
            .collect()
    };
    let ta = times_of(a);
    let tb = times_of(b);
    if ta.is_empty() || tb.is_empty() {
        return None;
    }
    let ca: Vec<f64> = bucket_counts(&ta, spec.start(), spec.end(), bucket)
        .iter()
        .map(|&c| c as f64)
        .collect();
    let cb: Vec<f64> = bucket_counts(&tb, spec.start(), spec.end(), bucket)
        .iter()
        .map(|&c| c as f64)
        .collect();
    let max_lag = 7.min(ca.len().saturating_sub(1));
    let best = best_lag(&ca, &cb, max_lag);
    Some(Fig3 {
        series_a: ca,
        series_b: cb,
        best,
    })
}

/// Figure 4: the filtered alert scatter — `(time, category)` points.
pub fn fig4(run: &SystemRun) -> Vec<(Timestamp, CategoryId)> {
    run.filtered.iter().map(|a| (a.time, a.category)).collect()
}

/// Figure 5: interarrival analysis of one category's filtered alerts.
#[derive(Debug)]
pub struct Fig5 {
    /// Interarrival gaps, seconds.
    pub gaps: Vec<f64>,
    /// Model fits ranked by AIC.
    pub fit: FitReport,
}

/// Builds Figure 5 for a category (ECC on Thunderbird in the paper).
///
/// Returns `None` with fewer than 8 filtered alerts.
pub fn fig5(run: &SystemRun, category: &str) -> Option<Fig5> {
    let cat = run.registry.lookup(run.system, category)?;
    let times: Vec<Timestamp> = run
        .filtered
        .iter()
        .filter(|a| a.category == cat)
        .map(|a| a.time)
        .collect();
    if times.len() < 8 {
        return None;
    }
    let gaps = interarrivals(&times, 1.0);
    let fit = FitReport::fit_all(&gaps);
    Some(Fig5 { gaps, fit })
}

/// Figure 6: log-binned interarrival histogram of all filtered alerts.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// The log10 histogram of interarrival seconds.
    pub histogram: Histogram,
    /// Smoothed peak count (≥ 2 ⇒ bimodal, the BG/L case).
    pub peaks: usize,
}

/// Builds Figure 6 for a run's filtered alert stream.
///
/// Returns `None` with fewer than 16 filtered alerts.
pub fn fig6(run: &SystemRun) -> Option<Fig6> {
    if run.filtered.len() < 16 {
        return None;
    }
    let times: Vec<Timestamp> = run.filtered.iter().map(|a| a.time).collect();
    let gaps = interarrivals(&times, 1.0);
    let mut histogram = Histogram::log10(1.0, 1e7, 2);
    histogram.add_all(&gaps);
    let peaks = histogram.peak_count(0.04);
    Some(Fig6 { histogram, peaks })
}

/// Section 4's spatial-correlation analysis for one category: how many
/// distinct nodes fire together within a window.
pub fn spatial(run: &SystemRun, category: &str, window: Duration) -> Option<SpatialCooccurrence> {
    let cat = run.registry.lookup(run.system, category)?;
    let events: Vec<(Timestamp, NodeId)> = run
        .tagged
        .alerts
        .iter()
        .filter(|a| a.category == cat)
        .map(|a| (a.time, a.source))
        .collect();
    if events.is_empty() {
        return None;
    }
    Some(sclog_stats::correlation::spatial_cooccurrence(
        &events, window,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::Study;
    use sclog_types::SystemId;

    #[test]
    fn fig2a_detects_liberty_upgrade() {
        let run = Study::new(0.05, 0.0005, 61).run_system(SystemId::Liberty);
        let fig = fig2a(&run, Duration::from_hours(24));
        assert_eq!(fig.counts.len(), 315);
        assert!(
            !fig.changepoints.is_empty(),
            "the OS-upgrade regime shift should be detected"
        );
        // The first shift lands near 35% of the span (day ~110).
        let first = fig.changepoints[0].index as f64 / fig.counts.len() as f64;
        assert!((0.25..0.45).contains(&first), "first shift at {first}");
        assert!(fig.changepoints[0].mean_after > fig.changepoints[0].mean_before);
    }

    #[test]
    fn fig2b_head_is_admin_and_tail_has_corruption() {
        let run = Study::new(0.02, 0.001, 62).run_system(SystemId::Liberty);
        let fig = fig2b(&run);
        assert!(fig.by_source.len() > 100);
        // Sorted descending.
        assert!(fig.by_source.windows(2).all(|w| w[0].1 >= w[1].1));
        // The most prolific sources are admin nodes.
        let head: Vec<&str> = fig.by_source[..2]
            .iter()
            .map(|(n, _)| run.log.interner.name(*n))
            .collect();
        assert!(
            head.iter().any(|n| n.starts_with("ladmin")),
            "head sources {head:?}"
        );
        assert!(fig.corrupted_sources > 0, "corrupted-source tail expected");
    }

    #[test]
    fn fig3_finds_gm_correlation() {
        // Figure 3's claim: "GM_LANAI messages do not always follow
        // GM_PAR messages, nor vice versa. However, the correlation is
        // clear." Assert the linked pair correlates far better than an
        // unlinked pair on the same run.
        let run = Study::new(1.0, 0.00005, 63).run_system(SystemId::Liberty);
        let bucket = Duration::from_days(7);
        let linked = fig3(&run, "GM_PAR", "GM_LANAI", bucket)
            .expect("both categories fire at full alert scale");
        let (lag, corr) = linked.best;
        assert!(corr > 0.2, "linked correlation {corr}");
        assert!((0..=2).contains(&lag), "lag {lag}");

        // Event-level check: the fraction of GM_LANAI alerts preceded
        // by a GM_PAR alert within 30 minutes vastly exceeds chance.
        let times_of = |name: &str| -> Vec<Timestamp> {
            let cat = run.registry.lookup(SystemId::Liberty, name).unwrap();
            run.tagged
                .alerts
                .iter()
                .filter(|a| a.category == cat)
                .map(|a| a.time)
                .collect()
        };
        let par = times_of("GM_PAR");
        let lanai = times_of("GM_LANAI");
        let window = Duration::from_mins(30);
        let preceded = lanai
            .iter()
            .filter(|&&t| {
                let i = par.partition_point(|&p| p <= t);
                i > 0 && t - par[i - 1] <= window
            })
            .count();
        let confidence = preceded as f64 / lanai.len() as f64;
        // Chance of a random 30-min window containing a GM_PAR alert.
        let span = SystemId::Liberty.spec().span().as_secs_f64();
        let chance = (par.len() as f64 * window.as_secs_f64() / span).min(1.0);
        assert!(
            confidence > 0.3 && confidence > 20.0 * chance,
            "confidence {confidence} vs chance {chance}"
        );
    }

    #[test]
    fn fig4_has_pbs_window_clustering() {
        let run = Study::new(1.0, 0.00005, 64).run_system(SystemId::Liberty);
        let points = fig4(&run);
        assert!(points.len() > 200);
        let pbs = run.registry.lookup(SystemId::Liberty, "PBS_CHK").unwrap();
        let spec = SystemId::Liberty.spec();
        let span = spec.span().as_secs_f64();
        let fracs: Vec<f64> = points
            .iter()
            .filter(|(_, c)| *c == pbs)
            .map(|(t, _)| (*t - spec.start()).as_secs_f64() / span)
            .collect();
        assert!(!fracs.is_empty());
        // The PBS bug lives in the (0.7, 0.97) window.
        let inside = fracs.iter().filter(|&&f| (0.65..1.0).contains(&f)).count();
        assert!(
            inside as f64 > 0.95 * fracs.len() as f64,
            "PBS_CHK alerts outside the bug window"
        );
    }

    #[test]
    fn fig5_ecc_is_exponential() {
        // Subset generation: the full Thunderbird log has 3.2M VAPI
        // alerts we don't need here.
        let run = Study::new(1.0, 0.00002, 65).run_subset(SystemId::Thunderbird, &["ECC"]);
        let fig = fig5(&run, "ECC").expect("ECC fires at full scale");
        let exp = fig
            .fit
            .models
            .iter()
            .find(|m| m.name == "exponential")
            .expect("exponential fitted");
        assert!(
            exp.ks_p > 0.01,
            "ECC interarrivals should look exponential, p = {}",
            exp.ks_p
        );
    }

    #[test]
    fn fig6_bgl_bimodal_spirit_unimodal() {
        let bgl = Study::new(0.3, 0.0002, 66).run_system(SystemId::BlueGeneL);
        let fig_bgl = fig6(&bgl).expect("enough BG/L alerts");
        assert!(
            fig_bgl.peaks >= 2,
            "BG/L should be multimodal: {} peaks",
            fig_bgl.peaks
        );

        // PBS/GM categories only: Spirit's disk storms dwarf everything
        // else at any uniform scale.
        let spirit = Study::new(0.5, 0.0001, 66).run_subset(
            SystemId::Spirit,
            &[
                "PBS_CHK", "PBS_BFD", "PBS_CON", "GM_LANAI", "GM_MAP", "GM_PAR",
            ],
        );
        let fig_sp = fig6(&spirit).expect("enough Spirit alerts");
        assert!(
            fig_sp.peaks <= 2,
            "Spirit should be near-unimodal: {} peaks",
            fig_sp.peaks
        );
    }

    #[test]
    fn spatial_correlation_cpu_vs_ecc() {
        let run = Study::new(1.0, 0.00002, 67).run_subset(SystemId::Thunderbird, &["CPU", "ECC"]);
        let cpu = spatial(&run, "CPU", Duration::from_mins(2)).expect("CPU fires");
        let ecc = spatial(&run, "ECC", Duration::from_mins(2)).expect("ECC fires");
        assert!(
            cpu.multi_source_fraction > ecc.multi_source_fraction + 0.2,
            "CPU {} vs ECC {}",
            cpu.multi_source_fraction,
            ecc.multi_source_fraction
        );
    }

    #[test]
    fn fig_functions_handle_missing_categories() {
        let run = Study::new(0.01, 0.0001, 68).run_system(SystemId::Liberty);
        assert!(fig3(&run, "NOPE", "GM_PAR", Duration::from_days(1)).is_none());
        assert!(fig5(&run, "NOPE").is_none());
        assert!(spatial(&run, "NOPE", Duration::from_secs(60)).is_none());
    }
}
