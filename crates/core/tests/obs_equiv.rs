//! Property test: observability never changes the pipeline's output.
//!
//! The recorder is a side channel — turning it on must leave the
//! tagged alerts, fused ground truth, and filtered output bit-identical
//! at every thread count, and the report it produces must square with
//! the outputs it rode along with. The log is generated once per case;
//! the obs-on and obs-off runs consume the same in-memory data.
//! Uses the in-tree `sclog-testkit` harness; set `SCLOG_PROP_CASES` /
//! `SCLOG_PROP_SEED` to rescale or replay.

use sclog_core::pipeline::{self, IngestConfig};
use sclog_core::ObsConfig;
use sclog_filter::SpatioTemporalFilter;
use sclog_obs::Recorder;
use sclog_rules::RuleSet;
use sclog_simgen::Scale;
use sclog_testkit::check_n;
use sclog_types::{CategoryRegistry, SystemId};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Obs on vs obs off over the streaming tag+filter engine: identical
/// alerts and filtered output at 1, 2, and 8 threads, and the report
/// accounts for exactly the work the run did.
#[test]
fn recorder_leaves_stream_output_bit_identical() {
    check_n("obs_stream_equiv", 1, |g| {
        let seed = g.below(1 << 20);
        let system = *g.pick(&[SystemId::Liberty, SystemId::Spirit, SystemId::BlueGeneL]);
        let chunk = *g.pick(&[7usize, 64, 512]);
        let log = sclog_simgen::generate(system, Scale::new(0.002, 0.00002), seed);
        let mut registry = CategoryRegistry::new();
        let rules = RuleSet::builtin(system, &mut registry);
        let filter = SpatioTemporalFilter::paper();
        for &threads in &THREAD_COUNTS {
            let (plain_tagged, plain_filtered, _) = pipeline::tag_filter_stream(
                &rules,
                &log.messages,
                &log.interner,
                Some(&log.truth),
                &filter,
                threads,
                chunk,
            );
            let recorder = Recorder::new();
            let (tagged, filtered, stats) = pipeline::tag_filter_stream_with(
                &rules,
                &log.messages,
                &log.interner,
                Some(&log.truth),
                &filter,
                threads,
                chunk,
                &recorder,
            );
            let tag = format!("{system:?} seed={seed} t={threads} c={chunk}");
            assert_eq!(tagged.alerts, plain_tagged.alerts, "{tag}");
            assert_eq!(filtered, plain_filtered, "{tag}");

            let report = recorder.snapshot().report();
            assert_eq!(
                report.counter("tagger.lines"),
                Some(log.messages.len() as u64),
                "{tag}"
            );
            assert_eq!(
                report.counter("filter.alerts_in"),
                Some(tagged.len() as u64),
                "{tag}"
            );
            assert_eq!(
                report.counter("filter.alerts_kept"),
                Some(filtered.len() as u64),
                "{tag}"
            );
            let tag_stage = report.stage("tag").expect("tag stage recorded");
            assert_eq!(tag_stage.items, log.messages.len() as u64, "{tag}");
            if threads > 1 {
                // The serial arm has no in-flight window to gauge.
                let gauge = report
                    .gauge("pipeline.in_flight_batches")
                    .expect("in-flight gauge recorded");
                assert_eq!(gauge.peak, stats.peak_in_flight_batches as u64, "{tag}");
                assert_eq!(gauge.current, 0, "{tag}: drained");
            }
        }
    });
}

/// Same property over the byte-ingestion pipeline: enabling obs in
/// `IngestConfig` changes nothing about parsing, tagging, or
/// filtering, and the parse counters match the reader's own stats.
#[test]
fn recorder_leaves_ingest_output_bit_identical() {
    check_n("obs_ingest_equiv", 1, |g| {
        let seed = g.below(1 << 20);
        let log = sclog_simgen::generate(SystemId::Liberty, Scale::new(0.002, 0.00002), seed);
        let text = log.render();
        let mut registry = CategoryRegistry::new();
        let rules = RuleSet::builtin(SystemId::Liberty, &mut registry);
        let filter = SpatioTemporalFilter::paper();
        for &threads in &THREAD_COUNTS {
            let config = IngestConfig::with_threads(threads);
            let plain = pipeline::ingest_stream(
                SystemId::Liberty,
                text.as_bytes(),
                &rules,
                &filter,
                config,
            )
            .unwrap();
            assert!(plain.obs.is_none(), "obs off by default");
            let observed = pipeline::ingest_stream(
                SystemId::Liberty,
                text.as_bytes(),
                &rules,
                &filter,
                IngestConfig {
                    obs: ObsConfig::on(),
                    ..config
                },
            )
            .unwrap();
            let tag = format!("seed={seed} t={threads}");
            assert_eq!(observed.tagged.alerts, plain.tagged.alerts, "{tag}");
            assert_eq!(observed.filtered, plain.filtered, "{tag}");
            let report = observed.obs.expect("obs on yields a report");
            assert_eq!(
                report.counter("parse.lines"),
                Some(observed.parse.parsed),
                "{tag}"
            );
            assert_eq!(
                report.counter("tagger.lines"),
                Some(observed.parse.parsed),
                "{tag}"
            );
            assert!(report.stage("read").is_some(), "{tag}");
            assert!(report.stage("parse").is_some(), "{tag}");
        }
    });
}
