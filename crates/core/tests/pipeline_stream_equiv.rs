//! Property tests: the streaming pipeline is bit-identical to the
//! batch reference at every thread count and chunk size.
//!
//! Each case generates every system's log once and runs the full
//! thread×chunk matrix over the same in-memory data (regenerating per
//! combination would dominate the runtime); `Study::run` itself is
//! spot-checked against `run_system_batch` on one sampled combination.
//! Uses the in-tree `sclog-testkit` harness; set `SCLOG_PROP_CASES` /
//! `SCLOG_PROP_SEED` to rescale or replay.

use sclog_core::pipeline::{self, IngestConfig};
use sclog_core::Study;
use sclog_filter::{AlertFilter, SpatioTemporalFilter};
use sclog_rules::RuleSet;
use sclog_simgen::Scale;
use sclog_testkit::check_n;
use sclog_types::{CategoryRegistry, ALL_SYSTEMS};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const CHUNK_SIZES: [usize; 3] = [1, 64, 4096];

/// Property scale: small enough that the biggest systems stay in the
/// low thousands of messages, so the full thread×chunk×system matrix
/// runs in seconds under an unoptimized test build.
fn prop_scale() -> Scale {
    Scale::new(0.001, 0.00001)
}

/// Every system, every thread count, every chunk size: the streaming
/// tag+filter pipeline (the engine under `Study::run`) equals the
/// materialized batch passes exactly — tagged alerts, fused truth,
/// and filtered output.
#[test]
fn study_streaming_equals_batch_everywhere() {
    check_n("study_streaming_equals_batch", 1, |g| {
        let seed = g.below(1 << 20);
        let filter = SpatioTemporalFilter::paper();
        for system in ALL_SYSTEMS.iter().copied() {
            let log = sclog_simgen::generate(system, prop_scale(), seed);
            let mut registry = CategoryRegistry::new();
            let rules = RuleSet::builtin(system, &mut registry);
            let mut expect = rules.tag_messages(&log.messages, &log.interner);
            expect.attach_truth(&log.truth);
            let expect_filtered = filter.filter(&expect.alerts);
            for &threads in &THREAD_COUNTS {
                for &chunk in &CHUNK_SIZES {
                    let (tagged, filtered, stats) = pipeline::tag_filter_stream(
                        &rules,
                        &log.messages,
                        &log.interner,
                        Some(&log.truth),
                        &filter,
                        threads,
                        chunk,
                    );
                    let tag = format!("{system:?} seed={seed} t={threads} c={chunk}");
                    assert_eq!(tagged.alerts, expect.alerts, "{tag}");
                    assert_eq!(filtered, expect_filtered, "{tag}");
                    assert!(
                        stats.peak_in_flight_batches <= stats.in_flight_bound_batches,
                        "{tag}"
                    );
                    assert!(
                        stats.peak_in_flight_messages <= stats.in_flight_bound_messages.unwrap(),
                        "{tag}"
                    );
                }
            }
        }
    });
}

/// `Study::run` (streaming) equals `run_system_batch` end to end,
/// sampling one system and one thread/chunk combination per case.
#[test]
fn study_run_matches_batch_run() {
    check_n("study_run_matches_batch_run", 2, |g| {
        let seed = g.below(1 << 20);
        let system = *g.pick(&ALL_SYSTEMS[..]);
        let threads = *g.pick(&THREAD_COUNTS);
        let chunk = *g.pick(&CHUNK_SIZES);
        let study = Study::with_scale(prop_scale(), seed);
        let batch = study.run_system_batch(system);
        let run = study.threads(threads).chunk_size(chunk).run_system(system);
        let tag = format!("{system:?} seed={seed} t={threads} c={chunk}");
        assert_eq!(run.tagged.alerts, batch.tagged.alerts, "{tag}");
        assert_eq!(run.filtered, batch.filtered, "{tag}");
        // Refiltering the filtered output changes nothing: the filter
        // is idempotent on what it keeps.
        let again = SpatioTemporalFilter::paper().filter(&run.filtered);
        assert_eq!(again, run.filtered, "{tag}");
    });
}

/// Raw-line streaming ingestion equals the parse-then-render batch
/// path on every system's rendered log: same alerts, same filtered
/// set, same parse accounting.
#[test]
fn ingest_streaming_equals_batch_everywhere() {
    check_n("ingest_streaming_equals_batch", 1, |g| {
        let seed = g.below(1 << 20);
        let chunk_bytes = *g.pick(&[256usize, 4 * 1024, 64 * 1024]);
        let filter = SpatioTemporalFilter::paper();
        for system in ALL_SYSTEMS.iter().copied() {
            let text = sclog_simgen::generate(system, prop_scale(), seed).render();
            let mut registry = CategoryRegistry::new();
            let rules = RuleSet::builtin(system, &mut registry);
            let batch = pipeline::ingest_batch(system, &text, &rules, &filter, 1);
            for &threads in &THREAD_COUNTS {
                let config = IngestConfig {
                    threads,
                    chunk_bytes,
                    text_queue: 2,
                    ..IngestConfig::default()
                };
                let run = pipeline::ingest_stream(system, text.as_bytes(), &rules, &filter, config)
                    .unwrap();
                let tag = format!("{system:?} seed={seed} t={threads} cb={chunk_bytes}");
                assert_eq!(run.tagged.alerts, batch.tagged.alerts, "{tag}");
                assert_eq!(run.filtered, batch.filtered, "{tag}");
                assert_eq!(run.parse, batch.parse, "{tag}");
            }
        }
    });
}
