//! The prior-work baseline: serial temporal-then-spatial filtering
//! (Liang et al. [9, 10] in the paper).

use crate::{assert_sorted, AlertFilter};
use sclog_types::{Alert, CategoryId, Duration, NodeId, Timestamp};
use std::collections::HashMap;

/// Serial two-pass filter.
///
/// Pass 1 (temporal): per `(source, category)`, an alert is removed if
/// the same source reported the same category within `T` seconds
/// (refreshing semantics, as in the paper's example of a node reporting
/// every `T` seconds for a week keeping only the first).
///
/// Pass 2 (spatial): an alert surviving pass 1 is removed if *another*
/// source had reported the same category within `T` seconds.
///
/// The paper's observation (Section 3.3.2): serial filtering can fail to
/// remove redundancy "when the temporal filter removes messages that the
/// spatial filter would have used as cues that the failure had already
/// been reported by another source" — see
/// `serial_keeps_what_simultaneous_removes` in the tests for the exact
/// scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SerialFilter {
    threshold: Duration,
}

impl SerialFilter {
    /// Creates a filter with the given threshold.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not positive.
    pub fn new(threshold: Duration) -> Self {
        assert!(threshold.as_micros() > 0, "threshold must be positive");
        SerialFilter { threshold }
    }

    /// The paper's configuration: `T = 5` seconds.
    pub fn paper() -> Self {
        SerialFilter::new(crate::PAPER_THRESHOLD)
    }

    /// The temporal pass alone (useful for ablation).
    pub fn temporal_pass(&self, alerts: &[Alert]) -> Vec<Alert> {
        assert_sorted(alerts);
        let mut last: HashMap<(NodeId, CategoryId), Timestamp> = HashMap::new();
        let mut out = Vec::new();
        for a in alerts {
            match last.get_mut(&(a.source, a.category)) {
                Some(t) if a.time - *t < self.threshold => {
                    *t = a.time; // refresh
                }
                _ => {
                    last.insert((a.source, a.category), a.time);
                    out.push(*a);
                }
            }
        }
        out
    }

    /// The spatial pass alone, applied to an already-filtered stream.
    pub fn spatial_pass(&self, alerts: &[Alert]) -> Vec<Alert> {
        assert_sorted(alerts);
        // Per category, last report time per source.
        let mut last: HashMap<CategoryId, HashMap<NodeId, Timestamp>> = HashMap::new();
        let mut out = Vec::new();
        for a in alerts {
            let sources = last.entry(a.category).or_default();
            let redundant = sources
                .iter()
                .any(|(&src, &t)| src != a.source && a.time - t < self.threshold);
            sources.insert(a.source, a.time);
            if !redundant {
                out.push(*a);
            }
        }
        out
    }
}

impl AlertFilter for SerialFilter {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn filter(&self, alerts: &[Alert]) -> Vec<Alert> {
        self.spatial_pass(&self.temporal_pass(alerts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::alerts;
    use crate::SpatioTemporalFilter;

    fn kept(input: &[(f64, u32, u16)], f: &dyn AlertFilter) -> Vec<usize> {
        f.filter(&alerts(input))
            .iter()
            .map(|a| a.message_index)
            .collect()
    }

    #[test]
    fn temporal_pass_collapses_per_source_chains() {
        let f = SerialFilter::paper();
        let input: Vec<(f64, u32, u16)> = (0..30).map(|i| (3.0 * i as f64, 0, 0)).collect();
        assert_eq!(kept(&input, &f), vec![0]);
    }

    #[test]
    fn temporal_pass_does_not_merge_across_sources() {
        let f = SerialFilter::paper();
        let t = f.temporal_pass(&alerts(&[(0.0, 0, 0), (1.0, 1, 0)]));
        assert_eq!(t.len(), 2);
        // ...but the spatial pass then merges them.
        assert_eq!(f.spatial_pass(&t).len(), 1);
    }

    #[test]
    fn serial_keeps_what_simultaneous_removes() {
        // The paper's scenario: node A chains sub-threshold alerts
        // (temporal pass keeps only its first), node B reports the same
        // category later, *within T of A's most recent (removed)
        // message* but beyond T of A's first (kept) one. The spatial
        // pass lost its cue, so serial keeps B's alert; the simultaneous
        // filter removes it.
        let input = &[
            (0.0, 0, 0),  // A, kept by both
            (4.0, 0, 0),  // A, suppressed (refreshes)
            (8.0, 0, 0),  // A, suppressed (refreshes)
            (11.0, 1, 0), // B: 3s after A's last message, 11s after A's kept one
        ];
        let serial = kept(input, &SerialFilter::paper());
        let simul = kept(input, &SpatioTemporalFilter::paper());
        assert_eq!(serial, vec![0, 3], "serial misses the shared-cause cue");
        assert_eq!(simul, vec![0], "simultaneous removes it");
    }

    #[test]
    fn simultaneous_can_lose_true_positives_serial_keeps() {
        // Mirror of the sn373/sn325 example: two *different sources*
        // fail independently in the same category, 3 seconds apart.
        // Serial keeps A then removes B only in the spatial pass —
        // also removed there. But if B is a different source beyond T
        // of A's first report yet within T of A's chain, serial keeps
        // it (previous test). The distinct true-positive-loss case for
        // the simultaneous filter needs nothing new: (0, A), (3, B) is
        // merged by both (spatially redundant). The interesting
        // difference is only in chained scenarios, verified above.
        let input = &[(0.0, 373, 0), (3.0, 325, 0)];
        assert_eq!(kept(input, &SerialFilter::paper()), vec![0]);
        assert_eq!(kept(input, &SpatioTemporalFilter::paper()), vec![0]);
    }

    #[test]
    fn simultaneous_never_keeps_more_than_serial() {
        // On any input, the simultaneous filter's kept set is a subset
        // in *count* of the serial filter's (it suppresses strictly more
        // aggressively: any-source refresh vs per-source refresh plus
        // spatial pass without refreshed cues).
        for seed in 0..20u64 {
            let input: Vec<(f64, u32, u16)> = (0..150)
                .map(|i| {
                    let x = (i as u64)
                        .wrapping_mul(6_364_136_223_846_793_005)
                        .wrapping_add(seed);
                    (
                        (x % 10_000) as f64 / 25.0,
                        (x >> 16) as u32 % 6,
                        ((x >> 24) % 3) as u16,
                    )
                })
                .collect();
            let sorted = alerts(&input);
            let s = SerialFilter::paper().filter(&sorted).len();
            let m = SpatioTemporalFilter::paper().filter(&sorted).len();
            assert!(m <= s, "seed {seed}: simultaneous {m} > serial {s}");
        }
    }

    #[test]
    fn spatial_pass_same_source_is_not_redundant() {
        // Spatial removes only on *other* sources' reports.
        let f = SerialFilter::paper();
        let input = alerts(&[(0.0, 0, 0), (3.0, 0, 0)]);
        assert_eq!(f.spatial_pass(&input).len(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        let _ = SerialFilter::new(Duration::ZERO);
    }
}
