//! Per-category thresholds: the paper's recommended future work.
//!
//! Section 4: "a filtering threshold must be selected in advance and is
//! then applied across all kinds of alerts. In reality, each alert
//! category may require a different threshold." [`AdaptiveFilter`]
//! implements that, either with explicit per-category thresholds or
//! with thresholds learned from each category's interarrival
//! distribution.

use crate::{assert_sorted, AlertFilter};
use sclog_types::{Alert, CategoryId, Duration, Timestamp};
use std::collections::HashMap;

/// Simultaneous spatio-temporal filtering with a per-category
/// threshold.
///
/// Semantics are Algorithm 3.1's, except the redundancy test for an
/// alert of category `c` uses `T_c` instead of a global `T`.
#[derive(Debug, Clone)]
pub struct AdaptiveFilter {
    default: Duration,
    per_category: HashMap<CategoryId, Duration>,
}

impl AdaptiveFilter {
    /// Creates a filter that uses `default` for categories without an
    /// explicit threshold.
    ///
    /// # Panics
    ///
    /// Panics if `default` is not positive.
    pub fn new(default: Duration) -> Self {
        assert!(default.as_micros() > 0, "threshold must be positive");
        AdaptiveFilter {
            default,
            per_category: HashMap::new(),
        }
    }

    /// Sets the threshold for one category (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not positive.
    pub fn with_threshold(mut self, category: CategoryId, threshold: Duration) -> Self {
        assert!(threshold.as_micros() > 0, "threshold must be positive");
        self.per_category.insert(category, threshold);
        self
    }

    /// The threshold used for a category.
    pub fn threshold_for(&self, category: CategoryId) -> Duration {
        self.per_category
            .get(&category)
            .copied()
            .unwrap_or(self.default)
    }

    /// Learns per-category thresholds from the alert stream itself.
    ///
    /// For each category, the threshold is set to 1.5× the `q`-quantile
    /// of that category's interarrival gaps, clamped to `[min, max]`. The
    /// intuition: redundancy shows up as a dense mass of short gaps
    /// (Figure 6a's first mode); a quantile inside that mass separates
    /// burst-internal gaps from inter-failure gaps. Categories with
    /// fewer than 3 gaps keep the default.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or `min > max`.
    pub fn learn(
        alerts: &[Alert],
        q: f64,
        default: Duration,
        min: Duration,
        max: Duration,
    ) -> Self {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        assert!(min <= max, "min must not exceed max");
        let mut gaps: HashMap<CategoryId, Vec<f64>> = HashMap::new();
        let mut last: HashMap<CategoryId, Timestamp> = HashMap::new();
        for a in alerts {
            if let Some(prev) = last.insert(a.category, a.time) {
                gaps.entry(a.category)
                    .or_default()
                    .push((a.time - prev).as_secs_f64());
            }
        }
        let mut filter = AdaptiveFilter::new(default);
        for (cat, mut g) in gaps {
            if g.len() < 3 {
                continue;
            }
            g.sort_by(f64::total_cmp);
            let idx = ((g.len() - 1) as f64 * q).round() as usize;
            // 1.5x margin: the threshold must strictly exceed the
            // burst-internal gaps it is meant to merge.
            let t = Duration::from_secs_f64(g[idx] * 1.5).max(min).min(max);
            filter.per_category.insert(cat, t);
        }
        filter
    }
}

impl AlertFilter for AdaptiveFilter {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn filter(&self, alerts: &[Alert]) -> Vec<Alert> {
        assert_sorted(alerts);
        let mut table: HashMap<CategoryId, Timestamp> = HashMap::new();
        let mut out = Vec::new();
        for a in alerts {
            let t_c = self.threshold_for(a.category);
            match table.get_mut(&a.category) {
                Some(last) if a.time - *last < t_c => {
                    *last = a.time;
                }
                _ => {
                    table.insert(a.category, a.time);
                    out.push(*a);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::alerts;
    use crate::SpatioTemporalFilter;

    #[test]
    fn equals_fixed_filter_when_no_overrides() {
        let input: Vec<(f64, u32, u16)> = (0..100)
            .map(|i| ((i as f64 * 1.3) % 41.0, i % 4, (i % 3) as u16))
            .collect();
        let sorted = alerts(&input);
        let fixed = SpatioTemporalFilter::paper().filter(&sorted);
        let adaptive = AdaptiveFilter::new(Duration::from_secs(5)).filter(&sorted);
        assert_eq!(fixed, adaptive);
    }

    #[test]
    fn per_category_thresholds_differ() {
        let cat0 = CategoryId::from_index(0);
        let f = AdaptiveFilter::new(Duration::from_secs(5))
            .with_threshold(cat0, Duration::from_secs(60));
        // Category 0: 30s gaps are still redundant under T_0 = 60.
        let input = alerts(&[(0.0, 0, 0), (30.0, 0, 0), (0.5, 0, 1), (30.0, 1, 1)]);
        let kept: Vec<usize> = f.filter(&input).iter().map(|a| a.message_index).collect();
        // For category 1 (default T=5), the 29.5s gap keeps both.
        assert_eq!(kept, vec![0, 2, 3]);
        assert_eq!(f.threshold_for(cat0), Duration::from_secs(60));
        assert_eq!(
            f.threshold_for(CategoryId::from_index(9)),
            Duration::from_secs(5)
        );
    }

    #[test]
    fn learn_separates_burst_gaps_from_failure_gaps() {
        // Category 0: bursts of 10 alerts 1s apart, failures 1000s
        // apart. The 0.9-quantile of gaps lands in the burst mass.
        let mut spec = Vec::new();
        for failure in 0..10 {
            for k in 0..10 {
                spec.push((failure as f64 * 1000.0 + k as f64 * 9.0, 0u32, 0u16));
            }
        }
        let sorted = alerts(&spec);
        // With the paper's fixed T=5s, the 9s intra-burst gaps are NOT
        // merged: 100 alerts survive.
        assert_eq!(SpatioTemporalFilter::paper().filter(&sorted).len(), 100);
        // The learned filter picks a threshold above 9s for this
        // category and recovers ~10 (one per failure).
        let learned = AdaptiveFilter::learn(
            &sorted,
            0.8,
            Duration::from_secs(5),
            Duration::from_secs(1),
            Duration::from_secs(120),
        );
        let kept = learned.filter(&sorted).len();
        assert_eq!(kept, 10, "learned threshold should isolate failures");
    }

    #[test]
    fn learn_keeps_default_for_sparse_categories() {
        let sorted = alerts(&[(0.0, 0, 7), (50.0, 0, 7)]);
        let f = AdaptiveFilter::learn(
            &sorted,
            0.9,
            Duration::from_secs(5),
            Duration::from_secs(1),
            Duration::from_secs(100),
        );
        assert_eq!(
            f.threshold_for(CategoryId::from_index(7)),
            Duration::from_secs(5)
        );
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn learn_rejects_bad_quantile() {
        let _ = AdaptiveFilter::learn(
            &[],
            1.5,
            Duration::from_secs(5),
            Duration::from_secs(1),
            Duration::from_secs(10),
        );
    }
}
