//! Alert filtering (Section 3.3 of the paper).
//!
//! "A single failure may generate alerts across many nodes or many
//! alerts on a single node. Filtering is used to reduce a related set of
//! alerts to a single initial alert per failure."
//!
//! This crate implements:
//!
//! * [`SpatioTemporalFilter`] — the paper's Algorithm 3.1, which applies
//!   temporal and spatial filtering **simultaneously**: an alert is
//!   redundant if *any* source reported its category within the last
//!   `T` seconds.
//! * [`SerialFilter`] — the prior-work baseline (Liang et al.,
//!   DSN'05/'06): a per-source temporal pass followed by a cross-source
//!   spatial pass. Kept for the paper's speed/quality comparison.
//! * [`TupleFilter`] — Tsao-style tupling (related work [4, 26]):
//!   category-blind per-source coalescing, an ablation baseline.
//! * [`AdaptiveFilter`] — per-category thresholds, the future-work
//!   direction Section 4 recommends ("a single filtering threshold is
//!   not appropriate for all kinds of messages").
//! * [`score`] / [`compare`] — ground-truth evaluation enabled by the
//!   simulator's [`FailureId`]s, quantifying what the paper could only
//!   argue anecdotally (≤ 1 true positive lost, dozens of false
//!   positives removed).
//!
//! All filters implement [`AlertFilter`] and are pure functions of the
//! time-sorted alert sequence.
//!
//! [`FailureId`]: sclog_types::FailureId

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod metrics;
mod serial;
mod spatio;
mod tuple;

pub use adaptive::AdaptiveFilter;
pub use metrics::{compare, score, FilterComparison, FilterScore};
pub use serial::SerialFilter;
pub use spatio::SpatioTemporalFilter;
pub use tuple::TupleFilter;

use sclog_types::{Alert, Duration};

/// The threshold used throughout the paper: `T = 5` seconds, "in
/// correspondence with previous work [4, 9, 10]".
pub const PAPER_THRESHOLD: Duration = Duration::from_secs(5);

/// A batch alert filter: consumes a time-sorted alert sequence and
/// returns the kept subsequence.
pub trait AlertFilter {
    /// Short display name for reports.
    fn name(&self) -> &'static str;

    /// Filters a time-sorted alert sequence.
    ///
    /// # Panics
    ///
    /// Implementations panic if `alerts` is not sorted by time — the
    /// check runs in release builds too, because every filter's
    /// correctness depends on it and a silently wrong answer is worse
    /// than the O(n) scan.
    fn filter(&self, alerts: &[Alert]) -> Vec<Alert>;

    /// Convenience: how many alerts the filter keeps.
    fn kept_count(&self, alerts: &[Alert]) -> usize {
        self.filter(alerts).len()
    }
}

/// Validates the [`AlertFilter::filter`] precondition in all build
/// profiles. Every filter algorithm assumes time order; violating it
/// yields quietly wrong suppression decisions, so this is a hard
/// `assert!`, not a `debug_assert!`. The scan is O(n) against the
/// filters' own O(n·sources) work.
pub(crate) fn assert_sorted(alerts: &[Alert]) {
    if let Some(i) = alerts.windows(2).position(|w| w[0].time > w[1].time) {
        panic!(
            "alerts must be sorted by time: alerts[{i}] at {:?} precedes alerts[{}] at {:?}",
            alerts[i].time,
            i + 1,
            alerts[i + 1].time
        );
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use sclog_types::{Alert, CategoryId, NodeId, Timestamp};

    /// Builds an alert at `secs` from source `src` in category `cat`.
    pub fn alert(secs: f64, src: u32, cat: u16, idx: usize) -> Alert {
        Alert::new(
            Timestamp::from_micros((secs * 1e6) as i64),
            NodeId::from_index(src),
            CategoryId::from_index(cat),
            idx,
        )
    }

    /// Builds a sequence from `(secs, src, cat)` triples, indexing
    /// messages in order.
    pub fn alerts(spec: &[(f64, u32, u16)]) -> Vec<Alert> {
        let mut v: Vec<Alert> = spec
            .iter()
            .enumerate()
            .map(|(i, &(s, src, cat))| alert(s, src, cat, i))
            .collect();
        v.sort_by_key(|a| a.time);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::alerts;
    use super::*;

    #[test]
    fn paper_threshold_is_five_seconds() {
        assert_eq!(PAPER_THRESHOLD.as_secs(), 5);
    }

    #[test]
    fn trait_kept_count_matches_filter_len() {
        let f = SpatioTemporalFilter::paper();
        let a = alerts(&[(0.0, 0, 0), (1.0, 0, 0), (10.0, 0, 0)]);
        assert_eq!(f.kept_count(&a), f.filter(&a).len());
    }

    #[test]
    fn unsorted_input_panics_in_every_profile() {
        use super::testutil::alert;
        // Deliberately out of order; `alerts()` would sort it.
        let bad = vec![alert(10.0, 0, 0, 0), alert(1.0, 0, 0, 1)];
        for f in [
            Box::new(SpatioTemporalFilter::paper()) as Box<dyn AlertFilter>,
            Box::new(SerialFilter::paper()),
            Box::new(TupleFilter::paper()),
            Box::new(AdaptiveFilter::new(Duration::from_secs(5))),
        ] {
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f.filter(&bad)))
                .expect_err("unsorted input must panic");
            let msg = err.downcast_ref::<String>().expect("string panic");
            assert!(msg.contains("sorted by time"), "{}: {msg}", f.name());
        }
    }
}
