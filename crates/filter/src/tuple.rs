//! Tsao-style tupling (related work [4, 26] in the paper).

use crate::{assert_sorted, AlertFilter};
use sclog_types::{Alert, Duration, NodeId, Timestamp};
use std::collections::HashMap;

/// Category-blind per-source tupling.
///
/// Tsao's tuple concept groups *all* events on a machine that occur
/// within a window of each other, regardless of message content; the
/// first event of each tuple represents it. This predates category-aware
/// filtering and over-merges unrelated alerts that happen to coincide on
/// a node — which is exactly why it makes a useful ablation baseline
/// against Algorithm 3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TupleFilter {
    window: Duration,
}

impl TupleFilter {
    /// Creates a tupling filter with the given window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is not positive.
    pub fn new(window: Duration) -> Self {
        assert!(window.as_micros() > 0, "window must be positive");
        TupleFilter { window }
    }

    /// The same 5-second window the paper uses for its own filter.
    pub fn paper() -> Self {
        TupleFilter::new(crate::PAPER_THRESHOLD)
    }
}

impl AlertFilter for TupleFilter {
    fn name(&self) -> &'static str {
        "tuple"
    }

    fn filter(&self, alerts: &[Alert]) -> Vec<Alert> {
        assert_sorted(alerts);
        let mut last: HashMap<NodeId, Timestamp> = HashMap::new();
        let mut out = Vec::new();
        for a in alerts {
            match last.get_mut(&a.source) {
                Some(t) if a.time - *t < self.window => {
                    *t = a.time; // tuple continues
                }
                _ => {
                    last.insert(a.source, a.time);
                    out.push(*a);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::alerts;

    fn kept(input: &[(f64, u32, u16)]) -> Vec<usize> {
        TupleFilter::paper()
            .filter(&alerts(input))
            .iter()
            .map(|a| a.message_index)
            .collect()
    }

    #[test]
    fn merges_across_categories_on_one_node() {
        // GM_PAR followed 2s later by GM_LANAI on the same node: one
        // tuple — losing the category distinction Figure 3 cares about.
        assert_eq!(kept(&[(0.0, 0, 0), (2.0, 0, 1)]), vec![0]);
    }

    #[test]
    fn does_not_merge_across_nodes() {
        assert_eq!(kept(&[(0.0, 0, 0), (1.0, 1, 0)]), vec![0, 1]);
    }

    #[test]
    fn window_refreshes_within_tuple() {
        let input: Vec<(f64, u32, u16)> = (0..10)
            .map(|i| (4.0 * i as f64, 0, (i % 3) as u16))
            .collect();
        assert_eq!(kept(&input), vec![0]);
    }

    #[test]
    fn new_tuple_after_quiet_gap() {
        assert_eq!(kept(&[(0.0, 0, 0), (10.0, 0, 0)]), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        let _ = TupleFilter::new(Duration::ZERO);
    }
}
