//! Ground-truth evaluation of filters.
//!
//! The paper could only argue its filter's quality anecdotally ("at most
//! one true positive was removed on any single machine, whereas
//! sometimes dozens of false positives were removed"). The simulator
//! attaches a [`FailureId`] to every generated alert, so here the claim
//! becomes measurable: a filter *loses a failure* if none of that
//! failure's alerts survive, and it *under-merges* when several kept
//! alerts share one failure.

use sclog_types::{Alert, FailureId};
use std::collections::HashSet;

/// Ground-truth scorecard for one filter run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterScore {
    /// Alerts before filtering.
    pub raw: usize,
    /// Alerts kept.
    pub kept: usize,
    /// Distinct ground-truth failures among the raw alerts.
    pub failures: usize,
    /// Failures with at least one kept alert.
    pub covered: usize,
    /// Failures whose every alert was removed (true positives lost).
    pub lost: usize,
    /// Kept alerts beyond the first for their failure (residual
    /// redundancy the filter failed to merge).
    pub residual_redundancy: usize,
}

impl FilterScore {
    /// Compression ratio raw/kept (∞-safe: 0 when nothing kept).
    pub fn compression(&self) -> f64 {
        if self.kept == 0 {
            0.0
        } else {
            self.raw as f64 / self.kept as f64
        }
    }

    /// Fraction of failures covered by at least one kept alert.
    pub fn coverage(&self) -> f64 {
        if self.failures == 0 {
            1.0
        } else {
            self.covered as f64 / self.failures as f64
        }
    }
}

/// Scores a filter run against ground truth.
///
/// Alerts without a [`FailureId`] (real, non-simulated logs) are
/// ignored for the failure-level metrics but still counted in
/// `raw`/`kept`.
pub fn score(raw_alerts: &[Alert], kept_alerts: &[Alert]) -> FilterScore {
    let failures: HashSet<FailureId> = raw_alerts.iter().filter_map(|a| a.failure).collect();
    let mut covered: HashSet<FailureId> = HashSet::new();
    let mut residual = 0usize;
    for a in kept_alerts {
        if let Some(f) = a.failure {
            if !covered.insert(f) {
                residual += 1;
            }
        }
    }
    FilterScore {
        raw: raw_alerts.len(),
        kept: kept_alerts.len(),
        failures: failures.len(),
        covered: covered.len(),
        lost: failures.len() - covered.len(),
        residual_redundancy: residual,
    }
}

/// Which alerts two filters disagree on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterComparison {
    /// Message indices kept by the first filter only.
    pub only_first: Vec<usize>,
    /// Message indices kept by the second filter only.
    pub only_second: Vec<usize>,
    /// Kept by both.
    pub both: usize,
}

/// Compares two filters' kept sets (by message index).
pub fn compare(first_kept: &[Alert], second_kept: &[Alert]) -> FilterComparison {
    let a: HashSet<usize> = first_kept.iter().map(|x| x.message_index).collect();
    let b: HashSet<usize> = second_kept.iter().map(|x| x.message_index).collect();
    let mut only_first: Vec<usize> = a.difference(&b).copied().collect();
    let mut only_second: Vec<usize> = b.difference(&a).copied().collect();
    only_first.sort_unstable();
    only_second.sort_unstable();
    FilterComparison {
        both: a.intersection(&b).count(),
        only_first,
        only_second,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::alert;

    fn with_failure(mut a: Alert, f: u64) -> Alert {
        a.failure = Some(FailureId(f));
        a
    }

    #[test]
    fn score_counts_lost_and_residual() {
        let raw = vec![
            with_failure(alert(0.0, 0, 0, 0), 1),
            with_failure(alert(1.0, 0, 0, 1), 1),
            with_failure(alert(2.0, 1, 0, 2), 2),
        ];
        // Filter kept both alerts of failure 1, none of failure 2.
        let kept = vec![raw[0], raw[1]];
        let s = score(&raw, &kept);
        assert_eq!(s.raw, 3);
        assert_eq!(s.kept, 2);
        assert_eq!(s.failures, 2);
        assert_eq!(s.covered, 1);
        assert_eq!(s.lost, 1);
        assert_eq!(s.residual_redundancy, 1);
        assert_eq!(s.coverage(), 0.5);
        assert!((s.compression() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn score_perfect_filter() {
        let raw: Vec<Alert> = (0..10)
            .map(|i| with_failure(alert(i as f64, 0, 0, i), (i / 5) as u64))
            .collect();
        let kept = vec![raw[0], raw[5]];
        let s = score(&raw, &kept);
        assert_eq!(s.failures, 2);
        assert_eq!(s.covered, 2);
        assert_eq!(s.lost, 0);
        assert_eq!(s.residual_redundancy, 0);
        assert_eq!(s.coverage(), 1.0);
        assert_eq!(s.compression(), 5.0);
    }

    #[test]
    fn score_without_truth_is_degenerate_but_safe() {
        let raw = vec![alert(0.0, 0, 0, 0), alert(1.0, 0, 0, 1)];
        let s = score(&raw, &raw[..1]);
        assert_eq!(s.failures, 0);
        assert_eq!(s.coverage(), 1.0);
        let s0 = score(&raw, &[]);
        assert_eq!(s0.compression(), 0.0);
    }

    #[test]
    fn compare_partitions_kept_sets() {
        let a = vec![alert(0.0, 0, 0, 0), alert(1.0, 0, 0, 1)];
        let b = vec![alert(1.0, 0, 0, 1), alert(2.0, 0, 0, 2)];
        let c = compare(&a, &b);
        assert_eq!(c.only_first, vec![0]);
        assert_eq!(c.only_second, vec![2]);
        assert_eq!(c.both, 1);
    }
}
