//! Property tests for the filtering algorithms.

use proptest::prelude::*;
use sclog_filter::{
    AdaptiveFilter, AlertFilter, SerialFilter, SpatioTemporalFilter, TupleFilter,
};
use sclog_types::{Alert, CategoryId, Duration, NodeId, Timestamp};

/// Strategy: a sorted alert sequence with bounded sources/categories.
fn alert_seq() -> impl Strategy<Value = Vec<Alert>> {
    proptest::collection::vec(
        (0i64..200_000_000, 0u32..8, 0u16..5),
        0..300,
    )
    .prop_map(|mut v| {
        v.sort_by_key(|&(t, _, _)| t);
        v.into_iter()
            .enumerate()
            .map(|(i, (t, src, cat))| {
                Alert::new(
                    Timestamp::from_micros(t),
                    NodeId::from_index(src),
                    CategoryId::from_index(cat),
                    i,
                )
            })
            .collect()
    })
}

fn all_filters() -> Vec<Box<dyn AlertFilter>> {
    vec![
        Box::new(SpatioTemporalFilter::paper()),
        Box::new(SerialFilter::paper()),
        Box::new(TupleFilter::paper()),
        Box::new(AdaptiveFilter::new(Duration::from_secs(5))),
    ]
}

proptest! {
    #[test]
    fn output_is_subsequence_of_input(alerts in alert_seq()) {
        for f in all_filters() {
            let kept = f.filter(&alerts);
            // Subsequence check by message index (strictly increasing
            // and present in the input).
            let mut last = None;
            for k in &kept {
                prop_assert!(last.is_none_or(|l| k.message_index > l), "{}", f.name());
                prop_assert_eq!(&alerts[k.message_index], k);
                last = Some(k.message_index);
            }
        }
    }

    #[test]
    fn nonempty_input_keeps_first_alert(alerts in alert_seq()) {
        prop_assume!(!alerts.is_empty());
        for f in all_filters() {
            let kept = f.filter(&alerts);
            prop_assert!(!kept.is_empty(), "{} dropped everything", f.name());
            prop_assert_eq!(kept[0].message_index, 0, "{} dropped first alert", f.name());
        }
    }

    #[test]
    fn filtering_is_idempotent(alerts in alert_seq()) {
        for f in all_filters() {
            let once = f.filter(&alerts);
            let twice = f.filter(&once);
            prop_assert_eq!(once, twice, "{} not idempotent", f.name());
        }
    }

    #[test]
    fn simultaneous_is_at_most_serial(alerts in alert_seq()) {
        let m = SpatioTemporalFilter::paper().filter(&alerts).len();
        let s = SerialFilter::paper().filter(&alerts).len();
        prop_assert!(m <= s, "simultaneous kept {m}, serial kept {s}");
    }

    #[test]
    fn every_category_present_in_input_survives_somewhere(alerts in alert_seq()) {
        // The first alert of each category is always kept by the
        // simultaneous filter (nothing earlier can suppress it).
        use std::collections::HashSet;
        let kept: HashSet<CategoryId> = SpatioTemporalFilter::paper()
            .filter(&alerts)
            .iter()
            .map(|a| a.category)
            .collect();
        let input: HashSet<CategoryId> = alerts.iter().map(|a| a.category).collect();
        prop_assert_eq!(kept, input);
    }

    #[test]
    fn larger_threshold_never_keeps_more(alerts in alert_seq()) {
        let small = SpatioTemporalFilter::new(Duration::from_secs(1)).filter(&alerts).len();
        let large = SpatioTemporalFilter::new(Duration::from_secs(60)).filter(&alerts).len();
        prop_assert!(large <= small);
    }

    #[test]
    fn streaming_equals_batch(alerts in alert_seq()) {
        let f = SpatioTemporalFilter::paper();
        let mut stream = f.stream();
        let streamed: Vec<Alert> = alerts.iter().filter(|a| stream.push(a)).copied().collect();
        prop_assert_eq!(f.filter(&alerts), streamed);
    }
}
