//! Property tests for the filtering algorithms.
//!
//! Ported from proptest to the in-tree `sclog-testkit` harness; set
//! `SCLOG_PROP_CASES` / `SCLOG_PROP_SEED` to rescale or replay.

use sclog_filter::{AdaptiveFilter, AlertFilter, SerialFilter, SpatioTemporalFilter, TupleFilter};
use sclog_testkit::{check, Gen};
use sclog_types::{Alert, CategoryId, Duration, NodeId, Timestamp};

/// Generator: a sorted alert sequence with bounded sources/categories.
fn alert_seq(g: &mut Gen) -> Vec<Alert> {
    let mut raw: Vec<(i64, u32, u16)> = g.vec(0..=300, |g| {
        (
            g.int_in(0..=199_999_999),
            g.below(8) as u32,
            g.below(5) as u16,
        )
    });
    raw.sort_by_key(|&(t, _, _)| t);
    raw.into_iter()
        .enumerate()
        .map(|(i, (t, src, cat))| {
            Alert::new(
                Timestamp::from_micros(t),
                NodeId::from_index(src),
                CategoryId::from_index(cat),
                i,
            )
        })
        .collect()
}

fn all_filters() -> Vec<Box<dyn AlertFilter>> {
    vec![
        Box::new(SpatioTemporalFilter::paper()),
        Box::new(SerialFilter::paper()),
        Box::new(TupleFilter::paper()),
        Box::new(AdaptiveFilter::new(Duration::from_secs(5))),
    ]
}

#[test]
fn output_is_subsequence_of_input() {
    check("output is subsequence of input", |g| {
        let alerts = alert_seq(g);
        for f in all_filters() {
            let kept = f.filter(&alerts);
            // Subsequence check by message index (strictly increasing
            // and present in the input).
            let mut last = None;
            for k in &kept {
                assert!(last.is_none_or(|l| k.message_index > l), "{}", f.name());
                assert_eq!(&alerts[k.message_index], k);
                last = Some(k.message_index);
            }
        }
    });
}

#[test]
fn nonempty_input_keeps_first_alert() {
    check("nonempty input keeps first alert", |g| {
        let alerts = alert_seq(g);
        if alerts.is_empty() {
            return;
        }
        for f in all_filters() {
            let kept = f.filter(&alerts);
            assert!(!kept.is_empty(), "{} dropped everything", f.name());
            assert_eq!(kept[0].message_index, 0, "{} dropped first alert", f.name());
        }
    });
}

#[test]
fn filtering_is_idempotent() {
    check("filtering is idempotent", |g| {
        let alerts = alert_seq(g);
        for f in all_filters() {
            let once = f.filter(&alerts);
            let twice = f.filter(&once);
            assert_eq!(once, twice, "{} not idempotent", f.name());
        }
    });
}

#[test]
fn simultaneous_is_at_most_serial() {
    check("simultaneous is at most serial", |g| {
        let alerts = alert_seq(g);
        let m = SpatioTemporalFilter::paper().filter(&alerts).len();
        let s = SerialFilter::paper().filter(&alerts).len();
        assert!(m <= s, "simultaneous kept {m}, serial kept {s}");
    });
}

#[test]
fn every_category_present_in_input_survives_somewhere() {
    check("every input category survives", |g| {
        // The first alert of each category is always kept by the
        // simultaneous filter (nothing earlier can suppress it).
        use std::collections::HashSet;
        let alerts = alert_seq(g);
        let kept: HashSet<CategoryId> = SpatioTemporalFilter::paper()
            .filter(&alerts)
            .iter()
            .map(|a| a.category)
            .collect();
        let input: HashSet<CategoryId> = alerts.iter().map(|a| a.category).collect();
        assert_eq!(kept, input);
    });
}

#[test]
fn larger_threshold_never_keeps_more() {
    check("larger threshold never keeps more", |g| {
        let alerts = alert_seq(g);
        let small = SpatioTemporalFilter::new(Duration::from_secs(1))
            .filter(&alerts)
            .len();
        let large = SpatioTemporalFilter::new(Duration::from_secs(60))
            .filter(&alerts)
            .len();
        assert!(large <= small);
    });
}

#[test]
fn streaming_equals_batch() {
    check("streaming equals batch", |g| {
        let alerts = alert_seq(g);
        let f = SpatioTemporalFilter::paper();
        let mut stream = f.stream();
        let streamed: Vec<Alert> = alerts.iter().filter(|a| stream.push(a)).copied().collect();
        assert_eq!(f.filter(&alerts), streamed);
    });
}
