//! Context-aware alert triage.
//!
//! The paper's recommendation made executable: "some alerts may be
//! ignored during a scheduled downtime that would be significant during
//! production time" (§3.2.1, citing Feitelson's workload sanitation).
//! Given an operational-context log, an alert stream partitions into
//! what still demands attention and what the declared state already
//! explains.

use crate::machine::{ContextLog, Disposition};
use sclog_types::Alert;

/// An alert stream partitioned by operational context.
#[derive(Debug, Clone, Default)]
pub struct Triage {
    /// Alerts during production uptime: these demand attention.
    pub actionable: Vec<Alert>,
    /// Alerts during a known unscheduled outage (symptoms of an issue
    /// already being handled).
    pub known_outage: Vec<Alert>,
    /// Alerts during scheduled maintenance (probable artifacts).
    pub maintenance: Vec<Alert>,
    /// Alerts during engineering/testing time (expected noise,
    /// Feitelson's "workload flurries").
    pub engineering: Vec<Alert>,
}

impl Triage {
    /// Partitions a time-sorted alert stream against a context log.
    pub fn partition(alerts: &[Alert], ctx: &ContextLog) -> Self {
        let mut out = Triage::default();
        for &a in alerts {
            match ctx.classify(a.time) {
                Disposition::Actionable => out.actionable.push(a),
                Disposition::KnownOutage => out.known_outage.push(a),
                Disposition::MaintenanceArtifact => out.maintenance.push(a),
                Disposition::EngineeringArtifact => out.engineering.push(a),
            }
        }
        out
    }

    /// Total alerts across all partitions.
    pub fn total(&self) -> usize {
        self.actionable.len()
            + self.known_outage.len()
            + self.maintenance.len()
            + self.engineering.len()
    }

    /// Fraction of alerts the context log explains away (everything
    /// except the actionable partition).
    pub fn suppression_ratio(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            1.0 - self.actionable.len() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::OpState;
    use sclog_types::{CategoryId, NodeId, Timestamp};

    fn alert(secs: i64) -> Alert {
        Alert::new(
            Timestamp::from_secs(secs),
            NodeId::from_index(0),
            CategoryId::from_index(0),
            secs as usize,
        )
    }

    fn ctx() -> ContextLog {
        let mut c = ContextLog::new(Timestamp::from_secs(0), OpState::ProductionUptime);
        c.transition(
            Timestamp::from_secs(100),
            OpState::ScheduledDowntime,
            "maint",
        )
        .unwrap();
        c.transition(Timestamp::from_secs(200), OpState::ProductionUptime, "done")
            .unwrap();
        c.transition(
            Timestamp::from_secs(300),
            OpState::UnscheduledDowntime,
            "outage",
        )
        .unwrap();
        c.transition(
            Timestamp::from_secs(400),
            OpState::EngineeringTime,
            "testing",
        )
        .unwrap();
        c
    }

    #[test]
    fn partitions_by_state() {
        let alerts = vec![alert(50), alert(150), alert(250), alert(350), alert(450)];
        let t = Triage::partition(&alerts, &ctx());
        assert_eq!(t.actionable.len(), 2); // 50, 250
        assert_eq!(t.maintenance.len(), 1); // 150
        assert_eq!(t.known_outage.len(), 1); // 350
        assert_eq!(t.engineering.len(), 1); // 450
        assert_eq!(t.total(), 5);
        assert!((t.suppression_ratio() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_stream_is_safe() {
        let t = Triage::partition(&[], &ctx());
        assert_eq!(t.total(), 0);
        assert_eq!(t.suppression_ratio(), 0.0);
    }

    #[test]
    fn all_production_means_nothing_suppressed() {
        let c = ContextLog::new(Timestamp::from_secs(0), OpState::ProductionUptime);
        let alerts = vec![alert(1), alert(2)];
        let t = Triage::partition(&alerts, &c);
        assert_eq!(t.actionable.len(), 2);
        assert_eq!(t.suppression_ratio(), 0.0);
    }
}
