//! Operational context (Figure 1 of the paper).
//!
//! "The most salient missing data is *operational context*, which
//! captures the system's expected behavior. … It may be sufficient to
//! record only a few bytes of data: the time and cause of system state
//! changes."
//!
//! This crate implements that recommendation end to end:
//!
//! * [`OpState`] — the operational states of the Figure 1 diagram (the
//!   basis of the Red Storm RAS metrics under development by LANL, LLNL
//!   and SNL at the time).
//! * [`ContextLog`] — an append-only log of state transitions with
//!   causes, queryable by time.
//! * Transition serialization to and from single log lines, showing how
//!   cheap the paper's proposal is ("only a few bytes").
//! * [`RasMetrics`] — time-in-state accounting, availability, and the
//!   paper's preferred "useful work lost" quantity.
//! * [`Disposition`] — alert disambiguation: the same `ciodb exited
//!   normally` message is harmless during scheduled downtime and
//!   catastrophic during production (Section 3.2.1's example).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod machine;
mod metrics;
mod suppress;

pub use machine::{ContextError, ContextLog, Disposition, OpState, Transition};
pub use metrics::RasMetrics;
pub use suppress::Triage;
