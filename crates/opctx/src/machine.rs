//! The operational-context state machine.

use sclog_types::Timestamp;
use std::fmt;
use std::str::FromStr;

/// Operational states, after the Figure 1 diagram: total time divides
/// into production and engineering time; production time divides into
/// uptime and (scheduled or unscheduled) downtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpState {
    /// In production, up, running user jobs.
    ProductionUptime,
    /// Down for planned maintenance (OS upgrades, hardware swaps).
    ScheduledDowntime,
    /// Down because something failed.
    UnscheduledDowntime,
    /// Dedicated system testing / diagnostics time (Feitelson's
    /// "workload flurries" live here).
    EngineeringTime,
}

/// All states, for iteration.
pub const ALL_STATES: [OpState; 4] = [
    OpState::ProductionUptime,
    OpState::ScheduledDowntime,
    OpState::UnscheduledDowntime,
    OpState::EngineeringTime,
];

impl OpState {
    /// Stable token used in transition log lines.
    pub const fn token(self) -> &'static str {
        match self {
            OpState::ProductionUptime => "production-uptime",
            OpState::ScheduledDowntime => "scheduled-downtime",
            OpState::UnscheduledDowntime => "unscheduled-downtime",
            OpState::EngineeringTime => "engineering-time",
        }
    }

    /// Whether a transition from `self` to `to` is meaningful.
    ///
    /// All pairs of distinct states are legal except self-loops: the
    /// Figure 1 taxonomy is about accounting, not protocol.
    pub fn can_transition_to(self, to: OpState) -> bool {
        self != to
    }
}

impl fmt::Display for OpState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

impl FromStr for OpState {
    type Err = ContextError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ALL_STATES
            .into_iter()
            .find(|st| st.token() == s)
            .ok_or_else(|| ContextError::UnknownState(s.to_owned()))
    }
}

/// One recorded state change: "the time and cause of system state
/// changes" — the few bytes the paper asks operators to log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// When the state changed.
    pub time: Timestamp,
    /// State being left.
    pub from: OpState,
    /// State being entered.
    pub to: OpState,
    /// Human-supplied cause ("OS upgrade to 2.6.12", "PBS outage").
    pub cause: String,
}

impl Transition {
    /// Renders as a single log-line body, e.g.
    /// `OPCTX 1131566461 production-uptime -> scheduled-downtime : OS upgrade`.
    pub fn to_log_body(&self) -> String {
        format!(
            "OPCTX {} {} -> {} : {}",
            self.time.as_secs(),
            self.from.token(),
            self.to.token(),
            self.cause
        )
    }

    /// Parses a log-line body produced by [`Self::to_log_body`].
    ///
    /// # Errors
    ///
    /// Returns [`ContextError::BadLine`] on malformed input and
    /// [`ContextError::UnknownState`] on unknown state tokens.
    pub fn from_log_body(body: &str) -> Result<Self, ContextError> {
        let rest = body
            .strip_prefix("OPCTX ")
            .ok_or_else(|| ContextError::BadLine(body.to_owned()))?;
        let mut parts = rest.splitn(2, " : ");
        let head = parts.next().unwrap_or("");
        let cause = parts
            .next()
            .ok_or_else(|| ContextError::BadLine(body.to_owned()))?
            .to_owned();
        let toks: Vec<&str> = head.split_whitespace().collect();
        let [secs, from, arrow, to] = toks[..] else {
            return Err(ContextError::BadLine(body.to_owned()));
        };
        if arrow != "->" {
            return Err(ContextError::BadLine(body.to_owned()));
        }
        let secs: i64 = secs
            .parse()
            .map_err(|_| ContextError::BadLine(body.to_owned()))?;
        Ok(Transition {
            time: Timestamp::from_secs(secs),
            from: from.parse()?,
            to: to.parse()?,
            cause,
        })
    }
}

/// Errors from context-log operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContextError {
    /// Transition time precedes the last recorded transition.
    NonMonotonic {
        /// Time of the last recorded transition.
        last: Timestamp,
        /// The offending earlier time.
        attempted: Timestamp,
    },
    /// Transition to the state the machine is already in.
    SelfLoop(OpState),
    /// Unknown state token in a parsed line.
    UnknownState(String),
    /// Malformed transition line.
    BadLine(String),
}

impl fmt::Display for ContextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContextError::NonMonotonic { last, attempted } => {
                write!(
                    f,
                    "transition at {attempted} precedes last transition at {last}"
                )
            }
            ContextError::SelfLoop(s) => write!(f, "self-transition to {s}"),
            ContextError::UnknownState(s) => write!(f, "unknown state token {s:?}"),
            ContextError::BadLine(s) => write!(f, "malformed transition line {s:?}"),
        }
    }
}

impl std::error::Error for ContextError {}

/// Append-only operational-context log for one system, queryable by
/// time.
///
/// # Examples
///
/// ```
/// use sclog_opctx::{ContextLog, OpState};
/// use sclog_types::Timestamp;
///
/// let mut ctx = ContextLog::new(Timestamp::from_secs(0), OpState::ProductionUptime);
/// ctx.transition(Timestamp::from_secs(100), OpState::ScheduledDowntime, "OS upgrade")?;
/// ctx.transition(Timestamp::from_secs(200), OpState::ProductionUptime, "upgrade done")?;
/// assert_eq!(ctx.state_at(Timestamp::from_secs(150)), OpState::ScheduledDowntime);
/// assert_eq!(ctx.state_at(Timestamp::from_secs(250)), OpState::ProductionUptime);
/// # Ok::<(), sclog_opctx::ContextError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextLog {
    start: Timestamp,
    initial: OpState,
    transitions: Vec<Transition>,
}

impl ContextLog {
    /// Creates a context log starting in `initial` at `start`.
    pub fn new(start: Timestamp, initial: OpState) -> Self {
        ContextLog {
            start,
            initial,
            transitions: Vec::new(),
        }
    }

    /// Records a state change.
    ///
    /// # Errors
    ///
    /// [`ContextError::NonMonotonic`] if `time` precedes the previous
    /// transition (or the log start); [`ContextError::SelfLoop`] if
    /// `to` equals the current state.
    pub fn transition(
        &mut self,
        time: Timestamp,
        to: OpState,
        cause: impl Into<String>,
    ) -> Result<(), ContextError> {
        let last_time = self.transitions.last().map_or(self.start, |t| t.time);
        if time < last_time {
            return Err(ContextError::NonMonotonic {
                last: last_time,
                attempted: time,
            });
        }
        let from = self.current_state();
        if !from.can_transition_to(to) {
            return Err(ContextError::SelfLoop(to));
        }
        self.transitions.push(Transition {
            time,
            from,
            to,
            cause: cause.into(),
        });
        Ok(())
    }

    /// The state after all recorded transitions.
    pub fn current_state(&self) -> OpState {
        self.transitions.last().map_or(self.initial, |t| t.to)
    }

    /// The state in effect at time `t` (the log start state for times
    /// before the first transition).
    pub fn state_at(&self, t: Timestamp) -> OpState {
        match self.transitions.partition_point(|tr| tr.time <= t) {
            0 => self.initial,
            n => self.transitions[n - 1].to,
        }
    }

    /// When the log begins.
    pub fn start(&self) -> Timestamp {
        self.start
    }

    /// The recorded transitions, in time order.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Classifies an alert by the operational state it occurred in —
    /// the Section 3.2.1 disambiguation. A `FAILURE`-severity message
    /// during scheduled downtime is probably a maintenance artifact;
    /// the same message during production uptime demands action.
    pub fn classify(&self, alert_time: Timestamp) -> Disposition {
        match self.state_at(alert_time) {
            OpState::ProductionUptime => Disposition::Actionable,
            OpState::UnscheduledDowntime => Disposition::KnownOutage,
            OpState::ScheduledDowntime => Disposition::MaintenanceArtifact,
            OpState::EngineeringTime => Disposition::EngineeringArtifact,
        }
    }

    /// Renders every transition as a log-line body, one per line.
    pub fn to_log_bodies(&self) -> String {
        let mut out = String::new();
        for t in &self.transitions {
            out.push_str(&t.to_log_body());
            out.push('\n');
        }
        out
    }

    /// Reconstructs a context log from rendered transition lines.
    ///
    /// # Errors
    ///
    /// Propagates parse errors; also rejects non-monotonic or
    /// self-looping sequences.
    pub fn from_log_bodies(
        start: Timestamp,
        initial: OpState,
        text: &str,
    ) -> Result<Self, ContextError> {
        let mut log = ContextLog::new(start, initial);
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let t = Transition::from_log_body(line)?;
            log.transition(t.time, t.to, t.cause)?;
        }
        Ok(log)
    }
}

/// What operational context says about an alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Occurred in production uptime: demands attention.
    Actionable,
    /// Occurred during a known unscheduled outage: symptom, not news.
    KnownOutage,
    /// Occurred during scheduled maintenance: probably an artifact of
    /// the maintenance itself.
    MaintenanceArtifact,
    /// Occurred during engineering/testing time: expected noise.
    EngineeringArtifact,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: i64) -> Timestamp {
        Timestamp::from_secs(secs)
    }

    #[test]
    fn state_at_boundaries() {
        let mut ctx = ContextLog::new(t(0), OpState::ProductionUptime);
        ctx.transition(t(100), OpState::ScheduledDowntime, "maint")
            .unwrap();
        assert_eq!(ctx.state_at(t(0)), OpState::ProductionUptime);
        assert_eq!(ctx.state_at(t(99)), OpState::ProductionUptime);
        // Transitions take effect at their timestamp.
        assert_eq!(ctx.state_at(t(100)), OpState::ScheduledDowntime);
        assert_eq!(ctx.current_state(), OpState::ScheduledDowntime);
    }

    #[test]
    fn rejects_non_monotonic() {
        let mut ctx = ContextLog::new(t(1000), OpState::ProductionUptime);
        let err = ctx
            .transition(t(500), OpState::EngineeringTime, "x")
            .unwrap_err();
        assert!(matches!(err, ContextError::NonMonotonic { .. }));
        assert!(err.to_string().contains("precedes"));
    }

    #[test]
    fn rejects_self_loop() {
        let mut ctx = ContextLog::new(t(0), OpState::ProductionUptime);
        let err = ctx
            .transition(t(10), OpState::ProductionUptime, "noop")
            .unwrap_err();
        assert_eq!(err, ContextError::SelfLoop(OpState::ProductionUptime));
    }

    #[test]
    fn ciodb_example_disambiguation() {
        // The paper's BGLMASTER FAILURE example: same message, two
        // meanings.
        let mut ctx = ContextLog::new(t(0), OpState::ProductionUptime);
        ctx.transition(t(1000), OpState::ScheduledDowntime, "ciodb maintenance")
            .unwrap();
        ctx.transition(t(2000), OpState::ProductionUptime, "maintenance complete")
            .unwrap();
        // During maintenance: harmless artifact.
        assert_eq!(ctx.classify(t(1500)), Disposition::MaintenanceArtifact);
        // During production: all running jobs were killed.
        assert_eq!(ctx.classify(t(2500)), Disposition::Actionable);
    }

    #[test]
    fn log_body_round_trip() {
        let tr = Transition {
            time: t(1_131_566_461),
            from: OpState::ProductionUptime,
            to: OpState::ScheduledDowntime,
            cause: "OS upgrade to 2.6.12 : phase 1".to_owned(),
        };
        let body = tr.to_log_body();
        assert_eq!(
            body,
            "OPCTX 1131566461 production-uptime -> scheduled-downtime : OS upgrade to 2.6.12 : phase 1"
        );
        let parsed = Transition::from_log_body(&body).unwrap();
        assert_eq!(parsed, tr);
    }

    #[test]
    fn log_body_rejects_malformed() {
        for bad in [
            "",
            "OPCTX",
            "OPCTX 123 production-uptime scheduled-downtime : x",
            "OPCTX abc production-uptime -> scheduled-downtime : x",
            "OPCTX 123 production-uptime -> bogus-state : x",
            "not even close",
            "OPCTX 123 production-uptime -> scheduled-downtime",
        ] {
            assert!(Transition::from_log_body(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn whole_log_round_trips() {
        let mut ctx = ContextLog::new(t(0), OpState::ProductionUptime);
        ctx.transition(t(100), OpState::ScheduledDowntime, "upgrade")
            .unwrap();
        ctx.transition(t(200), OpState::ProductionUptime, "done")
            .unwrap();
        ctx.transition(t(300), OpState::UnscheduledDowntime, "PBS died")
            .unwrap();
        let text = ctx.to_log_bodies();
        let back = ContextLog::from_log_bodies(t(0), OpState::ProductionUptime, &text).unwrap();
        assert_eq!(ctx, back);
    }

    #[test]
    fn state_token_round_trip() {
        for s in ALL_STATES {
            assert_eq!(s.token().parse::<OpState>().unwrap(), s);
            assert_eq!(s.to_string(), s.token());
        }
        assert!("production".parse::<OpState>().is_err());
    }

    #[test]
    fn transition_takes_only_a_few_bytes() {
        // The paper: "it may be sufficient to record only a few bytes".
        let tr = Transition {
            time: t(1_131_566_461),
            from: OpState::ProductionUptime,
            to: OpState::ScheduledDowntime,
            cause: "OS upgrade".to_owned(),
        };
        assert!(tr.to_log_body().len() < 100);
    }
}
