//! RAS metrics over an operational-context log.
//!
//! Section 5 of the paper warns against computing MTTF from log
//! contents ("using logs to compare machines is absurd") and recommends
//! "calculating RAS metrics based on quantities of direct interest,
//! such as the amount of useful work lost due to failures". With an
//! operational-context log those quantities are directly computable.

use crate::machine::{ContextLog, OpState};
use sclog_types::{Duration, Timestamp};

/// Time-in-state accounting over a window, plus derived metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RasMetrics {
    /// Time spent in production uptime.
    pub production_uptime: Duration,
    /// Time spent in scheduled downtime.
    pub scheduled_downtime: Duration,
    /// Time spent in unscheduled downtime.
    pub unscheduled_downtime: Duration,
    /// Time spent in engineering time.
    pub engineering: Duration,
    /// Number of transitions into unscheduled downtime (failures that
    /// took the system down).
    pub outages: u64,
}

impl RasMetrics {
    /// Computes metrics for `[ctx.start(), end)`.
    ///
    /// # Panics
    ///
    /// Panics if `end` precedes the log start.
    pub fn compute(ctx: &ContextLog, end: Timestamp) -> Self {
        assert!(end >= ctx.start(), "end precedes log start");
        let mut acc = [Duration::ZERO; 4];
        let mut outages = 0;
        let mut cur_state = ctx.state_at(ctx.start());
        let mut cur_time = ctx.start();
        for tr in ctx.transitions() {
            let t = tr.time.min(end);
            acc[state_index(cur_state)] = acc[state_index(cur_state)] + (t - cur_time);
            if tr.time >= end {
                cur_time = end;
                break;
            }
            if tr.to == OpState::UnscheduledDowntime {
                outages += 1;
            }
            cur_state = tr.to;
            cur_time = tr.time;
        }
        if cur_time < end {
            acc[state_index(cur_state)] = acc[state_index(cur_state)] + (end - cur_time);
        }
        RasMetrics {
            production_uptime: acc[0],
            scheduled_downtime: acc[1],
            unscheduled_downtime: acc[2],
            engineering: acc[3],
            outages,
        }
    }

    /// Production time: uptime plus both kinds of downtime.
    pub fn production_time(&self) -> Duration {
        self.production_uptime + self.scheduled_downtime + self.unscheduled_downtime
    }

    /// Availability within production time: uptime / production time.
    pub fn availability(&self) -> f64 {
        let prod = self.production_time().as_secs_f64();
        if prod <= 0.0 {
            1.0
        } else {
            self.production_uptime.as_secs_f64() / prod
        }
    }

    /// Scheduled availability: uptime / (production − scheduled
    /// downtime) — the operator-friendly number.
    pub fn scheduled_availability(&self) -> f64 {
        let denom = (self.production_time() - self.scheduled_downtime).as_secs_f64();
        if denom <= 0.0 {
            1.0
        } else {
            self.production_uptime.as_secs_f64() / denom
        }
    }

    /// The paper's preferred quantity: useful work lost to failures, in
    /// node-hours, given the machine's node count.
    pub fn work_lost_node_hours(&self, nodes: u32) -> f64 {
        self.unscheduled_downtime.as_secs_f64() / 3600.0 * f64::from(nodes)
    }

    /// Mean time between outages within the window (production time /
    /// outages); `None` with no outages.
    pub fn mean_time_between_outages(&self) -> Option<Duration> {
        if self.outages == 0 {
            None
        } else {
            Some(self.production_time() / self.outages as i64)
        }
    }
}

fn state_index(s: OpState) -> usize {
    match s {
        OpState::ProductionUptime => 0,
        OpState::ScheduledDowntime => 1,
        OpState::UnscheduledDowntime => 2,
        OpState::EngineeringTime => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: i64) -> Timestamp {
        Timestamp::from_secs(secs)
    }

    fn sample_log() -> ContextLog {
        let mut ctx = ContextLog::new(t(0), OpState::ProductionUptime);
        ctx.transition(t(1000), OpState::ScheduledDowntime, "maint")
            .unwrap();
        ctx.transition(t(1500), OpState::ProductionUptime, "done")
            .unwrap();
        ctx.transition(t(2000), OpState::UnscheduledDowntime, "disk")
            .unwrap();
        ctx.transition(t(2600), OpState::ProductionUptime, "repaired")
            .unwrap();
        ctx.transition(t(3000), OpState::EngineeringTime, "testing")
            .unwrap();
        ctx
    }

    #[test]
    fn time_accounting_sums_to_window() {
        let ctx = sample_log();
        let m = RasMetrics::compute(&ctx, t(4000));
        let total =
            m.production_uptime + m.scheduled_downtime + m.unscheduled_downtime + m.engineering;
        assert_eq!(total, Duration::from_secs(4000));
        assert_eq!(m.production_uptime, Duration::from_secs(1000 + 500 + 400));
        assert_eq!(m.scheduled_downtime, Duration::from_secs(500));
        assert_eq!(m.unscheduled_downtime, Duration::from_secs(600));
        assert_eq!(m.engineering, Duration::from_secs(1000));
        assert_eq!(m.outages, 1);
    }

    #[test]
    fn window_cuts_mid_state() {
        let ctx = sample_log();
        let m = RasMetrics::compute(&ctx, t(1200));
        assert_eq!(m.production_uptime, Duration::from_secs(1000));
        assert_eq!(m.scheduled_downtime, Duration::from_secs(200));
        assert_eq!(m.unscheduled_downtime, Duration::ZERO);
        // Transitions past the window don't count as outages.
        assert_eq!(m.outages, 0);
    }

    #[test]
    fn availability_metrics() {
        let ctx = sample_log();
        let m = RasMetrics::compute(&ctx, t(3000));
        // Production time = 3000 (engineering starts at the cut).
        assert_eq!(m.production_time(), Duration::from_secs(3000));
        assert!((m.availability() - 1900.0 / 3000.0).abs() < 1e-12);
        assert!((m.scheduled_availability() - 1900.0 / 2500.0).abs() < 1e-12);
    }

    #[test]
    fn work_lost_scales_with_nodes() {
        let ctx = sample_log();
        let m = RasMetrics::compute(&ctx, t(4000));
        // 600 s unscheduled = 1/6 h; × 512 nodes.
        assert!((m.work_lost_node_hours(512) - 512.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn mtbo() {
        let ctx = sample_log();
        let m = RasMetrics::compute(&ctx, t(4000));
        assert_eq!(m.mean_time_between_outages(), Some(m.production_time() / 1));
        let empty = ContextLog::new(t(0), OpState::ProductionUptime);
        let m0 = RasMetrics::compute(&empty, t(100));
        assert_eq!(m0.mean_time_between_outages(), None);
        assert_eq!(m0.availability(), 1.0);
    }

    #[test]
    fn empty_window_is_safe() {
        let ctx = sample_log();
        let m = RasMetrics::compute(&ctx, t(0));
        assert_eq!(m.production_time(), Duration::ZERO);
        assert_eq!(m.availability(), 1.0);
    }

    #[test]
    #[should_panic(expected = "end precedes")]
    fn end_before_start_panics() {
        let ctx = ContextLog::new(t(100), OpState::ProductionUptime);
        let _ = RasMetrics::compute(&ctx, t(50));
    }
}
