//! Hermetic tracing and metrics for the streaming pipeline.
//!
//! The paper's central complaint is that raw logs lack the
//! *operational context* needed to interpret them; our own pipeline
//! had the same blind spot — a concurrent read → parse → tag → filter
//! stream whose only self-knowledge was a pair of peak counters. This
//! crate is the missing layer, std-only per the workspace's hermetic
//! policy (it replaces what would otherwise be the `metrics` +
//! `tracing` registry crates):
//!
//! * [`Recorder`] — a registry of counters, peaks, up/down gauges and
//!   fixed-bucket log2 histograms. Counter/histogram storage is
//!   **sharded per thread**: every recorded thread owns a
//!   [`ThreadRecorder`] whose slots only it writes, so the tagging
//!   hot loop never contends on a shared lock or cache line; a
//!   [`Snapshot`] merges the shards.
//! * Spans — [`ThreadRecorder::span`] returns an RAII guard over
//!   `Instant` that attributes its lifetime to a [`Stage`]; stages
//!   roll up into the run report's waterfall (wall, busy, queue-wait,
//!   items, bytes) per pipeline stage and per pool worker. The
//!   [`span!`] macro is sugar for the guard. This crate (plus
//!   `sclog-bench`) is the only place allowed to touch
//!   `Instant::now()` in hot paths — `scripts/tidy.sh` enforces it.
//! * Exporters — [`Snapshot::report`] produces the
//!   [`sclog_types::obs::ObsReport`] JSON schema and [`render`] the
//!   human-readable run report.
//! * Deltas — [`Snapshot::delta`] subtracts two snapshots of the same
//!   recorder with monotonicity checks, [`TraceScope`] brackets one
//!   unit of work with a before/after delta, and [`History`] retains
//!   a bounded ring of sampled snapshots that renders as the
//!   `sclog.trace.v1` timeline (DESIGN.md §15).
//!
//! Everything is **zero-cost when disabled**: [`Recorder::disabled`]
//! (the [`ObsConfig::off`] default) makes every handle a no-op behind
//! one well-predicted branch, and no `Instant` is ever read.
//!
//! # Examples
//!
//! ```
//! use sclog_obs::{ObsConfig, Recorder};
//!
//! let rec = ObsConfig::on().recorder();
//! let lines = rec.counter("parse.lines");
//! let tag = rec.stage("tag");
//! let tr = rec.thread("worker/0");
//! {
//!     let _span = tr.span(tag);
//!     tr.add(lines, 128);
//!     tr.stage_items(tag, 128, 4096);
//! }
//! let report = rec.snapshot().report();
//! assert_eq!(report.counter("parse.lines"), Some(128));
//! assert_eq!(report.stage("tag").unwrap().items, 128);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod recorder;
mod report;
mod trace;

pub use recorder::{
    Counter, Histogram, ObsConfig, Peak, PeakGauge, Recorder, Snapshot, SpanGuard, Stage,
    ThreadRecorder,
};
pub use report::render;
pub use trace::{History, TraceScope};

/// Opens a working span on a stage: `span!(thread_recorder, stage)`
/// evaluates to the RAII [`SpanGuard`]; busy time is attributed when
/// the guard drops. Bind it (`let _span = span!(tr, stage);`) so the
/// guard lives for the region being measured.
#[macro_export]
macro_rules! span {
    ($tr:expr, $stage:expr) => {
        $tr.span($stage)
    };
}
