//! Human-readable rendering of an [`ObsReport`].
//!
//! The JSON exporter lives on the schema type itself
//! (`ObsReport::to_json` in `sclog-types`); this module owns the text
//! form printed at the end of an instrumented run — a per-stage
//! waterfall, a per-worker utilisation table, and the counter /
//! gauge / histogram tails.

use sclog_types::obs::ObsReport;
use std::fmt::Write as _;

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64 * 100.0
    }
}

/// Renders the run report as a fixed-width text block.
///
/// # Examples
///
/// ```
/// use sclog_obs::{render, Recorder};
///
/// let rec = Recorder::new();
/// let tag = rec.stage("tag");
/// let tr = rec.thread("worker/0");
/// {
///     let _span = tr.span(tag);
///     tr.stage_items(tag, 100, 6400);
/// }
/// let text = render(&rec.snapshot().report());
/// assert!(text.contains("tag"));
/// assert!(text.contains("worker/0"));
/// ```
pub fn render(report: &ObsReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== run report: {:.2} ms wall, {:.1}% attributed ==",
        ms(report.wall_ns),
        report.coverage * 100.0
    );

    if !report.stages.is_empty() {
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>10} {:>10} {:>6} {:>10} {:>12} {:>7}",
            "stage", "wall ms", "busy ms", "wait ms", "busy%", "items", "bytes", "spans"
        );
        for s in &report.stages {
            let _ = writeln!(
                out,
                "{:<12} {:>10.2} {:>10.2} {:>10.2} {:>5.1}% {:>10} {:>12} {:>7}",
                s.name,
                ms(s.wall_ns),
                ms(s.busy_ns),
                ms(s.wait_ns),
                pct(s.busy_ns, s.wall_ns),
                s.items,
                s.bytes,
                s.spans
            );
        }
    }

    if !report.workers.is_empty() {
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>10} {:>10} {:>6} {:>10} {:>7}",
            "worker", "wall ms", "busy ms", "wait ms", "util%", "items", "jobs"
        );
        for w in &report.workers {
            let _ = writeln!(
                out,
                "{:<12} {:>10.2} {:>10.2} {:>10.2} {:>5.1}% {:>10} {:>7}",
                w.label,
                ms(w.wall_ns),
                ms(w.busy_ns),
                ms(w.wait_ns),
                w.utilization() * 100.0,
                w.items,
                w.jobs
            );
        }
    }

    for g in &report.gauges {
        let bound = match g.bound {
            Some(b) => format!(" / bound {b}"),
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "gauge {:<28} current {} peak {}{}",
            g.name, g.current, g.peak, bound
        );
    }

    for c in &report.counters {
        let _ = writeln!(out, "counter {:<26} {}", c.name, c.value);
    }

    // Derived ratios the paper-facing docs talk about: how much work
    // the Aho-Corasick gate saves the Pike VM, line for line.
    if let (Some(lines), Some(execs)) = (
        report.counter("tagger.lines"),
        report.counter("tagger.prefilter.vm_execs"),
    ) {
        if execs > 0 {
            let _ = writeln!(
                out,
                "prefilter: {:.1} lines per regex execution ({} lines gated to {} executions)",
                lines as f64 / execs as f64,
                lines,
                execs
            );
        }
    }

    for h in &report.histograms {
        let _ = writeln!(
            out,
            "hist {:<28} n={} mean={:.1} p50<= {} p99<= {}",
            h.name,
            h.count,
            h.mean(),
            h.quantile_le(0.50).unwrap_or(0),
            h.quantile_le(0.99).unwrap_or(0)
        );
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PeakGauge, Recorder};

    #[test]
    fn render_covers_every_section() {
        let rec = Recorder::new();
        let lines = rec.counter("tagger.lines");
        let execs = rec.counter("tagger.prefilter.vm_execs");
        let chunk = rec.histogram("chunk.bytes");
        let tag = rec.stage("tag");
        let gauge = PeakGauge::new(Some(4));
        rec.adopt_gauge("pipeline.in_flight", &gauge);
        gauge.add(2);
        let tr = rec.thread("worker/0");
        {
            let _s = tr.span(tag);
            tr.add(lines, 1000);
            tr.add(execs, 125);
            tr.observe(chunk, 4096);
            tr.stage_items(tag, 1000, 65536);
        }
        let text = render(&rec.snapshot().report());
        assert!(text.contains("run report"), "{text}");
        assert!(text.contains("tag"), "{text}");
        assert!(text.contains("worker/0"), "{text}");
        assert!(text.contains("pipeline.in_flight"), "{text}");
        assert!(text.contains("bound 4"), "{text}");
        assert!(text.contains("tagger.lines"), "{text}");
        assert!(text.contains("8.0 lines per regex execution"), "{text}");
        assert!(text.contains("chunk.bytes"), "{text}");
    }

    #[test]
    fn render_of_empty_report_is_one_header_line() {
        let text = render(&Recorder::disabled().snapshot().report());
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("run report"));
    }
}
