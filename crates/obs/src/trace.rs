//! Request-scoped deltas and the sampled snapshot history.
//!
//! A [`Snapshot`](crate::Snapshot) is cumulative — everything since
//! recorder creation — which makes one pathological request invisible
//! inside server-lifetime totals. This module adds the three pieces of
//! the `sclog.trace.v1` layer that turn cumulative snapshots into
//! request- and interval-scoped observations:
//!
//! * [`Snapshot::delta`] — metric-by-metric subtraction with
//!   monotonicity checks, producing an
//!   [`ObsReport`](sclog_types::obs::ObsReport) whose totals are
//!   differences.
//! * [`TraceScope`] — a before/after delta bracketed around one unit
//!   of work.
//! * [`History`] — a bounded ring of periodically sampled snapshots
//!   (fed by `sclogd`'s sampler thread) that renders as the
//!   consecutive-delta timeline served at `/obs/timeline`.

use std::collections::VecDeque;

use sclog_types::obs::{
    BucketObs, CounterObs, GaugeObs, HistogramObs, ObsReport, StageObs, WorkerObs,
};
use sclog_types::trace::{TimelineReport, TimelineSample};

use crate::{Recorder, Snapshot};

/// Subtract with the delta layer's core soundness check: every total
/// in a later snapshot of the same recorder must be at least the
/// earlier one. A violation means the arguments were swapped or the
/// snapshots came from different recorders — report it loudly instead
/// of wrapping into a garbage delta.
fn sub_monotone(what: &str, name: &str, later: u64, earlier: u64) -> u64 {
    assert!(
        later >= earlier,
        "snapshot delta: {what} {name:?} went backwards ({later} < {earlier}); \
         deltas need two snapshots of the same recorder, earlier as the base"
    );
    later - earlier
}

impl Snapshot {
    /// The difference between this snapshot and an earlier `base` of
    /// the same recorder, as a report whose totals cover only the
    /// interval between the two.
    ///
    /// Counters (including merged peaks, which are monotone under the
    /// recorder's `fetch_max` merging), histograms, and stage/worker
    /// rows subtract field by field; a name missing from `base` (a
    /// shard registered between the snapshots) subtracts from zero.
    /// Gauges are instantaneous, not cumulative, so the delta carries
    /// this snapshot's gauge rows unchanged (their peaks are still
    /// checked for monotonicity). `coverage` is recomputed over the
    /// interval. The delta of a snapshot with itself is all-zero.
    ///
    /// # Panics
    ///
    /// If any total went backwards — the snapshots are from different
    /// recorders or in the wrong order.
    pub fn delta(&self, base: &Snapshot) -> ObsReport {
        let later = self.as_report();
        let earlier = base.as_report();
        let wall_ns = sub_monotone("report", "wall_ns", later.wall_ns, earlier.wall_ns);
        let attributed_ns = sub_monotone(
            "report",
            "attributed_ns",
            later.attributed_ns,
            earlier.attributed_ns,
        );

        let counters = delta_counters(later, earlier);
        let stages = delta_stages(later, earlier);
        let histograms = delta_histograms(later, earlier);
        let gauges = delta_gauges(later, earlier);
        let (workers, window_ns) = delta_workers(later, earlier);

        let coverage = if window_ns == 0 {
            1.0
        } else {
            attributed_ns as f64 / window_ns as f64
        };

        ObsReport {
            wall_ns,
            attributed_ns,
            coverage,
            stages,
            workers,
            counters,
            gauges,
            histograms,
        }
    }
}

fn delta_counters(later: &ObsReport, earlier: &ObsReport) -> Vec<CounterObs> {
    for c in &earlier.counters {
        assert!(
            later.counter(&c.name).is_some(),
            "snapshot delta: counter {:?} vanished between snapshots",
            c.name
        );
    }
    later
        .counters
        .iter()
        .map(|c| CounterObs {
            name: c.name.clone(),
            value: sub_monotone(
                "counter",
                &c.name,
                c.value,
                earlier.counter(&c.name).unwrap_or(0),
            ),
        })
        .collect()
}

fn delta_stages(later: &ObsReport, earlier: &ObsReport) -> Vec<StageObs> {
    for s in &earlier.stages {
        assert!(
            later.stage(&s.name).is_some(),
            "snapshot delta: stage {:?} vanished between snapshots",
            s.name
        );
    }
    let zero = StageObs {
        name: String::new(),
        wall_ns: 0,
        busy_ns: 0,
        wait_ns: 0,
        items: 0,
        bytes: 0,
        spans: 0,
    };
    later
        .stages
        .iter()
        .map(|s| {
            let b = earlier.stage(&s.name).unwrap_or(&zero);
            StageObs {
                name: s.name.clone(),
                wall_ns: sub_monotone("stage wall_ns", &s.name, s.wall_ns, b.wall_ns),
                busy_ns: sub_monotone("stage busy_ns", &s.name, s.busy_ns, b.busy_ns),
                wait_ns: sub_monotone("stage wait_ns", &s.name, s.wait_ns, b.wait_ns),
                items: sub_monotone("stage items", &s.name, s.items, b.items),
                bytes: sub_monotone("stage bytes", &s.name, s.bytes, b.bytes),
                spans: sub_monotone("stage spans", &s.name, s.spans, b.spans),
            }
        })
        .collect()
}

fn delta_histograms(later: &ObsReport, earlier: &ObsReport) -> Vec<HistogramObs> {
    let find = |report: &ObsReport, name: &str| -> Option<usize> {
        report.histograms.iter().position(|h| h.name == name)
    };
    for h in &earlier.histograms {
        assert!(
            find(later, &h.name).is_some(),
            "snapshot delta: histogram {:?} vanished between snapshots",
            h.name
        );
    }
    later
        .histograms
        .iter()
        .map(|h| {
            let empty = Vec::new();
            let base = find(earlier, &h.name).map(|i| &earlier.histograms[i]);
            let base_buckets = base.map(|b| &b.buckets).unwrap_or(&empty);
            // A bucket occupied in the base must still be occupied (at
            // least as full) later — per-bucket counts only grow.
            for bb in base_buckets {
                let have = h.buckets.iter().any(|lb| lb.le == bb.le);
                assert!(
                    have,
                    "snapshot delta: histogram {:?} bucket le={} vanished between snapshots",
                    h.name, bb.le
                );
            }
            let buckets = h
                .buckets
                .iter()
                .filter_map(|lb| {
                    let b = base_buckets
                        .iter()
                        .find(|bb| bb.le == lb.le)
                        .map_or(0, |bb| bb.count);
                    let count = sub_monotone("histogram bucket", &h.name, lb.count, b);
                    // Match snapshot semantics: only occupied buckets
                    // appear, so an identical-snapshot delta is empty.
                    (count > 0).then_some(BucketObs { le: lb.le, count })
                })
                .collect();
            HistogramObs {
                name: h.name.clone(),
                count: sub_monotone(
                    "histogram count",
                    &h.name,
                    h.count,
                    base.map_or(0, |b| b.count),
                ),
                sum: sub_monotone("histogram sum", &h.name, h.sum, base.map_or(0, |b| b.sum)),
                buckets,
            }
        })
        .collect()
}

fn delta_gauges(later: &ObsReport, earlier: &ObsReport) -> Vec<GaugeObs> {
    later
        .gauges
        .iter()
        .map(|g| {
            if let Some(b) = earlier.gauge(&g.name) {
                sub_monotone("gauge peak", &g.name, g.peak, b.peak);
            }
            g.clone()
        })
        .collect()
}

/// Worker rows subtract *aggregated by label*: shards are positional
/// inside a snapshot, so per-row matching is meaningless when a label
/// (`http/0`, say, after a pool restart) owns several shards. Labels
/// keep their first-appearance order from the later snapshot. Returns
/// the rows plus the delta of the summed active windows — the
/// denominator for interval coverage.
fn delta_workers(later: &ObsReport, earlier: &ObsReport) -> (Vec<WorkerObs>, u64) {
    fn aggregate(report: &ObsReport) -> (Vec<String>, Vec<WorkerObs>) {
        let mut order: Vec<String> = Vec::new();
        let mut rows: Vec<WorkerObs> = Vec::new();
        for w in &report.workers {
            match rows.iter_mut().find(|r| r.label == w.label) {
                Some(r) => {
                    r.wall_ns += w.wall_ns;
                    r.busy_ns += w.busy_ns;
                    r.wait_ns += w.wait_ns;
                    r.items += w.items;
                    r.jobs += w.jobs;
                }
                None => {
                    order.push(w.label.clone());
                    rows.push(w.clone());
                }
            }
        }
        (order, rows)
    }
    let (order, later_rows) = aggregate(later);
    let (_, earlier_rows) = aggregate(earlier);
    for e in &earlier_rows {
        assert!(
            later_rows.iter().any(|l| l.label == e.label),
            "snapshot delta: worker {:?} vanished between snapshots",
            e.label
        );
    }
    let zero = WorkerObs {
        label: String::new(),
        wall_ns: 0,
        busy_ns: 0,
        wait_ns: 0,
        items: 0,
        jobs: 0,
    };
    let mut window_ns = 0u64;
    let workers = order
        .iter()
        .map(|label| {
            let l = later_rows
                .iter()
                .find(|r| &r.label == label)
                .expect("own label");
            let e = earlier_rows
                .iter()
                .find(|r| &r.label == label)
                .unwrap_or(&zero);
            let wall_ns = sub_monotone("worker wall_ns", label, l.wall_ns, e.wall_ns);
            window_ns += wall_ns;
            WorkerObs {
                label: label.clone(),
                wall_ns,
                busy_ns: sub_monotone("worker busy_ns", label, l.busy_ns, e.busy_ns),
                wait_ns: sub_monotone("worker wait_ns", label, l.wait_ns, e.wait_ns),
                items: sub_monotone("worker items", label, l.items, e.items),
                jobs: sub_monotone("worker jobs", label, l.jobs, e.jobs),
            }
        })
        .collect();
    (workers, window_ns)
}

/// A before/after delta bracketed around one unit of work: snapshot at
/// [`TraceScope::begin`], snapshot again at [`TraceScope::finish`],
/// report the difference. The report's `wall_ns` is the scope's
/// elapsed time; its counters/histograms/stages cover only what
/// happened inside the scope (on *every* recorded thread — the
/// recorder is shared, so concurrent work is attributed too).
#[derive(Debug)]
pub struct TraceScope {
    rec: Recorder,
    before: Snapshot,
}

impl TraceScope {
    /// Opens the scope by capturing the "before" snapshot.
    pub fn begin(rec: &Recorder) -> TraceScope {
        TraceScope {
            rec: rec.clone(),
            before: rec.snapshot(),
        }
    }

    /// Closes the scope: captures the "after" snapshot and returns the
    /// delta report for the bracketed interval.
    pub fn finish(self) -> ObsReport {
        self.rec.snapshot().delta(&self.before)
    }
}

/// A bounded ring of sampled snapshots, oldest first.
///
/// The producer (one sampler thread) pushes a snapshot per period and
/// the ring evicts from the front, so memory is fixed while the
/// retained window slides. [`History::timeline`] renders the ring as
/// its consecutive deltas — `len() - 1` interval reports, each stamped
/// with the later endpoint's `wall_ns` (nanoseconds since recorder
/// creation, the shared relative clock).
#[derive(Debug)]
pub struct History {
    cap: usize,
    ring: VecDeque<Snapshot>,
}

impl History {
    /// An empty history retaining at most `cap` snapshots.
    ///
    /// # Panics
    ///
    /// If `cap` is zero — a ring that can hold nothing records
    /// nothing, which is always a configuration mistake.
    pub fn new(cap: usize) -> History {
        assert!(cap > 0, "history capacity must be positive");
        History {
            cap,
            ring: VecDeque::with_capacity(cap),
        }
    }

    /// Appends a sample, evicting the oldest when the ring is full.
    pub fn record(&mut self, snapshot: Snapshot) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back(snapshot);
    }

    /// Retained samples (at most the capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The configured retention bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Retained snapshots, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Snapshot> {
        self.ring.iter()
    }

    /// The most recently recorded snapshot.
    pub fn latest(&self) -> Option<&Snapshot> {
        self.ring.back()
    }

    /// The ring as consecutive deltas, oldest interval first (empty
    /// until two samples exist).
    pub fn timeline(&self) -> TimelineReport {
        let samples = self
            .ring
            .iter()
            .zip(self.ring.iter().skip(1))
            .map(|(earlier, later)| TimelineSample {
                at_ns: later.as_report().wall_ns,
                delta: later.delta(earlier),
            })
            .collect();
        TimelineReport { samples }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsConfig;

    fn recorder() -> Recorder {
        ObsConfig::on().recorder()
    }

    #[test]
    fn delta_of_identical_snapshots_is_all_zero() {
        let rec = recorder();
        let c = rec.counter("t.count");
        let h = rec.histogram("t.hist");
        let st = rec.stage("t.stage");
        let tr = rec.thread("w/0");
        {
            let _span = tr.span(st);
            tr.add(c, 5);
            tr.observe(h, 9);
            tr.stage_items(st, 3, 64);
        }
        let snap = rec.snapshot();
        let d = snap.delta(&snap);
        assert_eq!(d.wall_ns, 0);
        assert_eq!(d.attributed_ns, 0);
        assert_eq!(d.coverage, 1.0);
        assert!(d.counters.iter().all(|c| c.value == 0), "{d:?}");
        for h in &d.histograms {
            assert_eq!((h.count, h.sum), (0, 0), "{h:?}");
            assert!(h.buckets.is_empty(), "{h:?}");
        }
        for s in &d.stages {
            assert_eq!(
                (s.wall_ns, s.busy_ns, s.wait_ns, s.items, s.bytes, s.spans),
                (0, 0, 0, 0, 0, 0),
                "{s:?}"
            );
        }
        for w in &d.workers {
            assert_eq!(
                (w.wall_ns, w.busy_ns, w.items, w.jobs),
                (0, 0, 0, 0),
                "{w:?}"
            );
        }
    }

    #[test]
    fn delta_isolates_the_second_interval() {
        let rec = recorder();
        let c = rec.counter("t.count");
        let h = rec.histogram("t.hist");
        let st = rec.stage("t.stage");
        let tr = rec.thread("w/0");
        tr.add(c, 10);
        tr.observe(h, 3);
        let base = rec.snapshot();
        tr.add(c, 7);
        tr.observe(h, 3);
        tr.observe(h, 1000);
        {
            let _span = tr.span(st);
            tr.stage_items(st, 4, 256);
        }
        let d = rec.snapshot().delta(&base);
        assert_eq!(d.counter("t.count"), Some(7));
        let hist = d.histograms.iter().find(|h| h.name == "t.hist").unwrap();
        assert_eq!(hist.count, 2);
        assert_eq!(hist.sum, 1003);
        // 3 landed in an already-occupied bucket, 1000 in a fresh one.
        assert_eq!(hist.buckets.iter().map(|b| b.count).sum::<u64>(), 2);
        let stage = d.stage("t.stage").unwrap();
        assert_eq!((stage.items, stage.bytes, stage.spans), (4, 256, 1));
        assert!(d.wall_ns > 0, "time passed between the snapshots");
    }

    #[test]
    fn delta_treats_fresh_shards_as_zero_based() {
        let rec = recorder();
        let c = rec.counter("t.count");
        let base = {
            let tr = rec.thread("w/0");
            tr.add(c, 2);
            rec.snapshot()
        };
        // A shard registered *after* the base snapshot: its whole
        // contribution belongs to the interval.
        let tr2 = rec.thread("w/1");
        tr2.add(c, 40);
        let d = rec.snapshot().delta(&base);
        assert_eq!(d.counter("t.count"), Some(40));
        let w1 = d.workers.iter().find(|w| w.label == "w/1");
        // No spans on w/1, so it may be absent; but if present it must
        // subtract from zero without panicking (checked implicitly).
        let _ = w1;
    }

    #[test]
    #[should_panic(expected = "went backwards")]
    fn delta_panics_when_the_base_is_newer() {
        let rec = recorder();
        let c = rec.counter("t.count");
        let tr = rec.thread("w/0");
        tr.add(c, 1);
        let older = rec.snapshot();
        tr.add(c, 1);
        let newer = rec.snapshot();
        let _ = older.delta(&newer);
    }

    #[test]
    fn trace_scope_brackets_one_unit_of_work() {
        let rec = recorder();
        let c = rec.counter("t.count");
        let tr = rec.thread("w/0");
        tr.add(c, 100);
        let scope = TraceScope::begin(&rec);
        tr.add(c, 3);
        let report = scope.finish();
        assert_eq!(report.counter("t.count"), Some(3));
    }

    #[test]
    fn history_evicts_oldest_and_keeps_order() {
        let rec = recorder();
        let c = rec.counter("t.ticks");
        let tr = rec.thread("w/0");
        let mut history = History::new(3);
        assert!(history.is_empty());
        for _ in 0..5 {
            tr.add(c, 1);
            history.record(rec.snapshot());
        }
        assert_eq!(history.len(), 3);
        assert_eq!(history.capacity(), 3);
        let ticks: Vec<u64> = history
            .iter()
            .map(|s| s.counter("t.ticks").unwrap())
            .collect();
        assert_eq!(ticks, vec![3, 4, 5]);
        assert_eq!(history.latest().unwrap().counter("t.ticks"), Some(5));
    }

    #[test]
    fn timeline_renders_consecutive_deltas_with_relative_stamps() {
        let rec = recorder();
        let c = rec.counter("t.ticks");
        let tr = rec.thread("w/0");
        let mut history = History::new(8);
        history.record(rec.snapshot());
        assert!(
            history.timeline().samples.is_empty(),
            "one sample, no interval"
        );
        for _ in 0..3 {
            tr.add(c, 2);
            history.record(rec.snapshot());
        }
        let timeline = history.timeline();
        assert_eq!(timeline.samples.len(), 3);
        let mut prev = 0;
        for s in &timeline.samples {
            assert_eq!(s.delta.counter("t.ticks"), Some(2));
            assert!(s.at_ns >= prev, "relative stamps must not go backwards");
            prev = s.at_ns;
        }
        let json = timeline.to_json();
        assert!(json.starts_with(r#"{"schema":"sclog.trace.v1""#));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_history_is_rejected() {
        let _ = History::new(0);
    }

    #[test]
    fn disabled_recorder_produces_empty_deltas() {
        let rec = Recorder::disabled();
        let scope = TraceScope::begin(&rec);
        let report = scope.finish();
        assert_eq!(report.wall_ns, 0);
        assert!(report.counters.is_empty());
    }
}
