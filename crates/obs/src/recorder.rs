//! The sharded metric recorder.
//!
//! Layout: a [`Recorder`] owns a registry of metric *definitions*
//! (name, kind, slot range) and a list of per-thread *shards*, each a
//! flat `Box<[AtomicU64]>` indexed by the registry's slot offsets.
//! Handles ([`Counter`], [`Peak`], [`Histogram`], [`Stage`]) are plain
//! slot offsets, `Copy` and free to pass around; all writes go through
//! a [`ThreadRecorder`], which owns one shard that only its thread
//! writes. Uncontended relaxed atomics make the write path a handful
//! of cycles, and a [`Snapshot`] merges every shard without stopping
//! the writers.
//!
//! Registration must finish before the first shard exists (the
//! registry *seals* when [`Recorder::thread`] is first called) so
//! shard arrays never need to grow while shared — registering a new
//! metric after sealing is a programmer error and panics.

use sclog_sync::{model_assert, Arc, Mutex};
use sclog_types::obs::{
    BucketObs, CounterObs, GaugeObs, HistogramObs, ObsReport, StageObs, WorkerObs,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Sentinel slot offset meaning "recorder disabled": every operation
/// on a handle carrying it is a no-op.
const DISABLED: u32 = u32::MAX;

/// Log2 histogram buckets: bucket `k` holds values of bit-length `k`
/// (`0` has its own bucket), so bucket 64 is the final `u64` range.
const HIST_BUCKETS: usize = 65;
/// Histogram slot layout: count, sum, then the buckets.
const HIST_SLOTS: usize = 2 + HIST_BUCKETS;
const HIST_COUNT: usize = 0;
const HIST_SUM: usize = 1;

/// Stage slot layout.
const STAGE_BUSY: usize = 0;
const STAGE_WAIT: usize = 1;
const STAGE_ITEMS: usize = 2;
const STAGE_BYTES: usize = 3;
const STAGE_SPANS: usize = 4;
/// Nanosecond offset (+1, 0 = unset) of the earliest span start.
const STAGE_FIRST: usize = 5;
/// Nanosecond offset (+1) of the latest span end.
const STAGE_LAST: usize = 6;
const STAGE_SLOTS: usize = 7;

/// Which log2 bucket a value falls in: its bit length.
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of log2 bucket `k`.
fn bucket_le(k: usize) -> u64 {
    if k >= 64 {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

/// A monotonically increasing counter handle (merged by summing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counter(u32);

/// A high-water-mark handle (merged by taking the maximum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Peak(u32);

/// A log2-bucket histogram handle for durations or sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram(u32);

/// A pipeline-stage handle: spans, queue waits, items and bytes
/// recorded against it build the run report's waterfall row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stage(u32);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Peak,
    Histogram,
    Stage,
}

impl Kind {
    fn slots(self) -> u32 {
        match self {
            Kind::Counter | Kind::Peak => 1,
            Kind::Histogram => HIST_SLOTS as u32,
            Kind::Stage => STAGE_SLOTS as u32,
        }
    }
}

#[derive(Debug, Clone)]
struct Def {
    name: String,
    kind: Kind,
    base: u32,
}

#[derive(Debug, Default)]
struct Registry {
    defs: Vec<Def>,
    by_name: HashMap<String, usize>,
    slots: u32,
    sealed: bool,
}

#[derive(Debug)]
struct Shard {
    label: String,
    /// Deliberately raw `std` atomics, not the `sclog-sync` facade:
    /// each slot is single-writer data on the per-line hot path, not a
    /// synchronization protocol — model-checking every `tr.add` would
    /// explode the schedule space without testing anything. The
    /// control-plane locks above and the [`PeakGauge`] (genuinely
    /// multi-writer) are what ride the facade.
    slots: Box<[AtomicU64]>,
}

#[derive(Debug)]
struct Inner {
    registry: Mutex<Registry>,
    shards: Mutex<Vec<Arc<Shard>>>,
    gauges: Mutex<Vec<(String, PeakGauge)>>,
    epoch: Instant,
}

/// The metric registry and shard list; see the crate docs.
///
/// Cheap to clone (an `Arc` handle) and `Sync`, so one recorder can be
/// shared by reference across a scoped-thread pipeline. A *disabled*
/// recorder ([`Recorder::disabled`]) carries no storage at all: every
/// registration returns a no-op handle and no span ever reads a clock.
#[derive(Debug, Clone)]
pub struct Recorder(Option<Arc<Inner>>);

impl Recorder {
    /// Creates an enabled recorder; its epoch (span offsets, report
    /// wall time) starts now.
    pub fn new() -> Self {
        Recorder(Some(Arc::new(Inner {
            registry: Mutex::new(Registry::default()),
            shards: Mutex::new(Vec::new()),
            gauges: Mutex::new(Vec::new()),
            epoch: Instant::now(),
        })))
    }

    /// The no-op recorder: every handle it returns is disabled.
    pub fn disabled() -> Self {
        Recorder(None)
    }

    /// Whether this recorder actually records.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    fn register(&self, name: &str, kind: Kind) -> u32 {
        let Some(inner) = &self.0 else {
            return DISABLED;
        };
        let mut reg = inner.registry.lock().expect("obs registry poisoned");
        if let Some(&i) = reg.by_name.get(name) {
            let def = &reg.defs[i];
            assert_eq!(
                def.kind, kind,
                "metric {name:?} already registered with a different kind"
            );
            return def.base;
        }
        assert!(
            !reg.sealed,
            "metric {name:?} registered after the first thread shard was \
             created; register all metrics before spawning workers"
        );
        let base = reg.slots;
        reg.slots += kind.slots();
        let index = reg.defs.len();
        reg.by_name.insert(name.to_owned(), index);
        reg.defs.push(Def {
            name: name.to_owned(),
            kind,
            base,
        });
        base
    }

    /// Registers (or looks up) a counter.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.register(name, Kind::Counter))
    }

    /// Registers (or looks up) a high-water mark.
    pub fn peak(&self, name: &str) -> Peak {
        Peak(self.register(name, Kind::Peak))
    }

    /// Registers (or looks up) a log2 histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.register(name, Kind::Histogram))
    }

    /// Registers (or looks up) a pipeline stage.
    pub fn stage(&self, name: &str) -> Stage {
        Stage(self.register(name, Kind::Stage))
    }

    /// Adopts a shared [`PeakGauge`] into the snapshot under `name`.
    /// Gauges are centrally shared (they track cross-thread in-flight
    /// counts at batch rate), so they are not sealed and may be
    /// adopted at any time.
    pub fn adopt_gauge(&self, name: &str, gauge: &PeakGauge) {
        if let Some(inner) = &self.0 {
            inner
                .gauges
                .lock()
                .expect("obs gauges poisoned")
                .push((name.to_owned(), gauge.clone()));
        }
    }

    /// Creates this thread's shard, sealing the metric registry.
    ///
    /// `label` names the thread in the report's per-worker rollup.
    /// Call once per thread and keep the handle for the thread's
    /// lifetime; every write through it is uncontended.
    pub fn thread(&self, label: &str) -> ThreadRecorder {
        let Some(inner) = &self.0 else {
            return ThreadRecorder(None);
        };
        let slots = {
            let mut reg = inner.registry.lock().expect("obs registry poisoned");
            reg.sealed = true;
            reg.slots
        };
        let shard = Arc::new(Shard {
            label: label.to_owned(),
            slots: (0..slots).map(|_| AtomicU64::new(0)).collect(),
        });
        inner
            .shards
            .lock()
            .expect("obs shards poisoned")
            .push(Arc::clone(&shard));
        ThreadRecorder(Some(ThreadInner {
            shard,
            epoch: inner.epoch,
        }))
    }

    /// Merges every shard (and adopted gauge) into a consistent view.
    /// Writers are not stopped; a snapshot taken mid-run is a valid
    /// lower bound per metric.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.0 else {
            return Snapshot {
                report: ObsReport {
                    wall_ns: 0,
                    attributed_ns: 0,
                    coverage: 1.0,
                    stages: Vec::new(),
                    workers: Vec::new(),
                    counters: Vec::new(),
                    gauges: Vec::new(),
                    histograms: Vec::new(),
                },
            };
        };
        let wall_ns = inner.epoch.elapsed().as_nanos() as u64;
        let defs: Vec<Def> = inner
            .registry
            .lock()
            .expect("obs registry poisoned")
            .defs
            .clone();
        let shards: Vec<Arc<Shard>> = inner.shards.lock().expect("obs shards poisoned").clone();
        let load = |shard: &Shard, slot: u32| shard.slots[slot as usize].load(Ordering::Relaxed);

        let mut counters = Vec::new();
        let mut stages = Vec::new();
        let mut histograms = Vec::new();
        for def in &defs {
            match def.kind {
                Kind::Counter => counters.push(CounterObs {
                    name: def.name.clone(),
                    value: shards.iter().map(|s| load(s, def.base)).sum(),
                }),
                Kind::Peak => counters.push(CounterObs {
                    name: def.name.clone(),
                    value: shards.iter().map(|s| load(s, def.base)).max().unwrap_or(0),
                }),
                Kind::Histogram => {
                    let sum_slot =
                        |off: usize| shards.iter().map(|s| load(s, def.base + off as u32)).sum();
                    let buckets = (0..HIST_BUCKETS)
                        .map(|k| BucketObs {
                            le: bucket_le(k),
                            count: sum_slot(2 + k),
                        })
                        .filter(|b| b.count > 0)
                        .collect();
                    histograms.push(HistogramObs {
                        name: def.name.clone(),
                        count: sum_slot(HIST_COUNT),
                        sum: sum_slot(HIST_SUM),
                        buckets,
                    });
                }
                Kind::Stage => {
                    let sum_slot =
                        |off: usize| shards.iter().map(|s| load(s, def.base + off as u32)).sum();
                    let first = shards
                        .iter()
                        .map(|s| load(s, def.base + STAGE_FIRST as u32))
                        .filter(|&v| v != 0)
                        .min()
                        .unwrap_or(0);
                    let last = shards
                        .iter()
                        .map(|s| load(s, def.base + STAGE_LAST as u32))
                        .max()
                        .unwrap_or(0);
                    stages.push(StageObs {
                        name: def.name.clone(),
                        wall_ns: last.saturating_sub(first),
                        busy_ns: sum_slot(STAGE_BUSY),
                        wait_ns: sum_slot(STAGE_WAIT),
                        items: sum_slot(STAGE_ITEMS),
                        bytes: sum_slot(STAGE_BYTES),
                        spans: sum_slot(STAGE_SPANS),
                    });
                }
            }
        }

        // Per-thread rollup over all stage defs, for the worker table
        // and the coverage self-check.
        let mut workers = Vec::new();
        let mut attributed_ns = 0u64;
        let mut window_ns = 0u64;
        for shard in &shards {
            let mut busy = 0u64;
            let mut wait = 0u64;
            let mut items = 0u64;
            let mut jobs = 0u64;
            let mut first = u64::MAX;
            let mut last = 0u64;
            for def in &defs {
                if def.kind != Kind::Stage {
                    continue;
                }
                busy += load(shard, def.base + STAGE_BUSY as u32);
                wait += load(shard, def.base + STAGE_WAIT as u32);
                items += load(shard, def.base + STAGE_ITEMS as u32);
                jobs += load(shard, def.base + STAGE_SPANS as u32);
                let f = load(shard, def.base + STAGE_FIRST as u32);
                if f != 0 {
                    first = first.min(f);
                }
                last = last.max(load(shard, def.base + STAGE_LAST as u32));
            }
            if first == u64::MAX {
                continue; // no span activity on this shard
            }
            let wall = last.saturating_sub(first);
            attributed_ns += busy + wait;
            window_ns += wall;
            workers.push(WorkerObs {
                label: shard.label.clone(),
                wall_ns: wall,
                busy_ns: busy,
                wait_ns: wait,
                items,
                jobs,
            });
        }
        let coverage = if window_ns == 0 {
            1.0
        } else {
            attributed_ns as f64 / window_ns as f64
        };

        let gauges = inner
            .gauges
            .lock()
            .expect("obs gauges poisoned")
            .iter()
            .map(|(name, g)| GaugeObs {
                name: name.clone(),
                current: g.current(),
                peak: g.peak(),
                bound: g.bound(),
            })
            .collect();

        Snapshot {
            report: ObsReport {
                wall_ns,
                attributed_ns,
                coverage,
                stages,
                workers,
                counters,
                gauges,
                histograms,
            },
        }
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::disabled()
    }
}

#[derive(Debug)]
struct ThreadInner {
    shard: Arc<Shard>,
    epoch: Instant,
}

/// One thread's write handle: a private shard nobody else writes.
///
/// All operations are no-ops (one branch, no clock reads) when the
/// parent recorder is disabled.
#[derive(Debug)]
pub struct ThreadRecorder(Option<ThreadInner>);

impl ThreadRecorder {
    /// Adds `n` to a counter.
    pub fn add(&self, counter: Counter, n: u64) {
        if let Some(t) = &self.0 {
            if counter.0 != DISABLED {
                t.shard.slots[counter.0 as usize].fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Raises a high-water mark to at least `v`.
    pub fn record_max(&self, peak: Peak, v: u64) {
        if let Some(t) = &self.0 {
            if peak.0 != DISABLED {
                t.shard.slots[peak.0 as usize].fetch_max(v, Ordering::Relaxed);
            }
        }
    }

    /// Records one observation into a histogram.
    pub fn observe(&self, hist: Histogram, v: u64) {
        if let Some(t) = &self.0 {
            if hist.0 != DISABLED {
                let base = hist.0 as usize;
                let slots = &t.shard.slots;
                slots[base + HIST_COUNT].fetch_add(1, Ordering::Relaxed);
                slots[base + HIST_SUM].fetch_add(v, Ordering::Relaxed);
                slots[base + 2 + bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Credits a stage with processed items and bytes.
    pub fn stage_items(&self, stage: Stage, items: u64, bytes: u64) {
        if let Some(t) = &self.0 {
            if stage.0 != DISABLED {
                let base = stage.0 as usize;
                t.shard.slots[base + STAGE_ITEMS].fetch_add(items, Ordering::Relaxed);
                t.shard.slots[base + STAGE_BYTES].fetch_add(bytes, Ordering::Relaxed);
            }
        }
    }

    /// Opens a *working* span on `stage`; its lifetime is attributed
    /// to the stage's busy time (and counted as one span) on drop.
    pub fn span(&self, stage: Stage) -> SpanGuard<'_> {
        self.span_slot(stage, STAGE_BUSY)
    }

    /// Opens a *queue-wait* span on `stage` — wrap blocking channel
    /// sends/receives so a thread's idle time is attributed, not lost.
    pub fn wait_span(&self, stage: Stage) -> SpanGuard<'_> {
        self.span_slot(stage, STAGE_WAIT)
    }

    fn span_slot(&self, stage: Stage, slot: usize) -> SpanGuard<'_> {
        match &self.0 {
            Some(t) if stage.0 != DISABLED => SpanGuard(Some(ActiveSpan {
                shard: &t.shard,
                epoch: t.epoch,
                base: stage.0 as usize,
                slot,
                start: Instant::now(),
            })),
            _ => SpanGuard(None),
        }
    }
}

struct ActiveSpan<'a> {
    shard: &'a Shard,
    epoch: Instant,
    base: usize,
    slot: usize,
    start: Instant,
}

/// RAII guard from [`ThreadRecorder::span`] / `wait_span`; attributes
/// the elapsed time when dropped.
#[must_use = "a span guard measures its own lifetime; bind it with `let`"]
pub struct SpanGuard<'a>(Option<ActiveSpan<'a>>);

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(s) = self.0.take() else {
            return;
        };
        let end = Instant::now();
        let slots = &s.shard.slots;
        let dur = end.duration_since(s.start).as_nanos() as u64;
        slots[s.base + s.slot].fetch_add(dur, Ordering::Relaxed);
        if s.slot == STAGE_BUSY {
            slots[s.base + STAGE_SPANS].fetch_add(1, Ordering::Relaxed);
        }
        // First/last are single-writer (this thread) — the load/store
        // pair cannot race another writer, and snapshot readers see a
        // monotone value either way.
        let start_off = end
            .duration_since(s.epoch)
            .as_nanos()
            .saturating_sub(dur as u128) as u64
            + 1;
        let end_off = end.duration_since(s.epoch).as_nanos() as u64 + 1;
        let first = slots[s.base + STAGE_FIRST].load(Ordering::Relaxed);
        if first == 0 || start_off < first {
            slots[s.base + STAGE_FIRST].store(start_off, Ordering::Relaxed);
        }
        slots[s.base + STAGE_LAST].fetch_max(end_off, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for SpanGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("active", &self.0.is_some())
            .finish()
    }
}

/// A merged view of every shard at one instant; convert to the
/// portable schema with [`Snapshot::report`].
#[derive(Debug, Clone)]
pub struct Snapshot {
    report: ObsReport,
}

impl Snapshot {
    /// The merged report.
    pub fn report(self) -> ObsReport {
        self.report
    }

    /// Borrowing view of the merged report.
    pub fn as_report(&self) -> &ObsReport {
        &self.report
    }

    /// Convenience: a counter's merged total.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.report.counter(name)
    }
}

/// A shared up/down gauge with a high-water mark and an optional hard
/// bound, checked in debug builds and on every model-checked schedule
/// (the bound/underflow checks are [`model_assert!`]s, hard assertions
/// under `--cfg sclog_model`).
///
/// Unlike counters and histograms this is *not* sharded: several
/// threads add and subtract the same logical quantity (work in
/// flight), whose peak is only meaningful on the shared value. Updates
/// happen at batch rate, so contention is irrelevant. The gauge works
/// standalone — the pipeline's accounting does not require an enabled
/// recorder — and can be adopted into a report via
/// [`Recorder::adopt_gauge`].
///
/// # Examples
///
/// ```
/// use sclog_obs::PeakGauge;
///
/// let g = PeakGauge::new(Some(8));
/// g.add(3);
/// g.add(2);
/// g.sub(4);
/// assert_eq!(g.current(), 1);
/// assert_eq!(g.peak(), 5);
/// assert_eq!(g.bound(), Some(8));
/// ```
#[derive(Debug, Clone)]
pub struct PeakGauge(Arc<GaugeInner>);

#[derive(Debug)]
struct GaugeInner {
    current: sclog_sync::atomic::AtomicU64,
    peak: sclog_sync::atomic::AtomicU64,
    bound: Option<u64>,
}

impl PeakGauge {
    /// Creates a gauge at zero, optionally with a hard bound the value
    /// must never exceed (checked in debug builds on every `add`).
    pub fn new(bound: Option<u64>) -> Self {
        PeakGauge(Arc::new(GaugeInner {
            current: sclog_sync::atomic::AtomicU64::new(0),
            peak: sclog_sync::atomic::AtomicU64::new(0),
            bound,
        }))
    }

    /// Raises the gauge by `n`, updating the peak.
    pub fn add(&self, n: u64) {
        let v = self.0.current.fetch_add(n, Ordering::SeqCst) + n;
        if let Some(bound) = self.0.bound {
            model_assert!(
                v <= bound,
                "gauge accounting broken: {v} in flight exceeds the configured \
                 bound of {bound}"
            );
        }
        self.0.peak.fetch_max(v, Ordering::SeqCst);
    }

    /// Lowers the gauge by `n`.
    pub fn sub(&self, n: u64) {
        let prev = self.0.current.fetch_sub(n, Ordering::SeqCst);
        model_assert!(
            prev >= n,
            "gauge underflow: releasing {n} with only {prev} in flight"
        );
    }

    /// The value right now.
    pub fn current(&self) -> u64 {
        self.0.current.load(Ordering::SeqCst)
    }

    /// The highest value ever observed.
    pub fn peak(&self) -> u64 {
        self.0.peak.load(Ordering::SeqCst)
    }

    /// The configured hard bound, if any.
    pub fn bound(&self) -> Option<u64> {
        self.0.bound
    }
}

/// Whether (and how) a pipeline run records observability.
///
/// The default is [`ObsConfig::off`]: no recorder, no report, no
/// clock reads — the instrumented pipeline behaves exactly as the
/// uninstrumented one did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObsConfig {
    enabled: bool,
}

impl ObsConfig {
    /// Observability disabled (the default).
    pub fn off() -> Self {
        ObsConfig { enabled: false }
    }

    /// Observability enabled: entry points will build a run report.
    pub fn on() -> Self {
        ObsConfig { enabled: true }
    }

    /// Whether a run under this config records.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The recorder this config calls for.
    pub fn recorder(&self) -> Recorder {
        if self.enabled {
            Recorder::new()
        } else {
            Recorder::disabled()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_log2_with_exact_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(255), 8);
        assert_eq!(bucket_of(256), 9);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_le(0), 0);
        assert_eq!(bucket_le(1), 1);
        assert_eq!(bucket_le(8), 255);
        assert_eq!(bucket_le(64), u64::MAX);
        // Every value lands in the bucket whose `le` bounds it.
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX] {
            let k = bucket_of(v);
            assert!(v <= bucket_le(k), "{v}");
            if k > 0 {
                assert!(v > bucket_le(k - 1), "{v}");
            }
        }
    }

    #[test]
    fn histogram_observations_merge_across_shards() {
        let rec = Recorder::new();
        let h = rec.histogram("h");
        std::thread::scope(|s| {
            for vals in [[1u64, 2, 3], [256, 256, 0]] {
                let rec = &rec;
                s.spawn(move || {
                    let tr = rec.thread("t");
                    for v in vals {
                        tr.observe(h, v);
                    }
                });
            }
        });
        let report = rec.snapshot().report();
        let hist = &report.histograms[0];
        assert_eq!(hist.name, "h");
        assert_eq!(hist.count, 6);
        assert_eq!(hist.sum, 1 + 2 + 3 + 256 + 256);
        // Buckets: 0 → le 0; 1 → le 1; {2,3} → le 3; {256,256} → le 511.
        let by_le: Vec<(u64, u64)> = hist.buckets.iter().map(|b| (b.le, b.count)).collect();
        assert_eq!(by_le, vec![(0, 1), (1, 1), (3, 2), (511, 2)]);
        assert_eq!(hist.quantile_le(0.5), Some(3));
        assert_eq!(hist.quantile_le(1.0), Some(511));
    }

    #[test]
    fn sharded_counters_sum_and_peaks_max() {
        let rec = Recorder::new();
        let c = rec.counter("c");
        let p = rec.peak("p");
        std::thread::scope(|s| {
            for k in 0..8u64 {
                let rec = &rec;
                s.spawn(move || {
                    let tr = rec.thread(&format!("w/{k}"));
                    for _ in 0..1000 {
                        tr.add(c, 1);
                    }
                    tr.record_max(p, k * 10);
                });
            }
        });
        let snap = rec.snapshot();
        assert_eq!(snap.counter("c"), Some(8000));
        assert_eq!(snap.counter("p"), Some(70));
    }

    #[test]
    fn registration_dedups_by_name() {
        let rec = Recorder::new();
        assert_eq!(rec.counter("x"), rec.counter("x"));
        assert_ne!(rec.counter("x"), rec.counter("y"));
        assert_eq!(rec.stage("s"), rec.stage("s"));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let rec = Recorder::new();
        rec.counter("x");
        rec.histogram("x");
    }

    #[test]
    #[should_panic(expected = "register all metrics before spawning")]
    fn registration_after_seal_panics() {
        let rec = Recorder::new();
        rec.counter("early");
        let _tr = rec.thread("t");
        rec.counter("late");
    }

    #[test]
    fn spans_attribute_busy_wait_and_windows() {
        let rec = Recorder::new();
        let st = rec.stage("tag");
        let tr = rec.thread("w");
        {
            let _s = tr.span(st);
            std::hint::black_box(0u64);
        }
        {
            let _w = tr.wait_span(st);
        }
        tr.stage_items(st, 10, 100);
        let report = rec.snapshot().report();
        let row = report.stage("tag").expect("stage row");
        assert_eq!(row.spans, 1, "wait spans are not jobs");
        assert_eq!(row.items, 10);
        assert_eq!(row.bytes, 100);
        assert!(row.wall_ns >= row.busy_ns, "window covers the busy span");
        assert!(report.wall_ns >= row.wall_ns);
        assert_eq!(report.workers.len(), 1);
        assert_eq!(report.workers[0].label, "w");
        assert_eq!(report.workers[0].jobs, 1);
        assert!(report.coverage > 0.0);
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.enabled());
        let c = rec.counter("c");
        let h = rec.histogram("h");
        let st = rec.stage("s");
        let p = rec.peak("p");
        let g = PeakGauge::new(None);
        rec.adopt_gauge("g", &g);
        let tr = rec.thread("t");
        tr.add(c, 1);
        tr.observe(h, 1);
        tr.record_max(p, 1);
        tr.stage_items(st, 1, 1);
        {
            let _s = crate::span!(tr, st);
            let _w = tr.wait_span(st);
        }
        let report = rec.snapshot().report();
        assert_eq!(report.wall_ns, 0);
        assert!(report.counters.is_empty());
        assert!(report.stages.is_empty());
        assert!(report.gauges.is_empty());
        assert_eq!(report.coverage, 1.0);
    }

    #[test]
    fn mixed_handles_on_one_recorder_do_not_collide() {
        // Counters, peaks, histograms and stages interleaved: slot
        // ranges must not overlap.
        let rec = Recorder::new();
        let c1 = rec.counter("c1");
        let h = rec.histogram("h");
        let c2 = rec.counter("c2");
        let st = rec.stage("st");
        let p = rec.peak("p");
        let tr = rec.thread("t");
        tr.add(c1, 5);
        tr.observe(h, 7);
        tr.add(c2, 9);
        tr.stage_items(st, 11, 13);
        tr.record_max(p, 17);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("c1"), Some(5));
        assert_eq!(snap.counter("c2"), Some(9));
        assert_eq!(snap.counter("p"), Some(17));
        let report = snap.report();
        assert_eq!(report.histograms[0].count, 1);
        assert_eq!(report.histograms[0].sum, 7);
        assert_eq!(report.stage("st").unwrap().items, 11);
        assert_eq!(report.stage("st").unwrap().bytes, 13);
    }

    #[test]
    fn gauge_tracks_peak_and_bound() {
        let g = PeakGauge::new(Some(10));
        let rec = Recorder::new();
        rec.adopt_gauge("inflight", &g);
        g.add(4);
        g.add(4);
        g.sub(6);
        let report = rec.snapshot().report();
        let row = report.gauge("inflight").expect("gauge row");
        assert_eq!(row.current, 2);
        assert_eq!(row.peak, 8);
        assert_eq!(row.bound, Some(10));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "gauge underflow")]
    fn gauge_underflow_asserts() {
        let g = PeakGauge::new(None);
        g.add(1);
        g.sub(2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "exceeds the configured")]
    fn gauge_bound_asserts() {
        let g = PeakGauge::new(Some(1));
        g.add(2);
    }

    #[test]
    fn obs_config_default_is_off() {
        assert_eq!(ObsConfig::default(), ObsConfig::off());
        assert!(!ObsConfig::off().recorder().enabled());
        assert!(ObsConfig::on().recorder().enabled());
        assert!(ObsConfig::on().is_enabled());
    }
}
