//! Property tests for the trace layer: `Snapshot::delta` must agree
//! with manual bookkeeping over random recorder workloads, and the
//! `History` ring must evict in strict arrival order.

use sclog_obs::{History, ObsConfig, TraceScope};
use sclog_testkit::{check_n, Gen};

/// The recorder's log2 bucket upper bound for a value, replicated
/// independently so the histogram-delta property does not reuse the
/// code under test.
fn bucket_le(v: u64) -> u64 {
    if v == 0 {
        return 0;
    }
    let bits = 64 - v.leading_zeros();
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Hand-kept totals for one interval of a random workload.
#[derive(Default)]
struct Manual {
    counters: [u64; 2],
    hist_count: u64,
    hist_sum: u64,
    hist_buckets: Vec<(u64, u64)>,
    items: u64,
    bytes: u64,
    spans: u64,
}

impl Manual {
    fn observe(&mut self, v: u64) {
        self.hist_count += 1;
        self.hist_sum += v;
        let le = bucket_le(v);
        match self.hist_buckets.iter_mut().find(|(b, _)| *b == le) {
            Some((_, n)) => *n += 1,
            None => self.hist_buckets.push((le, 1)),
        }
    }
}

#[test]
fn delta_matches_manual_subtraction() {
    check_n("obs_delta_manual", 40, |g: &mut Gen| {
        let rec = ObsConfig::on().recorder();
        let counters = [rec.counter("p.a"), rec.counter("p.b")];
        let hist = rec.histogram("p.hist");
        let stage = rec.stage("p.stage");
        let tr = rec.thread("prop/0");

        // Phase one: arbitrary prefix traffic the delta must ignore.
        for _ in 0..g.usize_in(0..=20) {
            match g.below(3) {
                0 => tr.add(counters[g.usize_in(0..=1)], g.below(1000)),
                1 => {
                    let shift = g.below(40);
                    tr.observe(hist, g.below(1 << shift));
                }
                _ => {
                    let _span = tr.span(stage);
                    tr.stage_items(stage, g.below(50), g.below(4096));
                }
            }
        }

        // Phase two: the traced interval, mirrored by hand.
        let scope = TraceScope::begin(&rec);
        let mut manual = Manual::default();
        for _ in 0..g.usize_in(0..=20) {
            match g.below(3) {
                0 => {
                    let which = g.usize_in(0..=1);
                    let n = g.below(1000);
                    tr.add(counters[which], n);
                    manual.counters[which] += n;
                }
                1 => {
                    let shift = g.below(40);
                    let v = g.below(1 << shift);
                    tr.observe(hist, v);
                    manual.observe(v);
                }
                _ => {
                    let items = g.below(50);
                    let bytes = g.below(4096);
                    let _span = tr.span(stage);
                    tr.stage_items(stage, items, bytes);
                    manual.items += items;
                    manual.bytes += bytes;
                    manual.spans += 1;
                }
            }
        }
        let delta = scope.finish();

        assert_eq!(delta.counter("p.a"), Some(manual.counters[0]));
        assert_eq!(delta.counter("p.b"), Some(manual.counters[1]));

        let h = delta
            .histograms
            .iter()
            .find(|h| h.name == "p.hist")
            .expect("registered histogram is always reported");
        assert_eq!(h.count, manual.hist_count);
        assert_eq!(h.sum, manual.hist_sum);
        let mut want = manual.hist_buckets.clone();
        want.sort_unstable();
        let got: Vec<(u64, u64)> = h.buckets.iter().map(|b| (b.le, b.count)).collect();
        assert_eq!(got, want, "interval bucket occupancy mismatch");

        let s = delta
            .stage("p.stage")
            .expect("registered stage is always reported");
        assert_eq!(
            (s.items, s.bytes, s.spans),
            (manual.items, manual.bytes, manual.spans)
        );

        // And the degenerate interval: a snapshot minus itself.
        let snap = rec.snapshot();
        let zero = snap.delta(&snap);
        assert_eq!(zero.wall_ns, 0);
        assert!(zero.counters.iter().all(|c| c.value == 0));
        assert!(zero
            .histograms
            .iter()
            .all(|h| h.count == 0 && h.buckets.is_empty()));
    });
}

#[test]
fn history_ring_wraps_in_arrival_order() {
    check_n("obs_history_wraparound", 40, |g: &mut Gen| {
        let rec = ObsConfig::on().recorder();
        let ticks = rec.counter("p.ticks");
        let tr = rec.thread("prop/0");
        let cap = g.usize_in(1..=6);
        let pushes = g.usize_in(0..=15);
        let mut history = History::new(cap);
        for i in 1..=pushes {
            tr.add(ticks, 1);
            history.record(rec.snapshot());
            assert_eq!(history.len(), i.min(cap), "ring size while filling");
        }

        // Survivors are exactly the last `cap` samples, oldest first.
        let got: Vec<u64> = history
            .iter()
            .map(|s| s.counter("p.ticks").unwrap())
            .collect();
        let want: Vec<u64> = (pushes.saturating_sub(cap) + 1..=pushes)
            .map(|v| v as u64)
            .collect();
        assert_eq!(got, if pushes == 0 { Vec::new() } else { want });

        // Each timeline step spans exactly one push, stamped in
        // nondecreasing relative time.
        let timeline = history.timeline();
        assert_eq!(timeline.samples.len(), history.len().saturating_sub(1));
        let mut prev_at = 0;
        for step in &timeline.samples {
            assert_eq!(step.delta.counter("p.ticks"), Some(1));
            assert!(step.at_ns >= prev_at, "timeline stamps went backwards");
            prev_at = step.at_ns;
        }
    });
}
