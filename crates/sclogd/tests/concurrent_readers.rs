//! Concurrent-readers property: N client threads hammering a frozen
//! store over real sockets must each see exactly what a serial oracle
//! saw — byte-identical bodies, same statuses — no matter how reads
//! interleave with each other or with the aggregate cache.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use sclog_core::pipeline::ingest_batch;
use sclog_filter::SpatioTemporalFilter;
use sclog_rules::RuleSet;
use sclog_simgen::{generate, Scale};
use sclog_types::{CategoryRegistry, Severity, SystemId};
use sclogd::server::{handle, Server, ServerConfig, ServerState};
use sclogd::store::AlertStore;

/// A store with two systems: a simulated BG/L slice (severities join
/// in from ground truth) and a handcrafted Liberty fixture.
fn frozen_store() -> AlertStore {
    let store = AlertStore::new();
    let filter = SpatioTemporalFilter::paper();

    let log = generate(SystemId::BlueGeneL, Scale::new(0.002, 0.002), 7);
    let text = log.render();
    let mut registry = CategoryRegistry::new();
    let rules = RuleSet::builtin(SystemId::BlueGeneL, &mut registry);
    let result = ingest_batch(SystemId::BlueGeneL, &text, &rules, &filter, 1);
    let severities: Vec<Severity> = if result.parse.parsed as usize == log.messages.len() {
        log.messages.iter().map(|m| m.severity).collect()
    } else {
        Vec::new()
    };
    store.ingest(SystemId::BlueGeneL, &result, &registry, &severities);

    let mut registry = CategoryRegistry::new();
    let rules = RuleSet::builtin(SystemId::Liberty, &mut registry);
    let text = "\
Mar  7 07:30:00 sn373 pbs_mom: task_check, cannot tm_reply to 10 task 1\n\
Mar  7 07:30:01 sn373 pbs_mom: task_check, cannot tm_reply to 11 task 1\n\
Mar  7 09:00:00 dn228 pbs_mom: task_check, cannot tm_reply to 12 task 1\n";
    let result = ingest_batch(SystemId::Liberty, text, &rules, &filter, 1);
    store.ingest(SystemId::Liberty, &result, &registry, &[]);
    store
}

/// The query mix. `/obs` is deliberately absent — its body carries
/// timings and is not expected to be deterministic.
const MIX: &[&str] = &[
    "/healthz",
    "/alerts?limit=50",
    "/alerts?fields=time,host,category&limit=20",
    "/alerts?host=sn*,dn*",
    "/alerts?system=liberty&filtered=true",
    "/alerts?system=bgl&class=hardware",
    "/alerts?severity=-",
    "/alerts?filtered=false&fields=host,filtered",
    "/categories",
    "/interarrival",
    "/hotspots?k=3",
    "/hotspots?k=100",
    "/stats",
];

fn http_get(addr: std::net::SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(20)))
        .ok();
    stream
        .write_all(format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .expect("write");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read");
    let (head, body) = text.split_once("\r\n\r\n").expect("separator");
    let status: u16 = head[9..12].parse().expect("status");
    (status, body.to_owned())
}

#[test]
fn n_threads_match_the_serial_oracle() {
    let state = Arc::new(ServerState::new(frozen_store(), sclog_obs::Recorder::new()));
    let oracle_rec = state.recorder.thread("oracle");

    // Serial oracle: route each query directly, no sockets, before
    // any concurrency exists.
    let oracle: Vec<(u16, String)> = MIX
        .iter()
        .map(|target| {
            let (path, query) = target.split_once('?').unwrap_or((target, ""));
            let resp = handle(
                &state,
                &oracle_rec,
                &sclogd::http::Request {
                    method: "GET".to_owned(),
                    path: path.to_owned(),
                    query: query.to_owned(),
                },
            );
            assert_eq!(resp.status, 200, "oracle {target} must succeed");
            (resp.status, resp.body)
        })
        .collect();
    assert!(
        oracle.iter().any(|(_, body)| body.contains("\"total\":")),
        "mix must include alert listings"
    );

    let server = Server::start(
        Arc::clone(&state),
        &ServerConfig {
            workers: 4,
            accept_queue: 16,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.addr();

    const THREADS: usize = 4;
    const ROUNDS: usize = 3;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let oracle = &oracle;
            s.spawn(move || {
                for round in 0..ROUNDS {
                    // Different starting offsets per thread/round so
                    // the interleaving varies.
                    for i in 0..MIX.len() {
                        let idx = (i + t + round) % MIX.len();
                        let (status, body) = http_get(addr, MIX[idx]);
                        let (want_status, want_body) = &oracle[idx];
                        assert_eq!(
                            (status, &body),
                            (*want_status, want_body),
                            "thread {t} round {round}: {} diverged from oracle",
                            MIX[idx]
                        );
                    }
                }
            });
        }
    });

    server.shutdown();
}
