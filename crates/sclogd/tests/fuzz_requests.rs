//! Request-parsing fuzz: no byte sequence a client can send may
//! panic a worker, and every non-I/O failure must classify as a 4xx.
//!
//! Three layers, innermost out: `read_request` over raw byte soup,
//! `handle` over arbitrary parsed requests, and finally a live server
//! fed garbage over real sockets — which must keep answering
//! `/healthz` afterwards.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use sclog_testkit::{check_n, Gen};
use sclogd::http::{read_request, Request, RequestError};
use sclogd::server::{handle, Server, ServerConfig, ServerState};
use sclogd::store::AlertStore;

fn fresh_state() -> ServerState {
    ServerState::new(AlertStore::new(), sclog_obs::Recorder::new())
}

/// Raw byte soup: mostly printable, sprinkled with CR/LF and wire
/// punctuation so request-shaped prefixes occur often.
fn gen_soup(g: &mut Gen) -> Vec<u8> {
    let n = g.usize_in(0..=512);
    (0..n)
        .map(|_| match g.below(12) {
            0 => b'\r',
            1 => b'\n',
            2 => b' ',
            3 => b':',
            4 => *g.pick(b"GETPOSHUD/?%&="),
            5 => g.below(256) as u8,
            _ => b' ' + g.below(95) as u8,
        })
        .collect()
}

/// A request-shaped line with randomly broken pieces, so the parser's
/// deeper branches (version check, target check, header grammar) get
/// exercised, not just the UTF-8 gate.
fn gen_requestish(g: &mut Gen) -> Vec<u8> {
    let method = g
        .pick(&["GET", "POST", "get", "G E T", "", "GÉT"])
        .to_owned();
    let target = match g.below(5) {
        0 => "/alerts".to_owned(),
        1 => format!("/alerts?{}", g.ascii_printable(0..=64)),
        2 => "relative/path".to_owned(),
        3 => format!("/{}", "a".repeat(g.usize_in(0..=9000))),
        _ => g.ascii_printable(0..=32),
    };
    let version = g.pick(&["HTTP/1.1", "HTTP/1.0", "HTTP/2.0", "TELNET", ""]);
    let mut raw = format!("{method} {target} {version}\r\n").into_bytes();
    for _ in 0..g.usize_in(0..=4) {
        let line = match g.below(4) {
            0 => format!(
                "{}: {}\r\n",
                g.ascii_printable(1..=12),
                g.ascii_printable(0..=24)
            ),
            1 => format!("Content-Length: {}\r\n", g.int_in(0..=99)),
            2 => "no colon here\r\n".to_owned(),
            _ => format!("X: {}\r\n", "v".repeat(g.usize_in(0..=9000))),
        };
        raw.extend_from_slice(line.as_bytes());
    }
    if g.chance(0.8) {
        raw.extend_from_slice(b"\r\n");
    }
    raw
}

#[test]
fn read_request_never_panics_and_classifies_4xx() {
    check_n("read_request on byte soup", 400, |g| {
        let raw = if g.chance(0.5) {
            gen_soup(g)
        } else {
            gen_requestish(g)
        };
        match read_request(&mut BufReader::new(raw.as_slice())) {
            Ok(req) => {
                // Anything that parses must be well-formed enough to route.
                assert!(req.path.starts_with('/'), "parsed path {:?}", req.path);
            }
            Err(e) => {
                if let Some(resp) = e.response() {
                    assert!(
                        (400..500).contains(&resp.status),
                        "non-I/O parse failure must be a 4xx, got {}",
                        resp.status
                    );
                } else {
                    assert!(matches!(e, RequestError::Io(_)));
                }
            }
        }
    });
}

#[test]
fn handle_never_panics_on_arbitrary_requests() {
    let state = fresh_state();
    let rec = state.recorder.thread("fuzz");
    check_n("handle on arbitrary requests", 300, |g| {
        let req = Request {
            method: g.pick(&["GET", "POST", "PUT", "DELETE"]).to_string(),
            path: match g.below(3) {
                0 => g
                    .pick(&[
                        "/healthz",
                        "/alerts",
                        "/categories",
                        "/interarrival",
                        "/hotspots",
                        "/stats",
                        "/obs",
                        "/slow",
                    ])
                    .to_string(),
                1 => format!("/{}", g.ascii_printable(0..=24)),
                _ => "/alerts".to_owned(),
            },
            query: g.ascii_printable(0..=80),
        };
        // /shutdown excluded: it flips the latch, which is harmless
        // here but makes the remaining cases less interesting.
        let resp = handle(&state, &rec, &req);
        assert!(
            matches!(resp.status, 200 | 400 | 404 | 405),
            "{} {}?{} -> {}",
            req.method,
            req.path,
            req.query,
            resp.status
        );
    });
}

#[test]
fn live_server_survives_garbage_connections() {
    let server = Server::start(Arc::new(fresh_state()), &ServerConfig::default())
        .expect("bind ephemeral port");
    let addr = server.addr();

    let mut g = Gen::from_seed(sclog_testkit::base_seed());
    for round in 0..40 {
        let raw = if g.chance(0.5) {
            gen_soup(&mut g)
        } else {
            gen_requestish(&mut g)
        };
        let mut stream = TcpStream::connect(addr).expect("connect");
        let _ = stream.write_all(&raw);
        if g.chance(0.3) {
            // Hang up without reading: the worker's write must not
            // wedge it.
            drop(stream);
            continue;
        }
        let mut reply = String::new();
        let _ = stream.read_to_string(&mut reply);
        if !reply.is_empty() {
            assert!(
                reply.starts_with("HTTP/1.1 "),
                "round {round}: non-HTTP reply {reply:?}"
            );
            let status: u16 = reply[9..12].parse().expect("status code");
            assert!(
                status == 200 || (400..500).contains(&status),
                "round {round}: status {status}"
            );
        }
    }

    // The point of it all: the server still works.
    let mut stream = TcpStream::connect(addr).expect("connect after garbage");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let mut reply = String::new();
    stream.read_to_string(&mut reply).unwrap();
    assert!(
        reply.starts_with("HTTP/1.1 200 OK"),
        "server must survive the fuzz: {reply}"
    );
    server.shutdown();
}
