//! A deliberately small HTTP/1.1 server-side layer.
//!
//! `sclogd` serves a handful of GET endpoints to trusted tooling; it
//! does not need (and must not grow) a general web stack. What it
//! does need is to be unkillable by malformed input: every request is
//! read through hard caps — request-line length, header count, total
//! header bytes — and every way a request can be wrong maps to a 4xx
//! classification instead of a panic or an unbounded read. Responses
//! always carry `Content-Length` and `Connection: close`; one
//! request per connection keeps the state machine trivial.

use std::io::{self, BufRead, Read, Write};

/// Cap on the request line (method + target + version + CRLF).
pub const MAX_REQUEST_LINE: usize = 8192;
/// Cap on the number of header lines.
pub const MAX_HEADERS: usize = 64;
/// Cap on any single header line.
pub const MAX_HEADER_BYTES: usize = 8192;

/// A successfully parsed request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method token, as sent (`GET`, `HEAD`, …).
    pub method: String,
    /// Decoded-enough path: the part of the target before `?`.
    pub path: String,
    /// The raw query string after `?` (empty when absent).
    pub query: String,
}

/// Everything that can go wrong reading a request head.
#[derive(Debug)]
pub enum RequestError {
    /// Request line exceeded [`MAX_REQUEST_LINE`] → 414.
    LineTooLong,
    /// Too many headers or an oversized header line → 431.
    HeadersTooLarge,
    /// Syntactically wrong request → 400, with a reason.
    Malformed(String),
    /// The socket failed or closed mid-request → no response owed.
    Io(io::Error),
}

impl RequestError {
    /// The response this error earns, or `None` when the connection
    /// is already dead and writing would be pointless.
    pub fn response(&self) -> Option<Response> {
        match self {
            RequestError::LineTooLong => Some(Response::text(414, "request line too long")),
            RequestError::HeadersTooLarge => Some(Response::text(431, "request headers too large")),
            RequestError::Malformed(why) => Some(Response::text(400, why)),
            RequestError::Io(_) => None,
        }
    }
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> Self {
        RequestError::Io(e)
    }
}

fn malformed(why: impl Into<String>) -> RequestError {
    RequestError::Malformed(why.into())
}

/// Reads one line (terminated by `\n`, `\r\n` stripped) with a hard
/// byte cap. Returns `Ok(None)` on clean EOF before any byte.
fn read_line_capped(
    reader: &mut impl BufRead,
    cap: usize,
    over_cap: fn() -> RequestError,
) -> Result<Option<Vec<u8>>, RequestError> {
    let mut line = Vec::new();
    let mut limited = reader.take(cap as u64 + 1);
    limited.read_until(b'\n', &mut line)?;
    if line.is_empty() {
        return Ok(None);
    }
    if line.last() != Some(&b'\n') {
        return Err(if line.len() > cap {
            over_cap()
        } else {
            // EOF mid-line: the peer hung up, nothing to answer.
            RequestError::Io(io::ErrorKind::UnexpectedEof.into())
        });
    }
    line.pop();
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    Ok(Some(line))
}

/// Reads and validates one request head from `reader`.
///
/// Headers are parsed for well-formedness and then discarded — no
/// endpoint takes a request body, and a nonzero `Content-Length` or
/// any `Transfer-Encoding` is rejected outright rather than leaving
/// unread bytes to be misread as a second request.
///
/// # Errors
///
/// See [`RequestError`]; every non-I/O variant maps to a 4xx.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, RequestError> {
    let line = read_line_capped(reader, MAX_REQUEST_LINE, || RequestError::LineTooLong)?
        .ok_or_else(|| RequestError::Io(io::ErrorKind::UnexpectedEof.into()))?;
    let line = String::from_utf8(line).map_err(|_| malformed("request line is not UTF-8"))?;

    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(malformed(
                "request line must be METHOD SP TARGET SP VERSION",
            ))
        }
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(malformed("method must be an uppercase token"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(malformed("only HTTP/1.0 and HTTP/1.1 are spoken here"));
    }
    if !target.starts_with('/') {
        return Err(malformed("target must be an absolute path"));
    }
    if target.bytes().any(|b| b.is_ascii_control()) {
        return Err(malformed("target contains control bytes"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target.to_owned(), String::new()),
    };

    let mut headers = 0usize;
    loop {
        let line = read_line_capped(reader, MAX_HEADER_BYTES, || RequestError::HeadersTooLarge)?
            .ok_or_else(|| RequestError::Io(io::ErrorKind::UnexpectedEof.into()))?;
        if line.is_empty() {
            break;
        }
        headers += 1;
        if headers > MAX_HEADERS {
            return Err(RequestError::HeadersTooLarge);
        }
        let line = String::from_utf8(line).map_err(|_| malformed("header is not UTF-8"))?;
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| malformed("header without a colon"))?;
        if name.is_empty()
            || name
                .bytes()
                .any(|b| b.is_ascii_whitespace() || b.is_ascii_control())
        {
            return Err(malformed("invalid header name"));
        }
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") && value != "0" {
            return Err(malformed("request bodies are not accepted"));
        }
        if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(malformed("request bodies are not accepted"));
        }
    }
    Ok(Request {
        method: method.to_owned(),
        path,
        query,
    })
}

/// A response ready to be written: status, body, optional
/// `Retry-After` (the admission-control signal).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes (JSON or plain text per `content_type`).
    pub body: String,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Seconds for a `Retry-After` header, set on 503.
    pub retry_after: Option<u32>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            body,
            content_type: "application/json",
            retry_after: None,
        }
    }

    /// A plain-text response; a newline is appended for terminals.
    pub fn text(status: u16, msg: &str) -> Self {
        Response {
            status,
            body: format!("{msg}\n"),
            content_type: "text/plain; charset=utf-8",
            retry_after: None,
        }
    }

    /// The 503 sent when the accept queue is full.
    pub fn overloaded(retry_after_secs: u32) -> Self {
        let mut r = Response::text(503, "server saturated, retry later");
        r.retry_after = Some(retry_after_secs);
        r
    }

    /// Serializes head and body to the wire.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors; callers treat them as the peer
    /// having gone away.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len()
        )?;
        if let Some(secs) = self.retry_after {
            write!(w, "Retry-After: {secs}\r\n")?;
        }
        write!(w, "\r\n")?;
        w.write_all(self.body.as_bytes())?;
        w.flush()
    }
}

/// The reason phrase for the status codes this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        414 => "URI Too Long",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Request, RequestError> {
        read_request(&mut BufReader::new(raw))
    }

    #[test]
    fn parses_a_plain_get() {
        let req = parse(b"GET /alerts?host=sn* HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/alerts");
        assert_eq!(req.query, "host=sn*");
        let req = parse(b"GET / HTTP/1.0\n\n").unwrap();
        assert_eq!(req.path, "/");
        assert_eq!(req.query, "");
    }

    #[test]
    fn classifies_malformed_requests_as_4xx() {
        let cases: &[&[u8]] = &[
            b"GET\r\n\r\n",
            b"GET /\r\n\r\n",
            b"GET / HTTP/2.0\r\n\r\n",
            b"get / HTTP/1.1\r\n\r\n",
            b"GET relative HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"GET /\x01 HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon\r\n\r\n",
            b"GET / HTTP/1.1\r\n: empty-name\r\n\r\n",
            b"GET / HTTP/1.1\r\nbad name: x\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello",
            b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"\xff\xfe / HTTP/1.1\r\n\r\n",
        ];
        for raw in cases {
            match parse(raw) {
                Err(e) => {
                    let resp = e.response().unwrap_or_else(|| {
                        panic!("{:?} must earn a response", String::from_utf8_lossy(raw))
                    });
                    assert_eq!(resp.status, 400, "{:?}", String::from_utf8_lossy(raw));
                }
                Ok(req) => panic!("{:?} parsed as {req:?}", String::from_utf8_lossy(raw)),
            }
        }
    }

    #[test]
    fn caps_yield_414_and_431() {
        let long_target = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE));
        match parse(long_target.as_bytes()) {
            Err(RequestError::LineTooLong) => {}
            other => panic!("expected LineTooLong, got {other:?}"),
        }
        assert_eq!(RequestError::LineTooLong.response().unwrap().status, 414);

        let mut many = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..=MAX_HEADERS {
            many.extend_from_slice(format!("h{i}: v\r\n").as_bytes());
        }
        many.extend_from_slice(b"\r\n");
        match parse(&many) {
            Err(RequestError::HeadersTooLarge) => {}
            other => panic!("expected HeadersTooLarge, got {other:?}"),
        }

        let big_header = format!(
            "GET / HTTP/1.1\r\nx: {}\r\n\r\n",
            "v".repeat(MAX_HEADER_BYTES)
        );
        match parse(big_header.as_bytes()) {
            Err(RequestError::HeadersTooLarge) => {}
            other => panic!("expected HeadersTooLarge, got {other:?}"),
        }
        assert_eq!(
            RequestError::HeadersTooLarge.response().unwrap().status,
            431
        );
    }

    #[test]
    fn truncated_requests_are_io_not_panic() {
        for raw in [
            &b"GET / HTTP/1.1"[..],
            &b"GET / HTTP/1.1\r\nHost: x"[..],
            &b""[..],
        ] {
            match parse(raw) {
                Err(RequestError::Io(_)) => {}
                other => panic!("{:?} -> {other:?}", String::from_utf8_lossy(raw)),
            }
        }
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        Response::json(200, "{}".into()).write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        Response::overloaded(1).write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
    }
}
