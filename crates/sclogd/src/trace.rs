//! Per-request tracing: normalized queries and the slow-query log.
//!
//! Every request the server parses gets a [`QueryTrace`] — trace id,
//! endpoint, normalized query, latency, status, and the scan's
//! [`ScanStats`](sclog_types::ScanStats) when one ran — pushed into
//! one bounded [`SlowLog`] ring. `/obs/queries` then answers the
//! operator's question "what were my slowest requests and *why*" from
//! memory: the per-request zone/partition pruning numbers are exactly
//! what distinguishes a full-scan query from a well-filtered one.

use std::collections::VecDeque;

use sclog_sync::{Mutex, PoisonError};
use sclog_types::{QueryLogReport, QueryTrace};

/// Canonical form of a query string for collation: parameters sorted,
/// empty fragments dropped. `b=2&a=1` and `a=1&b=2` are the same
/// question, and should look identical in the slow-query log.
pub(crate) fn normalize_query(raw: &str) -> String {
    let mut parts: Vec<&str> = raw.split('&').filter(|p| !p.is_empty()).collect();
    parts.sort_unstable();
    parts.join("&")
}

/// A bounded, mutex-guarded ring of recent request traces, rendered
/// on demand as the `/obs/queries` top-k (slowest first).
///
/// Pushes happen after the response bytes are written, so the lock is
/// never on a request's critical path; eviction is oldest-first, so
/// memory stays fixed while the window slides.
#[derive(Debug)]
pub(crate) struct SlowLog {
    cap: usize,
    ring: Mutex<VecDeque<QueryTrace>>,
}

impl SlowLog {
    pub(crate) fn new(cap: usize) -> SlowLog {
        assert!(cap > 0, "slow-query log capacity must be positive");
        SlowLog {
            cap,
            ring: Mutex::new(VecDeque::with_capacity(cap)),
        }
    }

    /// Records one finished request, evicting the oldest beyond the
    /// capacity.
    pub(crate) fn push(&self, trace: QueryTrace) {
        let mut ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// Currently retained traces.
    pub(crate) fn len(&self) -> usize {
        self.ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// The `/obs/queries` body: the `n` slowest retained requests,
    /// ties broken by recency (higher trace id first).
    pub(crate) fn render_top(&self, n: usize) -> String {
        let ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        let logged = ring.len() as u64;
        let mut queries: Vec<QueryTrace> = ring.iter().cloned().collect();
        drop(ring);
        queries.sort_by(|a, b| b.micros.cmp(&a.micros).then(b.trace_id.cmp(&a.trace_id)));
        queries.truncate(n);
        QueryLogReport { logged, queries }.to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sclog_types::json::validate;

    fn trace(id: u64, micros: u64) -> QueryTrace {
        QueryTrace {
            trace_id: id,
            endpoint: "/alerts".to_owned(),
            query: String::new(),
            micros,
            status: 200,
            scan: None,
        }
    }

    #[test]
    fn normalization_sorts_and_drops_empties() {
        assert_eq!(normalize_query(""), "");
        assert_eq!(normalize_query("b=2&a=1"), "a=1&b=2");
        assert_eq!(normalize_query("a=1&b=2"), "a=1&b=2");
        assert_eq!(normalize_query("&&a=1&"), "a=1");
    }

    #[test]
    fn ring_evicts_oldest_and_ranks_by_latency() {
        let log = SlowLog::new(3);
        for (id, micros) in [(1, 50), (2, 900), (3, 10), (4, 700)] {
            log.push(trace(id, micros));
        }
        assert_eq!(log.len(), 3, "capacity 3 evicts the oldest");
        let body = log.render_top(2);
        validate(&body).expect("valid JSON");
        assert!(body.contains("\"logged\":3"), "{body}");
        // id 1 evicted; survivors ranked 900 (id 2) then 700 (id 4).
        let p2 = body.find("\"trace_id\":2").expect("id 2 present");
        let p4 = body.find("\"trace_id\":4").expect("id 4 present");
        assert!(p2 < p4, "slowest first: {body}");
        assert!(!body.contains("\"trace_id\":3"), "top-2 truncates: {body}");
    }

    #[test]
    fn latency_ties_rank_newest_first() {
        let log = SlowLog::new(4);
        log.push(trace(1, 100));
        log.push(trace(2, 100));
        let body = log.render_top(4);
        let p1 = body.find("\"trace_id\":1").unwrap();
        let p2 = body.find("\"trace_id\":2").unwrap();
        assert!(p2 < p1, "{body}");
    }
}
