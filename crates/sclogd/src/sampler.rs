//! The background snapshot sampler feeding `/obs/timeline`.
//!
//! One thread, one job: every `period`, snapshot the server's recorder
//! into the shared history ring, until told to stop. The interesting
//! part is the shutdown handshake, built on the `sclog-sync` facade:
//!
//! - the sampler parks in `Condvar::wait_timeout` under the `stop`
//!   mutex and takes a sample whenever it wakes with the flag still
//!   down;
//! - [`Sampler::stop`] raises the flag under the same mutex, notifies,
//!   and joins.
//!
//! Because the flag is only ever read under the mutex the wait
//! atomically releases, the notify can never be lost: the sampler is
//! either parked (and is woken) or has not re-checked the flag yet
//! (and will see it raised). `crates/check`'s
//! `sampler_shutdown_handshake` driver model-checks exactly this shape
//! — with plain `wait`, no timeout, so the proof does not lean on the
//! clock — across every schedule under `verify.sh --model-check`,
//! including a seeded skip-the-notify mutant that must deadlock.

use std::time::Duration;

use sclog_sync::thread::JoinHandle;
use sclog_sync::{Arc, Condvar, Mutex, PoisonError};

use crate::server::ServerState;

/// Shared stop latch: flag under a mutex, condvar for the wakeup.
#[derive(Debug, Default)]
struct SamplerCtl {
    stop: Mutex<bool>,
    wake: Condvar,
}

/// A running sampler thread. Dropping it without [`Sampler::stop`]
/// detaches the thread (it keeps sampling until the process exits),
/// mirroring the server's own thread semantics.
#[derive(Debug)]
pub(crate) struct Sampler {
    ctl: Arc<SamplerCtl>,
    handle: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Spawns the sampler: one immediate seed sample so the timeline
    /// is never empty, then one sample per `period` until stopped.
    pub(crate) fn start(state: &Arc<ServerState>, period: Duration) -> Sampler {
        let ctl = Arc::new(SamplerCtl::default());
        let thread_ctl = Arc::clone(&ctl);
        let state = Arc::clone(state);
        let handle = sclog_sync::thread::spawn(move || {
            let rec = state.recorder.thread("sampler");
            state.take_sample(&rec);
            let mut stop = thread_ctl
                .stop
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            while !*stop {
                let (guard, _timed_out) = thread_ctl
                    .wake
                    .wait_timeout(stop, period)
                    .unwrap_or_else(PoisonError::into_inner);
                stop = guard;
                if !*stop {
                    state.take_sample(&rec);
                }
            }
        });
        Sampler {
            ctl,
            handle: Some(handle),
        }
    }

    /// Raises the stop flag, wakes the sampler, and joins it.
    pub(crate) fn stop(mut self) {
        *self.ctl.stop.lock().unwrap_or_else(PoisonError::into_inner) = true;
        self.ctl.wake.notify_one();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::AlertStore;
    use sclog_obs::Recorder;

    #[test]
    fn sampler_seeds_then_accumulates_then_stops() {
        let state = Arc::new(ServerState::new(AlertStore::new(), Recorder::new()));
        let sampler = Sampler::start(&state, Duration::from_millis(5));
        // The seed sample lands without waiting a full period.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while state.timeline_len() == 0 {
            assert!(std::time::Instant::now() < deadline, "no seed sample");
            std::thread::sleep(Duration::from_millis(1));
        }
        // And periodic samples keep arriving.
        while state.timeline_len() < 3 {
            assert!(std::time::Instant::now() < deadline, "sampler stalled");
            std::thread::sleep(Duration::from_millis(2));
        }
        sampler.stop();
        let settled = state.timeline_len();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(state.timeline_len(), settled, "sampled after stop");
    }

    #[test]
    fn stop_does_not_wait_out_a_long_period() {
        let state = Arc::new(ServerState::new(AlertStore::new(), Recorder::new()));
        let sampler = Sampler::start(&state, Duration::from_secs(3600));
        let started = std::time::Instant::now();
        sampler.stop();
        assert!(
            started.elapsed() < Duration::from_secs(60),
            "stop must interrupt the wait, not sit out the period"
        );
    }
}
