//! `sclogd` binary: ingest the five simulated system logs through the
//! streaming pipeline into the on-disk segment store, then serve
//! queries over them.
//!
//! With `--data DIR` the store is persistent: a directory already
//! holding records boots straight from disk — no simulation, no
//! re-ingest. Without it, a throwaway store in a temp directory is
//! ingested fresh and removed on exit.
//!
//! Run `sclogd --help` for flags. `--smoke` runs the offline serving
//! self-test used by `verify.sh --serve-smoke`; `--store-smoke` runs
//! the persistence self-test used by `verify.sh --store-smoke`
//! (write → crash → recover → query, exits nonzero on any deviation).

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use sclog_core::{IngestConfig, ObsConfig};
use sclog_filter::SpatioTemporalFilter;
use sclog_obs::ThreadRecorder;
use sclog_rules::RuleSet;
use sclog_simgen::{generate, Scale};
use sclog_types::{CategoryRegistry, Severity, SystemId, ALL_SYSTEMS};
use sclogd::server::{Server, ServerConfig, ServerState};
use sclogd::store::AlertStore;

struct Args {
    port: u16,
    workers: usize,
    accept_queue: usize,
    scale: f64,
    seed: u64,
    threads: usize,
    data: Option<PathBuf>,
    smoke: bool,
    store_smoke: bool,
    trace_smoke: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            port: 7479,
            workers: 2,
            accept_queue: 8,
            scale: 0.02,
            seed: 42,
            threads: 2,
            data: None,
            smoke: false,
            store_smoke: false,
            trace_smoke: false,
        }
    }
}

const USAGE: &str = "\
sclogd: query/analytics server over the sclog alert store

USAGE: sclogd [FLAGS]

FLAGS:
  --port N          TCP port on 127.0.0.1 (default 7479; 0 = ephemeral)
  --workers N       request worker threads (default 2)
  --accept-queue N  bounded accept queue; beyond it, 503 (default 8)
  --scale F         simgen scale factor in (0, 1] (default 0.02)
  --seed N          simgen seed (default 42)
  --threads N       ingest worker threads (default 2)
  --data DIR        persistent store directory; boots from it when it
                    already holds records (default: temp dir, removed
                    on exit)
  --smoke           run the offline serving self-test and exit
  --store-smoke     run the persistence crash/recovery self-test and exit
  --trace-smoke     run the slow-query tracing self-test and exit
  --help            this text
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--port" => args.port = num(&value("--port")?, "--port")?,
            "--workers" => args.workers = num(&value("--workers")?, "--workers")?,
            "--accept-queue" => {
                args.accept_queue = num(&value("--accept-queue")?, "--accept-queue")?
            }
            "--scale" => {
                let raw = value("--scale")?;
                args.scale = raw
                    .parse()
                    .map_err(|_| format!("--scale wants a float, got {raw:?}"))?;
                if !(args.scale > 0.0 && args.scale <= 1.0) {
                    return Err(format!("--scale must be in (0, 1], got {raw}"));
                }
            }
            "--seed" => args.seed = num(&value("--seed")?, "--seed")?,
            "--threads" => args.threads = num(&value("--threads")?, "--threads")?,
            "--data" => args.data = Some(PathBuf::from(value("--data")?)),
            "--smoke" => args.smoke = true,
            "--store-smoke" => args.store_smoke = true,
            "--trace-smoke" => args.trace_smoke = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}\n\n{USAGE}")),
        }
    }
    if args.workers == 0 || args.accept_queue == 0 || args.threads == 0 {
        return Err("--workers, --accept-queue and --threads must be positive".to_owned());
    }
    Ok(args)
}

fn num<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("{flag} wants a number, got {raw:?}"))
}

/// Generates and ingests one system, joining severity ground truth in
/// when the parse is 1:1 with the generated messages (a mismatch
/// means indexes may not align; severity is advisory metadata, not
/// part of the alert identity).
fn ingest_system(
    store: &AlertStore,
    system: SystemId,
    scale: f64,
    seed: u64,
    threads: usize,
    rec: &ThreadRecorder,
) -> std::io::Result<()> {
    let log = generate(system, Scale::new(scale, scale), seed);
    let text = log.render();
    let mut registry = CategoryRegistry::new();
    let rules = RuleSet::builtin(system, &mut registry);
    let filter = SpatioTemporalFilter::paper();
    let config = IngestConfig {
        threads,
        obs: ObsConfig::on(),
        ..IngestConfig::default()
    };
    let result =
        sclog_core::pipeline::ingest_stream(system, text.as_bytes(), &rules, &filter, config)?;
    let severities: Vec<Severity> = if result.parse.parsed as usize == log.messages.len() {
        log.messages.iter().map(|m| m.severity).collect()
    } else {
        Vec::new()
    };
    store.ingest_with(system, &result, &registry, &severities, rec)?;
    eprintln!(
        "ingested {system}: {} messages, {} tagged, {} filtered",
        result.parse.parsed,
        result.tagged.len(),
        result.filtered.len()
    );
    Ok(())
}

/// Generates and ingests all five systems, then seals and compacts so
/// the next boot reads zone-mapped segments instead of WAL tails.
fn ingest_all(
    store: &AlertStore,
    scale: f64,
    seed: u64,
    threads: usize,
    rec: &ThreadRecorder,
) -> std::io::Result<()> {
    for system in ALL_SYSTEMS {
        ingest_system(store, system, scale, seed, threads, rec)?;
    }
    store.finalize(rec)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("sclogd: {msg}");
            return ExitCode::from(2);
        }
    };
    if args.smoke {
        return match smoke(&args) {
            Ok(()) => {
                println!("serve-smoke: OK");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("serve-smoke: FAILED: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    if args.store_smoke {
        return match store_smoke(&args) {
            Ok(()) => {
                println!("store-smoke: OK");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("store-smoke: FAILED: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    if args.trace_smoke {
        return match trace_smoke(&args) {
            Ok(()) => {
                println!("trace-smoke: OK");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("trace-smoke: FAILED: {msg}");
                ExitCode::FAILURE
            }
        };
    }

    let store = match &args.data {
        Some(dir) => match AlertStore::open(dir) {
            Ok(store) => store,
            Err(e) => {
                eprintln!("sclogd: cannot open store at {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        },
        None => AlertStore::new(),
    };
    // State first: it registers serving and store metrics before the
    // recorder's registry seals at the first thread() below.
    let state = Arc::new(ServerState::new(store, sclog_obs::Recorder::new()));
    if state.store.version() == 0 {
        let rec = state.recorder.thread("ingest");
        if let Err(e) = ingest_all(&state.store, args.scale, args.seed, args.threads, &rec) {
            eprintln!("sclogd: ingest failed: {e}");
            return ExitCode::FAILURE;
        }
    } else {
        let inner = state.store.read();
        eprintln!(
            "sclogd: booted from store at {}: {} alerts in {} segments, {} systems",
            inner.segs.root().display(),
            inner.alert_count(),
            inner.segs.segment_count(),
            inner.systems.len()
        );
    }
    let config = ServerConfig {
        addr: format!("127.0.0.1:{}", args.port),
        workers: args.workers,
        accept_queue: args.accept_queue,
        ..ServerConfig::default()
    };
    let server = match Server::start(Arc::clone(&state), &config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("sclogd: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("sclogd listening on http://{}", server.addr());
    while !state.shutting_down() {
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
    server.shutdown();
    eprintln!("sclogd: shut down cleanly");
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------- smoke

/// One smoke-client response.
struct Reply {
    status: u16,
    headers: HashMap<String, String>,
    body: String,
}

fn http_get(addr: std::net::SocketAddr, target: &str) -> Result<Reply, String> {
    let raw = format!("GET {target} HTTP/1.1\r\nHost: smoke\r\n\r\n");
    http_raw(addr, raw.as_bytes())
}

fn http_raw(addr: std::net::SocketAddr, raw: &[u8]) -> Result<Reply, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .ok();
    stream.write_all(raw).map_err(|e| format!("write: {e}"))?;
    let mut text = String::new();
    stream
        .read_to_string(&mut text)
        .map_err(|e| format!("read: {e}"))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("no header/body separator in {text:?}"))?;
    let mut lines = head.lines();
    let status_line = lines.next().ok_or("empty response")?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut headers = HashMap::new();
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_owned());
        }
    }
    Ok(Reply {
        status,
        headers,
        body: body.to_owned(),
    })
}

fn expect(cond: bool, msg: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(msg.to_owned())
    }
}

/// Extracts the first `"key":<digits>` at or after byte offset `from`
/// in a JSON body — enough of a parser for the smoke assertions.
fn u64_after(body: &str, from: usize, key: &str) -> Result<u64, String> {
    let pat = format!("\"{key}\":");
    let at = body[from..]
        .find(&pat)
        .ok_or_else(|| format!("no {pat} after offset {from}"))?
        + from
        + pat.len();
    let digits: String = body[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits
        .parse()
        .map_err(|_| format!("{pat} not followed by a number"))
}

fn smoke(args: &Args) -> Result<(), String> {
    use sclog_types::json::validate;

    // Phase 1: a normally-provisioned server over a five-system store.
    // The smoke cares about correctness, not volume — clamp the scale
    // so tier-1 verify stays fast.
    let state = Arc::new(ServerState::new(
        AlertStore::new(),
        sclog_obs::Recorder::new(),
    ));
    let rec = state.recorder.thread("ingest");
    ingest_all(
        &state.store,
        args.scale.min(0.002),
        args.seed,
        args.threads,
        &rec,
    )
    .map_err(|e| format!("ingest: {e}"))?;
    drop(rec);
    let server = Server::start(
        Arc::clone(&state),
        &ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            accept_queue: 8,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr();

    let health = http_get(addr, "/healthz")?;
    expect(health.status == 200, "healthz must be 200")?;
    validate(&health.body).map_err(|e| format!("healthz body: {e}"))?;
    expect(
        health.body.contains("\"systems\":5"),
        "store must hold all five systems",
    )?;

    for target in [
        "/alerts?limit=5",
        "/alerts?fields=time,host,category&limit=3",
        "/alerts?host=*&filtered=true",
        "/alerts?class=hardware",
        "/alerts?system=bgl&filtered=all",
        "/categories",
        "/interarrival",
        "/hotspots?k=5",
        "/stats",
        "/obs?source=ingest",
    ] {
        let reply = http_get(addr, target)?;
        expect(reply.status == 200, &format!("{target} must be 200"))?;
        validate(&reply.body).map_err(|e| format!("{target} body: {e}"))?;
    }

    let alerts = http_get(addr, "/alerts?limit=5")?;
    expect(
        alerts.body.contains("\"total\":"),
        "alerts body must carry a total",
    )?;
    expect(
        http_get(addr, "/stats")?.body.contains("\"tagged\":"),
        "stats must carry tagged counts",
    )?;

    // Failure classification: 400 / 404 / 405, each leaving the
    // server alive for the next request.
    expect(
        http_get(addr, "/alerts?limit=0")?.status == 400,
        "limit=0 must be 400",
    )?;
    expect(
        http_get(addr, "/alerts?serverity=error")?.status == 400,
        "unknown key must be 400",
    )?;
    expect(http_get(addr, "/nope")?.status == 404, "404 route")?;
    expect(
        http_raw(addr, b"POST /alerts HTTP/1.1\r\nHost: s\r\n\r\n")?.status == 405,
        "POST must be 405",
    )?;
    expect(
        http_raw(addr, b"totally not http\r\n\r\n")?.status == 400,
        "garbage must be 400",
    )?;
    expect(
        http_get(addr, "/healthz")?.status == 200,
        "server must survive malformed traffic",
    )?;

    // The server's own report: versioned schema, serve-stage coverage.
    let obs = http_get(addr, "/obs")?;
    validate(&obs.body).map_err(|e| format!("obs body: {e}"))?;
    expect(
        obs.body.contains("sclog.obs.v1"),
        "obs must be a sclog.obs.v1 report",
    )?;
    expect(obs.body.contains("serve"), "obs must cover the serve stage")?;
    expect(
        obs.body.contains("http_requests"),
        "obs must count requests",
    )?;

    // Clean shutdown through the endpoint.
    expect(
        http_get(addr, "/shutdown")?.status == 200,
        "shutdown endpoint must answer before stopping",
    )?;
    server.shutdown();

    // Phase 2: a deliberately tiny server to provoke admission
    // control: one worker pinned by /slow, queue of one, then a burst.
    let state = Arc::new(ServerState::new(
        AlertStore::new(),
        sclog_obs::Recorder::new(),
    ));
    let server = Server::start(
        Arc::clone(&state),
        &ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 1,
            accept_queue: 1,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("bind overload server: {e}"))?;
    let addr = server.addr();

    let pin = std::thread::spawn(move || http_get(addr, "/slow?ms=1500"));
    std::thread::sleep(std::time::Duration::from_millis(200));

    // Concurrent burst: with the lone worker pinned and a queue of
    // one, most of these must be refused at the accept thread.
    let burst: Vec<_> = (0..8)
        .map(|_| std::thread::spawn(move || http_get(addr, "/healthz")))
        .collect();
    let mut saw_503 = false;
    for handle in burst {
        let reply = handle.join().map_err(|_| "burst thread panicked")??;
        match reply.status {
            503 => {
                expect(
                    reply.headers.get("retry-after").map(String::as_str) == Some("1"),
                    "503 must carry Retry-After: 1",
                )?;
                saw_503 = true;
            }
            200 => {}
            other => return Err(format!("burst reply was {other}, want 200 or 503")),
        }
    }
    expect(saw_503, "burst against a saturated server must see a 503")?;

    // Every accept-thread refusal is also a `server.rejects` count,
    // visible both from the raw /obs report and from /obs/health.
    let obs = http_get(addr, "/obs")?;
    let rejects_at = obs
        .body
        .find("\"server.rejects\"")
        .ok_or("/obs must carry the server.rejects counter")?;
    expect(
        u64_after(&obs.body, rejects_at, "value")? > 0,
        "server.rejects must count the refused burst",
    )?;
    expect(
        u64_after(&http_get(addr, "/obs/health")?.body, 0, "rejects")? > 0,
        "/obs/health must surface the reject count",
    )?;

    let pinned = pin.join().map_err(|_| "slow request thread panicked")??;
    expect(pinned.status == 200, "pinned /slow request must finish")?;
    expect(
        http_get(addr, "/healthz")?.status == 200,
        "server must recover after overload",
    )?;
    server.shutdown();
    Ok(())
}

// ---------------------------------------------------------- store smoke

/// Finds a non-trivial partition WAL under `dir` (one holding at
/// least one frame beyond its header).
fn find_wal(dir: &Path) -> Option<PathBuf> {
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        let entries = std::fs::read_dir(&current).ok()?;
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.file_name().is_some_and(|n| n == "wal.bin")
                && std::fs::metadata(&path).is_ok_and(|m| m.len() > 10)
            {
                return Some(path);
            }
        }
    }
    None
}

/// The persistence self-test behind `verify.sh --store-smoke`: write
/// through the WAL, crash two ways (garbage tail, torn frame),
/// recover, seal, and serve queries from the cold-booted store.
fn store_smoke(args: &Args) -> Result<(), String> {
    let dir = std::env::temp_dir().join(format!("sclogd-store-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let scale = args.scale.min(0.01);
    let rec = sclog_obs::Recorder::disabled().thread("store-smoke");

    // Phase 1: ingest one system persistently. No finalize — the
    // records stay in partition WALs, modelling a daemon killed
    // before it sealed anything.
    let store = AlertStore::open(&dir).map_err(|e| format!("open: {e}"))?;
    ingest_system(
        &store,
        SystemId::Liberty,
        scale,
        args.seed,
        args.threads,
        &rec,
    )
    .map_err(|e| format!("ingest: {e}"))?;
    let total = store.read().alert_count();
    expect(total > 0, "smoke ingest must admit alerts")?;
    drop(store);

    // Phase 2: a crash that left garbage after the last synced frame.
    // Recovery must drop the garbage and keep every whole frame.
    let wal = find_wal(&dir).ok_or("ingest left no populated wal.bin")?;
    let clean = std::fs::read(&wal).map_err(|e| format!("read wal: {e}"))?;
    let mut torn = clean.clone();
    torn.extend_from_slice(b"torn tail");
    std::fs::write(&wal, &torn).map_err(|e| format!("write wal: {e}"))?;
    let store = AlertStore::open(&dir).map_err(|e| format!("reopen after garbage: {e}"))?;
    expect(
        store.read().alert_count() == total,
        "garbage tail must be dropped without losing synced records",
    )?;
    expect(store.version() > 0, "recovered store must look non-empty")?;
    drop(store);

    // Phase 3: a crash mid-frame — cut into the WAL's final frame.
    // Recovery keeps only fully-synced frames: no phantoms, and the
    // store must stay consistent and sealable.
    let cut = clean.len().saturating_sub(3).max(10);
    std::fs::write(&wal, &clean[..cut]).map_err(|e| format!("truncate wal: {e}"))?;
    let store = AlertStore::open(&dir).map_err(|e| format!("reopen after cut: {e}"))?;
    let survivors = store.read().alert_count();
    expect(survivors < total, "a torn frame must not replay")?;
    store.finalize(&rec).map_err(|e| format!("finalize: {e}"))?;
    drop(store);

    // Phase 4: cold boot the sealed store and serve queries from it.
    let store = AlertStore::open(&dir).map_err(|e| format!("cold boot: {e}"))?;
    {
        let inner = store.read();
        expect(
            inner.segs.segment_count() > 0,
            "finalize must leave sealed segments",
        )?;
        expect(
            inner.alert_count() == survivors,
            "sealed store must serve exactly the recovered records",
        )?;
        expect(!inner.systems.is_empty(), "/stats rows must persist")?;
    }
    let state = Arc::new(ServerState::new(store, sclog_obs::Recorder::new()));
    let server = Server::start(
        Arc::clone(&state),
        &ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            accept_queue: 8,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr();
    let alerts = http_get(addr, "/alerts?limit=1")?;
    expect(alerts.status == 200, "/alerts must be 200 after cold boot")?;
    expect(
        alerts.body.contains(&format!("\"total\":{survivors}")),
        "cold boot must serve every recovered alert",
    )?;
    let stats = http_get(addr, "/stats")?;
    expect(
        stats.body.to_ascii_lowercase().contains("liberty"),
        "/stats must carry the persisted system row",
    )?;
    expect(
        http_get(addr, "/healthz")?.status == 200,
        "healthz after cold boot",
    )?;
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

// ---------------------------------------------------------- trace smoke

/// The tracing self-test behind `verify.sh --trace-smoke`: boot a
/// server with a fast timeline sampler, issue one deliberately wide
/// query (full scan) and one the zone maps can prune hard, then check
/// that `/obs/queries` alone tells them apart — by rank and by each
/// request's own scan statistics — and that `/obs/timeline` has been
/// accumulating samples in the background.
fn trace_smoke(args: &Args) -> Result<(), String> {
    use sclog_types::json::validate;

    let state = Arc::new(ServerState::new(
        AlertStore::new(),
        sclog_obs::Recorder::new(),
    ));
    let rec = state.recorder.thread("ingest");
    ingest_all(
        &state.store,
        args.scale.min(0.002),
        args.seed,
        args.threads,
        &rec,
    )
    .map_err(|e| format!("ingest: {e}"))?;
    drop(rec);
    let server = Server::start(
        Arc::clone(&state),
        &ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            accept_queue: 8,
            sample_every: std::time::Duration::from_millis(20),
        },
    )
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr();

    // The wide query: no predicates, maximum legal limit — nothing for
    // the store to prune, every row decoded and rendered. The narrow
    // query: one system, one row — whole partitions pruned up front.
    expect(
        http_get(addr, "/alerts?limit=10000")?.status == 200,
        "wide query must be 200",
    )?;
    expect(
        http_get(addr, "/alerts?system=bgl&limit=1")?.status == 200,
        "narrow query must be 200",
    )?;

    // Let the sampler cover at least two periods.
    std::thread::sleep(std::time::Duration::from_millis(150));

    let queries = http_get(addr, "/obs/queries?n=50")?;
    expect(queries.status == 200, "/obs/queries must be 200")?;
    validate(&queries.body).map_err(|e| format!("queries body: {e}"))?;
    let body = &queries.body;
    expect(
        body.contains("\"schema\":\"sclog.trace.v1\""),
        "/obs/queries must be a sclog.trace.v1 report",
    )?;
    let wide_at = body
        .find("\"query\":\"limit=10000\"")
        .ok_or("wide query missing from the slow log")?;
    let narrow_at = body
        .find("\"query\":\"limit=1&system=bgl\"")
        .ok_or("narrow query missing from the slow log (params should be sorted)")?;
    expect(
        wide_at < narrow_at,
        "the full scan must outrank the pruned query",
    )?;
    expect(
        u64_after(body, wide_at, "partitions_pruned")? == 0
            && u64_after(body, wide_at, "zones_pruned")? == 0,
        "the wide scan must prune nothing",
    )?;
    expect(
        u64_after(body, narrow_at, "partitions_pruned")? > 0,
        "the narrow scan must prune whole partitions",
    )?;
    expect(
        u64_after(body, wide_at, "rows_decoded")? > u64_after(body, narrow_at, "rows_decoded")?,
        "the wide scan must decode more rows than the narrow one",
    )?;

    let timeline = http_get(addr, "/obs/timeline")?;
    expect(timeline.status == 200, "/obs/timeline must be 200")?;
    validate(&timeline.body).map_err(|e| format!("timeline body: {e}"))?;
    expect(
        timeline.body.contains("\"schema\":\"sclog.trace.v1\""),
        "/obs/timeline must be a sclog.trace.v1 report",
    )?;
    expect(
        timeline.body.matches("\"at_ns\"").count() >= 2,
        "the background sampler must have recorded at least two deltas",
    )?;

    let health = http_get(addr, "/obs/health")?;
    expect(health.status == 200, "/obs/health must be 200")?;
    validate(&health.body).map_err(|e| format!("health body: {e}"))?;
    expect(
        health.body.contains("\"status\":\"ok\"") && health.body.contains("\"trace_format\":1"),
        "health must carry the trace format version",
    )?;
    expect(
        http_get(addr, "/obs")?.body.contains("http.us:/alerts"),
        "/obs must carry the per-endpoint latency histogram",
    )?;

    server.shutdown();
    Ok(())
}
