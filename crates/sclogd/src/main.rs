//! `sclogd` binary: ingest the five simulated system logs through the
//! streaming pipeline, then serve queries over them.
//!
//! Run `sclogd --help` for flags. `--smoke` runs the offline
//! self-test used by `verify.sh --serve-smoke`: it brings a server
//! up on an ephemeral port, exercises every endpoint including the
//! overload path, and exits nonzero on any deviation.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::Arc;

use sclog_core::{IngestConfig, ObsConfig};
use sclog_filter::SpatioTemporalFilter;
use sclog_rules::RuleSet;
use sclog_simgen::{generate, Scale};
use sclog_types::{CategoryRegistry, Severity, ALL_SYSTEMS};
use sclogd::server::{Server, ServerConfig, ServerState};
use sclogd::store::AlertStore;

struct Args {
    port: u16,
    workers: usize,
    accept_queue: usize,
    scale: f64,
    seed: u64,
    threads: usize,
    smoke: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            port: 7479,
            workers: 2,
            accept_queue: 8,
            scale: 0.02,
            seed: 42,
            threads: 2,
            smoke: false,
        }
    }
}

const USAGE: &str = "\
sclogd: query/analytics server over the sclog alert store

USAGE: sclogd [FLAGS]

FLAGS:
  --port N          TCP port on 127.0.0.1 (default 7479; 0 = ephemeral)
  --workers N       request worker threads (default 2)
  --accept-queue N  bounded accept queue; beyond it, 503 (default 8)
  --scale F         simgen scale factor in (0, 1] (default 0.02)
  --seed N          simgen seed (default 42)
  --threads N       ingest worker threads (default 2)
  --smoke           run the offline self-test and exit
  --help            this text
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--port" => args.port = num(&value("--port")?, "--port")?,
            "--workers" => args.workers = num(&value("--workers")?, "--workers")?,
            "--accept-queue" => {
                args.accept_queue = num(&value("--accept-queue")?, "--accept-queue")?
            }
            "--scale" => {
                let raw = value("--scale")?;
                args.scale = raw
                    .parse()
                    .map_err(|_| format!("--scale wants a float, got {raw:?}"))?;
                if !(args.scale > 0.0 && args.scale <= 1.0) {
                    return Err(format!("--scale must be in (0, 1], got {raw}"));
                }
            }
            "--seed" => args.seed = num(&value("--seed")?, "--seed")?,
            "--threads" => args.threads = num(&value("--threads")?, "--threads")?,
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}\n\n{USAGE}")),
        }
    }
    if args.workers == 0 || args.accept_queue == 0 || args.threads == 0 {
        return Err("--workers, --accept-queue and --threads must be positive".to_owned());
    }
    Ok(args)
}

fn num<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("{flag} wants a number, got {raw:?}"))
}

/// Generates and ingests all five systems into a fresh store.
fn build_store(scale: f64, seed: u64, threads: usize) -> std::io::Result<AlertStore> {
    let store = AlertStore::new();
    let filter = SpatioTemporalFilter::paper();
    for system in ALL_SYSTEMS {
        let log = generate(system, Scale::new(scale, scale), seed);
        let text = log.render();
        let mut registry = CategoryRegistry::new();
        let rules = RuleSet::builtin(system, &mut registry);
        let config = IngestConfig {
            threads,
            obs: ObsConfig::on(),
            ..IngestConfig::default()
        };
        let result =
            sclog_core::pipeline::ingest_stream(system, text.as_bytes(), &rules, &filter, config)?;
        // Severity is not part of the alert identity; it joins in from
        // the generator's ground truth when the parse is 1:1 with the
        // generated messages (a mismatch means indexes may not align).
        let severities: Vec<Severity> = if result.parse.parsed as usize == log.messages.len() {
            log.messages.iter().map(|m| m.severity).collect()
        } else {
            Vec::new()
        };
        store.ingest(system, &result, &registry, &severities);
        eprintln!(
            "ingested {system}: {} messages, {} tagged, {} filtered",
            result.parse.parsed,
            result.tagged.len(),
            result.filtered.len()
        );
    }
    Ok(store)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("sclogd: {msg}");
            return ExitCode::from(2);
        }
    };
    if args.smoke {
        return match smoke(&args) {
            Ok(()) => {
                println!("serve-smoke: OK");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("serve-smoke: FAILED: {msg}");
                ExitCode::FAILURE
            }
        };
    }

    let store = match build_store(args.scale, args.seed, args.threads) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("sclogd: ingest failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let state = Arc::new(ServerState::new(store, sclog_obs::Recorder::new()));
    let config = ServerConfig {
        addr: format!("127.0.0.1:{}", args.port),
        workers: args.workers,
        accept_queue: args.accept_queue,
    };
    let server = match Server::start(Arc::clone(&state), &config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("sclogd: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("sclogd listening on http://{}", server.addr());
    while !state.shutting_down() {
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
    server.shutdown();
    eprintln!("sclogd: shut down cleanly");
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------- smoke

/// One smoke-client response.
struct Reply {
    status: u16,
    headers: HashMap<String, String>,
    body: String,
}

fn http_get(addr: std::net::SocketAddr, target: &str) -> Result<Reply, String> {
    let raw = format!("GET {target} HTTP/1.1\r\nHost: smoke\r\n\r\n");
    http_raw(addr, raw.as_bytes())
}

fn http_raw(addr: std::net::SocketAddr, raw: &[u8]) -> Result<Reply, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .ok();
    stream.write_all(raw).map_err(|e| format!("write: {e}"))?;
    let mut text = String::new();
    stream
        .read_to_string(&mut text)
        .map_err(|e| format!("read: {e}"))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("no header/body separator in {text:?}"))?;
    let mut lines = head.lines();
    let status_line = lines.next().ok_or("empty response")?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut headers = HashMap::new();
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_owned());
        }
    }
    Ok(Reply {
        status,
        headers,
        body: body.to_owned(),
    })
}

fn expect(cond: bool, msg: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(msg.to_owned())
    }
}

fn smoke(args: &Args) -> Result<(), String> {
    use sclog_types::json::validate;

    // Phase 1: a normally-provisioned server over a five-system store.
    // The smoke cares about correctness, not volume — clamp the scale
    // so tier-1 verify stays fast.
    let store = build_store(args.scale.min(0.002), args.seed, args.threads)
        .map_err(|e| format!("ingest: {e}"))?;
    let state = Arc::new(ServerState::new(store, sclog_obs::Recorder::new()));
    let server = Server::start(
        Arc::clone(&state),
        &ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            accept_queue: 8,
        },
    )
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr();

    let health = http_get(addr, "/healthz")?;
    expect(health.status == 200, "healthz must be 200")?;
    validate(&health.body).map_err(|e| format!("healthz body: {e}"))?;
    expect(
        health.body.contains("\"systems\":5"),
        "store must hold all five systems",
    )?;

    for target in [
        "/alerts?limit=5",
        "/alerts?fields=time,host,category&limit=3",
        "/alerts?host=*&filtered=true",
        "/alerts?class=hardware",
        "/alerts?system=bgl&filtered=all",
        "/categories",
        "/interarrival",
        "/hotspots?k=5",
        "/stats",
        "/obs?source=ingest",
    ] {
        let reply = http_get(addr, target)?;
        expect(reply.status == 200, &format!("{target} must be 200"))?;
        validate(&reply.body).map_err(|e| format!("{target} body: {e}"))?;
    }

    let alerts = http_get(addr, "/alerts?limit=5")?;
    expect(
        alerts.body.contains("\"total\":"),
        "alerts body must carry a total",
    )?;
    expect(
        http_get(addr, "/stats")?.body.contains("\"tagged\":"),
        "stats must carry tagged counts",
    )?;

    // Failure classification: 400 / 404 / 405, each leaving the
    // server alive for the next request.
    expect(
        http_get(addr, "/alerts?limit=0")?.status == 400,
        "limit=0 must be 400",
    )?;
    expect(
        http_get(addr, "/alerts?serverity=error")?.status == 400,
        "unknown key must be 400",
    )?;
    expect(http_get(addr, "/nope")?.status == 404, "404 route")?;
    expect(
        http_raw(addr, b"POST /alerts HTTP/1.1\r\nHost: s\r\n\r\n")?.status == 405,
        "POST must be 405",
    )?;
    expect(
        http_raw(addr, b"totally not http\r\n\r\n")?.status == 400,
        "garbage must be 400",
    )?;
    expect(
        http_get(addr, "/healthz")?.status == 200,
        "server must survive malformed traffic",
    )?;

    // The server's own report: versioned schema, serve-stage coverage.
    let obs = http_get(addr, "/obs")?;
    validate(&obs.body).map_err(|e| format!("obs body: {e}"))?;
    expect(
        obs.body.contains("sclog.obs.v1"),
        "obs must be a sclog.obs.v1 report",
    )?;
    expect(obs.body.contains("serve"), "obs must cover the serve stage")?;
    expect(
        obs.body.contains("http_requests"),
        "obs must count requests",
    )?;

    // Clean shutdown through the endpoint.
    expect(
        http_get(addr, "/shutdown")?.status == 200,
        "shutdown endpoint must answer before stopping",
    )?;
    server.shutdown();

    // Phase 2: a deliberately tiny server to provoke admission
    // control: one worker pinned by /slow, queue of one, then a burst.
    let state = Arc::new(ServerState::new(
        AlertStore::new(),
        sclog_obs::Recorder::new(),
    ));
    let server = Server::start(
        Arc::clone(&state),
        &ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 1,
            accept_queue: 1,
        },
    )
    .map_err(|e| format!("bind overload server: {e}"))?;
    let addr = server.addr();

    let pin = std::thread::spawn(move || http_get(addr, "/slow?ms=1500"));
    std::thread::sleep(std::time::Duration::from_millis(200));

    // Concurrent burst: with the lone worker pinned and a queue of
    // one, most of these must be refused at the accept thread.
    let burst: Vec<_> = (0..8)
        .map(|_| std::thread::spawn(move || http_get(addr, "/healthz")))
        .collect();
    let mut saw_503 = false;
    for handle in burst {
        let reply = handle.join().map_err(|_| "burst thread panicked")??;
        match reply.status {
            503 => {
                expect(
                    reply.headers.get("retry-after").map(String::as_str) == Some("1"),
                    "503 must carry Retry-After: 1",
                )?;
                saw_503 = true;
            }
            200 => {}
            other => return Err(format!("burst reply was {other}, want 200 or 503")),
        }
    }
    expect(saw_503, "burst against a saturated server must see a 503")?;
    let pinned = pin.join().map_err(|_| "slow request thread panicked")??;
    expect(pinned.status == 200, "pinned /slow request must finish")?;
    expect(
        http_get(addr, "/healthz")?.status == 200,
        "server must recover after overload",
    )?;
    server.shutdown();
    Ok(())
}
