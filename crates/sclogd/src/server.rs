//! The serving loop: accept thread, worker pool, routing.
//!
//! Architecture in one paragraph: a dedicated accept thread owns the
//! listener and `try_send`s each accepted connection into the bounded
//! channel from the streaming pipeline (PR 3). Workers block on
//! `recv`, parse one request per connection, answer, and close. When
//! the ring is full the accept thread — not a worker — writes the
//! 503 + `Retry-After` itself, so overload turns into a cheap,
//! immediate refusal instead of an unbounded backlog. Shutdown is a
//! flag plus a self-connect to unblock `accept`; dropping the sender
//! then ends every worker's `recv` loop.
//!
//! Since PR 10 every request is also traced: a monotonic trace id, a
//! per-endpoint log2 latency histogram, and a [`SlowLog`] entry with
//! the scan's by-value [`ScanStats`], served at `/obs/queries`; a
//! background [`Sampler`] feeds the `/obs/timeline` history ring, and
//! `/obs/health` summarizes uptime, versions and queue pressure.

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use sclog_sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use sclog_sync::thread::JoinHandle;
use sclog_sync::{Arc, Mutex, PoisonError};

use sclog_core::pipeline::channel::{bounded, TrySendError};
use sclog_obs::{Counter, Histogram, History, Recorder, Stage, ThreadRecorder};
use sclog_types::json::JsonObject;
use sclog_types::segment::SEGMENT_FORMAT_VERSION;
use sclog_types::{QueryTrace, ScanStats, TRACE_FORMAT_VERSION, TRACE_SCHEMA};

use crate::aggregate::AggregateCache;
use crate::http::{read_request, Request, Response};
use crate::query::Query;
use crate::sampler::Sampler;
use crate::store::AlertStore;
use crate::trace::{normalize_query, SlowLog};
use crate::{format, query};

/// How long a worker waits for a slow client before giving up on the
/// connection. Bounds the damage of a peer that connects and stalls.
pub const READ_TIMEOUT: Duration = Duration::from_secs(5);
/// The `Retry-After` value sent with overload 503s.
pub const RETRY_AFTER_SECS: u32 = 1;
/// Upper bound on `/slow?ms=` so the test aid cannot wedge a worker.
pub const MAX_SLOW_MS: u64 = 5_000;
/// Retained slow-query log entries.
const SLOW_LOG_CAP: usize = 128;
/// Retained history-ring snapshots (at `sample_every` apart).
const HISTORY_CAP: usize = 64;
/// `/obs/queries` entries when the request names no `n=`.
const DEFAULT_TOP_N: usize = 10;

/// The route set with per-endpoint latency histograms; anything not
/// listed (404s, malformed requests) lands in the trailing `other`.
const ENDPOINTS: [&str; 13] = [
    "/healthz",
    "/alerts",
    "/categories",
    "/interarrival",
    "/hotspots",
    "/stats",
    "/obs",
    "/obs/queries",
    "/obs/timeline",
    "/obs/health",
    "/slow",
    "/shutdown",
    "other",
];

/// Index into [`ENDPOINTS`] (and the latency histogram array) for a
/// request path.
fn endpoint_index(path: &str) -> usize {
    ENDPOINTS[..ENDPOINTS.len() - 1]
        .iter()
        .position(|e| *e == path)
        .unwrap_or(ENDPOINTS.len() - 1)
}

/// Metric handles, registered before any worker thread exists (the
/// recorder's registry seals at the first `thread()` call).
#[derive(Debug, Clone, Copy)]
struct Metrics {
    requests: Counter,
    ok: Counter,
    client_errors: Counter,
    server_errors: Counter,
    overload: Counter,
    /// Accept-thread admission refusals (one per overload 503) —
    /// `server.rejects` in `/obs` and `rejects` in `/obs/health`.
    rejects: Counter,
    /// Snapshots the background sampler has taken.
    trace_samples: Counter,
    /// Request latency in µs, log2-bucketed, one per [`ENDPOINTS`].
    latency: [Histogram; ENDPOINTS.len()],
    serve: Stage,
}

/// Everything the handlers share: the store, the aggregate cache, the
/// recorder, and the shutdown latch.
#[derive(Debug)]
pub struct ServerState {
    /// The alert store queries run against.
    pub store: AlertStore,
    /// Version-keyed aggregate cache.
    pub cache: AggregateCache,
    /// The server's own recorder (serving metrics, not ingest).
    pub recorder: Recorder,
    metrics: Metrics,
    shutdown: AtomicBool,
    addr: Mutex<Option<SocketAddr>>,
    /// Monotonic request-id source; the next id to hand out.
    trace_ids: AtomicU64,
    slow_log: SlowLog,
    history: Mutex<History>,
    /// Configured worker count / accept-queue depth, published by
    /// `Server::start` so `/obs/health` can report them.
    workers: AtomicUsize,
    accept_queue: AtomicUsize,
}

impl ServerState {
    /// Builds state around a populated (or empty) store. Registers
    /// every serving metric — and the store's own counters and
    /// stages — immediately, before the registry seals.
    pub fn new(store: AlertStore, recorder: Recorder) -> Self {
        store.register_metrics(&recorder);
        let metrics = Metrics {
            requests: recorder.counter("http_requests"),
            ok: recorder.counter("http_2xx"),
            client_errors: recorder.counter("http_4xx"),
            server_errors: recorder.counter("http_5xx"),
            overload: recorder.counter("http_503_overload"),
            rejects: recorder.counter("server.rejects"),
            trace_samples: recorder.counter("trace.samples"),
            latency: std::array::from_fn(|i| {
                recorder.histogram(&format!("http.us:{}", ENDPOINTS[i]))
            }),
            serve: recorder.stage("serve"),
        };
        ServerState {
            store,
            cache: AggregateCache::new(),
            recorder,
            metrics,
            shutdown: AtomicBool::new(false),
            addr: Mutex::new(None),
            trace_ids: AtomicU64::new(1),
            slow_log: SlowLog::new(SLOW_LOG_CAP),
            history: Mutex::new(History::new(HISTORY_CAP)),
            workers: AtomicUsize::new(0),
            accept_queue: AtomicUsize::new(0),
        }
    }

    /// Whether shutdown has been requested.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The next request's trace id (monotonic, starts at 1).
    fn next_trace_id(&self) -> u64 {
        self.trace_ids.fetch_add(1, Ordering::Relaxed)
    }

    /// Takes one timeline sample: counts it, snapshots the recorder,
    /// records it in the history ring. Called by the sampler thread.
    pub(crate) fn take_sample(&self, rec: &ThreadRecorder) {
        rec.add(self.metrics.trace_samples, 1);
        let snapshot = self.recorder.snapshot();
        self.history
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .record(snapshot);
    }

    /// Snapshots currently retained in the history ring.
    pub(crate) fn timeline_len(&self) -> usize {
        self.history
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Requests shutdown and pokes the accept loop awake.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let addr = *self
            .addr
            .lock()
            .unwrap_or_else(sclog_sync::PoisonError::into_inner);
        if let Some(addr) = addr {
            // Self-connect so the accept thread returns from accept()
            // and observes the flag; errors mean it is already gone.
            let _ = TcpStream::connect(addr);
        }
    }
}

/// Turns an aggregation/scan outcome into a response plus the scan's
/// statistics: the rendered body on success, a 500 when the store
/// could not be read.
fn json_or_500(
    result: Result<(String, Option<ScanStats>), String>,
) -> (Response, Option<ScanStats>) {
    match result {
        Ok((body, scan)) => (Response::json(200, body), scan),
        Err(e) => (
            Response::text(500, &format!("store read failed: {e}")),
            None,
        ),
    }
}

/// Routes one parsed request to a response, discarding the trace
/// metadata — the shape the unit tests and the fuzz harness call
/// directly, no socket required.
pub fn handle(state: &ServerState, rec: &ThreadRecorder, req: &Request) -> Response {
    handle_traced(state, rec, req).0
}

/// Routes one parsed request to a response plus, when the request ran
/// a store scan, that scan's by-value [`ScanStats`] for the request's
/// slow-query-log entry. Pure store-in, response-out. `rec` credits
/// store scan work (pruned/scanned/bytes) to the calling worker's
/// recorder.
pub fn handle_traced(
    state: &ServerState,
    rec: &ThreadRecorder,
    req: &Request,
) -> (Response, Option<ScanStats>) {
    if req.method != "GET" {
        return (Response::text(405, "only GET is supported"), None);
    }
    match req.path.as_str() {
        "/healthz" => {
            let inner = state.store.read();
            let mut obj = JsonObject::new();
            obj.str("status", "ok")
                .uint("version", inner.version)
                .uint("alerts", inner.alert_count())
                .uint("systems", inner.systems.len() as u64);
            (Response::json(200, obj.finish()), None)
        }
        "/alerts" => match Query::parse(&req.query) {
            Ok(q) => json_or_500(
                format::render_alerts(&state.store.read(), &q, rec)
                    .map(|(body, stats)| (body, Some(stats))),
            ),
            Err(e) => (Response::text(400, &e.to_string()), None),
        },
        "/categories" => match Query::parse(&req.query) {
            Ok(_) => json_or_500(state.cache.categories(&state.store, rec)),
            Err(e) => (Response::text(400, &e.to_string()), None),
        },
        "/interarrival" => match Query::parse(&req.query) {
            Ok(_) => json_or_500(state.cache.interarrival(&state.store, rec)),
            Err(e) => (Response::text(400, &e.to_string()), None),
        },
        "/hotspots" => match Query::parse(&req.query) {
            Ok(q) => json_or_500(state.cache.hotspots(&state.store, rec, q.k)),
            Err(e) => (Response::text(400, &e.to_string()), None),
        },
        "/stats" => (Response::json(200, render_stats(state)), None),
        "/obs" => (render_obs(state, &req.query), None),
        "/obs/queries" => match parse_top_n(&req.query) {
            Ok(n) => (Response::json(200, state.slow_log.render_top(n)), None),
            Err(e) => (Response::text(400, &e), None),
        },
        "/obs/timeline" => {
            let timeline = state
                .history
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .timeline();
            (Response::json(200, timeline.to_json()), None)
        }
        "/obs/health" => (Response::json(200, render_health(state)), None),
        "/slow" => match parse_slow_ms(&req.query) {
            Ok(ms) => {
                std::thread::sleep(Duration::from_millis(ms));
                (Response::json(200, format!("{{\"slept_ms\":{ms}}}")), None)
            }
            Err(e) => (Response::text(400, &e), None),
        },
        "/shutdown" => {
            state.request_shutdown();
            (
                Response::json(200, "{\"status\":\"shutting down\"}".to_owned()),
                None,
            )
        }
        _ => (Response::text(404, "no such endpoint"), None),
    }
}

fn render_stats(state: &ServerState) -> String {
    let inner = state.store.read();
    let mut rows = sclog_types::json::JsonArray::new();
    for sys in &inner.systems {
        let mut obj = JsonObject::new();
        obj.str("system", &sys.system.to_string())
            .uint("parsed", sys.parse.parsed)
            .uint("rejected", sys.parse.rejected())
            .uint("tagged", sys.tagged)
            .uint("filtered", sys.filtered);
        rows.push_raw(&obj.finish());
    }
    let mut body = JsonObject::new();
    body.uint("alerts", inner.alert_count())
        .uint("hosts", inner.hosts().len() as u64)
        .raw("systems", &rows.finish());
    body.finish()
}

fn render_obs(state: &ServerState, query_string: &str) -> Response {
    match query_string {
        "" => Response::json(200, state.recorder.snapshot().report().to_json()),
        "source=ingest" => {
            let inner = state.store.read();
            let mut rows = sclog_types::json::JsonArray::new();
            for sys in &inner.systems {
                if let Some(json) = &sys.obs_json {
                    rows.push_raw(json);
                }
            }
            let mut body = JsonObject::new();
            body.raw("ingest", &rows.finish());
            Response::json(200, body.finish())
        }
        _ => Response::text(400, "only ?source=ingest is understood here"),
    }
}

/// The `/obs/health` body: liveness, schema/format versions, the
/// configured serving shape, and the pressure counters an operator
/// checks first (rejects, overload 503s, sampler progress).
fn render_health(state: &ServerState) -> String {
    let snapshot = state.recorder.snapshot();
    let report = snapshot.as_report();
    let mut obj = JsonObject::new();
    obj.str("status", "ok")
        .uint("uptime_ns", report.wall_ns)
        .uint("segment_format", SEGMENT_FORMAT_VERSION as u64)
        .uint("trace_format", TRACE_FORMAT_VERSION as u64)
        .str("obs_schema", "sclog.obs.v1")
        .str("trace_schema", TRACE_SCHEMA)
        .uint("workers", state.workers.load(Ordering::Relaxed) as u64)
        .uint(
            "accept_queue",
            state.accept_queue.load(Ordering::Relaxed) as u64,
        )
        .uint("requests", snapshot.counter("http_requests").unwrap_or(0))
        .uint("rejects", snapshot.counter("server.rejects").unwrap_or(0))
        .uint(
            "overload_503",
            snapshot.counter("http_503_overload").unwrap_or(0),
        )
        .uint("samples", snapshot.counter("trace.samples").unwrap_or(0))
        .uint("slow_log", state.slow_log.len() as u64)
        .uint("timeline", state.timeline_len() as u64);
    obj.finish()
}

/// Parses `/obs/queries`' only parameter: `n=<count>`, defaulting to
/// [`DEFAULT_TOP_N`] on an empty query.
fn parse_top_n(query_string: &str) -> Result<usize, String> {
    if query_string.is_empty() {
        return Ok(DEFAULT_TOP_N);
    }
    let Some(value) = query_string.strip_prefix("n=") else {
        return Err("expected n=<count>".to_owned());
    };
    let n: usize = value
        .parse()
        .map_err(|_| format!("n must be a number, got {value:?}"))?;
    if n == 0 {
        return Err("n must be positive".to_owned());
    }
    Ok(n)
}

fn parse_slow_ms(query_string: &str) -> Result<u64, String> {
    let Some(value) = query_string.strip_prefix("ms=") else {
        return Err("expected ms=<milliseconds>".to_owned());
    };
    let ms: u64 = query::percent_decode(value)
        .map_err(|e| e.to_string())?
        .parse()
        .map_err(|_| format!("ms must be a number, got {value:?}"))?;
    if ms > MAX_SLOW_MS {
        return Err(format!("ms capped at {MAX_SLOW_MS}"));
    }
    Ok(ms)
}

/// Serving configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads answering requests.
    pub workers: usize,
    /// Bounded accept-queue depth; connections beyond it get 503.
    pub accept_queue: usize,
    /// Period between background timeline samples.
    pub sample_every: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            accept_queue: 8,
            sample_every: Duration::from_millis(250),
        }
    }
}

/// A running server; dropping it without [`Server::shutdown`] detaches
/// the threads (they keep serving until the process exits).
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    threads: Vec<JoinHandle<()>>,
    sampler: Option<Sampler>,
}

impl Server {
    /// Binds, spawns the accept thread and workers, and returns.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `accept_queue` is zero.
    pub fn start(state: Arc<ServerState>, config: &ServerConfig) -> io::Result<Server> {
        assert!(config.workers > 0, "need at least one worker");
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        *state
            .addr
            .lock()
            .unwrap_or_else(sclog_sync::PoisonError::into_inner) = Some(addr);
        state.workers.store(config.workers, Ordering::Relaxed);
        state
            .accept_queue
            .store(config.accept_queue, Ordering::Relaxed);

        let (conn_tx, conn_rx) = bounded::<TcpStream>(config.accept_queue);
        let conn_rx = Arc::new(conn_rx);
        let mut threads = Vec::with_capacity(config.workers + 1);

        for i in 0..config.workers {
            let state = Arc::clone(&state);
            let rx = Arc::clone(&conn_rx);
            let label = format!("http/{i}");
            threads.push(sclog_sync::thread::spawn(move || {
                let thread_rec = state.recorder.thread(&label);
                while let Some(stream) = rx.recv() {
                    serve_connection(&state, &thread_rec, stream);
                }
            }));
        }

        {
            let state = Arc::clone(&state);
            threads.push(sclog_sync::thread::spawn(move || {
                let thread_rec = state.recorder.thread("accept");
                accept_loop(&state, &thread_rec, &listener, conn_tx);
            }));
        }

        let sampler = Sampler::start(&state, config.sample_every);

        Ok(Server {
            addr,
            state,
            threads,
            sampler: Some(sampler),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared handle to the server state.
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Stops accepting, drains queued connections, joins every thread
    /// (including the timeline sampler).
    pub fn shutdown(mut self) {
        self.state.request_shutdown();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        if let Some(sampler) = self.sampler.take() {
            sampler.stop();
        }
    }
}

fn accept_loop(
    state: &ServerState,
    rec: &ThreadRecorder,
    listener: &TcpListener,
    conn_tx: sclog_core::pipeline::channel::Sender<TcpStream>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if state.shutting_down() {
                    return;
                }
                continue;
            }
        };
        if state.shutting_down() {
            return;
        }
        match conn_tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(stream)) => {
                // Admission control: refuse on the accept thread so the
                // saturation signal never queues behind the saturation.
                rec.add(state.metrics.overload, 1);
                rec.add(state.metrics.rejects, 1);
                refuse_overloaded(stream);
            }
            Err(TrySendError::Disconnected(_)) => return,
        }
    }
}

fn refuse_overloaded(stream: TcpStream) {
    let mut stream = stream;
    let _ = stream.set_write_timeout(Some(READ_TIMEOUT));
    let _ = Response::overloaded(RETRY_AFTER_SECS).write_to(&mut stream);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn serve_connection(state: &ServerState, rec: &ThreadRecorder, stream: TcpStream) {
    let _span = rec.span(state.metrics.serve);
    rec.add(state.metrics.requests, 1);
    let trace_id = state.next_trace_id();
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_write_timeout(Some(READ_TIMEOUT));
    let mut reader = BufReader::new(stream);
    let (response, parsed, scan) = match read_request(&mut reader) {
        Ok(req) => {
            let (resp, scan) = handle_traced(state, rec, &req);
            (resp, Some(req), scan)
        }
        Err(e) => match e.response() {
            Some(resp) => (resp, None, None),
            None => return, // peer vanished; nothing to write
        },
    };
    match response.status {
        200..=299 => rec.add(state.metrics.ok, 1),
        400..=499 => rec.add(state.metrics.client_errors, 1),
        _ => rec.add(state.metrics.server_errors, 1),
    }
    let mut stream = reader.into_inner();
    let _ = response.write_to(&mut stream);
    let _ = stream.flush();

    // Trace after the reply is on the wire: latency covers the whole
    // request (handling + write), and the slow-log lock never sits on
    // a client's critical path.
    let micros = started.elapsed().as_micros() as u64;
    let endpoint = parsed
        .as_ref()
        .map_or(ENDPOINTS.len() - 1, |r| endpoint_index(&r.path));
    rec.observe(state.metrics.latency[endpoint], micros);
    state.slow_log.push(QueryTrace {
        trace_id,
        endpoint: ENDPOINTS[endpoint].to_owned(),
        query: parsed
            .as_ref()
            .map_or_else(String::new, |r| normalize_query(&r.query)),
        micros,
        status: response.status,
        scan,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_state() -> ServerState {
        ServerState::new(AlertStore::new(), Recorder::new())
    }

    fn test_rec(state: &ServerState) -> ThreadRecorder {
        state.recorder.thread("test")
    }

    fn get(path: &str, query: &str) -> Request {
        Request {
            method: "GET".to_owned(),
            path: path.to_owned(),
            query: query.to_owned(),
        }
    }

    #[test]
    fn routes_resolve_without_sockets() {
        let state = empty_state();
        let rec = test_rec(&state);
        assert_eq!(handle(&state, &rec, &get("/healthz", "")).status, 200);
        assert_eq!(handle(&state, &rec, &get("/alerts", "")).status, 200);
        assert_eq!(handle(&state, &rec, &get("/categories", "")).status, 200);
        assert_eq!(handle(&state, &rec, &get("/interarrival", "")).status, 200);
        assert_eq!(handle(&state, &rec, &get("/hotspots", "k=3")).status, 200);
        assert_eq!(handle(&state, &rec, &get("/stats", "")).status, 200);
        assert_eq!(handle(&state, &rec, &get("/obs", "")).status, 200);
        assert_eq!(
            handle(&state, &rec, &get("/obs", "source=ingest")).status,
            200
        );
        assert_eq!(handle(&state, &rec, &get("/obs/queries", "")).status, 200);
        assert_eq!(
            handle(&state, &rec, &get("/obs/queries", "n=3")).status,
            200
        );
        assert_eq!(handle(&state, &rec, &get("/obs/timeline", "")).status, 200);
        assert_eq!(handle(&state, &rec, &get("/obs/health", "")).status, 200);
        assert_eq!(handle(&state, &rec, &get("/nope", "")).status, 404);
        assert_eq!(handle(&state, &rec, &get("/alerts", "limit=0")).status, 400);
        assert_eq!(handle(&state, &rec, &get("/obs", "source=x")).status, 400);
        assert_eq!(
            handle(&state, &rec, &get("/obs/queries", "n=0")).status,
            400
        );
        assert_eq!(
            handle(&state, &rec, &get("/obs/queries", "n=abc")).status,
            400
        );
        assert_eq!(
            handle(&state, &rec, &get("/obs/queries", "k=3")).status,
            400,
            "the top-k parameter is n, not k"
        );
        assert_eq!(handle(&state, &rec, &get("/slow", "ms=abc")).status, 400);
        assert_eq!(handle(&state, &rec, &get("/slow", "ms=999999")).status, 400);
        assert_eq!(handle(&state, &rec, &get("/slow", "ms=0")).status, 200);
        let mut post = get("/alerts", "");
        post.method = "POST".to_owned();
        assert_eq!(handle(&state, &rec, &post).status, 405);
    }

    #[test]
    fn shutdown_endpoint_sets_the_latch() {
        let state = empty_state();
        let rec = test_rec(&state);
        assert!(!state.shutting_down());
        assert_eq!(handle(&state, &rec, &get("/shutdown", "")).status, 200);
        assert!(state.shutting_down());
    }

    #[test]
    fn bodies_are_valid_json() {
        use sclog_types::json::validate;
        let state = empty_state();
        let rec = test_rec(&state);
        for (path, query) in [
            ("/healthz", ""),
            ("/alerts", ""),
            ("/categories", ""),
            ("/interarrival", ""),
            ("/hotspots", ""),
            ("/stats", ""),
            ("/obs", ""),
            ("/obs", "source=ingest"),
            ("/obs/queries", ""),
            ("/obs/timeline", ""),
            ("/obs/health", ""),
        ] {
            let resp = handle(&state, &rec, &get(path, query));
            validate(&resp.body).unwrap_or_else(|e| panic!("{path}?{query}: {e}"));
        }
    }

    #[test]
    fn traced_handling_reports_scan_stats_for_alerts_only() {
        let state = empty_state();
        let rec = test_rec(&state);
        let (resp, scan) = handle_traced(&state, &rec, &get("/alerts", ""));
        assert_eq!(resp.status, 200);
        assert!(scan.is_some(), "/alerts must surface its scan stats");
        let (resp, scan) = handle_traced(&state, &rec, &get("/healthz", ""));
        assert_eq!(resp.status, 200);
        assert!(scan.is_none(), "/healthz runs no store scan");
        // First aggregate request pays the scan; a repeat is a cache hit.
        let (_, first) = handle_traced(&state, &rec, &get("/categories", ""));
        assert!(first.is_some(), "aggregate recompute must report a scan");
        let (_, second) = handle_traced(&state, &rec, &get("/categories", ""));
        assert!(second.is_none(), "aggregate cache hit must not");
    }

    #[test]
    fn trace_ids_are_monotonic_and_health_reflects_config() {
        let state = empty_state();
        let a = state.next_trace_id();
        let b = state.next_trace_id();
        assert!(b > a, "trace ids must be monotonic");
        let body = render_health(&state);
        sclog_types::json::validate(&body).expect("health body is JSON");
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(
            body.contains("\"trace_schema\":\"sclog.trace.v1\""),
            "{body}"
        );
        assert!(body.contains("\"rejects\":0"), "{body}");
    }

    #[test]
    fn end_to_end_over_a_real_socket() {
        use std::io::{Read as _, Write as _};
        let server = Server::start(
            Arc::new(empty_state()),
            &ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .expect("bind ephemeral port");
        let addr = server.addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        assert!(body.starts_with("HTTP/1.1 200 OK"), "{body}");
        assert!(body.contains("\"status\":\"ok\""), "{body}");

        // A malformed request must 400, and the server must survive it.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"BOGUS\r\n\r\n").unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        assert!(body.starts_with("HTTP/1.1 200 OK"), "server died after 400");

        server.shutdown();
    }
}
