//! The serving loop: accept thread, worker pool, routing.
//!
//! Architecture in one paragraph: a dedicated accept thread owns the
//! listener and `try_send`s each accepted connection into the bounded
//! channel from the streaming pipeline (PR 3). Workers block on
//! `recv`, parse one request per connection, answer, and close. When
//! the ring is full the accept thread — not a worker — writes the
//! 503 + `Retry-After` itself, so overload turns into a cheap,
//! immediate refusal instead of an unbounded backlog. Shutdown is a
//! flag plus a self-connect to unblock `accept`; dropping the sender
//! then ends every worker's `recv` loop.

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use sclog_sync::atomic::{AtomicBool, Ordering};
use sclog_sync::thread::JoinHandle;
use sclog_sync::{Arc, Mutex};

use sclog_core::pipeline::channel::{bounded, TrySendError};
use sclog_obs::{Counter, Recorder, Stage, ThreadRecorder};
use sclog_types::json::JsonObject;

use crate::aggregate::AggregateCache;
use crate::http::{read_request, Request, Response};
use crate::query::Query;
use crate::store::AlertStore;
use crate::{format, query};

/// How long a worker waits for a slow client before giving up on the
/// connection. Bounds the damage of a peer that connects and stalls.
pub const READ_TIMEOUT: Duration = Duration::from_secs(5);
/// The `Retry-After` value sent with overload 503s.
pub const RETRY_AFTER_SECS: u32 = 1;
/// Upper bound on `/slow?ms=` so the test aid cannot wedge a worker.
pub const MAX_SLOW_MS: u64 = 5_000;

/// Metric handles, registered before any worker thread exists (the
/// recorder's registry seals at the first `thread()` call).
#[derive(Debug, Clone, Copy)]
struct Metrics {
    requests: Counter,
    ok: Counter,
    client_errors: Counter,
    server_errors: Counter,
    overload: Counter,
    serve: Stage,
}

/// Everything the handlers share: the store, the aggregate cache, the
/// recorder, and the shutdown latch.
#[derive(Debug)]
pub struct ServerState {
    /// The alert store queries run against.
    pub store: AlertStore,
    /// Version-keyed aggregate cache.
    pub cache: AggregateCache,
    /// The server's own recorder (serving metrics, not ingest).
    pub recorder: Recorder,
    metrics: Metrics,
    shutdown: AtomicBool,
    addr: Mutex<Option<SocketAddr>>,
}

impl ServerState {
    /// Builds state around a populated (or empty) store. Registers
    /// every serving metric — and the store's own counters and
    /// stages — immediately, before the registry seals.
    pub fn new(store: AlertStore, recorder: Recorder) -> Self {
        store.register_metrics(&recorder);
        let metrics = Metrics {
            requests: recorder.counter("http_requests"),
            ok: recorder.counter("http_2xx"),
            client_errors: recorder.counter("http_4xx"),
            server_errors: recorder.counter("http_5xx"),
            overload: recorder.counter("http_503_overload"),
            serve: recorder.stage("serve"),
        };
        ServerState {
            store,
            cache: AggregateCache::new(),
            recorder,
            metrics,
            shutdown: AtomicBool::new(false),
            addr: Mutex::new(None),
        }
    }

    /// Whether shutdown has been requested.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown and pokes the accept loop awake.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let addr = *self
            .addr
            .lock()
            .unwrap_or_else(sclog_sync::PoisonError::into_inner);
        if let Some(addr) = addr {
            // Self-connect so the accept thread returns from accept()
            // and observes the flag; errors mean it is already gone.
            let _ = TcpStream::connect(addr);
        }
    }
}

/// Turns an aggregation/scan outcome into a response: the rendered
/// body on success, a 500 when the store could not be read.
fn json_or_500(result: Result<String, String>) -> Response {
    match result {
        Ok(body) => Response::json(200, body),
        Err(e) => Response::text(500, &format!("store read failed: {e}")),
    }
}

/// Routes one parsed request to a response. Pure store-in,
/// response-out — the unit tests and the fuzz harness call this
/// directly, no socket required. `rec` credits store scan work
/// (pruned/scanned/bytes) to the calling worker's recorder.
pub fn handle(state: &ServerState, rec: &ThreadRecorder, req: &Request) -> Response {
    if req.method != "GET" {
        return Response::text(405, "only GET is supported");
    }
    match req.path.as_str() {
        "/healthz" => {
            let inner = state.store.read();
            let mut obj = JsonObject::new();
            obj.str("status", "ok")
                .uint("version", inner.version)
                .uint("alerts", inner.alert_count())
                .uint("systems", inner.systems.len() as u64);
            Response::json(200, obj.finish())
        }
        "/alerts" => match Query::parse(&req.query) {
            Ok(q) => json_or_500(format::render_alerts(&state.store.read(), &q, rec)),
            Err(e) => Response::text(400, &e.to_string()),
        },
        "/categories" => match Query::parse(&req.query) {
            Ok(_) => json_or_500(state.cache.categories(&state.store, rec)),
            Err(e) => Response::text(400, &e.to_string()),
        },
        "/interarrival" => match Query::parse(&req.query) {
            Ok(_) => json_or_500(state.cache.interarrival(&state.store, rec)),
            Err(e) => Response::text(400, &e.to_string()),
        },
        "/hotspots" => match Query::parse(&req.query) {
            Ok(q) => json_or_500(state.cache.hotspots(&state.store, rec, q.k)),
            Err(e) => Response::text(400, &e.to_string()),
        },
        "/stats" => Response::json(200, render_stats(state)),
        "/obs" => render_obs(state, &req.query),
        "/slow" => match parse_slow_ms(&req.query) {
            Ok(ms) => {
                std::thread::sleep(Duration::from_millis(ms));
                Response::json(200, format!("{{\"slept_ms\":{ms}}}"))
            }
            Err(e) => Response::text(400, &e),
        },
        "/shutdown" => {
            state.request_shutdown();
            Response::json(200, "{\"status\":\"shutting down\"}".to_owned())
        }
        _ => Response::text(404, "no such endpoint"),
    }
}

fn render_stats(state: &ServerState) -> String {
    let inner = state.store.read();
    let mut rows = sclog_types::json::JsonArray::new();
    for sys in &inner.systems {
        let mut obj = JsonObject::new();
        obj.str("system", &sys.system.to_string())
            .uint("parsed", sys.parse.parsed)
            .uint("rejected", sys.parse.rejected())
            .uint("tagged", sys.tagged)
            .uint("filtered", sys.filtered);
        rows.push_raw(&obj.finish());
    }
    let mut body = JsonObject::new();
    body.uint("alerts", inner.alert_count())
        .uint("hosts", inner.hosts().len() as u64)
        .raw("systems", &rows.finish());
    body.finish()
}

fn render_obs(state: &ServerState, query_string: &str) -> Response {
    match query_string {
        "" => Response::json(200, state.recorder.snapshot().report().to_json()),
        "source=ingest" => {
            let inner = state.store.read();
            let mut rows = sclog_types::json::JsonArray::new();
            for sys in &inner.systems {
                if let Some(json) = &sys.obs_json {
                    rows.push_raw(json);
                }
            }
            let mut body = JsonObject::new();
            body.raw("ingest", &rows.finish());
            Response::json(200, body.finish())
        }
        _ => Response::text(400, "only ?source=ingest is understood here"),
    }
}

fn parse_slow_ms(query_string: &str) -> Result<u64, String> {
    let Some(value) = query_string.strip_prefix("ms=") else {
        return Err("expected ms=<milliseconds>".to_owned());
    };
    let ms: u64 = query::percent_decode(value)
        .map_err(|e| e.to_string())?
        .parse()
        .map_err(|_| format!("ms must be a number, got {value:?}"))?;
    if ms > MAX_SLOW_MS {
        return Err(format!("ms capped at {MAX_SLOW_MS}"));
    }
    Ok(ms)
}

/// Serving configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads answering requests.
    pub workers: usize,
    /// Bounded accept-queue depth; connections beyond it get 503.
    pub accept_queue: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            accept_queue: 8,
        }
    }
}

/// A running server; dropping it without [`Server::shutdown`] detaches
/// the threads (they keep serving until the process exits).
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept thread and workers, and returns.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `accept_queue` is zero.
    pub fn start(state: Arc<ServerState>, config: &ServerConfig) -> io::Result<Server> {
        assert!(config.workers > 0, "need at least one worker");
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        *state
            .addr
            .lock()
            .unwrap_or_else(sclog_sync::PoisonError::into_inner) = Some(addr);

        let (conn_tx, conn_rx) = bounded::<TcpStream>(config.accept_queue);
        let conn_rx = Arc::new(conn_rx);
        let mut threads = Vec::with_capacity(config.workers + 1);

        for i in 0..config.workers {
            let state = Arc::clone(&state);
            let rx = Arc::clone(&conn_rx);
            let label = format!("http/{i}");
            threads.push(sclog_sync::thread::spawn(move || {
                let thread_rec = state.recorder.thread(&label);
                while let Some(stream) = rx.recv() {
                    serve_connection(&state, &thread_rec, stream);
                }
            }));
        }

        {
            let state = Arc::clone(&state);
            threads.push(sclog_sync::thread::spawn(move || {
                let thread_rec = state.recorder.thread("accept");
                accept_loop(&state, &thread_rec, &listener, conn_tx);
            }));
        }

        Ok(Server {
            addr,
            state,
            threads,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared handle to the server state.
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Stops accepting, drains queued connections, joins every thread.
    pub fn shutdown(mut self) {
        self.state.request_shutdown();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

fn accept_loop(
    state: &ServerState,
    rec: &ThreadRecorder,
    listener: &TcpListener,
    conn_tx: sclog_core::pipeline::channel::Sender<TcpStream>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if state.shutting_down() {
                    return;
                }
                continue;
            }
        };
        if state.shutting_down() {
            return;
        }
        match conn_tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(stream)) => {
                // Admission control: refuse on the accept thread so the
                // saturation signal never queues behind the saturation.
                rec.add(state.metrics.overload, 1);
                refuse_overloaded(stream);
            }
            Err(TrySendError::Disconnected(_)) => return,
        }
    }
}

fn refuse_overloaded(stream: TcpStream) {
    let mut stream = stream;
    let _ = stream.set_write_timeout(Some(READ_TIMEOUT));
    let _ = Response::overloaded(RETRY_AFTER_SECS).write_to(&mut stream);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn serve_connection(state: &ServerState, rec: &ThreadRecorder, stream: TcpStream) {
    let _span = rec.span(state.metrics.serve);
    rec.add(state.metrics.requests, 1);
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_write_timeout(Some(READ_TIMEOUT));
    let mut reader = BufReader::new(stream);
    let response = match read_request(&mut reader) {
        Ok(req) => handle(state, rec, &req),
        Err(e) => match e.response() {
            Some(resp) => resp,
            None => return, // peer vanished; nothing to write
        },
    };
    match response.status {
        200..=299 => rec.add(state.metrics.ok, 1),
        400..=499 => rec.add(state.metrics.client_errors, 1),
        _ => rec.add(state.metrics.server_errors, 1),
    }
    let mut stream = reader.into_inner();
    let _ = response.write_to(&mut stream);
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_state() -> ServerState {
        ServerState::new(AlertStore::new(), Recorder::new())
    }

    fn test_rec(state: &ServerState) -> ThreadRecorder {
        state.recorder.thread("test")
    }

    fn get(path: &str, query: &str) -> Request {
        Request {
            method: "GET".to_owned(),
            path: path.to_owned(),
            query: query.to_owned(),
        }
    }

    #[test]
    fn routes_resolve_without_sockets() {
        let state = empty_state();
        let rec = test_rec(&state);
        assert_eq!(handle(&state, &rec, &get("/healthz", "")).status, 200);
        assert_eq!(handle(&state, &rec, &get("/alerts", "")).status, 200);
        assert_eq!(handle(&state, &rec, &get("/categories", "")).status, 200);
        assert_eq!(handle(&state, &rec, &get("/interarrival", "")).status, 200);
        assert_eq!(handle(&state, &rec, &get("/hotspots", "k=3")).status, 200);
        assert_eq!(handle(&state, &rec, &get("/stats", "")).status, 200);
        assert_eq!(handle(&state, &rec, &get("/obs", "")).status, 200);
        assert_eq!(
            handle(&state, &rec, &get("/obs", "source=ingest")).status,
            200
        );
        assert_eq!(handle(&state, &rec, &get("/nope", "")).status, 404);
        assert_eq!(handle(&state, &rec, &get("/alerts", "limit=0")).status, 400);
        assert_eq!(handle(&state, &rec, &get("/obs", "source=x")).status, 400);
        assert_eq!(handle(&state, &rec, &get("/slow", "ms=abc")).status, 400);
        assert_eq!(handle(&state, &rec, &get("/slow", "ms=999999")).status, 400);
        assert_eq!(handle(&state, &rec, &get("/slow", "ms=0")).status, 200);
        let mut post = get("/alerts", "");
        post.method = "POST".to_owned();
        assert_eq!(handle(&state, &rec, &post).status, 405);
    }

    #[test]
    fn shutdown_endpoint_sets_the_latch() {
        let state = empty_state();
        let rec = test_rec(&state);
        assert!(!state.shutting_down());
        assert_eq!(handle(&state, &rec, &get("/shutdown", "")).status, 200);
        assert!(state.shutting_down());
    }

    #[test]
    fn bodies_are_valid_json() {
        use sclog_types::json::validate;
        let state = empty_state();
        let rec = test_rec(&state);
        for (path, query) in [
            ("/healthz", ""),
            ("/alerts", ""),
            ("/categories", ""),
            ("/interarrival", ""),
            ("/hotspots", ""),
            ("/stats", ""),
            ("/obs", ""),
            ("/obs", "source=ingest"),
        ] {
            let resp = handle(&state, &rec, &get(path, query));
            validate(&resp.body).unwrap_or_else(|e| panic!("{path}?{query}: {e}"));
        }
    }

    #[test]
    fn end_to_end_over_a_real_socket() {
        use std::io::{Read as _, Write as _};
        let server = Server::start(
            Arc::new(empty_state()),
            &ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .expect("bind ephemeral port");
        let addr = server.addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        assert!(body.starts_with("HTTP/1.1 200 OK"), "{body}");
        assert!(body.contains("\"status\":\"ok\""), "{body}");

        // A malformed request must 400, and the server must survive it.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"BOGUS\r\n\r\n").unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        assert!(body.starts_with("HTTP/1.1 200 OK"), "server died after 400");

        server.shutdown();
    }
}
