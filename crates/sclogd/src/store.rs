//! The alert store behind the query server, backed by the on-disk
//! segment store (`sclog-store`).
//!
//! Each ingest run produces an [`IngestResult`] whose alerts speak the
//! run's private dialect: `NodeId`s from that reader's interner and
//! `CategoryId`s from whatever registry the ruleset was compiled
//! against. The store re-maps both into the segment store's durable
//! catalog on admission, so alerts from five different systems share
//! one namespace and a query can ask for `host=sn*` without caring
//! which run interned `sn373` first.
//!
//! Persistence model: admission goes through [`sclog_store`]'s WAL
//! and `(system, day)` partitions, so a daemon pointed at the same
//! directory boots from disk instead of re-running simulation and
//! ingest. Per-system ingest accounting (`/stats`) is persisted in a
//! small `stats.bin` sidecar next to the catalog; the per-run obs
//! reports are *not* persisted — after a cold boot,
//! `/obs?source=ingest` is empty because no ingest ran.
//!
//! Concurrency model: one `RwLock` around the whole store. Ingest
//! takes the write lock (rare: at startup and on explicit reload);
//! query workers take read locks (frequent, shared). A monotonically
//! increasing `version` lets the aggregation cache detect staleness
//! without holding any lock across the recompute.

use std::collections::HashSet;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{RwLock, RwLockReadGuard};

use sclog_core::IngestResult;
use sclog_obs::{Recorder, ThreadRecorder};
use sclog_parse::ParseStats;
pub use sclog_store::StoredAlert;
use sclog_store::{crc32, ScanFilter, ScanStats, SegmentStore, StoreConfig, StoreMetrics};
use sclog_types::segment::{system_code, system_from_code, SEGMENT_FORMAT_VERSION};
use sclog_types::{AlertType, CategoryRegistry, Severity, SourceInterner, SystemId};

/// Leading magic of the per-system stats sidecar.
const STATS_MAGIC: [u8; 8] = *b"SCLGSTA\0";
/// Stats sidecar file name under the store root.
const STATS_FILE: &str = "stats.bin";

/// Per-system ingest accounting, served by `/stats`.
#[derive(Debug, Clone)]
pub struct SystemStats {
    /// The ingested system.
    pub system: SystemId,
    /// Line accounting from the parser.
    pub parse: ParseStats,
    /// Alerts the rules tagged.
    pub tagged: u64,
    /// Alerts surviving the spatio-temporal filter.
    pub filtered: u64,
    /// The ingest run's obs report (`sclog.obs.v1` JSON), when the run
    /// recorded one. Not persisted: `None` after a cold boot.
    pub obs_json: Option<String>,
}

/// Store contents guarded by the lock. Exposed read-only to query
/// handlers via [`AlertStore::read`].
#[derive(Debug)]
pub struct StoreInner {
    /// The durable segment store holding every admitted alert.
    pub segs: SegmentStore,
    /// Obs handles scans and appends report through.
    pub metrics: StoreMetrics,
    /// Per-system ingest accounting, in admission order.
    pub systems: Vec<SystemStats>,
    /// Bumped on every mutation; caches key off it. A store opened
    /// with existing records starts at 1 so "never computed" (0)
    /// stays distinguishable.
    pub version: u64,
}

impl StoreInner {
    /// Node names for every [`StoredAlert::host`].
    pub fn hosts(&self) -> &SourceInterner {
        &self.segs.catalog().hosts
    }

    /// Definitions for every [`StoredAlert::category`].
    pub fn categories(&self) -> &CategoryRegistry {
        &self.segs.catalog().categories
    }

    /// Resolves a stored alert's host name.
    pub fn host_name(&self, alert: &StoredAlert) -> &str {
        self.hosts().name(alert.host)
    }

    /// Resolves a stored alert's category name.
    pub fn category_name(&self, alert: &StoredAlert) -> &str {
        &self.categories().def(alert.category).name
    }

    /// Resolves a stored alert's owning system.
    pub fn system_of(&self, alert: &StoredAlert) -> SystemId {
        self.categories().def(alert.category).system
    }

    /// Resolves a stored alert's hardware/software class.
    pub fn class_of(&self, alert: &StoredAlert) -> AlertType {
        self.categories().def(alert.category).alert_type
    }

    /// Total alerts at rest (sealed segments plus WAL tails).
    pub fn alert_count(&self) -> u64 {
        self.segs.record_count()
    }

    /// Runs a pruned scan, crediting pruned/scanned/bytes counters to
    /// the store's metrics through `rec` and returning this scan's
    /// by-value [`ScanStats`] alongside the hits. Results arrive
    /// sorted by `(time, seq)` — time order with admission-order ties.
    ///
    /// # Errors
    ///
    /// Any I/O failure or corruption reading a segment payload.
    pub fn scan(
        &self,
        filter: &ScanFilter,
        rec: &ThreadRecorder,
    ) -> io::Result<(Vec<StoredAlert>, ScanStats)> {
        self.segs.scan(filter, true, rec, &self.metrics)
    }
}

/// Thread-safe alert store: write-locked ingest, read-locked queries.
///
/// [`AlertStore::new`] builds a throwaway store in a process-unique
/// temp directory (removed on drop); [`AlertStore::open`] binds to a
/// persistent directory that survives the process.
#[derive(Debug)]
pub struct AlertStore {
    inner: RwLock<StoreInner>,
    /// The owned throwaway directory, removed on drop; `None` for
    /// persistent stores.
    ephemeral: Option<PathBuf>,
}

impl Default for AlertStore {
    fn default() -> Self {
        AlertStore::new()
    }
}

impl Drop for AlertStore {
    fn drop(&mut self) {
        if let Some(dir) = &self.ephemeral {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// Distinguishes ephemeral store directories within one process.
static EPHEMERAL_SEQ: AtomicU64 = AtomicU64::new(0);

impl AlertStore {
    /// An empty throwaway store in a fresh temp directory.
    ///
    /// # Panics
    ///
    /// Panics if the temp directory cannot be created — an ephemeral
    /// store has no caller-visible path to report I/O errors against.
    pub fn new() -> Self {
        let dir = std::env::temp_dir().join(format!(
            "sclogd-ephemeral-{}-{}",
            std::process::id(),
            EPHEMERAL_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store =
            AlertStore::open(&dir).expect("store: cannot create ephemeral store in temp dir");
        store.ephemeral = Some(dir);
        store
    }

    /// Opens (or creates) a persistent store rooted at `dir`,
    /// recovering WAL tails and reloading `/stats` accounting.
    ///
    /// # Errors
    ///
    /// I/O failures, or corruption in the store's durable files.
    pub fn open(dir: &Path) -> io::Result<AlertStore> {
        let segs = SegmentStore::open(dir, StoreConfig::default())?;
        let systems = load_stats(&dir.join(STATS_FILE))?;
        let version = u64::from(segs.record_count() > 0 || !systems.is_empty());
        Ok(AlertStore {
            inner: RwLock::new(StoreInner {
                segs,
                metrics: StoreMetrics::disabled(),
                systems,
                version,
            }),
            ephemeral: None,
        })
    }

    /// Registers the store's obs counters and stages on `recorder`.
    /// Must run before the recorder's first `thread()` call (the
    /// registry seals there); until then the store uses no-op handles.
    pub fn register_metrics(&self, recorder: &Recorder) {
        write_lock(&self.inner).metrics = StoreMetrics::register(recorder);
    }

    /// Admits one ingest run. See [`AlertStore::ingest_with`]; this
    /// wrapper records no obs and treats I/O failure as fatal.
    ///
    /// # Panics
    ///
    /// Panics on an I/O failure persisting the run, or if a run's
    /// category re-registers under a different alert type.
    pub fn ingest(
        &self,
        system: SystemId,
        result: &IngestResult,
        registry: &CategoryRegistry,
        severities: &[Severity],
    ) {
        self.ingest_with(
            system,
            result,
            registry,
            severities,
            &Recorder::disabled().thread("ingest"),
        )
        .expect("store: ingest I/O failure");
    }

    /// Admits one ingest run, durably.
    ///
    /// `registry` must be the registry the run's ruleset was compiled
    /// against (it resolves the run's `CategoryId`s). `severities`
    /// maps message index → severity; pass `&[]` when the source has
    /// no severity information — out-of-range indexes degrade to
    /// [`Severity::None`] rather than failing, since severity is
    /// advisory metadata, not part of the alert identity. WAL and
    /// seal work is credited to the store's metrics through `rec`.
    ///
    /// # Errors
    ///
    /// Any I/O failure appending to the store or persisting stats.
    ///
    /// # Panics
    ///
    /// Panics if a run's category re-registers under a different
    /// alert type — that means two rulesets disagree about a rule, a
    /// configuration bug worth failing loudly on.
    pub fn ingest_with(
        &self,
        system: SystemId,
        result: &IngestResult,
        registry: &CategoryRegistry,
        severities: &[Severity],
        rec: &ThreadRecorder,
    ) -> io::Result<()> {
        let survivors: HashSet<usize> = result.filtered.iter().map(|a| a.message_index).collect();
        let mut inner = write_lock(&self.inner);
        let inner = &mut *inner;
        let mut batch = Vec::with_capacity(result.tagged.alerts.len());
        for alert in &result.tagged.alerts {
            let def = registry.def(alert.category);
            let category = inner
                .segs
                .register_category(&def.name, def.system, def.alert_type);
            let host = inner.segs.intern_host(result.sources.name(alert.source));
            batch.push(StoredAlert {
                time: alert.time,
                host,
                category,
                severity: severities
                    .get(alert.message_index)
                    .copied()
                    .unwrap_or(Severity::None),
                message_index: alert.message_index,
                filtered: survivors.contains(&alert.message_index),
                seq: 0, // assigned by the store on append
            });
        }
        let metrics = inner.metrics;
        inner.segs.append(&batch, rec, &metrics)?;
        inner.systems.push(SystemStats {
            system,
            parse: result.parse,
            tagged: result.tagged.alerts.len() as u64,
            filtered: result.filtered.len() as u64,
            obs_json: result.obs.as_ref().map(|r| r.to_json()),
        });
        persist_stats(&inner.segs.root().join(STATS_FILE), &inner.systems)?;
        inner.version += 1;
        Ok(())
    }

    /// Seals every WAL tail into zone-mapped segments and compacts
    /// small adjacent segments — the end-of-ingest step that makes
    /// the next boot cold-scan-friendly.
    ///
    /// # Errors
    ///
    /// Any I/O failure sealing or compacting.
    pub fn finalize(&self, rec: &ThreadRecorder) -> io::Result<()> {
        let mut inner = write_lock(&self.inner);
        let inner = &mut *inner;
        let metrics = inner.metrics;
        inner.segs.seal_all(rec, &metrics)?;
        inner.segs.compact(rec, &metrics)?;
        Ok(())
    }

    /// A shared read view for query handlers.
    pub fn read(&self) -> RwLockReadGuard<'_, StoreInner> {
        self.inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The current mutation counter, for cache staleness checks.
    pub fn version(&self) -> u64 {
        self.read().version
    }
}

fn write_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

// ------------------------------------------------------- stats sidecar

/// Serializes `/stats` accounting: magic, schema version, then one
/// fixed-width row per system, CRC-checked. The obs JSON is
/// deliberately omitted — it describes a run, not the store.
fn persist_stats(path: &Path, systems: &[SystemStats]) -> io::Result<()> {
    let mut body = Vec::with_capacity(2 + 4 + systems.len() * 49);
    body.extend_from_slice(&SEGMENT_FORMAT_VERSION.to_le_bytes());
    body.extend_from_slice(&(systems.len() as u32).to_le_bytes());
    for sys in systems {
        body.push(system_code(sys.system));
        for word in [
            sys.parse.parsed,
            sys.parse.empty,
            sys.parse.bad_timestamp,
            sys.parse.too_short,
            sys.tagged,
            sys.filtered,
        ] {
            body.extend_from_slice(&word.to_le_bytes());
        }
    }
    let mut bytes = Vec::with_capacity(8 + body.len() + 4);
    bytes.extend_from_slice(&STATS_MAGIC);
    bytes.extend_from_slice(&body);
    bytes.extend_from_slice(&crc32(&body).to_le_bytes());
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)
}

fn stats_corrupt(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("store: corrupt {what}"))
}

/// Loads the `/stats` sidecar; a missing file is an empty store's.
fn load_stats(path: &Path) -> io::Result<Vec<SystemStats>> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    if bytes.len() < 8 + 2 + 4 + 4 || bytes[..8] != STATS_MAGIC {
        return Err(stats_corrupt("stats header"));
    }
    let body = &bytes[8..bytes.len() - 4];
    let crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    if crc32(body) != crc {
        return Err(stats_corrupt("stats checksum"));
    }
    if u16::from_le_bytes(body[..2].try_into().expect("2 bytes")) != SEGMENT_FORMAT_VERSION {
        return Err(stats_corrupt("stats version"));
    }
    let count = u32::from_le_bytes(body[2..6].try_into().expect("4 bytes")) as usize;
    let rows = &body[6..];
    if rows.len() != count * 49 {
        return Err(stats_corrupt("stats row count"));
    }
    let mut systems = Vec::with_capacity(count);
    for row in rows.chunks_exact(49) {
        let system = system_from_code(row[0]).ok_or_else(|| stats_corrupt("stats system"))?;
        let word =
            |i: usize| u64::from_le_bytes(row[1 + i * 8..9 + i * 8].try_into().expect("8 bytes"));
        systems.push(SystemStats {
            system,
            parse: ParseStats {
                parsed: word(0),
                empty: word(1),
                bad_timestamp: word(2),
                too_short: word(3),
            },
            tagged: word(4),
            filtered: word(5),
            obs_json: None,
        });
    }
    Ok(systems)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sclog_core::pipeline::ingest_batch;
    use sclog_core::IngestResult;
    use sclog_filter::SpatioTemporalFilter;
    use sclog_rules::RuleSet;

    fn test_rec() -> ThreadRecorder {
        Recorder::disabled().thread("test")
    }

    fn scan_all(inner: &StoreInner) -> Vec<StoredAlert> {
        inner
            .scan(&ScanFilter::all(), &test_rec())
            .expect("scan must succeed")
            .0
    }

    fn liberty_run() -> (IngestResult, CategoryRegistry) {
        let mut registry = CategoryRegistry::new();
        let rules = RuleSet::builtin(SystemId::Liberty, &mut registry);
        let filter = SpatioTemporalFilter::paper();
        let text = "\
Mar  7 07:30:00 sn373 pbs_mom: task_check, cannot tm_reply to 10 task 1\n\
Mar  7 07:30:01 sn373 pbs_mom: task_check, cannot tm_reply to 11 task 1\n\
Mar  7 09:00:00 dn228 pbs_mom: task_check, cannot tm_reply to 12 task 1\n";
        let result = ingest_batch(SystemId::Liberty, text, &rules, &filter, 1);
        (result, registry)
    }

    #[test]
    fn ingest_remaps_hosts_and_categories() {
        let (result, registry) = liberty_run();
        assert!(!result.tagged.is_empty(), "fixture must tag alerts");

        let store = AlertStore::new();
        store.ingest(SystemId::Liberty, &result, &registry, &[]);
        let inner = store.read();
        let alerts = scan_all(&inner);
        assert_eq!(alerts.len(), result.tagged.len());
        assert_eq!(inner.alert_count() as usize, alerts.len());
        assert_eq!(inner.version, 1);
        let names: Vec<&str> = alerts.iter().map(|a| inner.host_name(a)).collect();
        assert!(names.contains(&"sn373"));
        assert!(names.contains(&"dn228"));
        for alert in &alerts {
            assert_eq!(inner.system_of(alert), SystemId::Liberty);
        }
        // The 07:30:01 duplicate on the same node is within the 5 s
        // window: tagged but not a filter survivor.
        let survivors = alerts.iter().filter(|a| a.filtered).count();
        assert_eq!(survivors as u64, result.filtered.len() as u64);
        assert!(survivors < alerts.len());
    }

    #[test]
    fn double_ingest_merges_sorted_and_bumps_version() {
        let (result, registry) = liberty_run();
        let store = AlertStore::new();
        store.ingest(SystemId::Liberty, &result, &registry, &[]);
        store.ingest(SystemId::Liberty, &result, &registry, &[]);
        let inner = store.read();
        assert_eq!(inner.version, 2);
        let alerts = scan_all(&inner);
        assert_eq!(alerts.len(), 2 * result.tagged.len());
        assert!(alerts
            .windows(2)
            .all(|w| (w[0].time.as_micros(), w[0].seq) <= (w[1].time.as_micros(), w[1].seq)));
        // Same categories re-registered, not duplicated.
        let mut ids: Vec<u16> = alerts.iter().map(|a| a.category.index() as u16).collect();
        ids.sort_unstable();
        ids.dedup();
        assert!(ids.len() <= result.tagged.len());
        assert_eq!(inner.systems.len(), 2);
    }

    #[test]
    fn severity_lookup_degrades_to_none_out_of_range() {
        let (result, registry) = liberty_run();
        let store = AlertStore::new();
        let sev = vec![Severity::Syslog(sclog_types::SyslogSeverity::Error)];
        store.ingest(SystemId::Liberty, &result, &registry, &sev);
        let inner = store.read();
        for alert in &scan_all(&inner) {
            if alert.message_index == 0 {
                assert!(alert.severity.as_syslog().is_some());
            } else {
                assert!(alert.severity.is_none());
            }
        }
    }

    #[test]
    fn persistent_store_boots_from_disk() {
        let dir = std::env::temp_dir().join(format!("sclogd-store-boot-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (result, registry) = liberty_run();

        let store = AlertStore::open(&dir).unwrap();
        assert_eq!(store.version(), 0, "fresh directory must look empty");
        store.ingest(SystemId::Liberty, &result, &registry, &[]);
        store.finalize(&test_rec()).unwrap();
        let alerts = scan_all(&store.read());
        drop(store);

        // Same directory, no ingest: alerts, names, and /stats rows
        // all come back; the version is nonzero so caches recompute.
        let store = AlertStore::open(&dir).unwrap();
        assert_eq!(store.version(), 1);
        let inner = store.read();
        assert_eq!(scan_all(&inner), alerts);
        assert_eq!(inner.systems.len(), 1);
        assert_eq!(inner.systems[0].system, SystemId::Liberty);
        assert_eq!(inner.systems[0].tagged, result.tagged.len() as u64);
        assert!(inner.systems[0].obs_json.is_none(), "obs is per-run only");
        assert!(alerts
            .iter()
            .any(|a| inner.host_name(a) == "sn373" || inner.host_name(a) == "dn228"));
        drop(inner);
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ephemeral_store_cleans_up_its_directory() {
        let store = AlertStore::new();
        let dir = store.read().segs.root().to_path_buf();
        assert!(dir.exists());
        drop(store);
        assert!(!dir.exists(), "ephemeral directory must be removed");
    }
}
