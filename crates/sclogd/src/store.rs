//! The in-memory alert store behind the query server.
//!
//! Each ingest run produces an [`IngestResult`] whose alerts speak the
//! run's private dialect: `NodeId`s from that reader's interner and
//! `CategoryId`s from whatever registry the ruleset was compiled
//! against. The store re-maps both into its own interner/registry on
//! admission, so alerts from five different systems share one
//! namespace and a query can ask for `host=sn*` without caring which
//! run interned `sn373` first.
//!
//! Concurrency model: one `RwLock` around the whole store. Ingest
//! takes the write lock (rare: at startup and on explicit reload);
//! query workers take read locks (frequent, shared). A monotonically
//! increasing `version` lets the aggregation cache detect staleness
//! without holding any lock across the recompute.

use std::collections::HashSet;
use std::sync::{RwLock, RwLockReadGuard};

use sclog_core::IngestResult;
use sclog_parse::ParseStats;
use sclog_types::{
    AlertType, CategoryId, CategoryRegistry, NodeId, Severity, SourceInterner, SystemId, Timestamp,
};

/// One alert at rest, in the store's own namespace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoredAlert {
    /// Time of the underlying message.
    pub time: Timestamp,
    /// Source node, interned in the store's interner.
    pub host: NodeId,
    /// Category, registered in the store's registry.
    pub category: CategoryId,
    /// Severity of the underlying message (`None` when the logging
    /// path records none, or when ground truth was unavailable).
    pub severity: Severity,
    /// Index of the underlying message in its system's parse order.
    pub message_index: usize,
    /// Whether the alert survived the spatio-temporal filter.
    pub filtered: bool,
}

/// Per-system ingest accounting, served by `/stats`.
#[derive(Debug, Clone)]
pub struct SystemStats {
    /// The ingested system.
    pub system: SystemId,
    /// Line accounting from the parser.
    pub parse: ParseStats,
    /// Alerts the rules tagged.
    pub tagged: u64,
    /// Alerts surviving the spatio-temporal filter.
    pub filtered: u64,
    /// The ingest run's obs report (`sclog.obs.v1` JSON), when the run
    /// recorded one.
    pub obs_json: Option<String>,
}

/// Store contents guarded by the lock. Exposed read-only to query
/// handlers via [`AlertStore::read`].
#[derive(Debug, Default)]
pub struct StoreInner {
    /// All admitted alerts, sorted by time (ties broken by admission
    /// order, which within a system is message order).
    pub alerts: Vec<StoredAlert>,
    /// Node names for every [`StoredAlert::host`].
    pub hosts: SourceInterner,
    /// Definitions for every [`StoredAlert::category`].
    pub categories: CategoryRegistry,
    /// Per-system ingest accounting, in admission order.
    pub systems: Vec<SystemStats>,
    /// Bumped on every mutation; caches key off it.
    pub version: u64,
}

impl StoreInner {
    /// Resolves a stored alert's host name.
    pub fn host_name(&self, alert: &StoredAlert) -> &str {
        self.hosts.name(alert.host)
    }

    /// Resolves a stored alert's category name.
    pub fn category_name(&self, alert: &StoredAlert) -> &str {
        &self.categories.def(alert.category).name
    }

    /// Resolves a stored alert's owning system.
    pub fn system_of(&self, alert: &StoredAlert) -> SystemId {
        self.categories.def(alert.category).system
    }

    /// Resolves a stored alert's hardware/software class.
    pub fn class_of(&self, alert: &StoredAlert) -> AlertType {
        self.categories.def(alert.category).alert_type
    }
}

/// Thread-safe alert store: write-locked ingest, read-locked queries.
#[derive(Debug, Default)]
pub struct AlertStore {
    inner: RwLock<StoreInner>,
}

impl AlertStore {
    /// An empty store.
    pub fn new() -> Self {
        AlertStore::default()
    }

    /// Admits one ingest run.
    ///
    /// `registry` must be the registry the run's ruleset was compiled
    /// against (it resolves the run's `CategoryId`s). `severities`
    /// maps message index → severity; pass `&[]` when the source has
    /// no severity information — out-of-range indexes degrade to
    /// [`Severity::None`] rather than failing, since severity is
    /// advisory metadata, not part of the alert identity.
    ///
    /// # Panics
    ///
    /// Panics if a run's category re-registers under a different
    /// alert type — that means two rulesets disagree about a rule, a
    /// configuration bug worth failing loudly on.
    pub fn ingest(
        &self,
        system: SystemId,
        result: &IngestResult,
        registry: &CategoryRegistry,
        severities: &[Severity],
    ) {
        let survivors: HashSet<usize> = result.filtered.iter().map(|a| a.message_index).collect();
        let mut inner = write_lock(&self.inner);
        let inner = &mut *inner;
        for alert in &result.tagged.alerts {
            let def = registry.def(alert.category);
            let category = inner
                .categories
                .register(&def.name, def.system, def.alert_type);
            let host = inner.hosts.intern(result.sources.name(alert.source));
            inner.alerts.push(StoredAlert {
                time: alert.time,
                host,
                category,
                severity: severities
                    .get(alert.message_index)
                    .copied()
                    .unwrap_or(Severity::None),
                message_index: alert.message_index,
                filtered: survivors.contains(&alert.message_index),
            });
        }
        // Each run arrives time-sorted; the merged view must be too,
        // or window queries would miss alerts. Stable sort keeps
        // message order within equal timestamps.
        inner.alerts.sort_by_key(|a| a.time.as_micros());
        inner.systems.push(SystemStats {
            system,
            parse: result.parse,
            tagged: result.tagged.alerts.len() as u64,
            filtered: result.filtered.len() as u64,
            obs_json: result.obs.as_ref().map(|r| r.to_json()),
        });
        inner.version += 1;
    }

    /// A shared read view for query handlers.
    pub fn read(&self) -> RwLockReadGuard<'_, StoreInner> {
        self.inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The current mutation counter, for cache staleness checks.
    pub fn version(&self) -> u64 {
        self.read().version
    }
}

fn write_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sclog_core::pipeline::ingest_batch;
    use sclog_core::IngestResult;
    use sclog_filter::SpatioTemporalFilter;
    use sclog_rules::RuleSet;

    fn liberty_run() -> (IngestResult, CategoryRegistry) {
        let mut registry = CategoryRegistry::new();
        let rules = RuleSet::builtin(SystemId::Liberty, &mut registry);
        let filter = SpatioTemporalFilter::paper();
        let text = "\
Mar  7 07:30:00 sn373 pbs_mom: task_check, cannot tm_reply to 10 task 1\n\
Mar  7 07:30:01 sn373 pbs_mom: task_check, cannot tm_reply to 11 task 1\n\
Mar  7 09:00:00 dn228 pbs_mom: task_check, cannot tm_reply to 12 task 1\n";
        let result = ingest_batch(SystemId::Liberty, text, &rules, &filter, 1);
        (result, registry)
    }

    #[test]
    fn ingest_remaps_hosts_and_categories() {
        let (result, registry) = liberty_run();
        assert!(!result.tagged.is_empty(), "fixture must tag alerts");

        let store = AlertStore::new();
        store.ingest(SystemId::Liberty, &result, &registry, &[]);
        let inner = store.read();
        assert_eq!(inner.alerts.len(), result.tagged.len());
        assert_eq!(inner.version, 1);
        let names: Vec<&str> = inner.alerts.iter().map(|a| inner.host_name(a)).collect();
        assert!(names.contains(&"sn373"));
        assert!(names.contains(&"dn228"));
        for alert in &inner.alerts {
            assert_eq!(inner.system_of(alert), SystemId::Liberty);
        }
        // The 07:30:01 duplicate on the same node is within the 5 s
        // window: tagged but not a filter survivor.
        let survivors = inner.alerts.iter().filter(|a| a.filtered).count();
        assert_eq!(survivors as u64, result.filtered.len() as u64);
        assert!(survivors < inner.alerts.len());
    }

    #[test]
    fn double_ingest_merges_sorted_and_bumps_version() {
        let (result, registry) = liberty_run();
        let store = AlertStore::new();
        store.ingest(SystemId::Liberty, &result, &registry, &[]);
        store.ingest(SystemId::Liberty, &result, &registry, &[]);
        let inner = store.read();
        assert_eq!(inner.version, 2);
        assert_eq!(inner.alerts.len(), 2 * result.tagged.len());
        assert!(inner
            .alerts
            .windows(2)
            .all(|w| w[0].time.as_micros() <= w[1].time.as_micros()));
        // Same categories re-registered, not duplicated.
        let mut ids: Vec<u16> = inner
            .alerts
            .iter()
            .map(|a| a.category.index() as u16)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert!(ids.len() <= result.tagged.len());
        assert_eq!(inner.systems.len(), 2);
    }

    #[test]
    fn severity_lookup_degrades_to_none_out_of_range() {
        let (result, registry) = liberty_run();
        let store = AlertStore::new();
        let sev = vec![Severity::Syslog(sclog_types::SyslogSeverity::Error)];
        store.ingest(SystemId::Liberty, &result, &registry, &sev);
        let inner = store.read();
        for alert in &inner.alerts {
            if alert.message_index == 0 {
                assert!(alert.severity.as_syslog().is_some());
            } else {
                assert!(alert.severity.is_none());
            }
        }
    }
}
