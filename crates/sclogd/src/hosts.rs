//! A small host-pattern matcher for filter queries.
//!
//! Cluster operators name nodes in dense families (`sn373`, `dn228`,
//! `R02-M1-N0`), and a query like "every service node" wants a glob,
//! not an exact name. [`HostPattern`] supports the familiar shell
//! subset — `*` (any run), `?` (any one character), `[a-z0-9]`
//! character classes with `!` negation — plus comma-separated
//! alternatives, so `sn*,dn22[0-9]` matches both families in one
//! parameter.

/// One token of a compiled glob alternative.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    /// A literal character, matched exactly.
    Literal(char),
    /// `?`: exactly one character, any value.
    One,
    /// `*`: any run of characters, including none.
    Any,
    /// `[...]`: one character inside (or outside, if negated) a set of
    /// inclusive ranges; a lone character is the range `(c, c)`.
    Class {
        negated: bool,
        ranges: Vec<(char, char)>,
    },
}

/// A compiled host pattern: comma-separated glob alternatives, matched
/// case-sensitively against interned host names.
///
/// # Examples
///
/// ```
/// use sclogd::hosts::HostPattern;
///
/// let p = HostPattern::parse("sn*,dn22[0-9]").unwrap();
/// assert!(p.matches("sn373"));
/// assert!(p.matches("dn228"));
/// assert!(!p.matches("ln1"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostPattern {
    alternatives: Vec<Vec<Tok>>,
}

impl HostPattern {
    /// Compiles a pattern.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for an empty pattern, an empty
    /// alternative, or an unterminated/empty character class.
    pub fn parse(pattern: &str) -> Result<Self, String> {
        if pattern.is_empty() {
            return Err("empty host pattern".to_owned());
        }
        let mut alternatives = Vec::new();
        for alt in pattern.split(',') {
            if alt.is_empty() {
                return Err(format!("empty alternative in host pattern {pattern:?}"));
            }
            alternatives.push(compile_glob(alt)?);
        }
        Ok(HostPattern { alternatives })
    }

    /// Whether any alternative matches the whole of `name`.
    pub fn matches(&self, name: &str) -> bool {
        let chars: Vec<char> = name.chars().collect();
        self.alternatives.iter().any(|alt| glob_match(alt, &chars))
    }

    /// True when the pattern is a single `*` — the match-everything
    /// case a filter can skip entirely.
    pub fn matches_all(&self) -> bool {
        self.alternatives.len() == 1 && self.alternatives[0] == vec![Tok::Any]
    }
}

fn compile_glob(glob: &str) -> Result<Vec<Tok>, String> {
    let mut toks = Vec::new();
    let mut chars = glob.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '*' => {
                // Runs of stars collapse to one: they match the same
                // strings and the collapse keeps backtracking linear.
                if toks.last() != Some(&Tok::Any) {
                    toks.push(Tok::Any);
                }
            }
            '?' => toks.push(Tok::One),
            '[' => {
                let negated = chars.peek() == Some(&'!');
                if negated {
                    chars.next();
                }
                let mut ranges = Vec::new();
                loop {
                    let lo = match chars.next() {
                        None => return Err(format!("unterminated class in {glob:?}")),
                        Some(']') if !ranges.is_empty() => break,
                        // A leading `]` is a literal member, per glob
                        // tradition; an empty class is an error.
                        Some(']') if ranges.is_empty() && negated => ']',
                        Some(']') => return Err(format!("empty class in {glob:?}")),
                        Some(c) => c,
                    };
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        match chars.next() {
                            None => return Err(format!("unterminated class in {glob:?}")),
                            // A trailing `-` is a literal member.
                            Some(']') => {
                                ranges.push((lo, lo));
                                ranges.push(('-', '-'));
                                break;
                            }
                            Some(hi) if hi >= lo => ranges.push((lo, hi)),
                            Some(hi) => {
                                return Err(format!("inverted range {lo}-{hi} in {glob:?}"))
                            }
                        }
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                toks.push(Tok::Class { negated, ranges });
            }
            c => toks.push(Tok::Literal(c)),
        }
    }
    Ok(toks)
}

/// Classic iterative glob match with single-star backtracking: on a
/// mismatch past a `*`, retry from the star with one more character
/// consumed. Collapsed stars keep this O(pattern × name).
fn glob_match(toks: &[Tok], name: &[char]) -> bool {
    let (mut t, mut n) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    loop {
        if n == name.len() {
            // Only trailing stars may remain.
            return toks[t..].iter().all(|tok| *tok == Tok::Any);
        }
        let matched = match toks.get(t) {
            Some(Tok::Any) => {
                star = Some((t, n));
                t += 1;
                continue;
            }
            Some(Tok::Literal(c)) => *c == name[n],
            Some(Tok::One) => true,
            Some(Tok::Class { negated, ranges }) => {
                let inside = ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&name[n]));
                inside != *negated
            }
            None => false,
        };
        if matched {
            t += 1;
            n += 1;
        } else if let Some((st, sn)) = star {
            t = st + 1;
            n = sn + 1;
            star = Some((st, sn + 1));
        } else {
            return false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pattern: &str, name: &str) -> bool {
        HostPattern::parse(pattern).unwrap().matches(name)
    }

    #[test]
    fn literals_and_wildcards() {
        assert!(m("sn373", "sn373"));
        assert!(!m("sn373", "sn3730"));
        assert!(m("sn*", "sn373"));
        assert!(m("sn*", "sn"));
        assert!(!m("sn*", "dn373"));
        assert!(m("*", ""));
        assert!(m("*", "anything"));
        assert!(m("sn?73", "sn373"));
        assert!(!m("sn?73", "sn73"));
        assert!(m("*73", "sn373"));
        assert!(m("s*3*3", "sn373"));
        assert!(!m("s*9", "sn373"));
    }

    #[test]
    fn classes_and_ranges() {
        assert!(m("dn22[0-9]", "dn228"));
        assert!(!m("dn22[0-7]", "dn228"));
        assert!(m("dn22[89]", "dn229"));
        assert!(m("R0[0-2]-M?", "R02-M1"));
        assert!(m("x[!0-9]", "xa"));
        assert!(!m("x[!0-9]", "x5"));
        assert!(m("a[-]b", "a-b"), "trailing dash is literal");
    }

    #[test]
    fn alternatives() {
        let p = HostPattern::parse("sn*,dn*,ln1").unwrap();
        assert!(p.matches("sn1"));
        assert!(p.matches("dn99"));
        assert!(p.matches("ln1"));
        assert!(!p.matches("ln2"));
        assert!(!p.matches_all());
        assert!(HostPattern::parse("*").unwrap().matches_all());
    }

    #[test]
    fn parse_errors() {
        for bad in ["", "a,,b", "x[", "x[]", "x[a", "x[z-a]"] {
            assert!(HostPattern::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn star_backtracking_terminates_on_adversarial_input() {
        // Collapsed stars keep the classic glob worst case linear-ish;
        // this input is the textbook exponential-backtracking trap.
        let p = HostPattern::parse("*a*a*a*a*a*a*a*a*b").unwrap();
        assert!(!p.matches(&"a".repeat(64)));
        assert!(p.matches(&format!("{}b", "a".repeat(64))));
    }

    #[test]
    fn unicode_names_do_not_panic() {
        assert!(m("naïve*", "naïve-node"));
        assert!(m("?", "é"));
    }
}
