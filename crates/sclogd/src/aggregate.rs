//! Materialized aggregates over the store, cached by store version.
//!
//! The three aggregation endpoints (`/categories`, `/interarrival`,
//! `/hotspots`) walk every alert, which is the wrong thing to do per
//! request on a store that only changes when something is ingested.
//! One [`AggregateCache`] holds the rendered results keyed by the
//! store's mutation counter: a request under the current version is a
//! string clone; the first request after an ingest (or the first ever
//! against a store booted from disk) runs one full scan through the
//! segment store and recomputes.
//!
//! Hotspot top-`k` is applied at serve time from the cached full
//! ranking, so `k=5` and `k=50` share one computation.

use std::collections::HashMap;
use std::io;
use std::sync::Mutex;

use sclog_obs::ThreadRecorder;
use sclog_stats::Summary;
use sclog_store::{ScanFilter, ScanStats};
use sclog_types::json::{JsonArray, JsonObject};

use crate::store::{AlertStore, StoreInner};

/// Rendered aggregates for one store version.
#[derive(Debug, Clone)]
struct Cached {
    version: u64,
    categories_json: String,
    interarrival_json: String,
    /// Full hotspot ranking: `(host, filtered-alert count)`, most
    /// alerts first, name-ordered within ties for determinism.
    hotspots: Vec<(String, u64)>,
}

/// Version-keyed cache of the aggregation endpoints' bodies.
#[derive(Debug, Default)]
pub struct AggregateCache {
    slot: Mutex<Option<Cached>>,
}

impl AggregateCache {
    /// An empty cache; the first request populates it.
    pub fn new() -> Self {
        AggregateCache::default()
    }

    /// Runs `f` over the current-version cache entry, recomputing it
    /// first if stale. The second element of the result is the
    /// recompute scan's statistics — `None` on a cache hit, which is
    /// how a request's trace distinguishes "free" aggregate serves
    /// from the one that paid for a full scan.
    fn with_current<R>(
        &self,
        store: &AlertStore,
        rec: &ThreadRecorder,
        f: impl FnOnce(&Cached) -> R,
    ) -> Result<(R, Option<ScanStats>), String> {
        let mut slot = self
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let stale = match &*slot {
            Some(cached) => cached.version != store.version(),
            None => true,
        };
        let mut scanned = None;
        if stale {
            let (cached, stats) = compute(&store.read(), rec).map_err(|e| e.to_string())?;
            *slot = Some(cached);
            scanned = Some(stats);
        }
        Ok((f(slot.as_ref().expect("cache populated above")), scanned))
    }

    /// `/categories` body: per-category tagged/filtered counts.
    ///
    /// # Errors
    ///
    /// A store read failure while recomputing, as a 500 body.
    pub fn categories(
        &self,
        store: &AlertStore,
        rec: &ThreadRecorder,
    ) -> Result<(String, Option<ScanStats>), String> {
        self.with_current(store, rec, |c| c.categories_json.clone())
    }

    /// `/interarrival` body: per-category interarrival summaries over
    /// filter survivors.
    ///
    /// # Errors
    ///
    /// A store read failure while recomputing, as a 500 body.
    pub fn interarrival(
        &self,
        store: &AlertStore,
        rec: &ThreadRecorder,
    ) -> Result<(String, Option<ScanStats>), String> {
        self.with_current(store, rec, |c| c.interarrival_json.clone())
    }

    /// `/hotspots` body: the `k` nodes with the most filter survivors.
    ///
    /// # Errors
    ///
    /// A store read failure while recomputing, as a 500 body.
    pub fn hotspots(
        &self,
        store: &AlertStore,
        rec: &ThreadRecorder,
        k: usize,
    ) -> Result<(String, Option<ScanStats>), String> {
        self.with_current(store, rec, |c| {
            let mut rows = JsonArray::new();
            for (host, count) in c.hotspots.iter().take(k) {
                let mut obj = JsonObject::new();
                obj.str("host", host).uint("filtered", *count);
                rows.push_raw(&obj.finish());
            }
            let mut body = JsonObject::new();
            body.uint("nodes", c.hotspots.len() as u64)
                .raw("hotspots", &rows.finish());
            body.finish()
        })
    }
}

fn compute(inner: &StoreInner, rec: &ThreadRecorder) -> io::Result<(Cached, ScanStats)> {
    // One unfiltered scan, then one pass: per-category counts and
    // survivor times, per-host survivor counts. The scan returns
    // alerts time-sorted, so the collected times are too —
    // interarrival gaps are direct successive differences.
    let (alerts, scan_stats) = inner.scan(&ScanFilter::all(), rec)?;
    let mut tagged: HashMap<u16, u64> = HashMap::new();
    let mut filtered: HashMap<u16, u64> = HashMap::new();
    let mut times: HashMap<u16, Vec<i64>> = HashMap::new();
    let mut per_host: HashMap<&str, u64> = HashMap::new();
    for alert in &alerts {
        let cat = alert.category.index() as u16;
        *tagged.entry(cat).or_default() += 1;
        if alert.filtered {
            *filtered.entry(cat).or_default() += 1;
            times.entry(cat).or_default().push(alert.time.as_micros());
            *per_host.entry(inner.host_name(alert)).or_default() += 1;
        }
    }

    let mut cats: Vec<u16> = tagged.keys().copied().collect();
    cats.sort_unstable();

    let mut categories = JsonArray::new();
    let mut interarrival = JsonArray::new();
    for cat in cats {
        let id = sclog_types::CategoryId::from_index(cat);
        let def = inner.categories().def(id);
        let mut obj = JsonObject::new();
        obj.str("category", &def.name)
            .str("system", &def.system.to_string())
            .str("class", &def.alert_type.to_string())
            .uint("tagged", tagged[&cat])
            .uint("filtered", filtered.get(&cat).copied().unwrap_or(0));
        categories.push_raw(&obj.finish());

        let ts = times.get(&cat).map(Vec::as_slice).unwrap_or(&[]);
        let gaps: Vec<f64> = ts.windows(2).map(|w| (w[1] - w[0]) as f64 / 1e6).collect();
        let summary = Summary::from_slice(&gaps);
        let mut obj = JsonObject::new();
        obj.str("category", &def.name)
            .uint("gaps", summary.count() as u64);
        if summary.count() > 0 {
            obj.num("mean_s", summary.mean())
                .num("std_dev_s", summary.std_dev())
                .num("min_s", summary.min())
                .num("max_s", summary.max());
        }
        interarrival.push_raw(&obj.finish());
    }

    let mut hotspots: Vec<(String, u64)> = per_host
        .into_iter()
        .map(|(h, n)| (h.to_owned(), n))
        .collect();
    hotspots.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    let wrap = |rows: JsonArray, key: &str| {
        let mut body = JsonObject::new();
        body.raw(key, &rows.finish());
        body.finish()
    };
    Ok((
        Cached {
            version: inner.version,
            categories_json: wrap(categories, "categories"),
            interarrival_json: wrap(interarrival, "interarrival"),
            hotspots,
        },
        scan_stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sclog_core::pipeline::ingest_batch;
    use sclog_filter::SpatioTemporalFilter;
    use sclog_obs::Recorder;
    use sclog_rules::RuleSet;
    use sclog_types::json::validate;
    use sclog_types::{CategoryRegistry, SystemId};

    fn test_rec() -> ThreadRecorder {
        Recorder::disabled().thread("test")
    }

    fn seeded_store() -> (AlertStore, CategoryRegistry, sclog_core::IngestResult) {
        let mut registry = CategoryRegistry::new();
        let rules = RuleSet::builtin(SystemId::Liberty, &mut registry);
        let filter = SpatioTemporalFilter::paper();
        let text = "\
Mar  7 07:30:00 sn373 pbs_mom: task_check, cannot tm_reply to 10 task 1\n\
Mar  7 07:40:00 sn373 pbs_mom: task_check, cannot tm_reply to 11 task 1\n\
Mar  7 07:50:00 dn228 pbs_mom: task_check, cannot tm_reply to 12 task 1\n";
        let result = ingest_batch(SystemId::Liberty, text, &rules, &filter, 1);
        let store = AlertStore::new();
        store.ingest(SystemId::Liberty, &result, &registry, &[]);
        (store, registry, result)
    }

    #[test]
    fn aggregates_are_valid_json_and_consistent() {
        let (store, _, result) = seeded_store();
        let rec = test_rec();
        let cache = AggregateCache::new();
        let (cats, scanned) = cache.categories(&store, &rec).unwrap();
        validate(&cats).unwrap();
        assert!(cats.contains("\"tagged\":3"), "body: {cats}");
        assert!(
            scanned.is_some_and(|s| s.rows_decoded == 3),
            "the recompute reports its scan: {scanned:?}"
        );

        let (inter, scanned) = cache.interarrival(&store, &rec).unwrap();
        validate(&inter).unwrap();
        assert!(scanned.is_none(), "cache hit must not claim a scan");
        // Three survivors 600 s apart → two gaps of exactly 600 s.
        assert!(result.filtered.len() == 3);
        assert!(inter.contains("\"gaps\":2"), "body: {inter}");
        assert!(inter.contains("\"mean_s\":600"), "body: {inter}");

        let (hot, _) = cache.hotspots(&store, &rec, 1).unwrap();
        validate(&hot).unwrap();
        assert!(hot.contains("\"nodes\":2"), "body: {hot}");
        assert!(hot.contains("\"host\":\"sn373\""), "sn373 has 2 survivors");
        assert!(!hot.contains("dn228"), "k=1 must truncate the ranking");
    }

    #[test]
    fn cache_invalidates_on_ingest_only() {
        let (store, registry, result) = seeded_store();
        let rec = test_rec();
        let cache = AggregateCache::new();
        let before = cache.categories(&store, &rec).unwrap().0;
        assert_eq!(
            before,
            cache.categories(&store, &rec).unwrap().0,
            "stable under reads"
        );
        store.ingest(SystemId::Liberty, &result, &registry, &[]);
        let after = cache.categories(&store, &rec).unwrap().0;
        assert_ne!(before, after, "ingest must invalidate");
        assert!(after.contains("\"tagged\":6"), "body: {after}");
    }
}
