//! Query evaluation and JSON rendering for `/alerts`.
//!
//! A parsed [`Query`] is translated into a [`ScanFilter`] the segment
//! store can prune with: time bounds and the system pass through
//! directly (they prune whole `(system, day)` partitions), names are
//! resolved against the store catalog into id sets and bitsets (which
//! prune sealed segments by zone map). `total` in the response counts
//! every match; `alerts` carries at most `limit` of them, so a client
//! can see it was truncated.

use sclog_store::{ScanFilter, ScanStats};
use sclog_types::json::{JsonArray, JsonObject};
use sclog_types::segment::{class_code, severity_code};

use crate::query::{Field, FilteredSelect, Query, SeveritySelect};
use crate::store::{StoreInner, StoredAlert};

/// Translates a query into the store's pruning filter.
///
/// The translation is exact, not approximate: a category or host name
/// with no catalog entry becomes an empty id set (matches nothing),
/// and a `host=*` pattern becomes no host constraint at all, so the
/// scan's answer equals the old linear evaluation alert-for-alert.
pub fn scan_filter(inner: &StoreInner, query: &Query) -> ScanFilter {
    let mut filter = ScanFilter {
        from: query.from,
        to: query.to,
        system: query.system,
        ..ScanFilter::all()
    };
    filter.filtered = match query.filtered {
        FilteredSelect::Survivors => Some(true),
        FilteredSelect::Discarded => Some(false),
        FilteredSelect::All => None,
    };
    if let Some(class) = query.class {
        filter.classes = Some(1u8 << class_code(class));
    }
    if let SeveritySelect::Exact(want) = query.severity {
        filter.severities = Some(1u16 << severity_code(want));
    }
    if let Some(category) = &query.category {
        let categories = inner.categories();
        let mut bits = vec![0u64; categories.len() / 64 + 1];
        for (id, def) in categories.iter() {
            if def.name == *category {
                bits[id.index() / 64] |= 1 << (id.index() % 64);
            }
        }
        filter.categories = Some(bits);
    }
    if let Some(host) = &query.host {
        if !host.matches_all() {
            // Interner order is id order, so the set arrives sorted,
            // as ScanFilter's binary search requires.
            let ids: Vec<u32> = inner
                .hosts()
                .iter()
                .filter(|(_, name)| host.matches(name))
                .map(|(id, _)| id.index() as u32)
                .collect();
            filter.hosts = Some(ids);
        }
    }
    filter
}

fn render_alert(inner: &StoreInner, alert: &StoredAlert, fields: &[Field]) -> String {
    let mut obj = JsonObject::new();
    for field in fields {
        match field {
            Field::Time => obj.str("time", &alert.time.to_iso_string()),
            Field::Host => obj.str("host", inner.host_name(alert)),
            Field::Category => obj.str("category", inner.category_name(alert)),
            Field::System => obj.str("system", &inner.system_of(alert).to_string()),
            Field::Class => obj.str("class", &inner.class_of(alert).to_string()),
            Field::Severity => obj.str("severity", &alert.severity.to_string()),
            Field::Index => obj.uint("index", alert.message_index as u64),
            Field::Filtered => obj.bool("filtered", alert.filtered),
        };
    }
    obj.finish()
}

/// Runs the query through a pruned store scan and renders the
/// `/alerts` response body, returning the scan's by-value statistics
/// alongside it for the request's trace.
///
/// # Errors
///
/// An I/O or corruption failure reading the store, as a message for
/// the 500 body.
pub fn render_alerts(
    inner: &StoreInner,
    query: &Query,
    rec: &sclog_obs::ThreadRecorder,
) -> Result<(String, ScanStats), String> {
    let (hits, stats) = inner
        .scan(&scan_filter(inner, query), rec)
        .map_err(|e| e.to_string())?;
    let mut rows = JsonArray::new();
    let mut returned = 0usize;
    for alert in hits.iter().take(query.limit) {
        rows.push_raw(&render_alert(inner, alert, &query.fields));
        returned += 1;
    }
    let mut body = JsonObject::new();
    body.uint("total", hits.len() as u64)
        .uint("returned", returned as u64)
        .raw("alerts", &rows.finish());
    Ok((body.finish(), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::AlertStore;
    use sclog_core::pipeline::ingest_batch;
    use sclog_filter::SpatioTemporalFilter;
    use sclog_obs::{Recorder, ThreadRecorder};
    use sclog_rules::RuleSet;
    use sclog_types::json::validate;
    use sclog_types::{CategoryRegistry, SystemId};

    fn test_rec() -> ThreadRecorder {
        Recorder::disabled().thread("test")
    }

    fn store_with_liberty() -> AlertStore {
        let mut registry = CategoryRegistry::new();
        let rules = RuleSet::builtin(SystemId::Liberty, &mut registry);
        let filter = SpatioTemporalFilter::paper();
        let text = "\
Mar  7 07:30:00 sn373 pbs_mom: task_check, cannot tm_reply to 10 task 1\n\
Mar  7 07:30:01 sn373 pbs_mom: task_check, cannot tm_reply to 11 task 1\n\
Mar  7 09:00:00 dn228 pbs_mom: task_check, cannot tm_reply to 12 task 1\n";
        let result = ingest_batch(SystemId::Liberty, text, &rules, &filter, 1);
        assert!(!result.tagged.is_empty());
        let store = AlertStore::new();
        store.ingest(SystemId::Liberty, &result, &registry, &[]);
        store
    }

    fn run(store: &AlertStore, query: &str) -> Vec<StoredAlert> {
        let inner = store.read();
        let q = Query::parse(query).unwrap();
        inner.scan(&scan_filter(&inner, &q), &test_rec()).unwrap().0
    }

    #[test]
    fn time_window_narrows_the_scan() {
        let store = store_with_liberty();
        let all = run(&store, "");
        assert_eq!(all.len(), 3);
        // From the last alert's own second onward: the early pair
        // (90 minutes before) must fall outside the range.
        let last_secs = all.last().unwrap().time.as_secs();
        let tail = run(&store, &format!("from={last_secs}"));
        assert!(!tail.is_empty() && tail.len() < all.len());
        // A window entirely after the log must match nothing.
        let empty = run(
            &store,
            &format!("from={}&to={}", last_secs + 3_600, last_secs + 7_200),
        );
        assert!(empty.is_empty(), "empty window must be an empty result");
    }

    #[test]
    fn host_and_filtered_predicates_compose() {
        let store = store_with_liberty();
        let on_sn = run(&store, "host=sn*");
        assert!(!on_sn.is_empty());
        {
            let inner = store.read();
            assert!(on_sn.iter().all(|a| inner.host_name(a).starts_with("sn")));
        }
        let survivors = run(&store, "host=sn*&filtered=true");
        assert!(survivors.len() < on_sn.len(), "duplicate must be discarded");
    }

    #[test]
    fn unknown_names_match_nothing() {
        let store = store_with_liberty();
        assert!(run(&store, "category=NO_SUCH_RULE").is_empty());
        assert!(run(&store, "host=no-such-node").is_empty());
    }

    #[test]
    fn rendered_body_is_valid_json_with_selected_fields() {
        let store = store_with_liberty();
        let inner = store.read();
        let q = Query::parse("fields=time,host,filtered&limit=2").unwrap();
        let (body, _) = render_alerts(&inner, &q, &test_rec()).unwrap();
        validate(&body).expect("body must be valid JSON");
        assert!(body.contains("\"total\":3"));
        assert!(body.contains("\"returned\":2"));
        assert!(body.contains("\"host\":\"sn373\""));
        assert!(!body.contains("\"category\""), "unselected field leaked");
    }
}
