//! Query evaluation and JSON rendering for `/alerts`.
//!
//! The store keeps alerts time-sorted, so the time window narrows to a
//! contiguous slice by binary search before any per-alert predicate
//! runs; everything else (host glob, category, class, severity) is a
//! linear scan over that slice. `total` in the response counts every
//! match; `alerts` carries at most `limit` of them, so a client can
//! see it was truncated.

use sclog_types::json::{JsonArray, JsonObject};

use crate::query::{Field, FilteredSelect, Query, SeveritySelect};
use crate::store::{StoreInner, StoredAlert};

/// The contiguous index range of alerts inside the query's time
/// window (the whole store when unbounded).
pub fn window_bounds(inner: &StoreInner, query: &Query) -> (usize, usize) {
    let lo = match query.from {
        Some(from) => inner
            .alerts
            .partition_point(|a| a.time.as_micros() < from.as_micros()),
        None => 0,
    };
    let hi = match query.to {
        Some(to) => inner
            .alerts
            .partition_point(|a| a.time.as_micros() <= to.as_micros()),
        None => inner.alerts.len(),
    };
    (lo, hi.max(lo))
}

/// Whether one alert satisfies every non-time predicate of the query.
pub fn alert_matches(inner: &StoreInner, alert: &StoredAlert, query: &Query) -> bool {
    match query.filtered {
        FilteredSelect::All => {}
        FilteredSelect::Survivors if !alert.filtered => return false,
        FilteredSelect::Discarded if alert.filtered => return false,
        _ => {}
    }
    if let Some(system) = query.system {
        if inner.system_of(alert) != system {
            return false;
        }
    }
    if let Some(class) = query.class {
        if inner.class_of(alert) != class {
            return false;
        }
    }
    if let Some(category) = &query.category {
        if inner.category_name(alert) != category {
            return false;
        }
    }
    if let SeveritySelect::Exact(want) = query.severity {
        if alert.severity != want {
            return false;
        }
    }
    if let Some(host) = &query.host {
        if !host.matches_all() && !host.matches(inner.host_name(alert)) {
            return false;
        }
    }
    true
}

fn render_alert(inner: &StoreInner, alert: &StoredAlert, fields: &[Field]) -> String {
    let mut obj = JsonObject::new();
    for field in fields {
        match field {
            Field::Time => obj.str("time", &alert.time.to_iso_string()),
            Field::Host => obj.str("host", inner.host_name(alert)),
            Field::Category => obj.str("category", inner.category_name(alert)),
            Field::System => obj.str("system", &inner.system_of(alert).to_string()),
            Field::Class => obj.str("class", &inner.class_of(alert).to_string()),
            Field::Severity => obj.str("severity", &alert.severity.to_string()),
            Field::Index => obj.uint("index", alert.message_index as u64),
            Field::Filtered => obj.bool("filtered", alert.filtered),
        };
    }
    obj.finish()
}

/// Runs the query and renders the `/alerts` response body.
pub fn render_alerts(inner: &StoreInner, query: &Query) -> String {
    let (lo, hi) = window_bounds(inner, query);
    let mut total = 0u64;
    let mut rows = JsonArray::new();
    let mut returned = 0usize;
    for alert in &inner.alerts[lo..hi] {
        if !alert_matches(inner, alert, query) {
            continue;
        }
        total += 1;
        if returned < query.limit {
            rows.push_raw(&render_alert(inner, alert, &query.fields));
            returned += 1;
        }
    }
    let mut body = JsonObject::new();
    body.uint("total", total)
        .uint("returned", returned as u64)
        .raw("alerts", &rows.finish());
    body.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::AlertStore;
    use sclog_core::pipeline::ingest_batch;
    use sclog_filter::SpatioTemporalFilter;
    use sclog_rules::RuleSet;
    use sclog_types::json::validate;
    use sclog_types::{CategoryRegistry, SystemId};

    fn store_with_liberty() -> AlertStore {
        let mut registry = CategoryRegistry::new();
        let rules = RuleSet::builtin(SystemId::Liberty, &mut registry);
        let filter = SpatioTemporalFilter::paper();
        let text = "\
Mar  7 07:30:00 sn373 pbs_mom: task_check, cannot tm_reply to 10 task 1\n\
Mar  7 07:30:01 sn373 pbs_mom: task_check, cannot tm_reply to 11 task 1\n\
Mar  7 09:00:00 dn228 pbs_mom: task_check, cannot tm_reply to 12 task 1\n";
        let result = ingest_batch(SystemId::Liberty, text, &rules, &filter, 1);
        assert!(!result.tagged.is_empty());
        let store = AlertStore::new();
        store.ingest(SystemId::Liberty, &result, &registry, &[]);
        store
    }

    #[test]
    fn window_narrows_by_binary_search() {
        let store = store_with_liberty();
        let inner = store.read();
        // From the last alert's own second onward: the early pair
        // (90 minutes before) must fall outside the range.
        let last_secs = inner.alerts.last().unwrap().time.as_secs();
        let q = Query::parse(&format!("from={last_secs}")).unwrap();
        let (lo, hi) = window_bounds(&inner, &q);
        assert_eq!(hi, inner.alerts.len());
        assert!(lo > 0, "early alerts must fall outside the window");
        // A window entirely after the log must be an empty range.
        let q = Query::parse(&format!(
            "from={}&to={}",
            last_secs + 3_600,
            last_secs + 7_200
        ))
        .unwrap();
        let (lo, hi) = window_bounds(&inner, &q);
        assert_eq!(lo, hi, "empty window must be an empty range");
    }

    #[test]
    fn host_and_filtered_predicates_compose() {
        let store = store_with_liberty();
        let inner = store.read();
        let q = Query::parse("host=sn*").unwrap();
        let on_sn: Vec<_> = inner
            .alerts
            .iter()
            .filter(|a| alert_matches(&inner, a, &q))
            .collect();
        assert!(!on_sn.is_empty());
        assert!(on_sn.iter().all(|a| inner.host_name(a).starts_with("sn")));

        let q = Query::parse("host=sn*&filtered=true").unwrap();
        let survivors = inner
            .alerts
            .iter()
            .filter(|a| alert_matches(&inner, a, &q))
            .count();
        assert!(survivors < on_sn.len(), "duplicate must be discarded");
    }

    #[test]
    fn rendered_body_is_valid_json_with_selected_fields() {
        let store = store_with_liberty();
        let inner = store.read();
        let q = Query::parse("fields=time,host,filtered&limit=2").unwrap();
        let body = render_alerts(&inner, &q);
        validate(&body).expect("body must be valid JSON");
        assert!(body.contains("\"total\":3"));
        assert!(body.contains("\"returned\":2"));
        assert!(body.contains("\"host\":\"sn373\""));
        assert!(!body.contains("\"category\""), "unselected field leaked");
    }
}
