//! `sclogd`: a long-running query/analytics server over the alert
//! store.
//!
//! The batch tools in this workspace answer "what happened in this
//! log file"; `sclogd` answers the operator's next question, "what is
//! happening on the cluster *now*", by keeping the tagged output of
//! the streaming ingest pipeline resident and queryable over plain
//! HTTP/1.1. It is hermetic like everything else here: `std::net`
//! sockets, a hand-rolled request parser with hard limits, the PR 3
//! bounded channel as the accept queue, and the workspace's own JSON
//! writer — no external crates.
//!
//! Layering, bottom-up:
//!
//! - [`store`] — the `RwLock`-guarded alert store; ingest runs are
//!   re-mapped into one shared host/category namespace on admission.
//! - [`hosts`] — the small glob matcher behind `host=` filters.
//! - [`query`] — query-string grammar; every mistake is a 400, never
//!   a panic.
//! - [`format`] — query evaluation and JSON rendering for `/alerts`.
//! - [`aggregate`] — materialized `/categories`, `/interarrival` and
//!   `/hotspots` bodies, cached by store version.
//! - [`http`] — request head parsing under hard caps, responses with
//!   `Content-Length` and `Connection: close`.
//! - `trace` — query normalization and the bounded slow-query log
//!   behind `/obs/queries`.
//! - `sampler` — the background thread feeding `/obs/timeline` with
//!   periodic recorder snapshots (model-checked shutdown handshake).
//! - [`server`] — accept thread, bounded admission (503 +
//!   `Retry-After` when saturated), worker pool, per-request traces,
//!   obs spans, shutdown.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod format;
pub mod hosts;
pub mod http;
pub mod query;
mod sampler;
pub mod server;
pub mod store;
mod trace;
