//! Query-string parsing for the alert endpoints.
//!
//! The grammar is deliberately small: `key=value` pairs joined by
//! `&`, percent-encoding and `+`-for-space decoded, unknown keys
//! rejected (a typo like `serverity=` silently matching everything is
//! worse than a 400). Every parse failure carries a message suitable
//! for the 400 response body.

use std::collections::HashMap;

use sclog_types::{AlertType, BglSeverity, Severity, SyslogSeverity, SystemId, Timestamp};

use crate::hosts::HostPattern;

/// Default `limit` for `/alerts` when the query names none.
pub const DEFAULT_LIMIT: usize = 100;
/// Hard ceiling on `limit` — a query server should never be talked
/// into serializing its whole store in one response.
pub const MAX_LIMIT: usize = 10_000;
/// Default `k` for `/hotspots`.
pub const DEFAULT_TOP_K: usize = 10;

/// A malformed query; the message goes into the 400 body verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryError(pub String);

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for QueryError {}

fn err(msg: impl Into<String>) -> QueryError {
    QueryError(msg.into())
}

/// Which severities a query asks for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeveritySelect {
    /// One concrete severity (including "-", the recorded-nothing case).
    Exact(Severity),
    /// Any severity at all (parameter absent).
    Any,
}

/// Whether the query wants raw tagged alerts, filter survivors, or both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilteredSelect {
    /// Only alerts that survived the spatio-temporal filter.
    Survivors,
    /// Only alerts the filter discarded.
    Discarded,
    /// Everything the rules tagged.
    All,
}

/// The fields `/alerts` can emit, in output order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Field {
    /// ISO-8601 timestamp.
    Time,
    /// Node name.
    Host,
    /// Category (rule) name.
    Category,
    /// Owning system.
    System,
    /// Hardware/software/indeterminate class.
    Class,
    /// Recorded severity.
    Severity,
    /// Message index within the system's parse order.
    Index,
    /// Whether the alert survived the filter.
    Filtered,
}

/// All fields, the default selection.
pub const ALL_FIELDS: [Field; 8] = [
    Field::Time,
    Field::Host,
    Field::Category,
    Field::System,
    Field::Class,
    Field::Severity,
    Field::Index,
    Field::Filtered,
];

impl Field {
    /// The JSON key this field is emitted under.
    pub fn key(self) -> &'static str {
        match self {
            Field::Time => "time",
            Field::Host => "host",
            Field::Category => "category",
            Field::System => "system",
            Field::Class => "class",
            Field::Severity => "severity",
            Field::Index => "index",
            Field::Filtered => "filtered",
        }
    }

    fn parse(name: &str) -> Result<Field, QueryError> {
        ALL_FIELDS
            .into_iter()
            .find(|f| f.key() == name)
            .ok_or_else(|| err(format!("unknown field {name:?}")))
    }
}

/// A parsed `/alerts` (or aggregation) query.
#[derive(Debug, Clone)]
pub struct Query {
    /// Inclusive lower time bound.
    pub from: Option<Timestamp>,
    /// Inclusive upper time bound.
    pub to: Option<Timestamp>,
    /// Host glob, `None` = any host.
    pub host: Option<HostPattern>,
    /// Exact category name, `None` = any.
    pub category: Option<String>,
    /// Owning system, `None` = any.
    pub system: Option<SystemId>,
    /// Hardware/software class, `None` = any.
    pub class: Option<AlertType>,
    /// Severity selection.
    pub severity: SeveritySelect,
    /// Filter-survivor selection.
    pub filtered: FilteredSelect,
    /// Fields to emit, in order.
    pub fields: Vec<Field>,
    /// Row cap for `/alerts`.
    pub limit: usize,
    /// Top-k for `/hotspots`.
    pub k: usize,
}

impl Default for Query {
    fn default() -> Self {
        Query {
            from: None,
            to: None,
            host: None,
            category: None,
            system: None,
            class: None,
            severity: SeveritySelect::Any,
            filtered: FilteredSelect::All,
            fields: ALL_FIELDS.to_vec(),
            limit: DEFAULT_LIMIT,
            k: DEFAULT_TOP_K,
        }
    }
}

impl Query {
    /// Parses the part of a request target after `?` (may be empty).
    ///
    /// # Errors
    ///
    /// Returns a [`QueryError`] describing the first problem found:
    /// bad percent-encoding, an unknown key, an unparsable value, or
    /// an inverted time window.
    pub fn parse(query_string: &str) -> Result<Query, QueryError> {
        let mut q = Query::default();
        for (key, value) in split_pairs(query_string)? {
            match key.as_str() {
                "from" => q.from = Some(parse_time(&value)?),
                "to" => q.to = Some(parse_time(&value)?),
                "host" => {
                    q.host = Some(HostPattern::parse(&value).map_err(err)?);
                }
                "category" => q.category = Some(value),
                "system" => {
                    q.system = Some(
                        value
                            .parse()
                            .map_err(|_| err(format!("unknown system {value:?}")))?,
                    )
                }
                "class" => q.class = Some(parse_class(&value)?),
                "severity" => q.severity = SeveritySelect::Exact(parse_severity(&value)?),
                "filtered" => {
                    q.filtered = match value.as_str() {
                        "true" | "1" => FilteredSelect::Survivors,
                        "false" | "0" => FilteredSelect::Discarded,
                        "all" => FilteredSelect::All,
                        other => {
                            return Err(err(format!(
                                "filtered must be true, false or all, got {other:?}"
                            )))
                        }
                    }
                }
                "fields" => {
                    let mut fields = Vec::new();
                    for name in value.split(',') {
                        let field = Field::parse(name)?;
                        if !fields.contains(&field) {
                            fields.push(field);
                        }
                    }
                    if fields.is_empty() {
                        return Err(err("fields must name at least one field"));
                    }
                    q.fields = fields;
                }
                "limit" => {
                    let n: usize = value
                        .parse()
                        .map_err(|_| err(format!("limit must be a number, got {value:?}")))?;
                    if n == 0 || n > MAX_LIMIT {
                        return Err(err(format!("limit must be in 1..={MAX_LIMIT}, got {n}")));
                    }
                    q.limit = n;
                }
                "k" => {
                    let n: usize = value
                        .parse()
                        .map_err(|_| err(format!("k must be a number, got {value:?}")))?;
                    if n == 0 || n > MAX_LIMIT {
                        return Err(err(format!("k must be in 1..={MAX_LIMIT}, got {n}")));
                    }
                    q.k = n;
                }
                other => return Err(err(format!("unknown query parameter {other:?}"))),
            }
        }
        if let (Some(from), Some(to)) = (q.from, q.to) {
            if from.as_micros() > to.as_micros() {
                return Err(err("inverted time window: from > to"));
            }
        }
        Ok(q)
    }
}

/// Splits `a=1&b=2` into decoded pairs. Duplicate keys are rejected —
/// last-wins vs first-wins ambiguity is how query bugs hide.
fn split_pairs(query_string: &str) -> Result<Vec<(String, String)>, QueryError> {
    let mut pairs = Vec::new();
    let mut seen = HashMap::new();
    if query_string.is_empty() {
        return Ok(pairs);
    }
    for raw in query_string.split('&') {
        if raw.is_empty() {
            continue;
        }
        let (k, v) = raw.split_once('=').unwrap_or((raw, ""));
        let key = percent_decode(k)?;
        let value = percent_decode(v)?;
        if seen.insert(key.clone(), ()).is_some() {
            return Err(err(format!("duplicate query parameter {key:?}")));
        }
        pairs.push((key, value));
    }
    Ok(pairs)
}

/// Decodes `%XX` escapes and `+` as space; rejects malformed escapes
/// and non-UTF-8 results.
pub fn percent_decode(s: &str) -> Result<String, QueryError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .ok_or_else(|| err(format!("truncated percent escape in {s:?}")))?;
                let hi = hex_val(hex[0])?;
                let lo = hex_val(hex[1])?;
                out.push(hi << 4 | lo);
                i += 3;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out)
        .map_err(|_| err(format!("percent escape decodes to invalid UTF-8 in {s:?}")))
}

fn hex_val(b: u8) -> Result<u8, QueryError> {
    match b {
        b'0'..=b'9' => Ok(b - b'0'),
        b'a'..=b'f' => Ok(b - b'a' + 10),
        b'A'..=b'F' => Ok(b - b'A' + 10),
        _ => Err(err(format!(
            "invalid hex digit {:?} in percent escape",
            b as char
        ))),
    }
}

/// Accepts epoch seconds (possibly fractional) or `YYYY-MM-DDTHH:MM:SS`.
fn parse_time(value: &str) -> Result<Timestamp, QueryError> {
    if let Ok(secs) = value.parse::<f64>() {
        let micros = secs * 1e6;
        if !micros.is_finite() || micros < 0.0 || micros > i64::MAX as f64 {
            return Err(err(format!("time out of range: {value:?}")));
        }
        return Ok(Timestamp::from_micros(micros as i64));
    }
    parse_iso(value).ok_or_else(|| {
        err(format!(
            "time must be epoch seconds or YYYY-MM-DDTHH:MM:SS, got {value:?}"
        ))
    })
}

fn parse_iso(value: &str) -> Option<Timestamp> {
    let bytes = value.as_bytes();
    if bytes.len() != 19 || bytes[4] != b'-' || bytes[7] != b'-' || bytes[13] != b':' {
        return None;
    }
    if bytes[10] != b'T' && bytes[10] != b' ' {
        return None;
    }
    if bytes[16] != b':' {
        return None;
    }
    let num = |range: std::ops::Range<usize>| value.get(range)?.parse::<u32>().ok();
    let year = num(0..4)?;
    let month = num(5..7)?;
    let day = num(8..10)?;
    let hour = num(11..13)?;
    let minute = num(14..16)?;
    let second = num(17..19)?;
    if !(1970..=9999).contains(&year)
        || !(1..=12).contains(&month)
        || day < 1
        || day > sclog_types::time::days_in_month(year as i32, month)
        || hour > 23
        || minute > 59
        || second > 59
    {
        return None;
    }
    Some(Timestamp::from_ymd_hms(
        year as i32,
        month,
        day,
        hour,
        minute,
        second,
    ))
}

fn parse_class(value: &str) -> Result<AlertType, QueryError> {
    match value.to_ascii_lowercase().as_str() {
        "hardware" | "h" => Ok(AlertType::Hardware),
        "software" | "s" => Ok(AlertType::Software),
        "indeterminate" | "i" => Ok(AlertType::Indeterminate),
        other => Err(err(format!(
            "class must be hardware, software or indeterminate, got {other:?}"
        ))),
    }
}

/// Accepts either scale's names; a collision like `error` or `warning`
/// resolves to the syslog scale, which is tried first.
fn parse_severity(value: &str) -> Result<Severity, QueryError> {
    if value == "-" || value.eq_ignore_ascii_case("none") {
        return Ok(Severity::None);
    }
    if let Ok(s) = value.parse::<SyslogSeverity>() {
        return Ok(Severity::Syslog(s));
    }
    if let Ok(s) = value.parse::<BglSeverity>() {
        return Ok(Severity::Bgl(s));
    }
    Err(err(format!("unknown severity {value:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_query_is_default() {
        let q = Query::parse("").unwrap();
        assert!(q.from.is_none() && q.to.is_none() && q.host.is_none());
        assert_eq!(q.limit, DEFAULT_LIMIT);
        assert_eq!(q.fields, ALL_FIELDS.to_vec());
        assert_eq!(q.filtered, FilteredSelect::All);
    }

    #[test]
    fn full_query_round_trips() {
        let q = Query::parse(
            "from=2005-06-12T07:00:00&to=2005-06-12T08:00:00&host=sn%2A&category=EXT3FS\
             &system=liberty&class=software&severity=error&filtered=true\
             &fields=time,host,category&limit=5",
        )
        .unwrap();
        assert!(q.from.unwrap().as_micros() < q.to.unwrap().as_micros());
        assert!(q.host.unwrap().matches("sn373"));
        assert_eq!(q.category.as_deref(), Some("EXT3FS"));
        assert_eq!(q.system, Some(SystemId::Liberty));
        assert_eq!(q.class, Some(AlertType::Software));
        assert_eq!(
            q.severity,
            SeveritySelect::Exact(Severity::Syslog(SyslogSeverity::Error))
        );
        assert_eq!(q.filtered, FilteredSelect::Survivors);
        assert_eq!(q.fields, vec![Field::Time, Field::Host, Field::Category]);
        assert_eq!(q.limit, 5);
    }

    #[test]
    fn epoch_seconds_and_plus_decoding() {
        let q = Query::parse("from=1118564400.5&host=a+b").unwrap();
        assert_eq!(q.from.unwrap().as_micros(), 1_118_564_400_500_000);
        assert!(q.host.unwrap().matches("a b"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "serverity=error",   // unknown key
            "from=yesterday",    // unparsable time
            "from=2&to=1",       // inverted window
            "limit=0",           // zero limit
            "limit=999999999",   // over cap
            "limit=ten",         // not a number
            "host=%zz",          // bad escape
            "host=%e2%28%a1",    // invalid UTF-8
            "host=",             // empty pattern
            "class=firmware",    // unknown class
            "severity=loud",     // unknown severity
            "system=cray",       // unknown system
            "filtered=maybe",    // bad tristate
            "fields=time,color", // unknown field
            "limit=1&limit=2",   // duplicate key
            "host=%4",           // truncated escape
        ] {
            assert!(Query::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn severity_name_collisions_resolve_to_syslog() {
        // `error` and `warning` exist on both scales; the parser must
        // pick one deterministically (syslog, tried first).
        assert_eq!(
            parse_severity("error").unwrap(),
            Severity::Syslog(SyslogSeverity::Error)
        );
        assert_eq!(
            parse_severity("warn").unwrap(),
            Severity::Syslog(SyslogSeverity::Warning)
        );
        // `fatal` is BG/L-only.
        assert_eq!(
            parse_severity("FATAL").unwrap(),
            Severity::Bgl(BglSeverity::Fatal)
        );
        assert_eq!(parse_severity("-").unwrap(), Severity::None);
    }
}
