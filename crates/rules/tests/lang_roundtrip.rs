//! Display/parse round-trip property for the rule language.
//!
//! Regression guard for the slash-escaping bug fixed in the seed
//! build: `Display` must re-escape `/` inside `/…/` literals exactly
//! the way the tokenizer strips it, so `parse(e.to_string()) == e`
//! for every tree. Generated regex bodies deliberately *include* `/`
//! (the interesting case) and exclude `\` — a trailing backslash in a
//! pattern would swallow the closing delimiter's escape and is not
//! printable as a `/…/` literal.

use sclog_rules::RuleExpr;
use sclog_testkit::{check, Gen};

/// Random regex body: printable, no backslash, slash-heavy enough to
/// exercise the escaping path constantly.
fn body(g: &mut Gen) -> String {
    let chars = [
        '/', '/', 'a', 'b', 'Z', '9', ' ', '.', '*', '[', ']', '^', '$', '(', ')', '|', '?', '+',
        '-', ':', '_',
    ];
    (0..g.usize_in(1..=8)).map(|_| *g.pick(&chars)).collect()
}

fn tree(g: &mut Gen, depth: usize) -> RuleExpr {
    let leaf = |g: &mut Gen| {
        if g.chance(0.5) {
            RuleExpr::Line(body(g))
        } else {
            RuleExpr::Field(g.usize_in(1..=9), body(g))
        }
    };
    if depth == 0 {
        return leaf(g);
    }
    match g.below(6) {
        0 | 1 => leaf(g),
        2 => RuleExpr::Not(Box::new(tree(g, depth - 1))),
        3 | 4 => RuleExpr::And(Box::new(tree(g, depth - 1)), Box::new(tree(g, depth - 1))),
        _ => RuleExpr::Or(Box::new(tree(g, depth - 1)), Box::new(tree(g, depth - 1))),
    }
}

#[test]
fn prop_display_parse_roundtrip() {
    check("RuleExpr display/parse round-trip", |g: &mut Gen| {
        let e = tree(g, 3);
        let printed = e.to_string();
        let reparsed = RuleExpr::parse(&printed)
            .unwrap_or_else(|err| panic!("printed form {printed:?} does not re-parse: {err}"));
        assert_eq!(reparsed, e, "round-trip changed the tree via {printed:?}");
    });
}

#[test]
fn roundtrip_slash_heavy_literals() {
    // The exact shape from the historical bug: slashes inside the
    // pattern must come back verbatim, not doubled or dropped.
    for pat in ["a/b", "//", "/", "x/y/z", "end/"] {
        let e = RuleExpr::Line(pat.to_string());
        assert_eq!(
            RuleExpr::parse(&e.to_string()).unwrap(),
            e,
            "pattern {pat:?}"
        );
        let f = RuleExpr::Field(3, pat.to_string());
        assert_eq!(
            RuleExpr::parse(&f.to_string()).unwrap(),
            f,
            "pattern {pat:?}"
        );
    }
}
