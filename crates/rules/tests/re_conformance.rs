//! Conformance suite for the in-tree regex engine against the rule
//! catalog: every pattern appearing in the 77 expert rules is compiled
//! and matched against every canonical example body of its system, and
//! the resulting match matrix is compared to a recorded golden file.
//!
//! This pins the engine's observable behaviour on exactly the pattern
//! population it exists to serve — a regression in the parser or the
//! Pike VM that changes any rule's matching shows up as a matrix diff.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! SCLOG_BLESS=1 cargo test -p sclog-rules --test re_conformance
//! ```

use sclog_rules::catalog::{catalog, example_body};
use sclog_rules::re::Regex;
use sclog_rules::RuleExpr;
use sclog_types::ALL_SYSTEMS;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/re_conformance.txt"
);

const FACTORS_GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/literal_factors.txt"
);

/// Collects the regex pattern literals of a rule expression, in
/// source order.
fn patterns(expr: &RuleExpr, out: &mut Vec<String>) {
    match expr {
        RuleExpr::Line(re) | RuleExpr::Field(_, re) => out.push(re.clone()),
        RuleExpr::Not(e) => patterns(e, out),
        RuleExpr::And(a, b) | RuleExpr::Or(a, b) => {
            patterns(a, out);
            patterns(b, out);
        }
    }
}

/// Renders the full match matrix: one line per (rule, pattern) pair,
/// with a 0/1 column per example body of the same system.
fn render_matrix() -> String {
    let mut out = String::new();
    out.push_str(
        "# regex conformance matrix: system<TAB>rule<TAB>pattern#<TAB>/pattern/<TAB>match bits\n\
         # one bit per canonical example body of the same system, in catalog order\n",
    );
    for &sys in &ALL_SYSTEMS {
        let specs = catalog(sys);
        let bodies: Vec<String> = specs.iter().map(example_body).collect();
        for spec in specs {
            let expr = RuleExpr::parse(spec.rule)
                .unwrap_or_else(|e| panic!("rule {} failed to parse: {e}", spec.name));
            let mut pats = Vec::new();
            patterns(&expr, &mut pats);
            assert!(!pats.is_empty(), "rule {} has no patterns", spec.name);
            for (i, pat) in pats.iter().enumerate() {
                let re = Regex::new(pat)
                    .unwrap_or_else(|e| panic!("rule {} pattern /{pat}/: {e}", spec.name));
                let bits: String = bodies
                    .iter()
                    .map(|b| if re.is_match(b) { '1' } else { '0' })
                    .collect();
                out.push_str(&format!("{sys}\t{}\t{i}\t/{pat}/\t{bits}\n", spec.name));
            }
        }
    }
    out
}

#[test]
fn every_catalog_pattern_matches_the_recorded_matrix() {
    let got = render_matrix();
    if std::env::var_os("SCLOG_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing; regenerate with SCLOG_BLESS=1");
    if got != want {
        // Diff line-by-line so the failing pattern is named.
        for (g, w) in got.lines().zip(want.lines()) {
            assert_eq!(g, w, "conformance matrix diverged");
        }
        assert_eq!(
            got.lines().count(),
            want.lines().count(),
            "conformance matrix gained or lost rows"
        );
    }
}

#[test]
fn matrix_covers_all_77_rules() {
    let got = render_matrix();
    let mut rules: Vec<(String, String)> = got
        .lines()
        .filter(|l| !l.starts_with('#'))
        .map(|l| {
            let mut parts = l.split('\t');
            (
                parts.next().unwrap().to_owned(),
                parts.next().unwrap().to_owned(),
            )
        })
        .collect();
    rules.dedup();
    assert_eq!(rules.len(), sclog_rules::catalog::total_categories());
    assert_eq!(rules.len(), 77, "the paper's 77 categories");
}

/// Renders the literal-factor table: one line per catalog rule with
/// the required literals the prescan extracts from its predicate
/// (`<none>` marks always-check rules).
fn render_factors() -> String {
    let mut out = String::new();
    out.push_str(
        "# required literal factors: system<TAB>rule<TAB>factors (| separated, <none> = always-check)\n",
    );
    for &sys in &ALL_SYSTEMS {
        for spec in catalog(sys) {
            let pred = sclog_rules::Predicate::parse(spec.rule)
                .unwrap_or_else(|e| panic!("rule {} failed to compile: {e}", spec.name));
            let factors = match pred.required_literals() {
                Some(lits) => lits.join("|"),
                None => "<none>".to_owned(),
            };
            out.push_str(&format!("{sys}\t{}\t{factors}\n", spec.name));
        }
    }
    out
}

#[test]
fn every_catalog_rule_factor_matches_the_recorded_golden() {
    let got = render_factors();
    if std::env::var_os("SCLOG_BLESS").is_some() {
        std::fs::write(FACTORS_GOLDEN_PATH, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(FACTORS_GOLDEN_PATH)
        .expect("golden file missing; regenerate with SCLOG_BLESS=1");
    for (g, w) in got.lines().zip(want.lines()) {
        assert_eq!(g, w, "literal-factor table diverged");
    }
    assert_eq!(
        got.lines().count(),
        want.lines().count(),
        "literal-factor table gained or lost rows"
    );
    // One row per category, all 77 present.
    assert_eq!(
        got.lines().filter(|l| !l.starts_with('#')).count(),
        sclog_rules::catalog::total_categories()
    );
}

#[test]
fn every_rule_tags_its_own_example_body_line() {
    // Stronger end-to-end statement than the matrix: the compiled
    // predicate (not just its patterns) accepts the category's own
    // canonical body when presented as the whole line.
    for &sys in &ALL_SYSTEMS {
        for spec in catalog(sys) {
            let pred = sclog_rules::Predicate::parse(spec.rule)
                .unwrap_or_else(|e| panic!("rule {} failed to compile: {e}", spec.name));
            // Field-position rules ($N ~ ...) need the real rendered
            // line; those are covered by the tagger's canonical-message
            // test. Here, restrict to position-independent rules. Some
            // patterns reference the facility prefix (e.g. Thunderbird
            // PBS_CON), so accept the facility-prefixed form too.
            if !spec.rule.contains('$') {
                let body = example_body(spec);
                let facility = sclog_rules::catalog::fill_template(
                    spec.facility,
                    sclog_rules::catalog::example_value,
                );
                let prefixed = format!("{facility}: {body}");
                assert!(
                    pred.matches(&body) || pred.matches(&prefixed),
                    "rule {} rejects its own example body {body:?}",
                    spec.name,
                );
            }
        }
    }
}
