//! Lazy-DFA conformance against the Pike VM, over exactly the pattern
//! population the engine serves: every regex in the 77-rule catalog is
//! determinized and matched against every system's canonical example
//! bodies plus testkit-sampled lines, and each resolved verdict must
//! equal the VM's. A forced-tiny cache then drives the eviction and
//! bailout paths while the tagger's output must stay bit-identical.

use sclog_rules::catalog::{catalog, example_body};
use sclog_rules::re::Regex;
use sclog_rules::{DfaCache, DfaProgram, RuleExpr, RuleSet, TagScratch};
use sclog_testkit::check;
use sclog_types::{CategoryRegistry, ALL_SYSTEMS};

/// Collects the regex pattern literals of a rule expression, in
/// source order.
fn patterns(expr: &RuleExpr, out: &mut Vec<String>) {
    match expr {
        RuleExpr::Line(re) | RuleExpr::Field(_, re) => out.push(re.clone()),
        RuleExpr::Not(e) => patterns(e, out),
        RuleExpr::And(a, b) | RuleExpr::Or(a, b) => {
            patterns(a, out);
            patterns(b, out);
        }
    }
}

/// Every distinct pattern in the whole catalog, compiled.
fn catalog_regexes() -> Vec<(String, Regex)> {
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    for &sys in &ALL_SYSTEMS {
        for spec in catalog(sys) {
            let expr = RuleExpr::parse(spec.rule)
                .unwrap_or_else(|e| panic!("rule {} failed to parse: {e}", spec.name));
            let mut pats = Vec::new();
            patterns(&expr, &mut pats);
            for pat in pats {
                if seen.insert(pat.clone()) {
                    let re = Regex::new(&pat)
                        .unwrap_or_else(|e| panic!("pattern /{pat}/ failed to compile: {e}"));
                    out.push((pat, re));
                }
            }
        }
    }
    out
}

/// Every canonical example body across all five systems.
fn all_bodies() -> Vec<String> {
    ALL_SYSTEMS
        .iter()
        .flat_map(|&sys| catalog(sys).iter().map(example_body).collect::<Vec<_>>())
        .collect()
}

#[test]
fn every_catalog_pattern_is_dfa_eligible() {
    // The catalog is the workload the DFA tier exists for; if a rule
    // edit ever pushes a pattern past the program-size bound, the
    // silent fall back to the VM should be a visible choice, not an
    // accident.
    for (pat, re) in catalog_regexes() {
        if !re.is_literal() {
            assert!(
                DfaProgram::new(&re).is_some(),
                "catalog pattern /{pat}/ no longer determinizes"
            );
        }
    }
}

#[test]
fn dfa_agrees_with_vm_on_all_golden_bodies() {
    let bodies = all_bodies();
    let mut resolved = 0u64;
    for (pat, re) in catalog_regexes() {
        let Some(prog) = DfaProgram::new(&re) else {
            continue;
        };
        let mut cache = DfaCache::default();
        for body in &bodies {
            if let Some(verdict) = cache.matches(&prog, body) {
                resolved += 1;
                assert_eq!(
                    verdict,
                    re.is_match(body),
                    "DFA and VM disagree: /{pat}/ on {body:?}"
                );
            }
        }
    }
    assert!(resolved > 1000, "the matrix should mostly resolve via DFA");
}

#[test]
fn dfa_agrees_with_vm_on_sampled_lines() {
    let regexes = catalog_regexes();
    let bodies = all_bodies();
    check("dfa == vm on sampled lines", |g| {
        // Half free-form ASCII lines, half mutated golden bodies so
        // the samples stay near the patterns' accept boundaries.
        let text = if g.chance(0.5) {
            g.ascii_line(0..=120)
        } else {
            let mut t: String = g.pick(&bodies).clone();
            if g.chance(0.5) && !t.is_empty() {
                t.truncate(g.usize_in(0..=t.len()));
            }
            t
        };
        for (pat, re) in &regexes {
            let Some(prog) = DfaProgram::new(re) else {
                continue;
            };
            let mut cache = DfaCache::default();
            if let Some(verdict) = cache.matches(&prog, &text) {
                assert_eq!(
                    verdict,
                    re.is_match(&text),
                    "DFA and VM disagree: /{pat}/ on {text:?}"
                );
            }
        }
    });
}

#[test]
fn tiny_cache_still_agrees_where_it_resolves() {
    let bodies = all_bodies();
    let mut bailed = 0u64;
    let mut resolved = 0u64;
    for (pat, re) in catalog_regexes() {
        let Some(prog) = DfaProgram::new(&re) else {
            continue;
        };
        // Two states cannot hold any interesting automaton: every
        // overflow must clear, count an eviction, and bail — never
        // return a wrong verdict.
        let mut cache = DfaCache::with_max_states(2);
        for body in &bodies {
            match cache.matches(&prog, body) {
                Some(verdict) => {
                    resolved += 1;
                    assert_eq!(
                        verdict,
                        re.is_match(body),
                        "tiny-cache DFA and VM disagree: /{pat}/ on {body:?}"
                    );
                }
                None => bailed += 1,
            }
        }
        assert!(cache.state_count() <= 2, "cache bound violated: /{pat}/");
    }
    assert!(bailed > 0, "a 2-state cache must overflow somewhere");
    assert!(resolved > 0, "trivial patterns still fit 2 states");
}

/// Tags every line with both rulesets and asserts identical outcomes.
fn tags_agree(reference: &RuleSet, other: &RuleSet, lines: &[String], label: &str) {
    let mut scratch_a = TagScratch::new();
    let mut scratch_b = TagScratch::new();
    for line in lines {
        assert_eq!(
            reference.tag_line_with(line, &mut scratch_a),
            other.tag_line_with(line, &mut scratch_b),
            "{label}: tag diverged on {line:?}"
        );
    }
}

#[test]
fn forced_tiny_cache_keeps_tagging_bit_identical() {
    let bodies = all_bodies();
    let mut bailouts = 0u64;
    for &sys in &ALL_SYSTEMS {
        let reference = RuleSet::builtin(sys, &mut CategoryRegistry::new());
        let tiny = RuleSet::builtin(sys, &mut CategoryRegistry::new()).with_dfa_cache_states(1);
        tags_agree(&reference, &tiny, &bodies, "tiny cache");

        // And the accounting: every VM-eligible execution is either a
        // DFA resolve or a bailout, on both configurations.
        let mut scratch = TagScratch::new();
        for body in &bodies {
            let _ = tiny.tag_line_with(body, &mut scratch);
        }
        let counts = scratch.take_counts();
        assert_eq!(
            counts.vm_eligible,
            counts.dfa_execs + counts.dfa_bailouts,
            "{sys}: tier accounting leaked"
        );
        bailouts += counts.dfa_bailouts;
    }
    // Per system the prefilter may leave only literal-tier rules
    // running, so the overflow pressure is asserted in aggregate.
    assert!(bailouts > 0, "a 1-state cache must bail somewhere");
}

#[test]
fn default_cache_resolves_the_catalog_and_accounts_exactly() {
    let bodies = all_bodies();
    for &sys in &ALL_SYSTEMS {
        let rules = RuleSet::builtin(sys, &mut CategoryRegistry::new());
        let mut scratch = TagScratch::new();
        for body in &bodies {
            let _ = rules.tag_line_with(body, &mut scratch);
        }
        let counts = scratch.take_counts();
        assert_eq!(
            counts.vm_eligible,
            counts.dfa_execs + counts.dfa_bailouts,
            "{sys}: tier accounting leaked"
        );
        if counts.vm_eligible > 0 {
            assert!(
                counts.dfa_execs > 0,
                "{sys}: the default cache should resolve eligible ASCII bodies"
            );
        }
        assert_eq!(
            counts.dfa_evictions, 0,
            "{sys}: the default bound must hold every catalog pattern"
        );
    }
}

#[test]
fn non_ascii_lines_tag_identically_via_vm_fallback() {
    // Lines with bytes >= 0x80 make the DFA bail mid-scan; the result
    // must still match the brute-force all-rules oracle.
    for &sys in &ALL_SYSTEMS {
        let rules = RuleSet::builtin(sys, &mut CategoryRegistry::new());
        let mut scratch = TagScratch::new();
        for spec in catalog(sys) {
            let body = example_body(spec);
            for decorated in [
                format!("naïve {body}"),
                format!("{body} — trailing dash"),
                format!("\u{FFFD}{body}\u{FFFD}"),
            ] {
                assert_eq!(
                    rules.tag_line_with(&decorated, &mut scratch),
                    rules.tag_line_unfiltered(&decorated),
                    "{sys}: prefiltered/DFA path diverged on {decorated:?}"
                );
            }
        }
        let counts = scratch.take_counts();
        assert_eq!(
            counts.vm_eligible,
            counts.dfa_execs + counts.dfa_bailouts,
            "{sys}: tier accounting leaked"
        );
    }
}

#[test]
fn sampled_lines_tag_identically_across_cache_bounds() {
    // Engine-level property: for random lines, the default ruleset,
    // a tiny-cache ruleset, and the unfiltered oracle all agree.
    for &sys in &ALL_SYSTEMS {
        let rules = RuleSet::builtin(sys, &mut CategoryRegistry::new());
        let tiny = RuleSet::builtin(sys, &mut CategoryRegistry::new()).with_dfa_cache_states(2);
        let bodies: Vec<String> = catalog(sys).iter().map(example_body).collect();
        check("tagging agrees across cache bounds", |g| {
            let mut scratch = TagScratch::new();
            let mut tiny_scratch = TagScratch::new();
            let line = if g.chance(0.5) {
                g.ascii_line(0..=120)
            } else {
                format!("{} {}", g.pick(&bodies), g.ascii_line(0..=20))
            };
            let got = rules.tag_line_with(&line, &mut scratch);
            assert_eq!(
                got,
                tiny.tag_line_with(&line, &mut tiny_scratch),
                "{sys}: cache bound changed the tag on {line:?}"
            );
            assert_eq!(
                got,
                rules.tag_line_unfiltered(&line),
                "{sys}: prefiltered path diverged on {line:?}"
            );
        });
    }
}
