//! Loading rulesets from text files.
//!
//! The paper's administrators supplied their heuristics "in the form of
//! regular expressions amenable for consumption by the logsurfer
//! utility". This module defines a plain-text ruleset format so a
//! deployment can maintain its expert rules outside the binary:
//!
//! ```text
//! # comment lines and blanks are ignored
//! # NAME  TYPE  RULE...
//! EXT_FS    H  /kernel: EXT3-fs error/
//! TOAST     I  /PANIC_SP WE ARE TOASTED!/
//! KERNPAN   I  ($4 ~ /KERNEL/ && /kernel panic/)
//! ```
//!
//! `TYPE` is the Table 4 code: `H`, `S`, or `I`.

use crate::lang::Predicate;
use crate::tagger::RuleSet;
use sclog_types::{AlertType, CategoryRegistry, SystemId};
use std::fmt;

/// An owned rule definition, as loaded from a ruleset file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleDef {
    /// Category name (also the rule's identity).
    pub name: String,
    /// Administrator-assigned subsystem type.
    pub alert_type: AlertType,
    /// Rule source in the language of [`crate::lang`].
    pub rule: String,
}

/// Errors from parsing a ruleset file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// A line did not have the `NAME TYPE RULE` shape.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// The type code was not `H`, `S`, or `I`.
    BadType {
        /// 1-based line number.
        line: usize,
        /// The offending code.
        code: String,
    },
    /// The rule source failed to parse or compile.
    BadRule {
        /// 1-based line number.
        line: usize,
        /// Category name.
        name: String,
        /// The underlying error message.
        message: String,
    },
    /// Two rules share a name.
    DuplicateName {
        /// 1-based line number of the second occurrence.
        line: usize,
        /// The duplicated name.
        name: String,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Malformed { line, text } => {
                write!(f, "line {line}: expected 'NAME TYPE RULE', got {text:?}")
            }
            LoadError::BadType { line, code } => {
                write!(f, "line {line}: type code must be H, S or I, got {code:?}")
            }
            LoadError::BadRule {
                line,
                name,
                message,
            } => {
                write!(f, "line {line}: rule {name} invalid: {message}")
            }
            LoadError::DuplicateName { line, name } => {
                write!(f, "line {line}: duplicate rule name {name}")
            }
        }
    }
}

impl std::error::Error for LoadError {}

/// Parses a ruleset file into rule definitions.
///
/// # Errors
///
/// Returns the first [`LoadError`] encountered; every rule is
/// compile-checked.
pub fn parse_ruleset(text: &str) -> Result<Vec<RuleDef>, LoadError> {
    let mut out: Vec<RuleDef> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(name), Some(code)) = (it.next(), it.next()) else {
            return Err(LoadError::Malformed {
                line: line_no,
                text: line.to_owned(),
            });
        };
        // The rule is everything after the code token (it may contain
        // whitespace).
        let rule = line[name.len()..].trim_start()[code.len()..].trim_start();
        if rule.is_empty() {
            return Err(LoadError::Malformed {
                line: line_no,
                text: line.to_owned(),
            });
        }
        let alert_type = match code {
            "H" => AlertType::Hardware,
            "S" => AlertType::Software,
            "I" => AlertType::Indeterminate,
            other => {
                return Err(LoadError::BadType {
                    line: line_no,
                    code: other.to_owned(),
                })
            }
        };
        if let Err(e) = Predicate::parse(rule) {
            return Err(LoadError::BadRule {
                line: line_no,
                name: name.to_owned(),
                message: e.to_string(),
            });
        }
        if out.iter().any(|d| d.name == name) {
            return Err(LoadError::DuplicateName {
                line: line_no,
                name: name.to_owned(),
            });
        }
        out.push(RuleDef {
            name: name.to_owned(),
            alert_type,
            rule: rule.to_owned(),
        });
    }
    Ok(out)
}

/// Renders rule definitions back to the file format.
pub fn render_ruleset(defs: &[RuleDef]) -> String {
    let width = defs.iter().map(|d| d.name.len()).max().unwrap_or(0);
    let mut out = String::from("# NAME  TYPE  RULE\n");
    for d in defs {
        out.push_str(&format!(
            "{:<width$}  {}  {}\n",
            d.name,
            d.alert_type.code(),
            d.rule
        ));
    }
    out
}

/// Exports a system's built-in catalog in the ruleset file format.
pub fn export_builtin(system: SystemId) -> String {
    let defs: Vec<RuleDef> = crate::catalog::catalog(system)
        .iter()
        .map(|s| RuleDef {
            name: s.name.to_owned(),
            alert_type: s.alert_type,
            rule: s.rule.to_owned(),
        })
        .collect();
    render_ruleset(&defs)
}

impl RuleSet {
    /// Compiles a ruleset from loaded definitions, registering their
    /// categories.
    ///
    /// # Panics
    ///
    /// Panics if a rule fails to compile — [`parse_ruleset`] validates
    /// them, so this only fires on hand-built `RuleDef`s.
    pub fn from_defs(system: SystemId, defs: &[RuleDef], registry: &mut CategoryRegistry) -> Self {
        Self::from_loaded(system, defs, registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sclog_types::{Message, NodeId, Severity, Timestamp};

    #[test]
    fn parses_and_compiles() {
        let defs = parse_ruleset(
            "# a comment\n\
             \n\
             EXT_FS  H  /kernel: EXT3-fs error/\n\
             KERNPAN I  ($4 ~ /KERNEL/ && /kernel panic/)\n",
        )
        .unwrap();
        assert_eq!(defs.len(), 2);
        assert_eq!(defs[0].name, "EXT_FS");
        assert_eq!(defs[0].alert_type, AlertType::Hardware);
        assert!(defs[1].rule.contains("$4"));
    }

    #[test]
    fn errors_are_located() {
        let err = parse_ruleset("GOOD H /x/\nBAD\n").unwrap_err();
        assert!(matches!(err, LoadError::Malformed { line: 2, .. }), "{err}");
        let err = parse_ruleset("A X /x/\n").unwrap_err();
        assert!(matches!(err, LoadError::BadType { line: 1, .. }));
        let err = parse_ruleset("A H /[unclosed/\n").unwrap_err();
        assert!(matches!(err, LoadError::BadRule { line: 1, .. }));
        assert!(err.to_string().contains('A'));
        let err = parse_ruleset("A H /x/\nA S /y/\n").unwrap_err();
        assert!(matches!(err, LoadError::DuplicateName { line: 2, .. }));
    }

    #[test]
    fn render_parse_round_trip() {
        let defs = parse_ruleset("A H /x/\nB S ($1 ~ /y/)\n").unwrap();
        let text = render_ruleset(&defs);
        let back = parse_ruleset(&text).unwrap();
        assert_eq!(defs, back);
    }

    #[test]
    fn builtin_export_round_trips_and_tags_identically() {
        for &sys in &sclog_types::ALL_SYSTEMS {
            let text = export_builtin(sys);
            let defs = parse_ruleset(&text)
                .unwrap_or_else(|e| panic!("{sys}: exported catalog failed to reload: {e}"));
            assert_eq!(defs.len(), crate::catalog::catalog(sys).len(), "{sys}");

            // Loaded rules tag the canonical bodies identically to the
            // builtin ruleset.
            let mut reg_a = CategoryRegistry::new();
            let builtin = RuleSet::builtin(sys, &mut reg_a);
            let mut reg_b = CategoryRegistry::new();
            let loaded = RuleSet::from_defs(sys, &defs, &mut reg_b);
            let mut interner = sclog_types::SourceInterner::new();
            let src = interner.intern("n1");
            for spec in crate::catalog::catalog(sys) {
                let msg = Message::new(
                    sys,
                    Timestamp::from_ymd_hms(2006, 1, 1, 0, 0, 0),
                    src,
                    crate::catalog::fill_template(spec.facility, crate::catalog::example_value),
                    match spec.severity {
                        crate::catalog::CatSeverity::None => Severity::None,
                        crate::catalog::CatSeverity::Bgl(s) => Severity::Bgl(s),
                        crate::catalog::CatSeverity::Syslog(s) => Severity::Syslog(s),
                    },
                    crate::catalog::example_body(spec),
                );
                let a = builtin
                    .tag_message(&msg, &interner)
                    .map(|c| reg_a.name(c).to_owned());
                let b = loaded
                    .tag_message(&msg, &interner)
                    .map(|c| reg_b.name(c).to_owned());
                assert_eq!(a, b, "{sys}: {} tags differ", spec.name);
            }
        }
        let _ = NodeId::from_index(0);
    }
}
