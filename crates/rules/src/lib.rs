//! Expert alert-tagging rules.
//!
//! Section 3.2 of the paper: "the heuristics provided by the
//! administrators were often in the form of regular expressions amenable
//! for consumption by the logsurfer utility … Examples of
//! alert-identifying rules using awk syntax include:
//!
//! ```text
//! /kernel: EXT3-fs error/
//! /PANIC_SP WE ARE TOASTED!/
//! ($5 ~ /KERNEL/ && /kernel panic/)
//! ```
//!
//! This crate implements that rule language ([`lang`]), a tagging engine
//! that applies a per-system ruleset to parsed messages ([`tagger`]),
//! the severity-field baseline tagger the paper compares against
//! ([`baseline`]), and the encoded rulesets for all 77 categories of
//! Table 4 ([`mod@catalog`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod catalog;
pub mod discover;
pub mod lang;
pub mod loader;
pub mod re;
pub mod tagger;

pub use baseline::{Confusion, SeverityBaseline};
pub use catalog::{catalog, CategorySpec};
pub use discover::{mine_templates, Template};
pub use lang::{Predicate, RuleExpr};
pub use loader::{export_builtin, parse_ruleset, render_ruleset, LoadError, RuleDef};
pub use tagger::{RuleSet, TaggedLog};
