//! Expert alert-tagging rules.
//!
//! Section 3.2 of the paper: "the heuristics provided by the
//! administrators were often in the form of regular expressions amenable
//! for consumption by the logsurfer utility … Examples of
//! alert-identifying rules using awk syntax include:
//!
//! ```text
//! /kernel: EXT3-fs error/
//! /PANIC_SP WE ARE TOASTED!/
//! ($5 ~ /KERNEL/ && /kernel panic/)
//! ```
//!
//! This crate implements that rule language ([`lang`]), a tagging engine
//! that applies a per-system ruleset to parsed messages ([`tagger`]),
//! the severity-field baseline tagger the paper compares against
//! ([`baseline`]), and the encoded rulesets for all 77 categories of
//! Table 4 ([`mod@catalog`]).
//!
//! # Prescan architecture
//!
//! Applying up to 77 regexes to every one of 178 million lines is the
//! hot loop of the whole reproduction, so the tagger does not run the
//! rules directly. At ruleset construction, [`re`] extracts from each
//! rule a *required literal factor* — a set of strings such that every
//! matching line must contain at least one of them — and [`prefilter`]
//! compiles all factors into a single in-tree Aho-Corasick automaton.
//! Tagging a line is then one automaton scan producing a candidate-rule
//! bitset; only candidate rules (plus the few factor-less rules in an
//! always-check set) run their regexes, in catalog order, so the first
//! match wins exactly as in the brute-force path. Per-message work is
//! allocation-free: rendering, field splitting and the candidate set
//! all reuse a caller-owned [`TagScratch`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod catalog;
pub mod dfa;
pub mod discover;
pub mod lang;
pub mod loader;
pub mod pool;
pub mod prefilter;
pub mod re;
pub mod tagger;

pub use baseline::{Confusion, SeverityBaseline};
pub use catalog::{catalog, CategorySpec};
pub use dfa::{DfaCache, DfaProgram};
pub use discover::{mine_templates, Template};
pub use lang::{Predicate, RuleExpr};
pub use loader::{export_builtin, parse_ruleset, render_ruleset, LoadError, RuleDef};
pub use pool::{LineBatch, LineRef, PoolClient, TagPool, TaggedBatch};
pub use prefilter::AhoCorasick;
pub use re::{ProgInst, Regex};
pub use tagger::{RuleSet, TagCounts, TagScratch, TaggedLog};
