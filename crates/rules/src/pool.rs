//! A persistent scoped worker pool for batched tagging.
//!
//! [`RuleSet::tag_messages_parallel`] used to spawn fresh threads for
//! every call — fine when one call tags a whole log, but fatally
//! expensive once the prefiltered engine made per-batch work cheap
//! (`BENCH_tagger.json` showed the 4-thread path *losing* to serial)
//! and once the streaming pipeline started submitting thousands of
//! small batches. [`TagPool`] fixes both: workers are spawned once per
//! [`TagPool::scope`] and then tag any number of batches out of a
//! shared bounded queue, each with its own long-lived [`TagScratch`].
//!
//! Two batch shapes are supported, matching the two pipeline sources:
//!
//! * **Message batches** ([`PoolClient::submit_messages`]) — borrowed
//!   slices of an in-memory log, rendered and tagged exactly as
//!   [`RuleSet::tag_messages`] would, optionally fusing ground-truth
//!   attachment into the tag loop.
//! * **Line batches** ([`PoolClient::submit_lines`]) — owned text
//!   chunks from a streaming reader, tagged on the *raw line*. This is
//!   the paper-faithful path (the experts' awk rules ran on raw log
//!   lines) and skips re-rendering parsed messages back to text, which
//!   is most of the batch tagging cost.
//!
//! The job queue is bounded: submitting into a full pool blocks, which
//! is the backpressure that keeps a fast producer from buffering an
//! unbounded amount of in-flight text.

use crate::tagger::{RuleSet, TagScratch};
use sclog_obs::{Counter, Recorder, Stage, ThreadRecorder};
use sclog_sync::{thread, Condvar, Mutex};
use sclog_types::{Alert, FailureId, Message, NodeId, SourceInterner, Timestamp};
use std::collections::VecDeque;

/// One parsed line within a [`LineBatch`]: where its raw text lives in
/// the batch's text block, plus the header fields an [`Alert`] needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineRef {
    /// Byte offset of the line's start in [`LineBatch::text`].
    pub start: usize,
    /// Byte offset one past the line's end.
    pub end: usize,
    /// Global index of this line's message in the parsed sequence.
    pub index: usize,
    /// Parsed timestamp.
    pub time: Timestamp,
    /// Parsed (interned) source.
    pub source: NodeId,
}

/// An owned chunk of raw log text with the parse metadata of its
/// lines. Only successfully parsed lines carry a [`LineRef`]; rejected
/// and empty lines are simply absent, matching the batch path (which
/// never sees them as messages either).
#[derive(Debug, Default)]
pub struct LineBatch {
    /// The chunk's raw text (line spans index into this).
    pub text: String,
    /// Parsed lines, in input order.
    pub lines: Vec<LineRef>,
}

/// A tagged batch, identified by the submission sequence number the
/// pool assigned — consumers reorder completions by `seq` to recover
/// submission order.
#[derive(Debug)]
pub struct TaggedBatch {
    /// Submission sequence number (0, 1, 2, … in submit order).
    pub seq: u64,
    /// Number of messages/lines the batch carried.
    pub len: usize,
    /// Alerts tagged from the batch, in batch order, with
    /// `message_index` already global.
    pub alerts: Vec<Alert>,
}

enum Job<'env> {
    Messages {
        seq: u64,
        base: usize,
        msgs: &'env [Message],
        interner: &'env SourceInterner,
        /// Ground truth aligned with `msgs` (so `truth[i]` belongs to
        /// message `base + i`); fused into the tag loop when present.
        truth: Option<&'env [Option<FailureId>]>,
    },
    Lines {
        seq: u64,
        batch: LineBatch,
    },
}

struct PoolState<'env> {
    jobs: VecDeque<Job<'env>>,
    results: VecDeque<TaggedBatch>,
    next_seq: u64,
    delivered: u64,
    closed: bool,
    /// A worker died mid-batch: its result can never arrive, so every
    /// blocked peer must wake and bail instead of waiting out its
    /// Condvar.
    aborted: bool,
}

struct PoolShared<'env> {
    state: Mutex<PoolState<'env>>,
    job_cap: usize,
    job_ready: Condvar,
    job_space: Condvar,
    result_ready: Condvar,
}

impl<'env> PoolShared<'env> {
    /// Locks the pool state, tolerating a poisoned mutex: a dying
    /// worker poisons it merely by taking the lock inside its abort
    /// guard, and the `aborted` flag — not the poison bit — is the
    /// pool's real death signal. Treating poison as fatal here would
    /// turn every cleanup path (including `CloseGuard::drop`, where a
    /// second panic aborts the process) into a crash.
    fn lock(&self) -> sclog_sync::MutexGuard<'_, PoolState<'env>> {
        self.state
            .lock()
            .unwrap_or_else(sclog_sync::PoisonError::into_inner)
    }
}

/// Handle for submitting batches to a running [`TagPool`] scope and
/// collecting tagged results. Shareable across threads (`&PoolClient`
/// is enough), so one stage can submit while another drains.
pub struct PoolClient<'pool, 'env> {
    shared: &'pool PoolShared<'env>,
}

/// The pool entry point; see [`TagPool::scope`].
#[derive(Debug)]
pub struct TagPool;

/// Default bound on queued (not yet claimed) jobs per worker.
pub const JOBS_PER_WORKER: usize = 2;

impl TagPool {
    /// Runs `f` with a pool of `threads` persistent workers tagging
    /// against `rules`. Workers live for the whole call: batches
    /// submitted through the [`PoolClient`] are tagged out of a shared
    /// queue (bounded at `job_cap`, with submission blocking while
    /// full) and handed back as [`TaggedBatch`]es in completion order.
    ///
    /// When `f` returns, the pool drains remaining jobs and joins its
    /// workers; results not collected by then are dropped.
    ///
    /// # Panics
    ///
    /// Panics if `threads` or `job_cap` is zero, or if a worker thread
    /// panics (a rule engine bug).
    pub fn scope<'env, R>(
        rules: &'env RuleSet,
        threads: usize,
        job_cap: usize,
        f: impl FnOnce(&PoolClient<'_, 'env>) -> R,
    ) -> R {
        Self::scope_with(rules, threads, job_cap, &Recorder::disabled(), f)
    }

    /// [`TagPool::scope`] with an observability recorder: each worker
    /// records its jobs, busy/queue-wait time and the prefilter
    /// effectiveness tallies ([`crate::TagCounts`]) against the `tag`
    /// stage, under a `tagger/{i}` thread label. Tallies stay plain
    /// `u64`s inside the per-worker [`TagScratch`] during a batch and
    /// are flushed to the recorder shard once per job, so an enabled
    /// recorder adds no per-line cost to the tag loop; a disabled one
    /// ([`Recorder::disabled`]) makes this identical to
    /// [`TagPool::scope`].
    ///
    /// # Panics
    ///
    /// Panics if `threads` or `job_cap` is zero, or if a worker thread
    /// panics (a rule engine bug).
    pub fn scope_with<'env, R>(
        rules: &'env RuleSet,
        threads: usize,
        job_cap: usize,
        recorder: &Recorder,
        f: impl FnOnce(&PoolClient<'_, 'env>) -> R,
    ) -> R {
        assert!(threads > 0, "need at least one worker");
        assert!(job_cap > 0, "job queue capacity must be positive");
        // Register every metric before the workers spawn — the first
        // per-thread shard seals the recorder's registry.
        let metrics = PoolMetrics::register(recorder);
        let shared = PoolShared {
            state: Mutex::new(PoolState {
                jobs: VecDeque::new(),
                results: VecDeque::new(),
                next_seq: 0,
                delivered: 0,
                closed: false,
                aborted: false,
            }),
            job_cap,
            job_ready: Condvar::new(),
            job_space: Condvar::new(),
            result_ready: Condvar::new(),
        };
        thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|i| {
                    let shared = &shared;
                    thread::spawn_in(scope, move || {
                        worker(shared, rules, recorder.thread(&worker_label(i)), metrics)
                    })
                })
                .collect();
            let client = PoolClient { shared: &shared };
            // Close on every exit path: if `f` panics without this,
            // workers would wait on the job queue forever and the
            // scope's implicit join would deadlock the unwind.
            let guard = CloseGuard(&shared);
            let out = f(&client);
            drop(guard);
            for h in handles {
                h.join().expect("tag pool worker panicked");
            }
            out
        })
    }
}

impl<'env> PoolClient<'_, 'env> {
    /// Submits a borrowed message slice for render-and-tag processing;
    /// `base` is the global index of `msgs[0]`, and `truth`, when
    /// given, must align with `msgs`. Blocks while the job queue is
    /// full. Returns the batch's sequence number.
    ///
    /// # Panics
    ///
    /// Panics if `truth` is present but its length differs from
    /// `msgs`, or if called after [`PoolClient::close`].
    pub fn submit_messages(
        &self,
        base: usize,
        msgs: &'env [Message],
        interner: &'env SourceInterner,
        truth: Option<&'env [Option<FailureId>]>,
    ) -> u64 {
        if let Some(t) = truth {
            assert_eq!(t.len(), msgs.len(), "truth must align with messages");
        }
        self.submit_with(|seq| Job::Messages {
            seq,
            base,
            msgs,
            interner,
            truth,
        })
    }

    /// Submits an owned line batch for raw-line tagging. Blocks while
    /// the job queue is full. Returns the batch's sequence number.
    ///
    /// # Panics
    ///
    /// Panics if called after [`PoolClient::close`].
    pub fn submit_lines(&self, batch: LineBatch) -> u64 {
        self.submit_with(|seq| Job::Lines { seq, batch })
    }

    fn submit_with(&self, job: impl FnOnce(u64) -> Job<'env>) -> u64 {
        let mut state = self.shared.lock();
        while state.jobs.len() >= self.shared.job_cap {
            assert!(!state.aborted, "tag pool aborted: a worker died");
            state = self
                .shared
                .job_space
                .wait(state)
                .unwrap_or_else(sclog_sync::PoisonError::into_inner);
        }
        assert!(!state.aborted, "tag pool aborted: a worker died");
        assert!(!state.closed, "submit after close");
        let seq = state.next_seq;
        state.next_seq += 1;
        state.jobs.push_back(job(seq));
        drop(state);
        self.shared.job_ready.notify_one();
        seq
    }

    /// Receives the next completed batch, blocking until one is ready.
    ///
    /// Returns `None` after [`PoolClient::close`] once every submitted
    /// batch has been delivered — the end-of-stream signal for a
    /// consumer running on its own thread. Also returns `None` if a
    /// worker died mid-batch: its result can never arrive, so the
    /// stream ends early and a sequence-ordering consumer (see
    /// `Reassembler::truncation` in `sclog-core`) diagnoses the gap
    /// instead of blocking forever.
    pub fn recv(&self) -> Option<TaggedBatch> {
        let mut state = self.shared.lock();
        loop {
            if let Some(r) = state.results.pop_front() {
                state.delivered += 1;
                return Some(r);
            }
            if state.aborted {
                return None;
            }
            if state.closed && state.delivered == state.next_seq {
                return None;
            }
            state = self
                .shared
                .result_ready
                .wait(state)
                .unwrap_or_else(sclog_sync::PoisonError::into_inner);
        }
    }

    /// Receives a completed batch if one is ready, without blocking —
    /// lets a submitting loop drain results opportunistically.
    pub fn try_recv(&self) -> Option<TaggedBatch> {
        let mut state = self.shared.lock();
        let r = state.results.pop_front();
        if r.is_some() {
            state.delivered += 1;
        }
        r
    }

    /// Marks the job stream finished: workers exit once the queue
    /// drains, and [`PoolClient::recv`] returns `None` after the last
    /// result. Called automatically when the scope closure returns;
    /// call it earlier from a producer stage that knows it is done.
    pub fn close(&self) {
        let mut state = self.shared.lock();
        state.closed = true;
        drop(state);
        #[cfg(sclog_model)]
        if sclog_sync::model::mutation("pool_close_no_notify") {
            // Seeded bug: close without waking anyone — idle workers
            // stay parked on `job_ready` and a draining consumer on
            // `result_ready`, deadlocking the scope's join.
            return;
        }
        self.shared.job_ready.notify_all();
        self.shared.result_ready.notify_all();
    }
}

impl std::fmt::Debug for PoolClient<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolClient")
            .field("job_cap", &self.shared.job_cap)
            .finish()
    }
}

struct CloseGuard<'pool, 'env>(&'pool PoolShared<'env>);

impl Drop for CloseGuard<'_, '_> {
    fn drop(&mut self) {
        PoolClient { shared: self.0 }.close();
    }
}

/// Worker-exit guard: dropped during a panic (a rule-engine bug took
/// the worker down mid-batch), it flips the pool to `aborted` and
/// wakes every Condvar, so blocked submitters, receivers and idle
/// workers all observe the death promptly instead of deadlocking the
/// scope's join. A normal worker exit leaves the pool untouched.
struct AbortOnPanic<'pool, 'env>(&'pool PoolShared<'env>);

impl Drop for AbortOnPanic<'_, '_> {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        let mut state = match self.0.state.lock() {
            Ok(guard) => guard,
            // The lock is only poisoned by another dying worker, whose
            // state is still fine for setting a flag.
            Err(poisoned) => poisoned.into_inner(),
        };
        state.aborted = true;
        drop(state);
        self.0.job_ready.notify_all();
        self.0.job_space.notify_all();
        self.0.result_ready.notify_all();
    }
}

/// Metric handles a pool registers up front and hands to each worker.
#[derive(Debug, Clone, Copy)]
struct PoolMetrics {
    stage: Stage,
    lines: Counter,
    bytes: Counter,
    gated_out: Counter,
    vm_execs: Counter,
    matches: Counter,
    vm_eligible: Counter,
    dfa_execs: Counter,
    dfa_bailouts: Counter,
    dfa_evictions: Counter,
}

impl PoolMetrics {
    fn register(rec: &Recorder) -> Self {
        PoolMetrics {
            stage: rec.stage("tag"),
            lines: rec.counter("tagger.lines"),
            bytes: rec.counter("tagger.bytes"),
            gated_out: rec.counter("tagger.prefilter.gated_out"),
            vm_execs: rec.counter("tagger.prefilter.vm_execs"),
            matches: rec.counter("tagger.prefilter.matches"),
            vm_eligible: rec.counter("tagger.vm.eligible"),
            dfa_execs: rec.counter("tagger.dfa.execs"),
            dfa_bailouts: rec.counter("tagger.dfa.bailouts"),
            dfa_evictions: rec.counter("tagger.dfa.cache_evictions"),
        }
    }

    /// Flushes one batch's scratch tallies into the worker's shard.
    fn flush(&self, tr: &ThreadRecorder, counts: crate::TagCounts) {
        tr.add(self.lines, counts.lines);
        tr.add(self.bytes, counts.bytes);
        tr.add(self.gated_out, counts.gated_out);
        tr.add(self.vm_execs, counts.vm_execs);
        tr.add(self.matches, counts.matches);
        tr.add(self.vm_eligible, counts.vm_eligible);
        tr.add(self.dfa_execs, counts.dfa_execs);
        tr.add(self.dfa_bailouts, counts.dfa_bailouts);
        tr.add(self.dfa_evictions, counts.dfa_evictions);
    }
}

/// Report label for worker `i`.
fn worker_label(i: usize) -> String {
    format!("tagger/{i}")
}

fn worker(shared: &PoolShared<'_>, rules: &RuleSet, tr: ThreadRecorder, metrics: PoolMetrics) {
    let _abort = AbortOnPanic(shared);
    let mut scratch = TagScratch::new();
    loop {
        let job = {
            // Time spent here is queue wait: the worker is starved (or
            // draining at close), not working. The wake-up notify is
            // inside the span so lock handoff counts as wait too.
            let _wait = tr.wait_span(metrics.stage);
            let mut state = shared.lock();
            let job = loop {
                if state.aborted {
                    return;
                }
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.closed {
                    return;
                }
                state = shared
                    .job_ready
                    .wait(state)
                    .unwrap_or_else(sclog_sync::PoisonError::into_inner);
            };
            drop(state);
            shared.job_space.notify_one();
            job
        };
        let result = {
            let _busy = tr.span(metrics.stage);
            run_job(rules, &mut scratch, job)
        };
        let counts = scratch.take_counts();
        tr.stage_items(metrics.stage, result.len as u64, counts.bytes);
        metrics.flush(&tr, counts);
        {
            // Delivering the result contends on the same pool lock the
            // consumer drains — queue wait, not tagging work.
            let _wait = tr.wait_span(metrics.stage);
            let mut state = shared.lock();
            state.results.push_back(result);
            drop(state);
            shared.result_ready.notify_one();
        }
    }
}

fn run_job(rules: &RuleSet, scratch: &mut TagScratch, job: Job<'_>) -> TaggedBatch {
    match job {
        Job::Messages {
            seq,
            base,
            msgs,
            interner,
            truth,
        } => {
            let mut alerts = Vec::new();
            for (i, msg) in msgs.iter().enumerate() {
                if let Some(category) = rules.tag_message_with(msg, interner, scratch) {
                    let mut alert = Alert::new(msg.time, msg.source, category, base + i);
                    if let Some(truth) = truth {
                        alert.failure = truth[i];
                    }
                    alerts.push(alert);
                }
            }
            TaggedBatch {
                seq,
                len: msgs.len(),
                alerts,
            }
        }
        Job::Lines { seq, batch } => {
            let mut alerts = Vec::new();
            for line in &batch.lines {
                let raw = &batch.text[line.start..line.end];
                if let Some(category) = rules.tag_line_with(raw, scratch) {
                    alerts.push(Alert::new(line.time, line.source, category, line.index));
                }
            }
            TaggedBatch {
                seq,
                len: batch.lines.len(),
                alerts,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sclog_types::{CategoryRegistry, Severity, SystemId};

    fn liberty_fixture() -> (RuleSet, SourceInterner, Vec<Message>) {
        let mut registry = CategoryRegistry::new();
        let rules = RuleSet::builtin(SystemId::Liberty, &mut registry);
        let mut interner = SourceInterner::new();
        let source = interner.intern("ln4");
        let msgs: Vec<Message> = (0..1000)
            .map(|i| {
                let body = if i % 5 == 0 {
                    "task_check, cannot tm_reply to 9 task 1"
                } else {
                    "quiet line with nothing of note"
                };
                Message::new(
                    SystemId::Liberty,
                    Timestamp::from_secs(1_102_809_600 + i),
                    source,
                    "pbs_mom",
                    Severity::None,
                    body,
                )
            })
            .collect();
        (rules, interner, msgs)
    }

    #[test]
    fn pool_matches_serial_over_many_batches() {
        let (rules, interner, msgs) = liberty_fixture();
        let serial = rules.tag_messages(&msgs, &interner);
        // Force a real multi-worker pool regardless of host CPU count.
        let mut batches = TagPool::scope(&rules, 3, 2, |pool| {
            let mut out = Vec::new();
            let mut submitted = 0usize;
            for (k, chunk) in msgs.chunks(64).enumerate() {
                pool.submit_messages(k * 64, chunk, &interner, None);
                submitted += 1;
                while let Some(b) = pool.try_recv() {
                    out.push(b);
                }
            }
            while out.len() < submitted {
                out.push(pool.recv().expect("all batches deliverable"));
            }
            out
        });
        batches.sort_by_key(|b| b.seq);
        let merged: Vec<Alert> = batches.into_iter().flat_map(|b| b.alerts).collect();
        assert_eq!(merged, serial.alerts);
    }

    #[test]
    fn truth_is_fused_when_given() {
        let (rules, interner, msgs) = liberty_fixture();
        let truth: Vec<Option<FailureId>> = (0..msgs.len() as u64)
            .map(|i| (i % 5 == 0).then_some(FailureId(i)))
            .collect();
        let alerts = TagPool::scope(&rules, 2, 4, |pool| {
            pool.submit_messages(0, &msgs, &interner, Some(&truth));
            pool.recv().expect("one batch").alerts
        });
        assert!(!alerts.is_empty());
        for a in &alerts {
            assert_eq!(a.failure, truth[a.message_index], "fused truth joins");
        }
    }

    #[test]
    fn line_batches_tag_raw_text() {
        let (rules, _, _) = liberty_fixture();
        let l1 = "Mar  7 14:30:05 dn228 pbs_mom: task_check, cannot tm_reply to 4418 task 1";
        let l2 = "Mar  7 14:30:06 dn228 pbs_mom: all quiet";
        let mut text = String::new();
        let mut lines = Vec::new();
        for (i, l) in [l1, l2].iter().enumerate() {
            let start = text.len();
            text.push_str(l);
            lines.push(LineRef {
                start,
                end: text.len(),
                index: 10 + i,
                time: Timestamp::from_secs(1_102_809_600 + i as i64),
                source: NodeId::from_index(3),
            });
        }
        let batch = TagPool::scope(&rules, 2, 2, |pool| {
            pool.submit_lines(LineBatch { text, lines });
            pool.recv().expect("one batch")
        });
        assert_eq!(batch.len, 2);
        assert_eq!(batch.alerts.len(), 1, "only the PBS line tags");
        assert_eq!(batch.alerts[0].message_index, 10);
        assert_eq!(batch.alerts[0].source, NodeId::from_index(3));
    }

    #[test]
    fn recv_returns_none_after_close_and_drain() {
        let (rules, interner, msgs) = liberty_fixture();
        TagPool::scope(&rules, 2, 2, |pool| {
            pool.submit_messages(0, &msgs[..10], &interner, None);
            pool.close();
            assert!(pool.recv().is_some());
            assert!(pool.recv().is_none());
            assert!(pool.recv().is_none(), "end of stream is sticky");
        });
    }

    #[test]
    fn consumer_on_other_thread_sees_all_batches() {
        let (rules, interner, msgs) = liberty_fixture();
        let n_batches = 10;
        let total = TagPool::scope(&rules, 2, 2, |pool| {
            std::thread::scope(|s| {
                let consumer = s.spawn(|| {
                    let mut seen = 0u64;
                    while pool.recv().is_some() {
                        seen += 1;
                    }
                    seen
                });
                for (k, chunk) in msgs.chunks(msgs.len() / n_batches).enumerate() {
                    pool.submit_messages(k, chunk, &interner, None);
                }
                pool.close();
                consumer.join().expect("consumer")
            })
        });
        assert_eq!(total, n_batches as u64);
    }

    #[test]
    fn seq_numbers_follow_submission_order() {
        let (rules, interner, msgs) = liberty_fixture();
        TagPool::scope(&rules, 4, 8, |pool| {
            for (k, chunk) in msgs.chunks(100).enumerate() {
                let seq = pool.submit_messages(k * 100, chunk, &interner, None);
                assert_eq!(seq, k as u64);
            }
        });
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let mut registry = CategoryRegistry::new();
        let rules = RuleSet::builtin(SystemId::Liberty, &mut registry);
        TagPool::scope(&rules, 0, 1, |_| ());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_cap_rejected() {
        let mut registry = CategoryRegistry::new();
        let rules = RuleSet::builtin(SystemId::Liberty, &mut registry);
        TagPool::scope(&rules, 1, 0, |_| ());
    }

    #[test]
    fn scope_with_records_tag_stage_and_prefilter_counters() {
        let (rules, interner, msgs) = liberty_fixture();
        let rec = Recorder::new();
        TagPool::scope_with(&rules, 2, 4, &rec, |pool| {
            for (k, chunk) in msgs.chunks(100).enumerate() {
                pool.submit_messages(k * 100, chunk, &interner, None);
            }
            pool.close();
            while pool.recv().is_some() {}
        });
        let report = rec.snapshot().report();
        assert_eq!(report.counter("tagger.lines"), Some(msgs.len() as u64));
        let matches = report.counter("tagger.prefilter.matches").unwrap();
        assert_eq!(matches, 200, "every fifth fixture line tags");
        let execs = report.counter("tagger.prefilter.vm_execs").unwrap();
        let gated = report.counter("tagger.prefilter.gated_out").unwrap();
        assert!(execs >= matches, "a match costs at least one execution");
        assert!(
            gated + execs >= msgs.len() as u64 - matches,
            "every untagged line is gated out or ran some regex"
        );
        let tag = report.stage("tag").expect("tag stage recorded");
        assert_eq!(tag.items, msgs.len() as u64);
        assert_eq!(tag.spans, 10, "one span per submitted batch");
        assert!(tag.bytes > 0);
        assert_eq!(report.workers.len(), 2);
        assert!(report.workers.iter().any(|w| w.label == "tagger/0"));
        assert!(report.workers.iter().any(|w| w.label == "tagger/1"));
    }

    /// A batch that panics the worker claiming it: the line span
    /// points past the end of the text, so the slice in `run_job`
    /// blows up — the closest thing to a rule-engine bug we can
    /// inject from outside the crate's internals.
    fn poison_batch() -> LineBatch {
        LineBatch {
            text: "short".into(),
            lines: vec![LineRef {
                start: 0,
                end: 999,
                index: 0,
                time: Timestamp::from_secs(0),
                source: NodeId::from_index(0),
            }],
        }
    }

    #[test]
    fn dead_worker_ends_the_stream_instead_of_hanging() {
        // ISSUE-6 kill-one-worker regression: a worker dying mid-batch
        // must end the consumer's result stream (recv -> None) rather
        // than leave it waiting forever for a result that cannot come,
        // and the worker's panic must still surface out of the scope.
        let (rules, _, _) = liberty_fixture();
        let observed = std::sync::Arc::new(std::sync::Mutex::new(None::<u64>));
        let obs = std::sync::Arc::clone(&observed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            TagPool::scope(&rules, 2, 2, |pool| {
                std::thread::scope(|s| {
                    let consumer = s.spawn(|| {
                        let mut seen = 0u64;
                        while pool.recv().is_some() {
                            seen += 1;
                        }
                        seen
                    });
                    pool.submit_lines(poison_batch());
                    // No close() here: only the abort path can end the
                    // consumer's stream.
                    let seen = consumer.join().expect("consumer survives");
                    *obs.lock().unwrap() = Some(seen);
                })
            })
        }));
        assert!(outcome.is_err(), "worker panic propagates from the scope");
        let seen = observed
            .lock()
            .unwrap()
            .expect("consumer ran to completion");
        assert_eq!(seen, 0, "the poisoned batch is never delivered");
    }

    #[test]
    fn blocked_submitter_wakes_when_a_worker_dies() {
        // The producer side of the same regression: a submitter parked
        // on a full job queue (or racing the death) must wake and fail
        // loudly, not sleep through the abort.
        let (rules, _, _) = liberty_fixture();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            TagPool::scope(&rules, 1, 1, |pool| loop {
                pool.submit_lines(poison_batch());
            })
        }));
        let panic = outcome.expect_err("submitting into a dead pool fails");
        let msg = panic
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            msg.contains("worker died") || msg.contains("worker panicked"),
            "unexpected panic payload: {msg}"
        );
    }

    #[test]
    fn debug_impl() {
        let mut registry = CategoryRegistry::new();
        let rules = RuleSet::builtin(SystemId::Liberty, &mut registry);
        TagPool::scope(&rules, 1, 1, |pool| {
            assert!(format!("{pool:?}").contains("job_cap"));
        });
    }
}
