//! Multi-pattern literal prescan for the tagging engine.
//!
//! The paper's pipeline matches every raw line — 178 million of them
//! across the five systems — against the expert rule catalog before
//! filtering. Running up to 77 regexes per line is the dominant cost,
//! and production log indexers make exactly this fast with a cheap
//! multi-pattern literal prescan that gates the expensive matcher.
//!
//! This module supplies that prescan: an in-tree [`AhoCorasick`]
//! automaton (std-only, per the workspace's hermetic zero-external-
//! crates policy) built over the *required literal factors* extracted
//! from every rule's patterns ([`crate::re::Regex::required_literals`]).
//! One scan of the line yields the candidate rule set; only candidates
//! run their Pike VMs. Rules with no extractable factor live in an
//! always-check set, so the prescan is a pure optimization — it can
//! never change which rule tags a line.

use std::collections::VecDeque;
use std::fmt;

/// Sentinel for "no trie child yet" during construction.
const ABSENT: u32 = u32::MAX;

/// A byte-oriented Aho-Corasick automaton for multi-pattern substring
/// search, stored in a cache-aware shelf layout.
///
/// Construction builds the classic keyword trie and its BFS failure
/// links, then renumbers every state by BFS order and splits them into
/// two shelves:
///
/// * **dense** — the root and its direct children keep complete
///   failure-folded 256-entry rows (one table lookup per byte). These
///   are the states the scan actually lives in on log text, and BFS
///   numbering packs them contiguously so the hot rows share cache
///   lines instead of being strewn across a megabyte-scale table.
/// * **sparse** — every deeper state stores only its real trie edges
///   as a sorted `(byte → target)` run in one flat interleaved arena,
///   plus an explicit failure link. A miss walks the failure chain
///   (strictly decreasing depth), terminating at a dense state whose
///   row is complete.
///
/// Outputs are flattened the same way: per-state `(start, end)` ranges
/// into one id arena, closed over failure chains at build time so the
/// scan never follows links to report matches. Patterns are matched as
/// raw bytes, so UTF-8 needles work on UTF-8 haystacks.
///
/// # Examples
///
/// ```
/// use sclog_rules::prefilter::AhoCorasick;
///
/// let ac = AhoCorasick::new(["he", "she", "hers"]);
/// let mut hits = Vec::new();
/// ac.scan(b"ushers", |id| hits.push(id));
/// hits.sort_unstable();
/// hits.dedup();
/// assert_eq!(hits, vec![0, 1, 2]); // "he", "she", "hers" all occur
/// ```
pub struct AhoCorasick {
    /// Failure-folded 256-entry rows for states `0..dense_states`
    /// (the root and its children, in BFS order).
    dense: Vec<u32>,
    /// Number of states with dense rows; states at or past this index
    /// are sparse.
    dense_states: usize,
    /// Per-sparse-state `(start, end)` prefix sums into the sparse
    /// arenas; sparse state `s` (new id) owns run
    /// `sparse_idx[s - dense_states]..sparse_idx[s - dense_states + 1]`.
    sparse_idx: Vec<u32>,
    /// Sorted edge bytes of every sparse state, interleaved.
    sparse_bytes: Vec<u8>,
    /// Edge targets parallel to `sparse_bytes`.
    sparse_targets: Vec<u32>,
    /// Failure link of each sparse state (dense states never miss).
    sparse_fail: Vec<u32>,
    /// Per-state output ranges into `out_ids`, prefix sums.
    out_start: Vec<u32>,
    /// Pattern ids accepted on *entering* each state, closed over
    /// failure links (a state also accepts every pattern its failure
    /// chain accepts).
    out_ids: Vec<u32>,
    /// Number of patterns the automaton was built over.
    patterns: usize,
}

impl AhoCorasick {
    /// Builds the automaton over `patterns`; pattern ids reported by
    /// [`AhoCorasick::scan`] are indices into this sequence.
    ///
    /// An empty pattern occurs trivially everywhere; it is reported
    /// once per scanned byte plus once for the empty haystack prefix.
    pub fn new<I, P>(patterns: I) -> Self
    where
        I: IntoIterator<Item = P>,
        P: AsRef<[u8]>,
    {
        // Phase 1: the keyword trie, in dense scratch rows (construction
        // only; the scan-time layout is built in phase 3 and the scratch
        // is dropped).
        let mut trie: Vec<u32> = vec![ABSENT; 256];
        let mut out: Vec<Vec<u32>> = vec![Vec::new()];
        let mut count = 0usize;
        for (id, pat) in patterns.into_iter().enumerate() {
            count += 1;
            let mut state = 0usize;
            for &b in pat.as_ref() {
                let slot = state * 256 + b as usize;
                state = if trie[slot] == ABSENT {
                    let fresh = out.len() as u32;
                    trie[slot] = fresh;
                    trie.resize(trie.len() + 256, ABSENT);
                    out.push(Vec::new());
                    fresh as usize
                } else {
                    trie[slot] as usize
                };
            }
            out[state].push(id as u32);
        }
        let states = out.len();

        // Phase 2: BFS failure links and output closure, recording the
        // visit order (the new state numbering) and each state's depth.
        let mut fail = vec![0u32; states];
        let mut depth = vec![0u32; states];
        let mut order: Vec<u32> = Vec::with_capacity(states);
        order.push(0);
        let mut queue = VecDeque::new();
        for b in 0..256 {
            let t = trie[b];
            if t != ABSENT {
                depth[t as usize] = 1;
                queue.push_back(t);
            }
        }
        while let Some(s) = queue.pop_front() {
            order.push(s);
            let su = s as usize;
            let f = fail[su] as usize;
            if !out[f].is_empty() {
                let inherited = out[f].clone();
                out[su].extend(inherited);
            }
            for b in 0..256 {
                let t = trie[su * 256 + b];
                if t == ABSENT {
                    continue;
                }
                // Resolve the child's failure target along s's chain;
                // every state on the chain is shallower than s, so this
                // cannot land on the child itself.
                let mut f = fail[su] as usize;
                fail[t as usize] = loop {
                    let cand = trie[f * 256 + b];
                    if cand != ABSENT {
                        break cand;
                    }
                    if f == 0 {
                        break 0;
                    }
                    f = fail[f] as usize;
                };
                depth[t as usize] = depth[su] + 1;
                queue.push_back(t);
            }
        }

        // Phase 3: renumber by BFS order and lay out the shelves.
        let mut new_id = vec![0u32; states];
        for (i, &old) in order.iter().enumerate() {
            new_id[old as usize] = i as u32;
        }
        let dense_states = order
            .iter()
            .take_while(|&&s| depth[s as usize] <= 1)
            .count();

        let mut dense = vec![0u32; dense_states * 256];
        // Root row first: a missing edge stays at the root. Children's
        // rows then fold their misses through it — their failure state
        // is the root, whose row is already complete.
        for b in 0..256 {
            let t = trie[b];
            dense[b] = if t == ABSENT { 0 } else { new_id[t as usize] };
        }
        for (row, &old) in order[1..dense_states].iter().enumerate() {
            let base = (row + 1) * 256;
            let old_base = old as usize * 256;
            for b in 0..256 {
                let t = trie[old_base + b];
                dense[base + b] = if t == ABSENT {
                    dense[b]
                } else {
                    new_id[t as usize]
                };
            }
        }

        let mut sparse_idx = Vec::with_capacity(states - dense_states + 1);
        let mut sparse_bytes = Vec::new();
        let mut sparse_targets = Vec::new();
        let mut sparse_fail = Vec::with_capacity(states - dense_states);
        sparse_idx.push(0u32);
        for &old in &order[dense_states..] {
            let old_base = old as usize * 256;
            for b in 0..256 {
                let t = trie[old_base + b];
                if t != ABSENT {
                    sparse_bytes.push(b as u8);
                    sparse_targets.push(new_id[t as usize]);
                }
            }
            sparse_idx.push(sparse_bytes.len() as u32);
            sparse_fail.push(new_id[fail[old as usize] as usize]);
        }

        let mut out_start = Vec::with_capacity(states + 1);
        let mut out_ids = Vec::new();
        out_start.push(0u32);
        for &old in &order {
            out_ids.extend_from_slice(&out[old as usize]);
            out_start.push(out_ids.len() as u32);
        }

        AhoCorasick {
            dense,
            dense_states,
            sparse_idx,
            sparse_bytes,
            sparse_targets,
            sparse_fail,
            out_start,
            out_ids,
            patterns: count,
        }
    }

    /// Number of patterns the automaton searches for.
    pub fn pattern_count(&self) -> usize {
        self.patterns
    }

    /// One automaton step: the failure-folded transition from `state`
    /// on `b`. Dense states answer with one table lookup; sparse
    /// states probe their sorted edge run and fall down the failure
    /// chain on a miss, which strictly decreases depth and therefore
    /// terminates at a dense state.
    #[inline]
    fn step(&self, state: u32, b: u8) -> u32 {
        let mut s = state as usize;
        loop {
            if s < self.dense_states {
                return self.dense[s * 256 + b as usize];
            }
            let si = s - self.dense_states;
            let lo = self.sparse_idx[si] as usize;
            let hi = self.sparse_idx[si + 1] as usize;
            // Runs are tiny (typically one or two edges): a linear
            // probe of the sorted bytes beats binary search here.
            match self.sparse_bytes[lo..hi].iter().position(|&x| x == b) {
                Some(k) => return self.sparse_targets[lo + k],
                None => s = self.sparse_fail[si] as usize,
            }
        }
    }

    /// Output range of a state in `out_ids`.
    #[inline]
    fn out_range(&self, state: u32) -> std::ops::Range<usize> {
        self.out_start[state as usize] as usize..self.out_start[state as usize + 1] as usize
    }

    /// Scans `haystack`, invoking `on_match(pattern_id)` at every
    /// occurrence of every pattern (a pattern occurring `k` times is
    /// reported `k` times; callers deduplicate if they care).
    pub fn scan(&self, haystack: &[u8], mut on_match: impl FnMut(u32)) {
        for &id in &self.out_ids[self.out_range(0)] {
            on_match(id);
        }
        let mut state = 0u32;
        for &b in haystack {
            state = self.step(state, b);
            // Empty for the vast majority of states; check before
            // setting up the iterator.
            let range = self.out_range(state);
            if !range.is_empty() {
                for &id in &self.out_ids[range] {
                    on_match(id);
                }
            }
        }
    }

    /// True if any pattern occurs in `haystack`.
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        if !self.out_range(0).is_empty() {
            return true;
        }
        let mut state = 0u32;
        for &b in haystack {
            state = self.step(state, b);
            if !self.out_range(state).is_empty() {
                return true;
            }
        }
        false
    }
}

impl fmt::Debug for AhoCorasick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AhoCorasick")
            .field("patterns", &self.patterns)
            .field("states", &(self.out_start.len() - 1))
            .field("dense_states", &self.dense_states)
            .field("sparse_edges", &self.sparse_bytes.len())
            .finish()
    }
}

/// The rule-level prescan: maps factor hits from one [`AhoCorasick`]
/// scan of a line to a candidate-rule bitset.
///
/// Built once per [`crate::RuleSet`] from each rule's required
/// literals; rules without factors are folded into an always-check
/// mask so they are candidates on every line.
pub(crate) struct RulePrefilter {
    ac: AhoCorasick,
    /// `factor_rules[pattern_id]` — indices of rules requiring that
    /// factor (a factor shared by several rules is stored once).
    factor_rules: Vec<Vec<u32>>,
    /// Bitset over rules with no extractable factor.
    always_mask: Vec<u64>,
}

impl RulePrefilter {
    /// Builds the prescan from per-rule factor lists (`None` = rule
    /// must always be checked).
    pub(crate) fn new(rule_factors: &[Option<Vec<String>>]) -> Self {
        let words = rule_factors.len().div_ceil(64);
        let mut always_mask = vec![0u64; words];
        let mut ids: std::collections::HashMap<&str, u32> = std::collections::HashMap::new();
        let mut patterns: Vec<&str> = Vec::new();
        let mut factor_rules: Vec<Vec<u32>> = Vec::new();
        for (r, f) in rule_factors.iter().enumerate() {
            match f {
                None => always_mask[r / 64] |= 1 << (r % 64),
                Some(alts) => {
                    for alt in alts {
                        let id = *ids.entry(alt).or_insert_with(|| {
                            patterns.push(alt);
                            factor_rules.push(Vec::new());
                            (patterns.len() - 1) as u32
                        });
                        let rules = &mut factor_rules[id as usize];
                        if rules.last() != Some(&(r as u32)) {
                            rules.push(r as u32);
                        }
                    }
                }
            }
        }
        RulePrefilter {
            ac: AhoCorasick::new(&patterns),
            factor_rules,
            always_mask,
        }
    }

    /// Fills `bits` with the candidate rule bitset for `line`: the
    /// always-check rules plus every rule at least one of whose
    /// factors occurs in the line.
    pub(crate) fn candidates(&self, line: &str, bits: &mut Vec<u64>) {
        bits.clear();
        bits.extend_from_slice(&self.always_mask);
        self.ac.scan(line.as_bytes(), |id| {
            for &r in &self.factor_rules[id as usize] {
                bits[(r / 64) as usize] |= 1 << (r % 64);
            }
        });
    }
}

impl fmt::Debug for RulePrefilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let always: u32 = self.always_mask.iter().map(|w| w.count_ones()).sum();
        f.debug_struct("RulePrefilter")
            .field("factors", &self.factor_rules.len())
            .field("always_check_rules", &always)
            .field("automaton", &self.ac)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: pattern ids whose needle occurs.
    fn naive_hits(patterns: &[&str], haystack: &str) -> Vec<u32> {
        patterns
            .iter()
            .enumerate()
            .filter(|(_, p)| haystack.contains(**p))
            .map(|(i, _)| i as u32)
            .collect()
    }

    fn ac_hits(patterns: &[&str], haystack: &str) -> Vec<u32> {
        let ac = AhoCorasick::new(patterns);
        let mut hits = Vec::new();
        ac.scan(haystack.as_bytes(), |id| hits.push(id));
        hits.sort_unstable();
        hits.dedup();
        hits
    }

    #[test]
    fn classic_keyword_set() {
        let pats = ["he", "she", "his", "hers"];
        assert_eq!(ac_hits(&pats, "ushers"), naive_hits(&pats, "ushers"));
        assert_eq!(ac_hits(&pats, "this"), naive_hits(&pats, "this"));
        assert_eq!(ac_hits(&pats, "xyz"), Vec::<u32>::new());
    }

    #[test]
    fn overlapping_and_nested_patterns() {
        let pats = ["aa", "aaa", "aaaa", "ab"];
        for hay in ["aaaa", "aab", "baaab", "", "a"] {
            assert_eq!(ac_hits(&pats, hay), naive_hits(&pats, hay), "{hay:?}");
        }
    }

    #[test]
    fn agrees_with_contains_on_log_like_lines() {
        let pats = [
            "EXT3-fs error",
            "task abort",
            "kernel panic",
            "tm_reply",
            "error",
        ];
        let lines = [
            "Mar  7 14:30:05 dn228 pbs_mom: task_check, cannot tm_reply to 4418 task 1",
            "kernel: EXT3-fs error (device sda5)",
            "all quiet on sn373",
            "KERNEL FATAL kernel panic",
        ];
        for line in lines {
            assert_eq!(ac_hits(&pats, line), naive_hits(&pats, line), "{line:?}");
        }
    }

    #[test]
    fn utf8_needles_match_bytewise() {
        let pats = ["naïve", "ïv"];
        assert_eq!(ac_hits(&pats, "a naïve plan"), vec![0, 1]);
        assert_eq!(ac_hits(&pats, "naive"), Vec::<u32>::new());
    }

    #[test]
    fn empty_pattern_hits_everywhere() {
        let ac = AhoCorasick::new([""]);
        let mut hits = 0;
        ac.scan(b"abc", |_| hits += 1);
        assert!(hits >= 1);
        assert!(ac.is_match(b""));
    }

    #[test]
    fn is_match_short_circuits() {
        let ac = AhoCorasick::new(["needle"]);
        assert!(ac.is_match(b"hay needle hay"));
        assert!(!ac.is_match(b"haystack"));
        assert_eq!(ac.pattern_count(), 1);
    }

    #[test]
    fn prefilter_marks_candidates_and_always_check() {
        // Rules: 0 wants "abc" or "xyz"; 1 has no factor; 2 wants "q".
        let factors = vec![
            Some(vec!["abc".to_string(), "xyz".to_string()]),
            None,
            Some(vec!["q".to_string()]),
        ];
        let pf = RulePrefilter::new(&factors);
        let mut bits = Vec::new();
        pf.candidates("zzz xyz zzz", &mut bits);
        assert_eq!(bits[0] & 0b111, 0b011); // rule 0 hit, rule 1 always
        pf.candidates("nothing here", &mut bits);
        assert_eq!(bits[0] & 0b111, 0b010); // only the always-check rule
        pf.candidates("q abc", &mut bits);
        assert_eq!(bits[0] & 0b111, 0b111);
    }

    #[test]
    fn prefilter_shares_duplicate_factors() {
        // Two rules keyed on the same factor both become candidates.
        let factors = vec![Some(vec!["dup".to_string()]), Some(vec!["dup".to_string()])];
        let pf = RulePrefilter::new(&factors);
        assert_eq!(pf.ac.pattern_count(), 1);
        let mut bits = Vec::new();
        pf.candidates("a dup b", &mut bits);
        assert_eq!(bits[0] & 0b11, 0b11);
    }

    #[test]
    fn debug_is_compact() {
        let ac = AhoCorasick::new(["abc"]);
        let s = format!("{ac:?}");
        assert!(s.contains("patterns"), "{s}");
        assert!(!s.contains('['), "dense tables must not be dumped: {s}");
    }

    #[test]
    fn shelf_split_puts_only_shallow_states_in_dense_rows() {
        // "abc"/"abd"/"xy": root + first letters {a, x} are dense; the
        // four deeper states (ab, abc, abd, xy) live on the sparse
        // shelf, and only "ab" has outgoing edges there.
        let ac = AhoCorasick::new(["abc", "abd", "xy"]);
        assert_eq!(ac.dense_states, 3, "{ac:?}");
        assert_eq!(ac.out_start.len() - 1, 7, "{ac:?}");
        assert_eq!(ac.sparse_fail.len(), 4);
        assert_eq!(ac.sparse_bytes.len(), 2);
        // Sparse edge runs are sorted by byte within each state.
        for w in 0..ac.sparse_idx.len() - 1 {
            let run = &ac.sparse_bytes[ac.sparse_idx[w] as usize..ac.sparse_idx[w + 1] as usize];
            assert!(run.windows(2).all(|p| p[0] < p[1]), "unsorted run {run:?}");
        }
    }

    #[test]
    fn deep_failure_chains_cross_the_shelf_boundary() {
        // Matching "aaab" forces misses deep on the sparse shelf that
        // must fall through several sparse failure links before a dense
        // row answers.
        let pats = ["aaaa", "aab", "ab", "b"];
        for hay in ["aaab", "aaaaaaab", "aaaxaab", "bbbb", "xaxbxaaaax"] {
            assert_eq!(ac_hits(&pats, hay), naive_hits(&pats, hay), "{hay:?}");
        }
    }

    #[test]
    fn random_pattern_sets_agree_with_contains() {
        // Small alphabet maximizes shared prefixes and failure-chain
        // traffic between the shelves.
        sclog_testkit::check("shelf automaton ≡ contains", |g| {
            let alphabet = [b'a', b'b', b'c'];
            let pats: Vec<String> = g.vec(1..=8, |g| {
                let n = g.usize_in(1..=6);
                (0..n)
                    .map(|_| *g.pick(&alphabet) as char)
                    .collect::<String>()
            });
            let pat_refs: Vec<&str> = pats.iter().map(String::as_str).collect();
            let n = g.usize_in(0..=40);
            let hay: String = (0..n).map(|_| *g.pick(&alphabet) as char).collect();
            assert_eq!(
                ac_hits(&pat_refs, &hay),
                naive_hits(&pat_refs, &hay),
                "patterns {pats:?} haystack {hay:?}"
            );
        });
    }
}
