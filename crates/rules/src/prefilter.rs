//! Multi-pattern literal prescan for the tagging engine.
//!
//! The paper's pipeline matches every raw line — 178 million of them
//! across the five systems — against the expert rule catalog before
//! filtering. Running up to 77 regexes per line is the dominant cost,
//! and production log indexers make exactly this fast with a cheap
//! multi-pattern literal prescan that gates the expensive matcher.
//!
//! This module supplies that prescan: an in-tree [`AhoCorasick`]
//! automaton (std-only, per the workspace's hermetic zero-external-
//! crates policy) built over the *required literal factors* extracted
//! from every rule's patterns ([`crate::re::Regex::required_literals`]).
//! One scan of the line yields the candidate rule set; only candidates
//! run their Pike VMs. Rules with no extractable factor live in an
//! always-check set, so the prescan is a pure optimization — it can
//! never change which rule tags a line.

use std::collections::VecDeque;
use std::fmt;

/// Sentinel for "no trie child yet" during construction.
const ABSENT: u32 = u32::MAX;

/// A byte-oriented Aho-Corasick automaton for multi-pattern substring
/// search.
///
/// Construction builds the classic keyword trie, then closes it over
/// failure links into a dense DFA: scanning is one table lookup per
/// input byte, independent of the number of patterns. Patterns are
/// matched as raw bytes, so UTF-8 needles work on UTF-8 haystacks.
///
/// # Examples
///
/// ```
/// use sclog_rules::prefilter::AhoCorasick;
///
/// let ac = AhoCorasick::new(["he", "she", "hers"]);
/// let mut hits = Vec::new();
/// ac.scan(b"ushers", |id| hits.push(id));
/// hits.sort_unstable();
/// hits.dedup();
/// assert_eq!(hits, vec![0, 1, 2]); // "he", "she", "hers" all occur
/// ```
pub struct AhoCorasick {
    /// Dense transition table, `next[state * 256 + byte]`.
    next: Vec<u32>,
    /// Pattern ids accepted on *entering* each state, closed over
    /// failure links (a state also accepts every pattern its failure
    /// chain accepts).
    out: Vec<Vec<u32>>,
    /// Number of patterns the automaton was built over.
    patterns: usize,
}

impl AhoCorasick {
    /// Builds the automaton over `patterns`; pattern ids reported by
    /// [`AhoCorasick::scan`] are indices into this sequence.
    ///
    /// An empty pattern occurs trivially everywhere; it is reported
    /// once per scanned byte plus once for the empty haystack prefix.
    pub fn new<I, P>(patterns: I) -> Self
    where
        I: IntoIterator<Item = P>,
        P: AsRef<[u8]>,
    {
        // Phase 1: the keyword trie.
        let mut next: Vec<u32> = vec![ABSENT; 256];
        let mut out: Vec<Vec<u32>> = vec![Vec::new()];
        let mut count = 0usize;
        for (id, pat) in patterns.into_iter().enumerate() {
            count += 1;
            let mut state = 0usize;
            for &b in pat.as_ref() {
                let slot = state * 256 + b as usize;
                state = if next[slot] == ABSENT {
                    let fresh = out.len() as u32;
                    next[slot] = fresh;
                    next.resize(next.len() + 256, ABSENT);
                    out.push(Vec::new());
                    fresh as usize
                } else {
                    next[slot] as usize
                };
            }
            out[state].push(id as u32);
        }

        // Phase 2: BFS failure links, folded directly into a complete
        // goto table (missing edges jump where the failure state
        // would), and outputs closed over the failure chain.
        let mut fail = vec![0u32; out.len()];
        let mut queue = VecDeque::new();
        for b in 0..256 {
            let t = next[b];
            if t == ABSENT {
                next[b] = 0;
            } else {
                queue.push_back(t);
            }
        }
        while let Some(s) = queue.pop_front() {
            let s = s as usize;
            let f = fail[s] as usize;
            if !out[f].is_empty() {
                let inherited = out[f].clone();
                out[s].extend(inherited);
            }
            for b in 0..256 {
                let slot = s * 256 + b;
                let t = next[slot];
                if t == ABSENT {
                    next[slot] = next[f * 256 + b];
                } else {
                    fail[t as usize] = next[f * 256 + b];
                    queue.push_back(t);
                }
            }
        }
        AhoCorasick {
            next,
            out,
            patterns: count,
        }
    }

    /// Number of patterns the automaton searches for.
    pub fn pattern_count(&self) -> usize {
        self.patterns
    }

    /// Scans `haystack`, invoking `on_match(pattern_id)` at every
    /// occurrence of every pattern (a pattern occurring `k` times is
    /// reported `k` times; callers deduplicate if they care).
    pub fn scan(&self, haystack: &[u8], mut on_match: impl FnMut(u32)) {
        for &id in &self.out[0] {
            on_match(id);
        }
        let mut state = 0usize;
        for &b in haystack {
            state = self.next[state * 256 + b as usize] as usize;
            // Empty for the vast majority of states; check before
            // setting up the iterator.
            if !self.out[state].is_empty() {
                for &id in &self.out[state] {
                    on_match(id);
                }
            }
        }
    }

    /// True if any pattern occurs in `haystack`.
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        if !self.out[0].is_empty() {
            return true;
        }
        let mut state = 0usize;
        for &b in haystack {
            state = self.next[state * 256 + b as usize] as usize;
            if !self.out[state].is_empty() {
                return true;
            }
        }
        false
    }
}

impl fmt::Debug for AhoCorasick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AhoCorasick")
            .field("patterns", &self.patterns)
            .field("states", &self.out.len())
            .finish()
    }
}

/// The rule-level prescan: maps factor hits from one [`AhoCorasick`]
/// scan of a line to a candidate-rule bitset.
///
/// Built once per [`crate::RuleSet`] from each rule's required
/// literals; rules without factors are folded into an always-check
/// mask so they are candidates on every line.
pub(crate) struct RulePrefilter {
    ac: AhoCorasick,
    /// `factor_rules[pattern_id]` — indices of rules requiring that
    /// factor (a factor shared by several rules is stored once).
    factor_rules: Vec<Vec<u32>>,
    /// Bitset over rules with no extractable factor.
    always_mask: Vec<u64>,
}

impl RulePrefilter {
    /// Builds the prescan from per-rule factor lists (`None` = rule
    /// must always be checked).
    pub(crate) fn new(rule_factors: &[Option<Vec<String>>]) -> Self {
        let words = rule_factors.len().div_ceil(64);
        let mut always_mask = vec![0u64; words];
        let mut ids: std::collections::HashMap<&str, u32> = std::collections::HashMap::new();
        let mut patterns: Vec<&str> = Vec::new();
        let mut factor_rules: Vec<Vec<u32>> = Vec::new();
        for (r, f) in rule_factors.iter().enumerate() {
            match f {
                None => always_mask[r / 64] |= 1 << (r % 64),
                Some(alts) => {
                    for alt in alts {
                        let id = *ids.entry(alt).or_insert_with(|| {
                            patterns.push(alt);
                            factor_rules.push(Vec::new());
                            (patterns.len() - 1) as u32
                        });
                        let rules = &mut factor_rules[id as usize];
                        if rules.last() != Some(&(r as u32)) {
                            rules.push(r as u32);
                        }
                    }
                }
            }
        }
        RulePrefilter {
            ac: AhoCorasick::new(&patterns),
            factor_rules,
            always_mask,
        }
    }

    /// Fills `bits` with the candidate rule bitset for `line`: the
    /// always-check rules plus every rule at least one of whose
    /// factors occurs in the line.
    pub(crate) fn candidates(&self, line: &str, bits: &mut Vec<u64>) {
        bits.clear();
        bits.extend_from_slice(&self.always_mask);
        self.ac.scan(line.as_bytes(), |id| {
            for &r in &self.factor_rules[id as usize] {
                bits[(r / 64) as usize] |= 1 << (r % 64);
            }
        });
    }
}

impl fmt::Debug for RulePrefilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let always: u32 = self.always_mask.iter().map(|w| w.count_ones()).sum();
        f.debug_struct("RulePrefilter")
            .field("factors", &self.factor_rules.len())
            .field("always_check_rules", &always)
            .field("automaton", &self.ac)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: pattern ids whose needle occurs.
    fn naive_hits(patterns: &[&str], haystack: &str) -> Vec<u32> {
        patterns
            .iter()
            .enumerate()
            .filter(|(_, p)| haystack.contains(**p))
            .map(|(i, _)| i as u32)
            .collect()
    }

    fn ac_hits(patterns: &[&str], haystack: &str) -> Vec<u32> {
        let ac = AhoCorasick::new(patterns);
        let mut hits = Vec::new();
        ac.scan(haystack.as_bytes(), |id| hits.push(id));
        hits.sort_unstable();
        hits.dedup();
        hits
    }

    #[test]
    fn classic_keyword_set() {
        let pats = ["he", "she", "his", "hers"];
        assert_eq!(ac_hits(&pats, "ushers"), naive_hits(&pats, "ushers"));
        assert_eq!(ac_hits(&pats, "this"), naive_hits(&pats, "this"));
        assert_eq!(ac_hits(&pats, "xyz"), Vec::<u32>::new());
    }

    #[test]
    fn overlapping_and_nested_patterns() {
        let pats = ["aa", "aaa", "aaaa", "ab"];
        for hay in ["aaaa", "aab", "baaab", "", "a"] {
            assert_eq!(ac_hits(&pats, hay), naive_hits(&pats, hay), "{hay:?}");
        }
    }

    #[test]
    fn agrees_with_contains_on_log_like_lines() {
        let pats = [
            "EXT3-fs error",
            "task abort",
            "kernel panic",
            "tm_reply",
            "error",
        ];
        let lines = [
            "Mar  7 14:30:05 dn228 pbs_mom: task_check, cannot tm_reply to 4418 task 1",
            "kernel: EXT3-fs error (device sda5)",
            "all quiet on sn373",
            "KERNEL FATAL kernel panic",
        ];
        for line in lines {
            assert_eq!(ac_hits(&pats, line), naive_hits(&pats, line), "{line:?}");
        }
    }

    #[test]
    fn utf8_needles_match_bytewise() {
        let pats = ["naïve", "ïv"];
        assert_eq!(ac_hits(&pats, "a naïve plan"), vec![0, 1]);
        assert_eq!(ac_hits(&pats, "naive"), Vec::<u32>::new());
    }

    #[test]
    fn empty_pattern_hits_everywhere() {
        let ac = AhoCorasick::new([""]);
        let mut hits = 0;
        ac.scan(b"abc", |_| hits += 1);
        assert!(hits >= 1);
        assert!(ac.is_match(b""));
    }

    #[test]
    fn is_match_short_circuits() {
        let ac = AhoCorasick::new(["needle"]);
        assert!(ac.is_match(b"hay needle hay"));
        assert!(!ac.is_match(b"haystack"));
        assert_eq!(ac.pattern_count(), 1);
    }

    #[test]
    fn prefilter_marks_candidates_and_always_check() {
        // Rules: 0 wants "abc" or "xyz"; 1 has no factor; 2 wants "q".
        let factors = vec![
            Some(vec!["abc".to_string(), "xyz".to_string()]),
            None,
            Some(vec!["q".to_string()]),
        ];
        let pf = RulePrefilter::new(&factors);
        let mut bits = Vec::new();
        pf.candidates("zzz xyz zzz", &mut bits);
        assert_eq!(bits[0] & 0b111, 0b011); // rule 0 hit, rule 1 always
        pf.candidates("nothing here", &mut bits);
        assert_eq!(bits[0] & 0b111, 0b010); // only the always-check rule
        pf.candidates("q abc", &mut bits);
        assert_eq!(bits[0] & 0b111, 0b111);
    }

    #[test]
    fn prefilter_shares_duplicate_factors() {
        // Two rules keyed on the same factor both become candidates.
        let factors = vec![Some(vec!["dup".to_string()]), Some(vec!["dup".to_string()])];
        let pf = RulePrefilter::new(&factors);
        assert_eq!(pf.ac.pattern_count(), 1);
        let mut bits = Vec::new();
        pf.candidates("a dup b", &mut bits);
        assert_eq!(bits[0] & 0b11, 0b11);
    }

    #[test]
    fn debug_is_compact() {
        let ac = AhoCorasick::new(["abc"]);
        let s = format!("{ac:?}");
        assert!(s.contains("patterns"), "{s}");
        assert!(!s.contains('['), "dense tables must not be dumped: {s}");
    }
}
