//! Automatic message-template discovery (SLCT-style frequent-pattern
//! clustering).
//!
//! The paper's related work (Vaarandi's breadth-first frequent-pattern
//! mining, ref. 27; Hellerstein's actionable patterns, ref. 7) explores
//! "automatically discovering alerts in log data … from a
//! pattern-learning perspective", in contrast to the expert rules this
//! crate encodes. This module implements a small two-pass clustering in
//! the spirit of SLCT:
//!
//! 1. count `(position, word)` frequencies across message bodies;
//! 2. reduce each body to a candidate template that keeps frequent
//!    words and wildcards the rest, and count candidate support.
//!
//! Discovered [`Template`]s convert to rule-language sources
//! ([`Template::to_rule_source`]), closing the loop with the expert
//! ruleset machinery: discovery proposes, the administrator curates,
//! the loader deploys.

use sclog_types::Message;
use std::collections::HashMap;

/// A discovered message template: per-position tokens, `None` marking
/// wildcard (variable) positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    /// Facility the template's messages share.
    pub facility: String,
    /// Token pattern; `None` is a single-token wildcard.
    pub tokens: Vec<Option<String>>,
    /// Number of messages supporting the template.
    pub support: u64,
}

impl Template {
    /// Human-readable form, wildcards rendered as `*`.
    pub fn pattern(&self) -> String {
        self.tokens
            .iter()
            .map(|t| t.as_deref().unwrap_or("*"))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Whether a message body matches this template (token-exact on
    /// fixed positions, any single token on wildcards, same length).
    pub fn matches(&self, body: &str) -> bool {
        let toks: Vec<&str> = body.split_whitespace().collect();
        toks.len() == self.tokens.len()
            && self
                .tokens
                .iter()
                .zip(&toks)
                .all(|(t, w)| t.as_deref().is_none_or(|fixed| fixed == *w))
    }

    /// Converts to rule-language source: a `/…/` line regex with the
    /// fixed tokens escaped and wildcards as non-space runs.
    pub fn to_rule_source(&self) -> String {
        let mut re = String::new();
        for (i, t) in self.tokens.iter().enumerate() {
            if i > 0 {
                re.push(' ');
            }
            match t {
                Some(fixed) => re.push_str(&escape_regex(fixed)),
                None => re.push_str(r"\S+"),
            }
        }
        format!("/{re}/")
    }
}

fn escape_regex(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if "\\.+*?()|[]{}^$#&-~/".contains(c) {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

/// Mines templates from messages with at least `min_support`
/// occurrences, sorted by descending support.
///
/// # Panics
///
/// Panics if `min_support == 0`.
pub fn mine_templates(messages: &[Message], min_support: u64) -> Vec<Template> {
    assert!(min_support > 0, "support threshold must be positive");
    // Pass 1: frequent (facility, position, word) triples.
    let mut word_counts: HashMap<(&str, usize, &str), u64> = HashMap::new();
    for m in messages {
        for (i, w) in m.body.split_whitespace().enumerate() {
            *word_counts.entry((m.facility.as_str(), i, w)).or_insert(0) += 1;
        }
    }
    // Pass 2: candidate templates.
    let mut candidates: HashMap<(String, Vec<Option<String>>), u64> = HashMap::new();
    for m in messages {
        let tokens: Vec<Option<String>> = m
            .body
            .split_whitespace()
            .enumerate()
            .map(|(i, w)| {
                (word_counts[&(m.facility.as_str(), i, w)] >= min_support).then(|| w.to_owned())
            })
            .collect();
        if tokens.is_empty() || tokens.iter().all(Option::is_none) {
            continue;
        }
        *candidates.entry((m.facility.clone(), tokens)).or_insert(0) += 1;
    }
    let mut out: Vec<Template> = candidates
        .into_iter()
        .filter(|&(_, support)| support >= min_support)
        .map(|((facility, tokens), support)| Template {
            facility,
            tokens,
            support,
        })
        .collect();
    out.sort_by(|a, b| {
        b.support
            .cmp(&a.support)
            .then_with(|| a.pattern().cmp(&b.pattern()))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sclog_types::{NodeId, Severity, SystemId, Timestamp};

    fn msg(facility: &str, body: &str) -> Message {
        Message::new(
            SystemId::Liberty,
            Timestamp::EPOCH,
            NodeId::from_index(0),
            facility,
            Severity::None,
            body,
        )
    }

    fn corpus() -> Vec<Message> {
        let mut v = Vec::new();
        for job in 0..20 {
            v.push(msg(
                "pbs_mom",
                &format!("task_check, cannot tm_reply to {job} task 1"),
            ));
        }
        for i in 0..15 {
            v.push(msg("kernel", &format!("eth0: link up at speed {i}")));
        }
        // Noise below support.
        v.push(msg("kernel", "something entirely unique happened"));
        v
    }

    #[test]
    fn discovers_the_planted_templates() {
        let templates = mine_templates(&corpus(), 10);
        assert!(templates.len() >= 2, "{templates:?}");
        let top = &templates[0];
        assert_eq!(top.facility, "pbs_mom");
        assert_eq!(top.support, 20);
        assert_eq!(top.pattern(), "task_check, cannot tm_reply to * task 1");
        let second = &templates[1];
        assert_eq!(second.pattern(), "eth0: link up at speed *");
        // The unique message is not a template.
        assert!(!templates.iter().any(|t| t.pattern().contains("unique")));
    }

    #[test]
    fn templates_match_their_instances() {
        let templates = mine_templates(&corpus(), 10);
        let pbs = &templates[0];
        assert!(pbs.matches("task_check, cannot tm_reply to 9999 task 1"));
        assert!(!pbs.matches("task_check, cannot tm_reply to 9999 task 2"));
        assert!(!pbs.matches("task_check, cannot tm_reply to 9999 extra task 1"));
    }

    #[test]
    fn discovered_rules_compile_and_tag() {
        let templates = mine_templates(&corpus(), 10);
        let src = templates[0].to_rule_source();
        let pred = crate::lang::Predicate::parse(&src)
            .unwrap_or_else(|e| panic!("generated rule {src:?} invalid: {e}"));
        assert!(
            pred.matches("Mar  7 14:30:05 ln3 pbs_mom: task_check, cannot tm_reply to 4418 task 1")
        );
        assert!(!pred.matches("Mar  7 14:30:05 ln3 kernel: all quiet"));
    }

    #[test]
    fn regex_metacharacters_in_bodies_are_escaped() {
        let mut v = Vec::new();
        for i in 0..12 {
            v.push(msg(
                "kernel",
                &format!("GM: LANAI[0]: PANIC: f({i}) failed"),
            ));
        }
        let templates = mine_templates(&v, 10);
        assert_eq!(templates.len(), 1);
        let src = templates[0].to_rule_source();
        let pred = crate::lang::Predicate::parse(&src).unwrap_or_else(|e| panic!("{src:?}: {e}"));
        assert!(pred.matches("x ln1 kernel: GM: LANAI[0]: PANIC: f(3) failed"));
    }

    #[test]
    fn min_support_filters_everything_when_high() {
        assert!(mine_templates(&corpus(), 1000).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_support_panics() {
        let _ = mine_templates(&[], 0);
    }
}
