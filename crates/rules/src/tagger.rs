//! The tagging engine: applies a system's ruleset to parsed messages.

use crate::catalog::{catalog, CategorySpec};
use crate::lang::Predicate;
use sclog_parse::render_native;
use sclog_types::{Alert, CategoryId, CategoryRegistry, Message, SourceInterner, SystemId};

/// One compiled rule within a [`RuleSet`].
#[derive(Debug)]
struct CompiledRule {
    predicate: Predicate,
    category: CategoryId,
}

/// A compiled per-system ruleset.
///
/// Rules are evaluated in catalog order; the first match tags the
/// message ("two alerts are in the same category if they were tagged by
/// the same expert rule").
///
/// # Examples
///
/// ```
/// use sclog_rules::RuleSet;
/// use sclog_types::{CategoryRegistry, SystemId};
///
/// let mut registry = CategoryRegistry::new();
/// let rules = RuleSet::builtin(SystemId::Liberty, &mut registry);
/// let line = "Mar  7 14:30:05 dn228 pbs_mom: task_check, cannot tm_reply to 4418 task 1";
/// let cat = rules.tag_line(line).expect("should tag");
/// assert_eq!(registry.name(cat), "PBS_CHK");
/// ```
#[derive(Debug)]
pub struct RuleSet {
    system: SystemId,
    rules: Vec<CompiledRule>,
}

impl RuleSet {
    /// Compiles the built-in catalog ruleset for a system, registering
    /// its categories.
    ///
    /// # Panics
    ///
    /// Panics if a built-in rule fails to compile (a bug, covered by
    /// tests).
    pub fn builtin(system: SystemId, registry: &mut CategoryRegistry) -> Self {
        Self::from_specs(system, catalog(system), registry)
    }

    /// Compiles an explicit list of category specs.
    ///
    /// # Panics
    ///
    /// Panics if a rule fails to parse or compile, or if a spec's
    /// system does not match `system`.
    pub fn from_specs(
        system: SystemId,
        specs: &[CategorySpec],
        registry: &mut CategoryRegistry,
    ) -> Self {
        let rules = specs
            .iter()
            .map(|spec| {
                assert_eq!(
                    spec.system, system,
                    "spec {} is for another system",
                    spec.name
                );
                let predicate = Predicate::parse(spec.rule)
                    .unwrap_or_else(|e| panic!("rule {} failed to compile: {e}", spec.name));
                let category = registry.register(spec.name, system, spec.alert_type);
                CompiledRule {
                    predicate,
                    category,
                }
            })
            .collect();
        RuleSet { system, rules }
    }

    /// Compiles a ruleset from owned definitions (see
    /// [`crate::loader`]).
    pub(crate) fn from_loaded(
        system: SystemId,
        defs: &[crate::loader::RuleDef],
        registry: &mut CategoryRegistry,
    ) -> Self {
        let rules = defs
            .iter()
            .map(|d| {
                let predicate = Predicate::parse(&d.rule)
                    .unwrap_or_else(|e| panic!("rule {} failed to compile: {e}", d.name));
                let category = registry.register(&d.name, system, d.alert_type);
                CompiledRule {
                    predicate,
                    category,
                }
            })
            .collect();
        RuleSet { system, rules }
    }

    /// The system this ruleset belongs to.
    pub fn system(&self) -> SystemId {
        self.system
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if the ruleset has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Tags one rendered log line, returning the first matching rule's
    /// category.
    pub fn tag_line(&self, line: &str) -> Option<CategoryId> {
        let fields = sclog_parse::fields(line);
        self.rules
            .iter()
            .find(|r| r.predicate.matches_fields(line, &fields))
            .map(|r| r.category)
    }

    /// Tags a message by rendering it in its native format first.
    pub fn tag_message(&self, msg: &Message, interner: &SourceInterner) -> Option<CategoryId> {
        self.tag_line(&render_native(msg, interner))
    }

    /// Tags every message, producing the alert sequence.
    ///
    /// Messages are expected in time order (as logs are); the returned
    /// alerts preserve that order.
    pub fn tag_messages(&self, messages: &[Message], interner: &SourceInterner) -> TaggedLog {
        let mut alerts = Vec::new();
        for (i, msg) in messages.iter().enumerate() {
            if let Some(category) = self.tag_message(msg, interner) {
                alerts.push(Alert::new(msg.time, msg.source, category, i));
            }
        }
        TaggedLog { alerts }
    }

    /// Tags every message using `threads` worker threads
    /// (`std::thread::scope`; order of the result is preserved).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn tag_messages_parallel(
        &self,
        messages: &[Message],
        interner: &SourceInterner,
        threads: usize,
    ) -> TaggedLog {
        assert!(threads > 0, "need at least one thread");
        if threads == 1 || messages.len() < 4096 {
            return self.tag_messages(messages, interner);
        }
        let chunk = messages.len().div_ceil(threads);
        let mut partials: Vec<Vec<Alert>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = messages
                .chunks(chunk)
                .enumerate()
                .map(|(k, msgs)| {
                    scope.spawn(move || {
                        let base = k * chunk;
                        let mut out = Vec::new();
                        for (i, msg) in msgs.iter().enumerate() {
                            if let Some(category) = self.tag_message(msg, interner) {
                                out.push(Alert::new(msg.time, msg.source, category, base + i));
                            }
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                partials.push(h.join().expect("tagger thread panicked"));
            }
        });
        TaggedLog {
            alerts: partials.concat(),
        }
    }
}

/// The output of tagging: the alert sequence in message order.
#[derive(Debug, Clone, Default)]
pub struct TaggedLog {
    /// Tagged alerts, ordered by message index (hence by time).
    pub alerts: Vec<Alert>,
}

impl TaggedLog {
    /// Number of alerts.
    pub fn len(&self) -> usize {
        self.alerts.len()
    }

    /// True if no messages were tagged.
    pub fn is_empty(&self) -> bool {
        self.alerts.is_empty()
    }

    /// Counts alerts per category.
    pub fn counts_by_category(&self) -> std::collections::HashMap<CategoryId, u64> {
        let mut out = std::collections::HashMap::new();
        for a in &self.alerts {
            *out.entry(a.category).or_insert(0) += 1;
        }
        out
    }

    /// Attaches ground-truth failure ids by message index (simulator
    /// output); indices without truth stay `None`.
    pub fn attach_truth(&mut self, truth: &[Option<sclog_types::FailureId>]) {
        for a in &mut self.alerts {
            if let Some(t) = truth.get(a.message_index) {
                a.failure = *t;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{catalog, example_body};
    use sclog_types::{Message, NodeId, Severity, Timestamp};

    fn render_and_tag_all(system: SystemId) {
        let mut registry = CategoryRegistry::new();
        let rules = RuleSet::builtin(system, &mut registry);
        let mut interner = SourceInterner::new();
        let source = interner.intern("test-node");
        for spec in catalog(system) {
            let severity = match spec.severity {
                crate::catalog::CatSeverity::None => Severity::None,
                crate::catalog::CatSeverity::Bgl(s) => Severity::Bgl(s),
                crate::catalog::CatSeverity::Syslog(s) => Severity::Syslog(s),
            };
            let facility =
                crate::catalog::fill_template(spec.facility, crate::catalog::example_value);
            let msg = Message::new(
                system,
                Timestamp::from_ymd_hms(2006, 1, 15, 12, 0, 0),
                source,
                facility,
                severity,
                example_body(spec),
            );
            let tagged = rules.tag_message(&msg, &interner);
            let got = tagged.map(|c| registry.name(c).to_owned());
            assert_eq!(
                got.as_deref(),
                Some(spec.name),
                "system {system}: body {:?} mis-tagged",
                example_body(spec)
            );
        }
    }

    #[test]
    fn every_category_tags_its_own_canonical_message() {
        for &sys in &sclog_types::ALL_SYSTEMS {
            render_and_tag_all(sys);
        }
    }

    #[test]
    fn background_messages_are_untagged() {
        let mut registry = CategoryRegistry::new();
        let rules = RuleSet::builtin(SystemId::Spirit, &mut registry);
        let mut interner = SourceInterner::new();
        let source = interner.intern("sn001");
        let benign = [
            "session opened for user root",
            "synchronized to NTP server 10.0.0.1",
            "ACCEPT IN=eth0 OUT= SRC=10.2.3.4",
            "running dkms autoinstaller",
        ];
        for body in benign {
            let msg = Message::new(
                SystemId::Spirit,
                Timestamp::from_ymd_hms(2005, 5, 5, 5, 5, 5),
                source,
                "kernel",
                Severity::None,
                body,
            );
            assert_eq!(rules.tag_message(&msg, &interner), None, "{body}");
        }
    }

    #[test]
    fn tag_messages_produces_ordered_alerts() {
        let mut registry = CategoryRegistry::new();
        let rules = RuleSet::builtin(SystemId::Liberty, &mut registry);
        let mut interner = SourceInterner::new();
        let source = interner.intern("ln3");
        let mk = |secs: i64, body: &str| {
            Message::new(
                SystemId::Liberty,
                Timestamp::from_secs(1_102_809_600 + secs),
                source,
                "pbs_mom",
                Severity::None,
                body,
            )
        };
        let msgs = vec![
            mk(0, "task_check, cannot tm_reply to 1 task 1"),
            mk(1, "all quiet"),
            mk(
                2,
                "Bad file descriptor (9) in tm_request, job 2 not running",
            ),
        ];
        let tagged = rules.tag_messages(&msgs, &interner);
        assert_eq!(tagged.len(), 2);
        assert_eq!(tagged.alerts[0].message_index, 0);
        assert_eq!(tagged.alerts[1].message_index, 2);
        assert_eq!(registry.name(tagged.alerts[0].category), "PBS_CHK");
        assert_eq!(registry.name(tagged.alerts[1].category), "PBS_BFD");
        let counts = tagged.counts_by_category();
        assert_eq!(counts.len(), 2);
    }

    #[test]
    fn parallel_tagging_matches_serial() {
        let mut registry = CategoryRegistry::new();
        let rules = RuleSet::builtin(SystemId::Liberty, &mut registry);
        let mut interner = SourceInterner::new();
        let source = interner.intern("ln1");
        let msgs: Vec<Message> = (0..10_000)
            .map(|i| {
                let body = if i % 3 == 0 {
                    "task_check, cannot tm_reply to 9 task 1"
                } else {
                    "nothing to see"
                };
                Message::new(
                    SystemId::Liberty,
                    Timestamp::from_secs(1_102_809_600 + i),
                    source,
                    "pbs_mom",
                    Severity::None,
                    body,
                )
            })
            .collect();
        let serial = rules.tag_messages(&msgs, &interner);
        let parallel = rules.tag_messages_parallel(&msgs, &interner, 4);
        assert_eq!(serial.alerts, parallel.alerts);
    }

    #[test]
    fn attach_truth_joins_by_index() {
        let mut tl = TaggedLog {
            alerts: vec![Alert::new(
                Timestamp::EPOCH,
                NodeId::from_index(0),
                CategoryId::from_index(0),
                1,
            )],
        };
        let truth = vec![None, Some(sclog_types::FailureId(9))];
        tl.attach_truth(&truth);
        assert_eq!(tl.alerts[0].failure, Some(sclog_types::FailureId(9)));
        assert!(!tl.is_empty());
    }
}
