//! The tagging engine: applies a system's ruleset to parsed messages.
//!
//! Tagging is the pipeline's hot path — the paper runs every one of
//! its 178 million raw lines through the expert rule catalog — so the
//! engine is built around two ideas:
//!
//! * **Prefiltered matching.** Compiling a [`RuleSet`] extracts each
//!   rule's required literal factors and builds one Aho-Corasick
//!   prescan over all of them ([`crate::prefilter`]). Tagging a line
//!   scans it once, yielding a candidate-rule bitset; only candidates
//!   (plus the few rules with no extractable factor) run their
//!   regexes, still in catalog order so first-match-wins semantics
//!   are unchanged. [`RuleSet::tag_line_unfiltered`] keeps the
//!   brute-force path as the reference for equivalence tests and
//!   benchmarks.
//! * **Scratch reuse.** [`TagScratch`] owns the rendered-line buffer,
//!   the field spans, and the candidate bitset, so the per-message
//!   loop ([`RuleSet::tag_message_with`]) performs no per-line
//!   allocation. [`RuleSet::tag_messages_parallel`] threads one
//!   scratch per worker.

use crate::catalog::{catalog, CategorySpec};
use crate::dfa::{DfaCache, DfaProgram};
use crate::lang::Predicate;
use crate::prefilter::RulePrefilter;
use crate::re::Regex;
use sclog_parse::{field_spans, render_native, render_native_into};
use sclog_types::{Alert, CategoryId, CategoryRegistry, Message, SourceInterner, SystemId};
use std::sync::atomic::{AtomicU64, Ordering};

/// One compiled rule within a [`RuleSet`].
#[derive(Debug)]
struct CompiledRule {
    predicate: Predicate,
    category: CategoryId,
    /// Whether the predicate inspects split fields (`$N`, `N >= 1`);
    /// whole-line rules skip field splitting entirely.
    uses_fields: bool,
    /// First slot of this rule's regexes in the ruleset's tier table
    /// (one slot per regex, predicate pre-order).
    tier_base: usize,
}

/// How one regex slot of a rule predicate executes in the hot loop.
#[derive(Debug)]
enum RegexTier {
    /// The pattern reduced to a plain literal: `is_match` is
    /// `str::contains` and never runs the Pike VM.
    Literal,
    /// Pike VM directly — the program was judged ineligible for lazy
    /// determinization ([`DfaProgram::new`] declined it).
    Vm,
    /// Lazy DFA with Pike-VM fallback on bailout.
    Dfa(DfaProgram),
}

/// Number of regex slots a predicate contributes to the tier table
/// (pre-order, matching the walk in `eval_pred`).
fn regex_count(pred: &Predicate) -> usize {
    match pred {
        Predicate::Line(_) | Predicate::Field(..) => 1,
        Predicate::Not(p) => regex_count(p),
        Predicate::And(a, b) | Predicate::Or(a, b) => regex_count(a) + regex_count(b),
    }
}

/// Appends the tier of every regex in `pred`, pre-order.
fn collect_tiers(pred: &Predicate, tiers: &mut Vec<RegexTier>) {
    match pred {
        Predicate::Line(re) | Predicate::Field(_, re) => tiers.push(if re.is_literal() {
            RegexTier::Literal
        } else {
            match DfaProgram::new(re) {
                Some(prog) => RegexTier::Dfa(prog),
                None => RegexTier::Vm,
            }
        }),
        Predicate::Not(p) => collect_tiers(p, tiers),
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            collect_tiers(a, tiers);
            collect_tiers(b, tiers);
        }
    }
}

/// Source of unique [`RuleSet`] stamps, so a scratch can tell whether
/// its per-slot DFA caches belong to the ruleset it is being used
/// with.
static RULESET_STAMP: AtomicU64 = AtomicU64::new(1);

fn fresh_stamp() -> u64 {
    RULESET_STAMP.fetch_add(1, Ordering::Relaxed)
}

/// Per-scratch lazy-DFA state: one bounded cache per DFA-eligible
/// regex slot, built on first use and keyed to a ruleset stamp.
#[derive(Debug, Default)]
struct DfaScratch {
    /// Stamp of the ruleset the caches were built for.
    stamp: u64,
    /// One entry per tier slot; `None` until the slot first executes.
    caches: Vec<Option<DfaCache>>,
}

impl DfaScratch {
    /// Points the scratch at a ruleset, dropping caches built for a
    /// different one. A stamp match is the no-op fast path.
    fn bind(&mut self, stamp: u64, slots: usize) {
        if self.stamp != stamp {
            self.caches.clear();
            self.caches.resize_with(slots, || None);
            self.stamp = stamp;
        }
    }
}

/// Reusable per-worker scratch for the tagging hot loop.
///
/// Owns the rendered-line buffer, the field spans, and the candidate
/// bitset, so tagging a message allocates nothing once the buffers
/// have warmed up. Create one per thread and pass it to
/// [`RuleSet::tag_message_with`] / [`RuleSet::tag_line_with`].
///
/// # Examples
///
/// ```
/// use sclog_rules::{RuleSet, TagScratch};
/// use sclog_types::{CategoryRegistry, SystemId};
///
/// let mut registry = CategoryRegistry::new();
/// let rules = RuleSet::builtin(SystemId::Liberty, &mut registry);
/// let mut scratch = TagScratch::new();
/// let line = "Mar  7 14:30:05 dn228 pbs_mom: task_check, cannot tm_reply to 4418 task 1";
/// let cat = rules.tag_line_with(line, &mut scratch).expect("should tag");
/// assert_eq!(registry.name(cat), "PBS_CHK");
/// ```
#[derive(Debug, Default)]
pub struct TagScratch {
    /// Rendered native line (reused across messages).
    line: String,
    /// Field byte spans of the current line.
    spans: Vec<(usize, usize)>,
    /// Candidate rule bitset filled by the prescan.
    candidates: Vec<u64>,
    /// Prefilter effectiveness tallies, accumulated per line.
    counts: TagCounts,
    /// Per-slot lazy-DFA caches (see [`crate::dfa`]).
    dfa: DfaScratch,
}

impl TagScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The prefilter effectiveness tallies accumulated so far.
    pub fn counts(&self) -> TagCounts {
        self.counts
    }

    /// Takes the accumulated tallies, resetting them to zero — how a
    /// pool worker flushes per-batch counts into its metric shard.
    pub fn take_counts(&mut self) -> TagCounts {
        std::mem::take(&mut self.counts)
    }
}

/// Prefilter effectiveness tallies for the tagging hot loop.
///
/// Plain `u64` increments accumulated in [`TagScratch`] (never atomics
/// — the hot loop stays free of shared state) and flushed at batch
/// granularity by whoever owns the scratch. Together they turn the
/// prescan's design claim into an observed ratio: of `lines` tagged,
/// `gated_out` never ran a single regex, and the rest cost `vm_execs`
/// Pike-VM executions for `matches` hits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TagCounts {
    /// Lines run through the tag loop.
    pub lines: u64,
    /// Total bytes of those lines.
    pub bytes: u64,
    /// Lines the Aho-Corasick gate rejected outright (no candidate
    /// rule, so no regex ran at all).
    pub gated_out: u64,
    /// Individual rule-regex (Pike VM) executions.
    pub vm_execs: u64,
    /// Lines that matched some rule (i.e. produced an alert).
    pub matches: u64,
    /// Regex executions that would run a Pike VM (non-literal pattern
    /// actually evaluated on a string). Each is resolved by the DFA
    /// tier or bails to the VM, so
    /// `vm_eligible == dfa_execs + dfa_bailouts` always.
    pub vm_eligible: u64,
    /// VM-eligible executions the lazy DFA resolved by itself.
    pub dfa_execs: u64,
    /// VM-eligible executions that fell back to the Pike VM
    /// (ineligible program, non-ASCII input, or cache overflow).
    pub dfa_bailouts: u64,
    /// Bounded-cache clears forced by state-cache overflow.
    pub dfa_evictions: u64,
}

impl TagCounts {
    /// Adds another tally into this one.
    pub fn merge(&mut self, other: TagCounts) {
        self.lines += other.lines;
        self.bytes += other.bytes;
        self.gated_out += other.gated_out;
        self.vm_execs += other.vm_execs;
        self.matches += other.matches;
        self.vm_eligible += other.vm_eligible;
        self.dfa_execs += other.dfa_execs;
        self.dfa_bailouts += other.dfa_bailouts;
        self.dfa_evictions += other.dfa_evictions;
    }
}

/// A compiled per-system ruleset.
///
/// Rules are evaluated in catalog order; the first match tags the
/// message ("two alerts are in the same category if they were tagged by
/// the same expert rule").
///
/// # Examples
///
/// ```
/// use sclog_rules::RuleSet;
/// use sclog_types::{CategoryRegistry, SystemId};
///
/// let mut registry = CategoryRegistry::new();
/// let rules = RuleSet::builtin(SystemId::Liberty, &mut registry);
/// let line = "Mar  7 14:30:05 dn228 pbs_mom: task_check, cannot tm_reply to 4418 task 1";
/// let cat = rules.tag_line(line).expect("should tag");
/// assert_eq!(registry.name(cat), "PBS_CHK");
/// ```
#[derive(Debug)]
pub struct RuleSet {
    system: SystemId,
    rules: Vec<CompiledRule>,
    prefilter: RulePrefilter,
    /// Execution tier of every rule regex, indexed by slot (see
    /// [`CompiledRule::tier_base`]).
    tiers: Vec<RegexTier>,
    /// Bound for each per-slot [`DfaCache`].
    dfa_max_states: usize,
    /// Unique id tying [`TagScratch`] DFA caches to this ruleset.
    stamp: u64,
}

impl RuleSet {
    /// Compiles the built-in catalog ruleset for a system, registering
    /// its categories.
    ///
    /// # Panics
    ///
    /// Panics if a built-in rule fails to compile (a bug, covered by
    /// tests).
    pub fn builtin(system: SystemId, registry: &mut CategoryRegistry) -> Self {
        Self::from_specs(system, catalog(system), registry)
    }

    /// Compiles an explicit list of category specs.
    ///
    /// # Panics
    ///
    /// Panics if a rule fails to parse or compile, or if a spec's
    /// system does not match `system`.
    pub fn from_specs(
        system: SystemId,
        specs: &[CategorySpec],
        registry: &mut CategoryRegistry,
    ) -> Self {
        let rules = specs
            .iter()
            .map(|spec| {
                assert_eq!(
                    spec.system, system,
                    "spec {} is for another system",
                    spec.name
                );
                let predicate = Predicate::parse(spec.rule)
                    .unwrap_or_else(|e| panic!("rule {} failed to compile: {e}", spec.name));
                let category = registry.register(spec.name, system, spec.alert_type);
                CompiledRule {
                    uses_fields: predicate.uses_fields(),
                    predicate,
                    category,
                    tier_base: 0,
                }
            })
            .collect();
        Self::with_rules(system, rules)
    }

    /// Compiles a ruleset from owned definitions (see
    /// [`crate::loader`]).
    pub(crate) fn from_loaded(
        system: SystemId,
        defs: &[crate::loader::RuleDef],
        registry: &mut CategoryRegistry,
    ) -> Self {
        let rules = defs
            .iter()
            .map(|d| {
                let predicate = Predicate::parse(&d.rule)
                    .unwrap_or_else(|e| panic!("rule {} failed to compile: {e}", d.name));
                let category = registry.register(&d.name, system, d.alert_type);
                CompiledRule {
                    uses_fields: predicate.uses_fields(),
                    predicate,
                    category,
                    tier_base: 0,
                }
            })
            .collect();
        Self::with_rules(system, rules)
    }

    /// Finishes construction: builds the literal-factor prescan and
    /// the per-regex execution-tier table over the compiled rules.
    fn with_rules(system: SystemId, mut rules: Vec<CompiledRule>) -> Self {
        let factors: Vec<Option<Vec<String>>> = rules
            .iter()
            .map(|r| r.predicate.required_literals())
            .collect();
        let mut tiers = Vec::new();
        for rule in &mut rules {
            rule.tier_base = tiers.len();
            collect_tiers(&rule.predicate, &mut tiers);
        }
        RuleSet {
            system,
            prefilter: RulePrefilter::new(&factors),
            rules,
            tiers,
            dfa_max_states: crate::dfa::DEFAULT_MAX_STATES,
            stamp: fresh_stamp(),
        }
    }

    /// Overrides the per-regex DFA state-cache bound (builder style).
    ///
    /// The default ([`crate::dfa::DEFAULT_MAX_STATES`]) comfortably
    /// holds every catalog pattern; the conformance suite sets tiny
    /// bounds to force the eviction and bailout paths. Results are
    /// identical for any bound — only the DFA-vs-VM split moves.
    pub fn with_dfa_cache_states(mut self, max_states: usize) -> Self {
        self.dfa_max_states = max_states;
        // New stamp: caches sized for the old bound must not be
        // reused.
        self.stamp = fresh_stamp();
        self
    }

    /// The system this ruleset belongs to.
    pub fn system(&self) -> SystemId {
        self.system
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if the ruleset has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Tags one rendered log line, returning the first matching rule's
    /// category.
    ///
    /// Allocating convenience wrapper over [`RuleSet::tag_line_with`];
    /// loops should hold one [`TagScratch`] and use that instead.
    pub fn tag_line(&self, line: &str) -> Option<CategoryId> {
        self.tag_line_with(line, &mut TagScratch::new())
    }

    /// Tags one rendered log line using caller-owned scratch buffers:
    /// one Aho-Corasick prescan yields the candidate rules, and only
    /// those run their regexes, in catalog order (first match wins).
    pub fn tag_line_with(&self, line: &str, scratch: &mut TagScratch) -> Option<CategoryId> {
        let TagScratch {
            spans,
            candidates,
            counts,
            dfa,
            ..
        } = scratch;
        self.tag_line_parts(line, spans, candidates, counts, dfa)
    }

    /// Tags one rendered log line by checking every rule, with no
    /// prescan — the brute-force reference path the prefiltered
    /// engine is property-tested against (and benchmarked against in
    /// `tagger_bench`). Behaviour is identical by construction of the
    /// always-check set; speed is not.
    pub fn tag_line_unfiltered(&self, line: &str) -> Option<CategoryId> {
        let fields = sclog_parse::fields(line);
        self.rules
            .iter()
            .find(|r| r.predicate.matches_fields(line, &fields))
            .map(|r| r.category)
    }

    /// The prefiltered tag loop on split scratch parts (split so the
    /// rendered line can live in the same [`TagScratch`]).
    fn tag_line_parts(
        &self,
        line: &str,
        spans: &mut Vec<(usize, usize)>,
        candidates: &mut Vec<u64>,
        counts: &mut TagCounts,
        dfa: &mut DfaScratch,
    ) -> Option<CategoryId> {
        counts.lines += 1;
        counts.bytes += line.len() as u64;
        let execs_at_entry = counts.vm_execs;
        dfa.bind(self.stamp, self.tiers.len());
        self.prefilter.candidates(line, candidates);
        let mut have_spans = false;
        for (w, &word) in candidates.iter().enumerate() {
            let mut word = word;
            // Walk set bits in ascending order — bit order is catalog
            // order, preserving first-match-wins semantics.
            while word != 0 {
                let idx = w * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                let rule = &self.rules[idx];
                if rule.uses_fields && !have_spans {
                    field_spans(line, spans);
                    have_spans = true;
                }
                counts.vm_execs += 1;
                let mut slot = rule.tier_base;
                if self.eval_pred(&rule.predicate, &mut slot, line, spans, dfa, counts) {
                    counts.matches += 1;
                    return Some(rule.category);
                }
            }
        }
        if counts.vm_execs == execs_at_entry {
            counts.gated_out += 1;
        }
        None
    }

    /// Evaluates one predicate tree against a line, dispatching each
    /// leaf regex to its precompiled execution tier.
    ///
    /// `slot` tracks the leaf's index into [`RuleSet::tiers`] (and the
    /// matching per-thread DFA cache slot) in pre-order; short-circuited
    /// subtrees advance it without running anything, so every leaf
    /// always sees its own slot. Semantics mirror
    /// [`Predicate::matches_spans`] exactly — only the regex execution
    /// strategy differs.
    fn eval_pred(
        &self,
        pred: &Predicate,
        slot: &mut usize,
        line: &str,
        spans: &[(usize, usize)],
        dfa: &mut DfaScratch,
        counts: &mut TagCounts,
    ) -> bool {
        match pred {
            Predicate::Line(re) => {
                let here = *slot;
                *slot += 1;
                self.eval_regex(re, here, line, dfa, counts)
            }
            Predicate::Field(n, re) => {
                let here = *slot;
                *slot += 1;
                if *n == 0 {
                    self.eval_regex(re, here, line, dfa, counts)
                } else {
                    // A missing field is a plain non-match: the regex
                    // never runs, so nothing is counted against any
                    // tier (matching `matches_spans`).
                    spans
                        .get(*n - 1)
                        .is_some_and(|&(s, e)| self.eval_regex(re, here, &line[s..e], dfa, counts))
                }
            }
            Predicate::Not(p) => !self.eval_pred(p, slot, line, spans, dfa, counts),
            Predicate::And(a, b) => {
                if !self.eval_pred(a, slot, line, spans, dfa, counts) {
                    *slot += regex_count(b);
                    return false;
                }
                self.eval_pred(b, slot, line, spans, dfa, counts)
            }
            Predicate::Or(a, b) => {
                if self.eval_pred(a, slot, line, spans, dfa, counts) {
                    *slot += regex_count(b);
                    return true;
                }
                self.eval_pred(b, slot, line, spans, dfa, counts)
            }
        }
    }

    /// Runs the regex in tier slot `here` against `text` through the
    /// cheapest sound engine: literal containment, the lazy DFA, or
    /// the Pike VM (also the fallback when the DFA bails on non-ASCII
    /// input or a cache overflow).
    fn eval_regex(
        &self,
        re: &Regex,
        here: usize,
        text: &str,
        dfa: &mut DfaScratch,
        counts: &mut TagCounts,
    ) -> bool {
        match &self.tiers[here] {
            RegexTier::Literal => re.is_match(text),
            RegexTier::Vm => {
                counts.vm_eligible += 1;
                counts.dfa_bailouts += 1;
                re.is_match(text)
            }
            RegexTier::Dfa(prog) => {
                counts.vm_eligible += 1;
                let cache = dfa.caches[here]
                    .get_or_insert_with(|| DfaCache::with_max_states(self.dfa_max_states));
                let verdict = cache.matches(prog, text);
                counts.dfa_evictions += cache.take_evictions();
                match verdict {
                    Some(hit) => {
                        counts.dfa_execs += 1;
                        hit
                    }
                    None => {
                        counts.dfa_bailouts += 1;
                        re.is_match(text)
                    }
                }
            }
        }
    }

    /// Tags a message by rendering it in its native format first.
    ///
    /// Allocating convenience wrapper over
    /// [`RuleSet::tag_message_with`].
    pub fn tag_message(&self, msg: &Message, interner: &SourceInterner) -> Option<CategoryId> {
        self.tag_message_with(msg, interner, &mut TagScratch::new())
    }

    /// Tags a message using caller-owned scratch: the native line is
    /// rendered into the scratch's reused buffer, then tagged through
    /// the prescan. The per-message loop built on this is
    /// allocation-free once the scratch has warmed up.
    pub fn tag_message_with(
        &self,
        msg: &Message,
        interner: &SourceInterner,
        scratch: &mut TagScratch,
    ) -> Option<CategoryId> {
        // Split borrows: the rendered line lives next to the span and
        // candidate buffers the tag loop writes into.
        let TagScratch {
            line,
            spans,
            candidates,
            counts,
            dfa,
        } = scratch;
        render_native_into(msg, interner, line);
        self.tag_line_parts(line, spans, candidates, counts, dfa)
    }

    /// Tags every message, producing the alert sequence.
    ///
    /// Messages are expected in time order (as logs are); the returned
    /// alerts preserve that order.
    pub fn tag_messages(&self, messages: &[Message], interner: &SourceInterner) -> TaggedLog {
        let mut scratch = TagScratch::new();
        let mut alerts = Vec::new();
        for (i, msg) in messages.iter().enumerate() {
            if let Some(category) = self.tag_message_with(msg, interner, &mut scratch) {
                alerts.push(Alert::new(msg.time, msg.source, category, i));
            }
        }
        TaggedLog { alerts }
    }

    /// Tags every message through the brute-force all-rules path (no
    /// prescan, no buffer reuse) — the reference implementation for
    /// equivalence tests and the benchmark baseline.
    pub fn tag_messages_unfiltered(
        &self,
        messages: &[Message],
        interner: &SourceInterner,
    ) -> TaggedLog {
        let mut alerts = Vec::new();
        for (i, msg) in messages.iter().enumerate() {
            let line = render_native(msg, interner);
            if let Some(category) = self.tag_line_unfiltered(&line) {
                alerts.push(Alert::new(msg.time, msg.source, category, i));
            }
        }
        TaggedLog { alerts }
    }

    /// Tags every message using `threads` workers from a [`TagPool`]
    /// (order of the result is preserved). Falls back to the serial
    /// loop when parallelism cannot pay for itself — a single thread
    /// requested, a sub-threshold workload, or a single-CPU host —
    /// because the prefiltered engine made per-message work cheap
    /// enough that thread startup used to *lose* to serial on small
    /// batches (see `BENCH_tagger.json` history).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    ///
    /// [`TagPool`]: crate::pool::TagPool
    pub fn tag_messages_parallel(
        &self,
        messages: &[Message],
        interner: &SourceInterner,
        threads: usize,
    ) -> TaggedLog {
        assert!(threads > 0, "need at least one thread");
        if !parallel_worthwhile(threads, messages.len()) {
            return self.tag_messages(messages, interner);
        }
        crate::pool::TagPool::scope(
            self,
            threads,
            threads * crate::pool::JOBS_PER_WORKER,
            |pool| {
                // Several chunks per worker so a lucky all-background
                // chunk does not leave its worker idle at the tail.
                let chunk = messages
                    .len()
                    .div_ceil(threads * 4)
                    .max(PARALLEL_MIN_MESSAGES / 4);
                for (k, msgs) in messages.chunks(chunk).enumerate() {
                    pool.submit_messages(k * chunk, msgs, interner, None);
                }
                pool.close();
                let mut batches: Vec<_> = std::iter::from_fn(|| pool.recv()).collect();
                batches.sort_by_key(|b| b.seq);
                TaggedLog {
                    alerts: batches.into_iter().flat_map(|b| b.alerts).collect(),
                }
            },
        )
    }

    /// Parallel twin of [`RuleSet::tag_messages_unfiltered`], for the
    /// prefilter-off arm of the benchmark matrix.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn tag_messages_parallel_unfiltered(
        &self,
        messages: &[Message],
        interner: &SourceInterner,
        threads: usize,
    ) -> TaggedLog {
        assert!(threads > 0, "need at least one thread");
        if !parallel_worthwhile(threads, messages.len()) {
            return self.tag_messages_unfiltered(messages, interner);
        }
        self.tag_chunked(messages, threads, |msgs, base| {
            let mut out = Vec::new();
            for (i, msg) in msgs.iter().enumerate() {
                let line = render_native(msg, interner);
                if let Some(category) = self.tag_line_unfiltered(&line) {
                    out.push(Alert::new(msg.time, msg.source, category, base + i));
                }
            }
            out
        })
    }

    /// Splits `messages` into `threads` balanced chunks (sizes differ
    /// by at most one, so no worker idles while another carries a
    /// double share — the old `div_ceil` split could hand the last
    /// workers short or empty chunks) and runs `work` on each in a
    /// scoped thread.
    fn tag_chunked<F>(&self, messages: &[Message], threads: usize, work: F) -> TaggedLog
    where
        F: Fn(&[Message], usize) -> Vec<Alert> + Sync,
    {
        let base_len = messages.len() / threads;
        let extra = messages.len() % threads;
        let mut partials: Vec<Vec<Alert>> = Vec::new();
        std::thread::scope(|scope| {
            let work = &work;
            let mut start = 0;
            let handles: Vec<_> = (0..threads)
                .map(|k| {
                    let size = base_len + usize::from(k < extra);
                    let base = start;
                    start += size;
                    let msgs = &messages[base..base + size];
                    scope.spawn(move || work(msgs, base))
                })
                .collect();
            for h in handles {
                partials.push(h.join().expect("tagger thread panicked"));
            }
        });
        TaggedLog {
            alerts: partials.concat(),
        }
    }
}

/// Below this many messages, splitting across threads costs more than
/// it saves.
const PARALLEL_MIN_MESSAGES: usize = 4096;

/// Whether fanning a batch of `len` messages out to `threads` workers
/// can beat the serial loop: more than one thread requested, enough
/// work to amortize handoff, and more than one CPU to run on.
fn parallel_worthwhile(threads: usize, len: usize) -> bool {
    threads > 1
        && len >= PARALLEL_MIN_MESSAGES
        && std::thread::available_parallelism().map_or(1, |n| n.get()) > 1
}

/// The output of tagging: the alert sequence in message order.
#[derive(Debug, Clone, Default)]
pub struct TaggedLog {
    /// Tagged alerts, ordered by message index (hence by time).
    pub alerts: Vec<Alert>,
}

impl TaggedLog {
    /// Number of alerts.
    pub fn len(&self) -> usize {
        self.alerts.len()
    }

    /// True if no messages were tagged.
    pub fn is_empty(&self) -> bool {
        self.alerts.is_empty()
    }

    /// Counts alerts per category.
    pub fn counts_by_category(&self) -> std::collections::HashMap<CategoryId, u64> {
        let mut out = std::collections::HashMap::new();
        for a in &self.alerts {
            *out.entry(a.category).or_insert(0) += 1;
        }
        out
    }

    /// Attaches ground-truth failure ids by message index (simulator
    /// output); indices without truth stay `None`.
    pub fn attach_truth(&mut self, truth: &[Option<sclog_types::FailureId>]) {
        for a in &mut self.alerts {
            if let Some(t) = truth.get(a.message_index) {
                a.failure = *t;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{catalog, example_body};
    use sclog_types::{Message, NodeId, Severity, Timestamp};

    fn render_and_tag_all(system: SystemId) {
        let mut registry = CategoryRegistry::new();
        let rules = RuleSet::builtin(system, &mut registry);
        let mut interner = SourceInterner::new();
        let source = interner.intern("test-node");
        for spec in catalog(system) {
            let severity = match spec.severity {
                crate::catalog::CatSeverity::None => Severity::None,
                crate::catalog::CatSeverity::Bgl(s) => Severity::Bgl(s),
                crate::catalog::CatSeverity::Syslog(s) => Severity::Syslog(s),
            };
            let facility =
                crate::catalog::fill_template(spec.facility, crate::catalog::example_value);
            let msg = Message::new(
                system,
                Timestamp::from_ymd_hms(2006, 1, 15, 12, 0, 0),
                source,
                facility,
                severity,
                example_body(spec),
            );
            let tagged = rules.tag_message(&msg, &interner);
            let got = tagged.map(|c| registry.name(c).to_owned());
            assert_eq!(
                got.as_deref(),
                Some(spec.name),
                "system {system}: body {:?} mis-tagged",
                example_body(spec)
            );
        }
    }

    #[test]
    fn every_category_tags_its_own_canonical_message() {
        for &sys in &sclog_types::ALL_SYSTEMS {
            render_and_tag_all(sys);
        }
    }

    #[test]
    fn background_messages_are_untagged() {
        let mut registry = CategoryRegistry::new();
        let rules = RuleSet::builtin(SystemId::Spirit, &mut registry);
        let mut interner = SourceInterner::new();
        let source = interner.intern("sn001");
        let benign = [
            "session opened for user root",
            "synchronized to NTP server 10.0.0.1",
            "ACCEPT IN=eth0 OUT= SRC=10.2.3.4",
            "running dkms autoinstaller",
        ];
        for body in benign {
            let msg = Message::new(
                SystemId::Spirit,
                Timestamp::from_ymd_hms(2005, 5, 5, 5, 5, 5),
                source,
                "kernel",
                Severity::None,
                body,
            );
            assert_eq!(rules.tag_message(&msg, &interner), None, "{body}");
        }
    }

    #[test]
    fn tag_messages_produces_ordered_alerts() {
        let mut registry = CategoryRegistry::new();
        let rules = RuleSet::builtin(SystemId::Liberty, &mut registry);
        let mut interner = SourceInterner::new();
        let source = interner.intern("ln3");
        let mk = |secs: i64, body: &str| {
            Message::new(
                SystemId::Liberty,
                Timestamp::from_secs(1_102_809_600 + secs),
                source,
                "pbs_mom",
                Severity::None,
                body,
            )
        };
        let msgs = vec![
            mk(0, "task_check, cannot tm_reply to 1 task 1"),
            mk(1, "all quiet"),
            mk(
                2,
                "Bad file descriptor (9) in tm_request, job 2 not running",
            ),
        ];
        let tagged = rules.tag_messages(&msgs, &interner);
        assert_eq!(tagged.len(), 2);
        assert_eq!(tagged.alerts[0].message_index, 0);
        assert_eq!(tagged.alerts[1].message_index, 2);
        assert_eq!(registry.name(tagged.alerts[0].category), "PBS_CHK");
        assert_eq!(registry.name(tagged.alerts[1].category), "PBS_BFD");
        let counts = tagged.counts_by_category();
        assert_eq!(counts.len(), 2);
    }

    #[test]
    fn parallel_tagging_matches_serial() {
        let mut registry = CategoryRegistry::new();
        let rules = RuleSet::builtin(SystemId::Liberty, &mut registry);
        let mut interner = SourceInterner::new();
        let source = interner.intern("ln1");
        let msgs: Vec<Message> = (0..10_000)
            .map(|i| {
                let body = if i % 3 == 0 {
                    "task_check, cannot tm_reply to 9 task 1"
                } else {
                    "nothing to see"
                };
                Message::new(
                    SystemId::Liberty,
                    Timestamp::from_secs(1_102_809_600 + i),
                    source,
                    "pbs_mom",
                    Severity::None,
                    body,
                )
            })
            .collect();
        let serial = rules.tag_messages(&msgs, &interner);
        let parallel = rules.tag_messages_parallel(&msgs, &interner, 4);
        assert_eq!(serial.alerts, parallel.alerts);
    }

    #[test]
    fn attach_truth_joins_by_index() {
        let mut tl = TaggedLog {
            alerts: vec![Alert::new(
                Timestamp::EPOCH,
                NodeId::from_index(0),
                CategoryId::from_index(0),
                1,
            )],
        };
        let truth = vec![None, Some(sclog_types::FailureId(9))];
        tl.attach_truth(&truth);
        assert_eq!(tl.alerts[0].failure, Some(sclog_types::FailureId(9)));
        assert!(!tl.is_empty());
    }
}
