//! The encoded expert rulesets: all 77 alert categories of Table 4.
//!
//! Each [`CategorySpec`] carries the expert rule (in the awk-like rule
//! language), the administrator-assigned type, the facility and message
//! body template the category's alerts exhibit, the severity its
//! alerts carry on severity-recording systems, and the paper's raw and
//! filtered alert counts — the calibration targets the log generator
//! scales from.
//!
//! The paper lists the ten most common BG/L categories explicitly and
//! aggregates the remaining 31 as "I/31 Others" (raw 7186, filtered
//! 519); we define 31 concrete categories whose counts sum to exactly
//! those totals. Red Storm's `CMD_ABORT` raw count is blank in Table 4;
//! it is recovered as 1686 from the table's row and column sums (see
//! EXPERIMENTS.md).

use sclog_types::{AlertType, BglSeverity, SyslogSeverity, SystemId};

/// Severity stamped on a category's alert messages, where recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CatSeverity {
    /// System does not record severity (Thunderbird, Spirit, Liberty).
    None,
    /// BG/L RAS severity.
    Bgl(BglSeverity),
    /// Red Storm syslog severity.
    Syslog(SyslogSeverity),
}

/// One alert category: the expert rule plus everything needed to
/// generate and recognize its messages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CategorySpec {
    /// Category name as printed in Table 4 (e.g. `KERNDTLB`).
    pub name: &'static str,
    /// The system whose ruleset defines it.
    pub system: SystemId,
    /// Administrator-assigned type (H/S/I).
    pub alert_type: AlertType,
    /// Facility token the category's messages carry.
    pub facility: &'static str,
    /// Body template with `{placeholder}` holes (`{node}`, `{job}`,
    /// `{num}`, `{hex}`, `{ip}`, `{path}`, `{dev}`, `{time}`).
    pub template: &'static str,
    /// Severity on the category's alert messages.
    pub severity: CatSeverity,
    /// True for Red Storm categories logged via the RAS-network event
    /// path (rendered in the `EV` format, no severity).
    pub event_path: bool,
    /// The expert rule, in the rule language of [`crate::lang`].
    pub rule: &'static str,
    /// Raw alert count in the paper (Table 4).
    pub raw_count: u64,
    /// Filtered alert count in the paper (Table 4).
    pub filtered_count: u64,
}

macro_rules! cat {
    ($sys:ident, $name:literal, $ty:ident, $fac:literal, $sev:expr, $ev:literal,
     $raw:literal, $filt:literal, $rule:literal, $tmpl:literal) => {
        CategorySpec {
            name: $name,
            system: SystemId::$sys,
            alert_type: AlertType::$ty,
            facility: $fac,
            template: $tmpl,
            severity: $sev,
            event_path: $ev,
            rule: $rule,
            raw_count: $raw,
            filtered_count: $filt,
        }
    };
}

use CatSeverity::{Bgl, None as NoSev, Syslog};

/// BG/L ruleset: the 10 categories listed in Table 4 plus the 31
/// aggregated "Others" (totals match the paper exactly).
pub static BGL_CATALOG: &[CategorySpec] = &[
    cat!(BlueGeneL, "KERNDTLB", Hardware, "KERNEL", Bgl(BglSeverity::Fatal), false,
        152_734, 37, "/data TLB error interrupt/",
        "data TLB error interrupt"),
    cat!(BlueGeneL, "KERNSTOR", Hardware, "KERNEL", Bgl(BglSeverity::Fatal), false,
        63_491, 8, "/data storage interrupt/",
        "data storage interrupt"),
    cat!(BlueGeneL, "APPSEV", Software, "APP", Bgl(BglSeverity::Fatal), false,
        49_651, 138, "/ciod: Error reading message prefix after LOGIN_MESSAGE/",
        "ciod: Error reading message prefix after LOGIN_MESSAGE on CioStream socket to {node}:{num}"),
    cat!(BlueGeneL, "KERNMNTF", Software, "KERNEL", Bgl(BglSeverity::Fatal), false,
        31_531, 105, "/Lustre mount FAILED/",
        "Lustre mount FAILED : bglio{num} : block_id : location"),
    cat!(BlueGeneL, "KERNTERM", Software, "KERNEL", Bgl(BglSeverity::Fatal), false,
        23_338, 99, "/rts: kernel terminated for reason/",
        "rts: kernel terminated for reason 1004rts: bad message header: {hex}"),
    cat!(BlueGeneL, "KERNREC", Software, "KERNEL", Bgl(BglSeverity::Fatal), false,
        6145, 9, "/Error receiving packet on tree network/",
        "Error receiving packet on tree network, expecting type 57 instead of type {num}"),
    cat!(BlueGeneL, "APPREAD", Software, "APP", Bgl(BglSeverity::Fatal), false,
        5983, 11, "/ciod: failed to read message prefix on control stream/",
        "ciod: failed to read message prefix on control stream CioStream socket to {node}"),
    cat!(BlueGeneL, "KERNRTSP", Software, "KERNEL", Bgl(BglSeverity::Fatal), false,
        3983, 260, "/rts panic! - stopping execution/",
        "rts panic! - stopping execution"),
    cat!(BlueGeneL, "APPRES", Software, "APP", Bgl(BglSeverity::Fatal), false,
        2370, 13, "/ciod: Error reading message prefix after LOAD_MESSAGE/",
        "ciod: Error reading message prefix after LOAD_MESSAGE on CioStream socket to {node}"),
    cat!(BlueGeneL, "APPUNAV", Indeterminate, "APP", Bgl(BglSeverity::Fatal), false,
        2048, 3, "/ciod: Error creating node map from file/",
        "ciod: Error creating node map from file {path}"),
    // ------- the 31 "Others" (all Indeterminate; totals 7186 / 519) ----
    cat!(BlueGeneL, "KERNMC", Indeterminate, "KERNEL", Bgl(BglSeverity::Fatal), false,
        1298, 89, "/machine check interrupt/",
        "machine check interrupt"),
    cat!(BlueGeneL, "KERNPAN", Indeterminate, "KERNEL", Bgl(BglSeverity::Fatal), false,
        1063, 77, "($4 ~ /KERNEL/ && /kernel panic/)",
        "kernel panic"),
    cat!(BlueGeneL, "KERNSOCK", Indeterminate, "KERNEL", Bgl(BglSeverity::Fatal), false,
        872, 63, "/socket closed unexpectedly/",
        "socket closed unexpectedly by peer {node}"),
    cat!(BlueGeneL, "KERNBIT", Indeterminate, "KERNEL", Bgl(BglSeverity::Fatal), false,
        715, 52, "/double-bit error detected/",
        "ddr: double-bit error detected at address {hex}"),
    cat!(BlueGeneL, "KERNDCR", Indeterminate, "KERNEL", Bgl(BglSeverity::Fatal), false,
        586, 42, "/DCR read timeout/",
        "DCR read timeout on chip {node}"),
    cat!(BlueGeneL, "KERNEXC", Indeterminate, "KERNEL", Bgl(BglSeverity::Fatal), false,
        481, 35, "/program interrupt exception/",
        "program interrupt exception iar {hex}"),
    cat!(BlueGeneL, "KERNFPU", Indeterminate, "KERNEL", Bgl(BglSeverity::Fatal), false,
        394, 28, "/floating point unavailable/",
        "floating point unavailable interrupt"),
    cat!(BlueGeneL, "KERNINST", Indeterminate, "KERNEL", Bgl(BglSeverity::Fatal), false,
        323, 23, "/instruction address breakpoint/",
        "instruction address breakpoint interrupt"),
    cat!(BlueGeneL, "KERNMICRO", Indeterminate, "KERNEL", Bgl(BglSeverity::Fatal), false,
        265, 19, "/microloader assertion/",
        "microloader assertion failure at {path}"),
    cat!(BlueGeneL, "KERNNOETH", Indeterminate, "KERNEL", Bgl(BglSeverity::Fatal), false,
        217, 16, "/no ethernet link/",
        "no ethernet link detected on emac {num}"),
    cat!(BlueGeneL, "KERNPROM", Indeterminate, "KERNEL", Bgl(BglSeverity::Fatal), false,
        178, 13, "/invalid promiscuous mode/",
        "invalid promiscuous mode setting {num}"),
    cat!(BlueGeneL, "KERNRTSA", Indeterminate, "KERNEL", Bgl(BglSeverity::Fatal), false,
        146, 11, "/rts assertion failed/",
        "rts assertion failed: {path}:{num}"),
    cat!(BlueGeneL, "KERNTLBP", Indeterminate, "KERNEL", Bgl(BglSeverity::Fatal), false,
        120, 9, "/instruction TLB error interrupt/",
        "instruction TLB error interrupt"),
    cat!(BlueGeneL, "KERNCON", Indeterminate, "KERNEL", Bgl(BglSeverity::Fatal), false,
        98, 7, "/console channel corrupt/",
        "console channel corrupt on {node}"),
    cat!(BlueGeneL, "KERNPOW", Indeterminate, "KERNEL", Bgl(BglSeverity::Fatal), false,
        81, 6, "/power module fault/",
        "power module fault asserted module {num}"),
    cat!(BlueGeneL, "CIODEXIT", Indeterminate, "BGLMASTER", Bgl(BglSeverity::Failure), false,
        66, 5, "/ciodb exited normally/",
        "FAILURE ciodb exited normally with exit code 0"),
    cat!(BlueGeneL, "LINKDISC", Indeterminate, "LINKCARD", Bgl(BglSeverity::Fatal), false,
        54, 4, "/link card discovery failed/",
        "link card discovery failed jtag {num}"),
    cat!(BlueGeneL, "LINKPAP", Indeterminate, "LINKCARD", Bgl(BglSeverity::Fatal), false,
        44, 3, "/link parity error on port/",
        "link parity error on port {num}"),
    cat!(BlueGeneL, "LINKIAP", Indeterminate, "LINKCARD", Bgl(BglSeverity::Fatal), false,
        36, 3, "/invalid arbitration packet/",
        "invalid arbitration packet on receiver {num}"),
    cat!(BlueGeneL, "MASABNORM", Indeterminate, "BGLMASTER", Bgl(BglSeverity::Fatal), false,
        30, 2, "/abnormally terminated/",
        "idoproxydb has been abnormally terminated"),
    cat!(BlueGeneL, "MONILL", Indeterminate, "MONITOR", Bgl(BglSeverity::Fatal), false,
        24, 2, "/illegal monitor request/",
        "illegal monitor request opcode {hex}"),
    cat!(BlueGeneL, "MONNULL", Indeterminate, "MONITOR", Bgl(BglSeverity::Fatal), false,
        20, 1, "/null monitor packet/",
        "null monitor packet received from {node}"),
    cat!(BlueGeneL, "MONPOW", Indeterminate, "MONITOR", Bgl(BglSeverity::Fatal), false,
        16, 1, "/monitor caught power fault/",
        "monitor caught power fault on nodecard {num}"),
    cat!(BlueGeneL, "MONTEMP", Indeterminate, "MONITOR", Bgl(BglSeverity::Fatal), false,
        14, 1, "/temperature over limit/",
        "temperature over limit on fan assembly {num}"),
    cat!(BlueGeneL, "MMCSRAS", Indeterminate, "MMCS", Bgl(BglSeverity::Fatal), false,
        11, 1, "/mmcs_db_server terminated/",
        "mmcs_db_server terminated unexpectedly"),
    cat!(BlueGeneL, "CIODSOCK", Indeterminate, "APP", Bgl(BglSeverity::Fatal), false,
        9, 1, "/ciod: LOGIN chdir/",
        "ciod: LOGIN chdir {path} failed: No such file or directory"),
    cat!(BlueGeneL, "APPALLOC", Indeterminate, "APP", Bgl(BglSeverity::Fatal), false,
        7, 1, "/ciod: cpu allocation failed/",
        "ciod: cpu allocation failed for job {job}"),
    cat!(BlueGeneL, "APPBUSY", Indeterminate, "APP", Bgl(BglSeverity::Fatal), false,
        6, 1, "/ciod: duplicate canonical-rank/",
        "ciod: duplicate canonical-rank {num} to {node}"),
    cat!(BlueGeneL, "APPCHILD", Indeterminate, "APP", Bgl(BglSeverity::Fatal), false,
        5, 1, "/ciod: child processes died/",
        "ciod: child processes died while job {job} active"),
    cat!(BlueGeneL, "APPTORUS", Indeterminate, "KERNEL", Bgl(BglSeverity::Fatal), false,
        4, 1, "/torus receiver .* input pipe error/",
        "torus receiver z+ input pipe error: count {num}"),
    cat!(BlueGeneL, "KERNPBS", Indeterminate, "KERNEL", Bgl(BglSeverity::Fatal), false,
        3, 1, "/personality buffer corrupt/",
        "personality buffer corrupt crc {hex}"),
];

/// Thunderbird ruleset (10 categories, Table 4).
pub static TBIRD_CATALOG: &[CategorySpec] = &[
    cat!(
        Thunderbird,
        "VAPI",
        Indeterminate,
        "kernel",
        NoSev,
        false,
        3_229_194,
        276,
        "/Local Catastrophic Error/",
        "[KERNEL_IB][ib_sm_sweep.c:{num}] (Fatal error (Local Catastrophic Error))"
    ),
    cat!(
        Thunderbird,
        "PBS_CON",
        Software,
        "pbs_mom",
        NoSev,
        false,
        5318,
        16,
        "/pbs_mom: Connection refused \\(111\\) in open_demux/",
        "Connection refused (111) in open_demux, open_demux: cannot connect to {ip}"
    ),
    cat!(
        Thunderbird,
        "MPT",
        Indeterminate,
        "kernel",
        NoSev,
        false,
        4583,
        157,
        "/mptscsih: .* attempting task abort/",
        "mptscsih: ioc0: attempting task abort! (sc={hex})"
    ),
    cat!(
        Thunderbird,
        "EXT_FS",
        Hardware,
        "kernel",
        NoSev,
        false,
        4022,
        778,
        "/kernel: EXT3-fs error/",
        "EXT3-fs error (device {dev}): ext3_journal_start_sb: Detected aborted journal"
    ),
    cat!(
        Thunderbird,
        "CPU",
        Software,
        "kernel",
        NoSev,
        false,
        2741,
        367,
        "/Losing some ticks/",
        "Losing some ticks... checking if CPU frequency changed."
    ),
    cat!(
        Thunderbird,
        "SCSI",
        Hardware,
        "kernel",
        NoSev,
        false,
        2186,
        317,
        "/rejecting I\\/O to offline device/",
        "scsi0 (0:0): rejecting I/O to offline device"
    ),
    cat!(
        Thunderbird,
        "ECC",
        Hardware,
        "Server_Administrator",
        NoSev,
        false,
        146,
        143,
        "/EventID: 1404/",
        "Instrumentation Service EventID: 1404 Memory device status is critical bank {num}"
    ),
    cat!(
        Thunderbird,
        "PBS_BFD",
        Software,
        "pbs_mom",
        NoSev,
        false,
        28,
        28,
        "/Bad file descriptor \\(9\\) in tm_request/",
        "Bad file descriptor (9) in tm_request, job {job} not running"
    ),
    cat!(
        Thunderbird,
        "CHK_DSK",
        Hardware,
        "check-disks",
        NoSev,
        false,
        13,
        2,
        "/Fault Status assert/",
        "[{node}:{time}], Fault Status asserted"
    ),
    cat!(
        Thunderbird,
        "NMI",
        Indeterminate,
        "kernel",
        NoSev,
        false,
        8,
        4,
        "/NMI received/",
        "Uhhuh. NMI received. Dazed and confused, but trying to continue"
    ),
];

/// Red Storm ruleset (12 categories, Table 4). `CMD_ABORT`'s raw count
/// (blank in the paper's table) is recovered as 1686 from row/column
/// sums.
pub static RSTORM_CATALOG: &[CategorySpec] = &[
    cat!(RedStorm, "BUS_PAR", Hardware, "ddn", Syslog(SyslogSeverity::Crit), false,
        1_550_217, 5, "/bus parity error/",
        "DMT_HINT Warning: Verify Host 2 bus parity error: 0200 Tier:{num} LUN:{num}"),
    cat!(RedStorm, "HBEAT", Indeterminate, "ec_heartbeat_stop", NoSev, true,
        94_784, 266, "/heartbeat_fault/",
        "src:::{node} svc:::{node} warn node heartbeat_fault {num}"),
    cat!(RedStorm, "PTL_EXP", Indeterminate, "kernel", Syslog(SyslogSeverity::Error), false,
        11_047, 421, "/LustreError: .*timeout \\(sent at/",
        "LustreError: {num}:(events.c:{num}:server_bulk_callback()) 000 timeout (sent at {time}, 300s ago)"),
    cat!(RedStorm, "ADDR_ERR", Hardware, "ddn", Syslog(SyslogSeverity::Info), false,
        6763, 1, "/Address error LUN/",
        "DMT_102 Address error LUN:0 command:28 address:{hex} length:1 Anonymous"),
    cat!(RedStorm, "CMD_ABORT", Hardware, "ddn", Syslog(SyslogSeverity::Info), false,
        1686, 497, "/Command Aborted: SCSI/",
        "DMT_310 Command Aborted: SCSI cmd:2A LUN 2 DMT_310 Lane:{num} T:{num} a:{hex}"),
    cat!(RedStorm, "PTL_ERR", Indeterminate, "kernel", Syslog(SyslogSeverity::Error), false,
        631, 54, "/LustreError: .*type ==/",
        "LustreError: {num}:(client.c:{num}:ptlrpc_check_set()) 000 type == PTL_RPC_MSG_ERR"),
    cat!(RedStorm, "TOAST", Indeterminate, "ec_console_log", NoSev, true,
        186, 9, "/PANIC_SP WE ARE TOASTED!/",
        "src:::{node} svc:::{node} PANIC_SP WE ARE TOASTED!"),
    cat!(RedStorm, "EW", Indeterminate, "kernel", Syslog(SyslogSeverity::Warning), false,
        163, 58, "/Expired watchdog for pid/",
        "Lustre: {num}:(watchdog.c:{num}:lcw_update_time()) Expired watchdog for pid {job} disabled after {num}s"),
    cat!(RedStorm, "WT", Indeterminate, "kernel", Syslog(SyslogSeverity::Warning), false,
        107, 45, "/Watchdog triggered for pid/",
        "Lustre: {num}:(watchdog.c:{num}:lcw_cb()) Watchdog triggered for pid {job}: it was inactive for {num}ms"),
    cat!(RedStorm, "RBB", Indeterminate, "kernel", Syslog(SyslogSeverity::Error), false,
        105, 19, "/request buffers busy/",
        "LustreError: {num}:(service.c:{num}:ptlrpc_server_handle_request()) All mds cray_kern_nal request buffers busy (0us idle)"),
    cat!(RedStorm, "DSK_FAIL", Hardware, "ddn", Syslog(SyslogSeverity::Alert), false,
        54, 54, "/Failing Disk/",
        "DMT_DINT Failing Disk {num}A"),
    cat!(RedStorm, "OST", Indeterminate, "kernel", Syslog(SyslogSeverity::Error), false,
        1, 1, "/Failure to commit OST transaction/",
        "LustreError: {num}:(fsfilt-ldiskfs.c:{num}:fsfilt_ldiskfs_commit()) Failure to commit OST transaction (-5)?"),
];

/// Spirit ruleset (8 categories, Table 4). `EXT_CCISS`'s raw count is
/// 103,818,911 (one above the printed value) so that the per-system
/// total matches Table 2 exactly; the printed table rounds somewhere.
pub static SPIRIT_CATALOG: &[CategorySpec] = &[
    cat!(
        Spirit,
        "EXT_CCISS",
        Hardware,
        "kernel",
        NoSev,
        false,
        103_818_911,
        29,
        "/cciss: cmd .* has CHECK CONDITION/",
        "cciss: cmd {hex} has CHECK CONDITION, sense key = 0x3"
    ),
    cat!(
        Spirit,
        "EXT_FS",
        Hardware,
        "kernel",
        NoSev,
        false,
        68_986_084,
        14,
        "/kernel: EXT3-fs error/",
        "EXT3-fs error (device {dev}) in ext3_reserve_inode_write: IO failure"
    ),
    cat!(
        Spirit,
        "PBS_CHK",
        Software,
        "pbs_mom",
        NoSev,
        false,
        8388,
        4119,
        "/task_check, cannot tm_reply/",
        "task_check, cannot tm_reply to {job} task 1"
    ),
    cat!(
        Spirit,
        "GM_LANAI",
        Software,
        "kernel",
        NoSev,
        false,
        1256,
        117,
        "/GM: LANai is not running/",
        "GM: LANai is not running. Allowing port=0 open for debugging"
    ),
    cat!(
        Spirit,
        "PBS_CON",
        Software,
        "pbs_mom",
        NoSev,
        false,
        817,
        25,
        "/Connection refused \\(111\\) in open_demux/",
        "Connection refused (111) in open_demux, open_demux: connect {ip}"
    ),
    cat!(
        Spirit,
        "GM_MAP",
        Software,
        "gm_mapper[{num}]",
        NoSev,
        false,
        596,
        180,
        "/gm_mapper.*assertion failed/",
        "assertion failed. {path}/lx_mapper.c:2112 (m->root)"
    ),
    cat!(
        Spirit,
        "PBS_BFD",
        Software,
        "pbs_mom",
        NoSev,
        false,
        346,
        296,
        "/Bad file descriptor \\(9\\) in tm_request/",
        "Bad file descriptor (9) in tm_request, job {job} not running"
    ),
    cat!(
        Spirit,
        "GM_PAR",
        Hardware,
        "kernel",
        NoSev,
        false,
        166,
        95,
        "/SRAM parity error/",
        "GM: The NIC ISR is reporting an SRAM parity error."
    ),
];

/// Liberty ruleset (6 categories, Table 4).
pub static LIBERTY_CATALOG: &[CategorySpec] = &[
    cat!(
        Liberty,
        "PBS_CHK",
        Software,
        "pbs_mom",
        NoSev,
        false,
        2231,
        920,
        "/task_check, cannot tm_reply/",
        "task_check, cannot tm_reply to {job} task 1"
    ),
    cat!(
        Liberty,
        "PBS_BFD",
        Software,
        "pbs_mom",
        NoSev,
        false,
        115,
        94,
        "/Bad file descriptor \\(9\\) in tm_request/",
        "Bad file descriptor (9) in tm_request, job {job} not running"
    ),
    cat!(
        Liberty,
        "PBS_CON",
        Software,
        "pbs_mom",
        NoSev,
        false,
        47,
        5,
        "/Connection refused \\(111\\) in open_demux/",
        "Connection refused (111) in open_demux, open_demux: connect {ip}"
    ),
    cat!(
        Liberty,
        "GM_PAR",
        Hardware,
        "kernel",
        NoSev,
        false,
        44,
        19,
        "/gm_parity\\.c/",
        "GM: LANAI[0]: PANIC: {path}/gm_parity.c:115:parity_int():firmware"
    ),
    cat!(
        Liberty,
        "GM_LANAI",
        Software,
        "kernel",
        NoSev,
        false,
        13,
        10,
        "/GM: LANai is not running/",
        "GM: LANai is not running. Allowing port=0 open for debugging"
    ),
    cat!(
        Liberty,
        "GM_MAP",
        Software,
        "gm_mapper[{num}]",
        NoSev,
        false,
        2,
        2,
        "/gm_mapper.*assertion failed/",
        "assertion failed. {path}/mi.c:541 (r == GM_SUCCESS)"
    ),
];

/// The ruleset (category catalog) for one system.
pub fn catalog(system: SystemId) -> &'static [CategorySpec] {
    match system {
        SystemId::BlueGeneL => BGL_CATALOG,
        SystemId::Thunderbird => TBIRD_CATALOG,
        SystemId::RedStorm => RSTORM_CATALOG,
        SystemId::Spirit => SPIRIT_CATALOG,
        SystemId::Liberty => LIBERTY_CATALOG,
    }
}

/// Fills a `{placeholder}` template using the supplied substitution
/// function (called once per placeholder occurrence, left to right).
///
/// # Examples
///
/// ```
/// use sclog_rules::catalog::fill_template;
///
/// let s = fill_template("job {job} on {node}", |key| match key {
///     "job" => "4418".into(),
///     "node" => "dn228".into(),
///     other => format!("<{other}>"),
/// });
/// assert_eq!(s, "job 4418 on dn228");
/// ```
pub fn fill_template(template: &str, mut subst: impl FnMut(&str) -> String) -> String {
    let mut out = String::with_capacity(template.len() + 16);
    let mut rest = template;
    while let Some(start) = rest.find('{') {
        out.push_str(&rest[..start]);
        let after = &rest[start + 1..];
        match after.find('}') {
            Some(end)
                if after[..end]
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_') =>
            {
                out.push_str(&subst(&after[..end]));
                rest = &after[end + 1..];
            }
            _ => {
                // Literal brace (e.g. in a C-format fragment): keep it.
                out.push('{');
                rest = after;
            }
        }
    }
    out.push_str(rest);
    out
}

/// Fills a template with fixed, representative example values — the
/// canonical message body used in tests and documentation.
pub fn example_body(spec: &CategorySpec) -> String {
    fill_template(spec.template, example_value)
}

/// Representative value for a placeholder key.
pub fn example_value(key: &str) -> String {
    match key {
        "node" => "dn228".to_owned(),
        "job" => "4418".to_owned(),
        "num" => "42".to_owned(),
        "hex" => "0x00000101bddee480".to_owned(),
        "ip" => "10.0.3.17:5432".to_owned(),
        "path" => "/usr/src/mapper".to_owned(),
        "dev" => "sda5".to_owned(),
        "time" => "1142800000".to_owned(),
        other => format!("<{other}>"),
    }
}

/// Total category count across all systems — the paper's "77
/// categories".
pub fn total_categories() -> usize {
    sclog_types::ALL_SYSTEMS
        .iter()
        .map(|&s| catalog(s).len())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_counts_match_table2() {
        assert_eq!(BGL_CATALOG.len(), 41);
        assert_eq!(TBIRD_CATALOG.len(), 10);
        assert_eq!(RSTORM_CATALOG.len(), 12);
        assert_eq!(SPIRIT_CATALOG.len(), 8);
        assert_eq!(LIBERTY_CATALOG.len(), 6);
        assert_eq!(total_categories(), 77);
    }

    #[test]
    fn raw_totals_match_table2() {
        let sum = |c: &[CategorySpec]| c.iter().map(|s| s.raw_count).sum::<u64>();
        assert_eq!(sum(BGL_CATALOG), 348_460);
        assert_eq!(sum(TBIRD_CATALOG), 3_248_239);
        assert_eq!(sum(RSTORM_CATALOG), 1_665_744);
        assert_eq!(sum(SPIRIT_CATALOG), 172_816_564);
        assert_eq!(sum(LIBERTY_CATALOG), 2452);
        // Grand total: the paper's 178,081,459 alerts.
        let grand: u64 = sclog_types::ALL_SYSTEMS
            .iter()
            .map(|&s| sum(catalog(s)))
            .sum();
        assert_eq!(grand, 178_081_459);
    }

    #[test]
    fn filtered_totals_match_table4() {
        let sum = |c: &[CategorySpec]| c.iter().map(|s| s.filtered_count).sum::<u64>();
        assert_eq!(sum(BGL_CATALOG), 1202);
        assert_eq!(sum(TBIRD_CATALOG), 2088);
        assert_eq!(sum(RSTORM_CATALOG), 1430);
        assert_eq!(sum(SPIRIT_CATALOG), 4875);
        assert_eq!(sum(LIBERTY_CATALOG), 1050);
    }

    #[test]
    fn type_totals_match_table3() {
        use sclog_types::AlertType;
        let mut raw = [0u64; 3];
        let mut filt = [0u64; 3];
        for &sys in &sclog_types::ALL_SYSTEMS {
            for spec in catalog(sys) {
                let i = match spec.alert_type {
                    AlertType::Hardware => 0,
                    AlertType::Software => 1,
                    AlertType::Indeterminate => 2,
                };
                raw[i] += spec.raw_count;
                filt[i] += spec.filtered_count;
            }
        }
        // Table 3 raw: 174,586,516 H / 144,899 S / 3,350,044 I.
        // (EXT_CCISS is +1 vs the printed table so H is +1 and the
        // printed I total is 1 low from rounding; see module docs.)
        assert_eq!(raw[0], 174_586_517);
        assert_eq!(raw[1], 144_899);
        assert_eq!(raw[2], 3_350_043);
        // Table 3 filtered: 1999 H / 6814 S / 1832 I.
        assert_eq!(filt[0], 1999);
        assert_eq!(filt[1], 6814);
        assert_eq!(filt[2], 1832);
    }

    #[test]
    fn filtered_never_exceeds_raw() {
        for &sys in &sclog_types::ALL_SYSTEMS {
            for spec in catalog(sys) {
                assert!(
                    spec.filtered_count <= spec.raw_count,
                    "{}: filtered > raw",
                    spec.name
                );
                assert!(spec.filtered_count >= 1);
            }
        }
    }

    #[test]
    fn names_unique_within_system() {
        use std::collections::HashSet;
        for &sys in &sclog_types::ALL_SYSTEMS {
            let mut seen = HashSet::new();
            for spec in catalog(sys) {
                assert!(seen.insert(spec.name), "duplicate category {}", spec.name);
            }
        }
    }

    #[test]
    fn all_rules_compile() {
        for &sys in &sclog_types::ALL_SYSTEMS {
            for spec in catalog(sys) {
                crate::lang::Predicate::parse(spec.rule)
                    .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            }
        }
    }

    #[test]
    fn event_path_only_on_red_storm() {
        for &sys in &sclog_types::ALL_SYSTEMS {
            for spec in catalog(sys) {
                if spec.event_path {
                    assert_eq!(spec.system, SystemId::RedStorm);
                }
            }
        }
    }

    #[test]
    fn fill_template_basics() {
        assert_eq!(fill_template("no holes", |_| unreachable!()), "no holes");
        assert_eq!(fill_template("{a}{b}", |k| k.to_uppercase()), "AB");
        // Unclosed or non-identifier braces are literal.
        assert_eq!(fill_template("x{", |_| String::new()), "x{");
        assert_eq!(
            fill_template("a {not ok} b", |_| "X".into()),
            "a {not ok} b"
        );
    }

    #[test]
    fn example_bodies_have_no_placeholders() {
        for &sys in &sclog_types::ALL_SYSTEMS {
            for spec in catalog(sys) {
                let body = example_body(spec);
                assert!(
                    !body.contains('{') && !body.contains('}'),
                    "{}: unfilled placeholder in {body:?}",
                    spec.name
                );
            }
        }
    }
}
