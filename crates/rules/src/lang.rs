//! The awk-like rule language.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! expr    := or
//! or      := and ( '||' and )*
//! and     := unary ( '&&' unary )*
//! unary   := '!' unary | primary
//! primary := '(' expr ')'
//!          | '/regex/'                  — match the whole line
//!          | '$' N '~' '/regex/'        — match field N (1-based)
//!          | '$' N '!~' '/regex/'       — field N does not match
//! ```
//!
//! `$0` refers to the whole line, as in awk. Regex literals use `\/` to
//! escape a slash.

use crate::re::Regex;
use std::fmt;

/// A parsed rule expression (the AST).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleExpr {
    /// `/re/` — the whole line matches.
    Line(String),
    /// `$n ~ /re/` — field `n` matches (`n >= 1`; `$0` is the line).
    Field(usize, String),
    /// `!expr`.
    Not(Box<RuleExpr>),
    /// `a && b`.
    And(Box<RuleExpr>, Box<RuleExpr>),
    /// `a || b`.
    Or(Box<RuleExpr>, Box<RuleExpr>),
}

/// Re-escapes slashes for printing inside a `/…/` literal; the
/// tokenizer strips `\/` down to `/`, so Display must put the escape
/// back or the printed rule fails to re-parse.
fn escape_slashes(re: &str) -> String {
    re.replace('/', "\\/")
}

impl fmt::Display for RuleExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleExpr::Line(re) => write!(f, "/{}/", escape_slashes(re)),
            RuleExpr::Field(n, re) => write!(f, "(${n} ~ /{}/)", escape_slashes(re)),
            RuleExpr::Not(e) => write!(f, "!{e}"),
            RuleExpr::And(a, b) => write!(f, "({a} && {b})"),
            RuleExpr::Or(a, b) => write!(f, "({a} || {b})"),
        }
    }
}

/// Error from parsing or compiling a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleError {
    message: String,
}

impl RuleError {
    fn new(message: impl Into<String>) -> Self {
        RuleError {
            message: message.into(),
        }
    }
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule error: {}", self.message)
    }
}

impl std::error::Error for RuleError {}

impl RuleExpr {
    /// Parses rule-language source into an AST.
    ///
    /// # Errors
    ///
    /// Returns [`RuleError`] on syntax errors.
    ///
    /// # Examples
    ///
    /// ```
    /// use sclog_rules::RuleExpr;
    ///
    /// let e = RuleExpr::parse("($5 ~ /KERNEL/ && /kernel panic/)").unwrap();
    /// assert!(e.to_string().contains("KERNEL"));
    /// assert!(RuleExpr::parse("(((").is_err());
    /// ```
    pub fn parse(src: &str) -> Result<Self, RuleError> {
        let mut p = Parser {
            tokens: tokenize(src)?,
            pos: 0,
        };
        let expr = p.parse_or()?;
        if p.pos != p.tokens.len() {
            return Err(RuleError::new(format!(
                "unexpected trailing tokens at {:?}",
                p.tokens[p.pos]
            )));
        }
        Ok(expr)
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    LParen,
    RParen,
    AndAnd,
    OrOr,
    Bang,
    Tilde,
    BangTilde,
    Field(usize),
    Regex(String),
}

fn tokenize(src: &str) -> Result<Vec<Token>, RuleError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            c if c.is_whitespace() => i += 1,
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '&' => {
                if bytes.get(i + 1) == Some(&'&') {
                    out.push(Token::AndAnd);
                    i += 2;
                } else {
                    return Err(RuleError::new("single '&'"));
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&'|') {
                    out.push(Token::OrOr);
                    i += 2;
                } else {
                    return Err(RuleError::new("single '|'"));
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&'~') {
                    out.push(Token::BangTilde);
                    i += 2;
                } else {
                    out.push(Token::Bang);
                    i += 1;
                }
            }
            '~' => {
                out.push(Token::Tilde);
                i += 1;
            }
            '$' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                if j == start {
                    return Err(RuleError::new("'$' without field number"));
                }
                let n: usize = bytes[start..j]
                    .iter()
                    .collect::<String>()
                    .parse()
                    .map_err(|_| RuleError::new("field number out of range"))?;
                out.push(Token::Field(n));
                i = j;
            }
            '/' => {
                let mut j = i + 1;
                let mut re = String::new();
                loop {
                    match bytes.get(j) {
                        None => return Err(RuleError::new("unterminated regex literal")),
                        Some('\\') if bytes.get(j + 1) == Some(&'/') => {
                            re.push('/');
                            j += 2;
                        }
                        Some('\\') => {
                            re.push('\\');
                            if let Some(&c) = bytes.get(j + 1) {
                                re.push(c);
                            }
                            j += 2;
                        }
                        Some('/') => {
                            j += 1;
                            break;
                        }
                        Some(&c) => {
                            re.push(c);
                            j += 1;
                        }
                    }
                }
                out.push(Token::Regex(re));
                i = j;
            }
            c => return Err(RuleError::new(format!("unexpected character {c:?}"))),
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn parse_or(&mut self) -> Result<RuleExpr, RuleError> {
        let mut lhs = self.parse_and()?;
        while self.peek() == Some(&Token::OrOr) {
            self.pos += 1;
            let rhs = self.parse_and()?;
            lhs = RuleExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<RuleExpr, RuleError> {
        let mut lhs = self.parse_unary()?;
        while self.peek() == Some(&Token::AndAnd) {
            self.pos += 1;
            let rhs = self.parse_unary()?;
            lhs = RuleExpr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<RuleExpr, RuleError> {
        if self.peek() == Some(&Token::Bang) {
            self.pos += 1;
            return Ok(RuleExpr::Not(Box::new(self.parse_unary()?)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<RuleExpr, RuleError> {
        match self.peek().cloned() {
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.parse_or()?;
                if self.peek() != Some(&Token::RParen) {
                    return Err(RuleError::new("expected ')'"));
                }
                self.pos += 1;
                Ok(e)
            }
            Some(Token::Regex(re)) => {
                self.pos += 1;
                Ok(RuleExpr::Line(re))
            }
            Some(Token::Field(n)) => {
                self.pos += 1;
                let negated = match self.peek() {
                    Some(Token::Tilde) => false,
                    Some(Token::BangTilde) => true,
                    _ => return Err(RuleError::new("expected '~' or '!~' after field")),
                };
                self.pos += 1;
                match self.peek().cloned() {
                    Some(Token::Regex(re)) => {
                        self.pos += 1;
                        let base = RuleExpr::Field(n, re);
                        Ok(if negated {
                            RuleExpr::Not(Box::new(base))
                        } else {
                            base
                        })
                    }
                    _ => Err(RuleError::new("expected regex after '~'")),
                }
            }
            other => Err(RuleError::new(format!("unexpected token {other:?}"))),
        }
    }
}

/// A compiled, executable rule predicate.
#[derive(Debug, Clone)]
pub enum Predicate {
    /// Whole-line regex.
    Line(Regex),
    /// Field regex (`0` = whole line, per awk's `$0`).
    Field(usize, Regex),
    /// Negation.
    Not(Box<Predicate>),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
}

impl Predicate {
    /// Compiles an AST into an executable predicate.
    ///
    /// # Errors
    ///
    /// Returns [`RuleError`] if a regex fails to compile.
    pub fn compile(expr: &RuleExpr) -> Result<Self, RuleError> {
        let rx =
            |re: &str| Regex::new(re).map_err(|e| RuleError::new(format!("bad regex /{re}/: {e}")));
        Ok(match expr {
            RuleExpr::Line(re) => Predicate::Line(rx(re)?),
            RuleExpr::Field(n, re) => Predicate::Field(*n, rx(re)?),
            RuleExpr::Not(e) => Predicate::Not(Box::new(Predicate::compile(e)?)),
            RuleExpr::And(a, b) => Predicate::And(
                Box::new(Predicate::compile(a)?),
                Box::new(Predicate::compile(b)?),
            ),
            RuleExpr::Or(a, b) => Predicate::Or(
                Box::new(Predicate::compile(a)?),
                Box::new(Predicate::compile(b)?),
            ),
        })
    }

    /// Parses and compiles rule source in one step.
    ///
    /// # Errors
    ///
    /// Returns [`RuleError`] on syntax or regex errors.
    pub fn parse(src: &str) -> Result<Self, RuleError> {
        Predicate::compile(&RuleExpr::parse(src)?)
    }

    /// Evaluates the predicate against a log line.
    ///
    /// Fields are awk-style 1-based whitespace-split tokens; a field
    /// reference beyond the end of the line simply does not match.
    pub fn matches(&self, line: &str) -> bool {
        self.matches_fields(line, &sclog_parse::fields(line))
    }

    /// Evaluates with pre-split fields (avoids re-splitting when many
    /// rules run on one line).
    pub fn matches_fields(&self, line: &str, fields: &[&str]) -> bool {
        match self {
            Predicate::Line(re) => re.is_match(line),
            Predicate::Field(0, re) => re.is_match(line),
            Predicate::Field(n, re) => fields.get(n - 1).is_some_and(|f| re.is_match(f)),
            Predicate::Not(p) => !p.matches_fields(line, fields),
            Predicate::And(a, b) => {
                a.matches_fields(line, fields) && b.matches_fields(line, fields)
            }
            Predicate::Or(a, b) => a.matches_fields(line, fields) || b.matches_fields(line, fields),
        }
    }

    /// Evaluates with precomputed field byte spans (see
    /// [`sclog_parse::field_spans`]) — the buffer-reuse twin of
    /// [`Predicate::matches_fields`]: spans carry no lifetime tied to
    /// the line, so one `Vec` serves every line of a log.
    pub fn matches_spans(&self, line: &str, spans: &[(usize, usize)]) -> bool {
        match self {
            Predicate::Line(re) => re.is_match(line),
            Predicate::Field(0, re) => re.is_match(line),
            Predicate::Field(n, re) => spans
                .get(n - 1)
                .is_some_and(|&(s, e)| re.is_match(&line[s..e])),
            Predicate::Not(p) => !p.matches_spans(line, spans),
            Predicate::And(a, b) => a.matches_spans(line, spans) && b.matches_spans(line, spans),
            Predicate::Or(a, b) => a.matches_spans(line, spans) || b.matches_spans(line, spans),
        }
    }

    /// True if evaluating the predicate ever inspects a split field
    /// (`$N` with `N >= 1`) — lets the tag loop skip field splitting
    /// for whole-line rules, which dominate the catalog.
    pub fn uses_fields(&self) -> bool {
        match self {
            Predicate::Line(_) | Predicate::Field(0, _) => false,
            Predicate::Field(..) => true,
            Predicate::Not(p) => p.uses_fields(),
            Predicate::And(a, b) | Predicate::Or(a, b) => a.uses_fields() || b.uses_fields(),
        }
    }

    /// The predicate's *required literal factors*: when `Some`, every
    /// line the predicate matches contains at least one of the
    /// returned strings as a substring, so an Aho-Corasick prescan
    /// keyed on them can soundly rule the predicate out.
    ///
    /// A field match (`$N ~ /re/`) propagates its regex's factors
    /// unchanged — the field is a contiguous substring of the line, so
    /// a factor required inside the field is required in the line.
    /// Negations guarantee nothing about presence; `&&` picks the
    /// stronger side's obligation; `||` needs both sides to
    /// contribute, or the whole predicate is unfilterable (`None`).
    pub fn required_literals(&self) -> Option<Vec<String>> {
        match self {
            Predicate::Line(re) | Predicate::Field(_, re) => {
                re.required_literals().map(<[String]>::to_vec)
            }
            Predicate::Not(_) => None,
            Predicate::And(a, b) => {
                crate::re::stronger_obligation(a.required_literals(), b.required_literals())
            }
            Predicate::Or(a, b) => {
                let mut union = a.required_literals()?;
                union.extend(b.required_literals()?);
                union.sort();
                union.dedup();
                Some(union)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_examples() {
        for src in [
            "/kernel: EXT3-fs error/",
            "/PANIC_SP WE ARE TOASTED!/",
            "($5 ~ /KERNEL/ && /kernel panic/)",
        ] {
            let e = RuleExpr::parse(src).unwrap();
            let _ = Predicate::compile(&e).unwrap();
        }
    }

    #[test]
    fn line_match() {
        let p = Predicate::parse("/EXT3-fs error/").unwrap();
        assert!(p.matches("Jan  1 00:00:01 sn373 kernel: EXT3-fs error (device sda5)"));
        assert!(!p.matches("Jan  1 00:00:01 sn373 kernel: all quiet"));
    }

    #[test]
    fn field_match_is_one_based() {
        let p = Predicate::parse("($2 ~ /^foo$/)").unwrap();
        assert!(p.matches("x foo y"));
        assert!(!p.matches("foo x y"));
        // Field beyond end: no match.
        assert!(!p.matches("x"));
    }

    #[test]
    fn field_zero_is_whole_line() {
        let p = Predicate::parse("($0 ~ /a b/)").unwrap();
        assert!(p.matches("a b"));
    }

    #[test]
    fn negated_field_match() {
        let p = Predicate::parse("($1 ~ /kernel/ && $2 !~ /panic/)").unwrap();
        assert!(p.matches("kernel ok"));
        assert!(!p.matches("kernel panic"));
    }

    #[test]
    fn boolean_combinators() {
        let p = Predicate::parse("/a/ && (/b/ || /c/) && !/d/").unwrap();
        assert!(p.matches("a b"));
        assert!(p.matches("a c"));
        assert!(!p.matches("a"));
        assert!(!p.matches("a b d"));
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        let p = Predicate::parse("/a/ || /b/ && /c/").unwrap();
        // a || (b && c)
        assert!(p.matches("a"));
        assert!(p.matches("b c"));
        assert!(!p.matches("b"));
    }

    #[test]
    fn escaped_slash_in_regex() {
        let p = Predicate::parse(r"/rejecting I\/O to offline device/").unwrap();
        assert!(p.matches("kernel: scsi0 (0:0): rejecting I/O to offline device"));
    }

    #[test]
    fn regex_metacharacters_pass_through() {
        let p = Predicate::parse(r"/Bad file descriptor \(9\) in tm_request/").unwrap();
        assert!(p.matches("pbs_mom: Bad file descriptor (9) in tm_request, job 17 not running"));
    }

    #[test]
    fn syntax_errors() {
        assert!(RuleExpr::parse("").is_err());
        assert!(RuleExpr::parse("(/a/").is_err());
        assert!(RuleExpr::parse("/a/ &&").is_err());
        assert!(RuleExpr::parse("/a").is_err());
        assert!(RuleExpr::parse("$ ~ /a/").is_err());
        assert!(RuleExpr::parse("$1 /a/").is_err());
        assert!(RuleExpr::parse("/a/ /b/").is_err());
        assert!(RuleExpr::parse("& /a/").is_err());
        assert!(RuleExpr::parse("| /a/").is_err());
        assert!(RuleExpr::parse("%").is_err());
    }

    #[test]
    fn bad_regex_fails_at_compile() {
        assert!(Predicate::parse("/([unclosed/").is_err());
    }

    #[test]
    fn display_round_trips_through_parser() {
        let srcs = [
            "($5 ~ /KERNEL/ && /kernel panic/)",
            "!/x/ || ($2 ~ /y/)",
            "($1 !~ /z/)",
        ];
        for src in srcs {
            let e1 = RuleExpr::parse(src).unwrap();
            let e2 = RuleExpr::parse(&e1.to_string()).unwrap();
            assert_eq!(e1.to_string(), e2.to_string());
        }
    }

    #[test]
    fn escaped_slash_survives_display_round_trip() {
        // `\/` unescapes to `/` in the token; Display must re-escape it
        // so the printed rule parses back to the same predicate.
        let e1 = RuleExpr::parse(r"/rejecting I\/O/").unwrap();
        let printed = e1.to_string();
        let e2 = RuleExpr::parse(&printed).unwrap();
        let p = Predicate::compile(&e2).unwrap();
        assert!(p.matches("kernel: rejecting I/O to offline device"));
    }

    #[test]
    fn bang_tilde_round_trips_with_same_semantics() {
        let e1 = RuleExpr::parse("($3 !~ /ok/)").unwrap();
        let e2 = RuleExpr::parse(&e1.to_string()).unwrap();
        for line in ["a b ok", "a b bad", "a"] {
            let p1 = Predicate::compile(&e1).unwrap();
            let p2 = Predicate::compile(&e2).unwrap();
            assert_eq!(p1.matches(line), p2.matches(line), "{line:?}");
        }
    }

    #[test]
    fn dollar_zero_and_dollar_n_differ() {
        // `$0` sees the whole line; `$1` only the first token.
        let whole = Predicate::parse("($0 ~ /a b/)").unwrap();
        let first = Predicate::parse("($1 ~ /a b/)").unwrap();
        assert!(whole.matches("a b"));
        assert!(!first.matches("a b"));
        assert!(!first.matches("x y"));
        assert!(!whole.matches("x y"));
    }

    #[test]
    fn precedence_not_binds_tighter_than_and() {
        // !(a) && b, not !(a && b).
        let p = Predicate::parse("!/a/ && /b/").unwrap();
        assert!(p.matches("b"));
        assert!(!p.matches("a b"));
        assert!(!p.matches("a"));
        // Full chain: ! > && > || means this is (!a && b) || c.
        let q = Predicate::parse("!/a/ && /b/ || /c/").unwrap();
        assert!(q.matches("a c"));
        assert!(q.matches("b"));
        assert!(!q.matches("a b"));
    }

    #[test]
    fn matches_spans_agrees_with_matches_fields() {
        let preds = [
            "/EXT3-fs error/",
            "($2 ~ /^foo$/)",
            "($1 ~ /kernel/ && $2 !~ /panic/)",
            "/a/ && (/b/ || /c/) && !/d/",
            "($0 ~ /a b/)",
            "($9 ~ /x/)",
        ];
        let lines = [
            "kernel: EXT3-fs error (device sda5)",
            "x foo y",
            "kernel ok",
            "kernel panic",
            "a b",
            "a c d",
            "",
            "   ",
        ];
        let mut spans = Vec::new();
        for src in preds {
            let p = Predicate::parse(src).unwrap();
            for line in lines {
                sclog_parse::field_spans(line, &mut spans);
                assert_eq!(
                    p.matches_spans(line, &spans),
                    p.matches_fields(line, &sclog_parse::fields(line)),
                    "{src} on {line:?}"
                );
            }
        }
    }

    #[test]
    fn uses_fields_detects_field_references() {
        assert!(!Predicate::parse("/x/").unwrap().uses_fields());
        assert!(!Predicate::parse("($0 ~ /x/)").unwrap().uses_fields());
        assert!(Predicate::parse("($3 ~ /x/)").unwrap().uses_fields());
        assert!(Predicate::parse("/a/ && ($2 !~ /b/)")
            .unwrap()
            .uses_fields());
    }

    #[test]
    fn predicate_factors_combine_across_operators() {
        let f = |src: &str| Predicate::parse(src).unwrap().required_literals();
        assert_eq!(f("/EXT3-fs error/"), Some(vec!["EXT3-fs error".into()]));
        // && keeps the stronger side.
        assert_eq!(
            f("($4 ~ /KERNEL/ && /kernel panic/)"),
            Some(vec!["kernel panic".into()])
        );
        // || unions; a factor-less side poisons it.
        assert_eq!(
            f("/abc/ || /defg/"),
            Some(vec!["abc".into(), "defg".into()])
        );
        assert_eq!(f("/abc/ || /[0-9]+/"), None);
        // Negation guarantees nothing.
        assert_eq!(f("!/abc/"), None);
        assert_eq!(f("/abcdef/ && !/x/"), Some(vec!["abcdef".into()]));
    }

    #[test]
    fn error_messages_describe_the_problem() {
        let cases = [
            ("/a/ & /b/", "single '&'"),
            ("/a/ | /b/", "single '|'"),
            ("$ ~ /a/", "without field number"),
            ("$1 /a/", "expected '~' or '!~'"),
            ("$1 ~", "expected regex"),
            ("/unterminated", "unterminated regex"),
            ("(/a/", "expected ')'"),
            ("/a/ /b/", "trailing tokens"),
        ];
        for (src, want) in cases {
            let err = RuleExpr::parse(src).unwrap_err().to_string();
            assert!(
                err.contains(want),
                "{src:?}: {err:?} should mention {want:?}"
            );
        }
    }
}
