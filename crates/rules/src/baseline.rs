//! The severity-field baseline tagger and its evaluation.
//!
//! Prior work (refs. 9, 10, 20 in the paper) identified alerts by the
//! message severity field. Section 3.2 shows why that is unreliable:
//! tagging every `FATAL`/`FAILURE` BG/L message as an alert yields a 0%
//! false-negative rate but a **59.34% false-positive rate** (Table 5),
//! and Red Storm's syslog severities are "of dubious value as a failure
//! indicator" (Table 6). This module implements the baseline so the
//! comparison can be reproduced.

use sclog_types::{BglSeverity, Message, SyslogSeverity};

/// The severity-threshold baseline tagger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeverityBaseline {
    /// BG/L severities at or above this level are alerts.
    pub bgl_threshold: BglSeverity,
    /// Syslog severities at or above this level are alerts.
    pub syslog_threshold: SyslogSeverity,
}

impl Default for SeverityBaseline {
    fn default() -> Self {
        Self::paper()
    }
}

impl SeverityBaseline {
    /// The baseline evaluated in the paper: BG/L `FATAL`/`FAILURE`
    /// (the two most severe levels), syslog `CRIT` or worse.
    pub fn paper() -> Self {
        SeverityBaseline {
            bgl_threshold: BglSeverity::Failure,
            syslog_threshold: SyslogSeverity::Crit,
        }
    }

    /// Whether the baseline flags this message as an alert.
    ///
    /// Messages on systems that record no severity are never flagged —
    /// the baseline is simply inapplicable there, which is itself one of
    /// the paper's points.
    pub fn is_alert(&self, msg: &Message) -> bool {
        match msg.severity {
            sclog_types::Severity::Bgl(s) => s <= self.bgl_threshold,
            sclog_types::Severity::Syslog(s) => s.is_at_least(self.syslog_threshold),
            sclog_types::Severity::None => false,
        }
    }

    /// Evaluates the baseline against expert-tagged truth.
    ///
    /// `expert_alert_indices` must be the sorted message indices the
    /// expert ruleset tagged.
    pub fn evaluate(&self, messages: &[Message], expert_alert_indices: &[usize]) -> Confusion {
        let mut expert = expert_alert_indices.iter().copied().peekable();
        let mut c = Confusion::default();
        for (i, msg) in messages.iter().enumerate() {
            let is_expert = expert.peek() == Some(&i);
            if is_expert {
                expert.next();
            }
            match (self.is_alert(msg), is_expert) {
                (true, true) => c.true_positives += 1,
                (true, false) => c.false_positives += 1,
                (false, true) => c.false_negatives += 1,
                (false, false) => c.true_negatives += 1,
            }
        }
        c
    }
}

/// Confusion-matrix counts for a binary tagger against expert truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    /// Baseline alert and expert alert.
    pub true_positives: u64,
    /// Baseline alert but not expert alert.
    pub false_positives: u64,
    /// Expert alert missed by baseline.
    pub false_negatives: u64,
    /// Neither flags it.
    pub true_negatives: u64,
}

impl Confusion {
    /// False-positive rate among baseline positives: FP / (TP + FP).
    ///
    /// This is the paper's "59% false positive rate" metric — the
    /// fraction of severity-flagged messages that are not real alerts.
    pub fn false_positive_rate(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            0.0
        } else {
            self.false_positives as f64 / denom as f64
        }
    }

    /// False-negative rate among expert alerts: FN / (TP + FN).
    pub fn false_negative_rate(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            0.0
        } else {
            self.false_negatives as f64 / denom as f64
        }
    }

    /// Precision = TP / (TP + FP).
    pub fn precision(&self) -> f64 {
        1.0 - self.false_positive_rate()
    }

    /// Recall = TP / (TP + FN).
    pub fn recall(&self) -> f64 {
        1.0 - self.false_negative_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sclog_types::{NodeId, Severity, SystemId, Timestamp};

    fn bgl_msg(sev: BglSeverity) -> Message {
        Message::new(
            SystemId::BlueGeneL,
            Timestamp::EPOCH,
            NodeId::from_index(0),
            "KERNEL",
            Severity::Bgl(sev),
            "x",
        )
    }

    #[test]
    fn bgl_threshold_flags_fatal_and_failure_only() {
        let b = SeverityBaseline::paper();
        assert!(b.is_alert(&bgl_msg(BglSeverity::Fatal)));
        assert!(b.is_alert(&bgl_msg(BglSeverity::Failure)));
        assert!(!b.is_alert(&bgl_msg(BglSeverity::Severe)));
        assert!(!b.is_alert(&bgl_msg(BglSeverity::Info)));
    }

    #[test]
    fn syslog_threshold() {
        let b = SeverityBaseline::paper();
        let mk = |s| {
            Message::new(
                SystemId::RedStorm,
                Timestamp::EPOCH,
                NodeId::from_index(0),
                "kernel",
                Severity::Syslog(s),
                "x",
            )
        };
        assert!(b.is_alert(&mk(SyslogSeverity::Emerg)));
        assert!(b.is_alert(&mk(SyslogSeverity::Crit)));
        assert!(!b.is_alert(&mk(SyslogSeverity::Error)));
        assert!(!b.is_alert(&mk(SyslogSeverity::Info)));
    }

    #[test]
    fn severity_less_systems_never_flag() {
        let b = SeverityBaseline::paper();
        let msg = Message::new(
            SystemId::Liberty,
            Timestamp::EPOCH,
            NodeId::from_index(0),
            "kernel",
            Severity::None,
            "GM: LANai is not running",
        );
        assert!(!b.is_alert(&msg));
    }

    #[test]
    fn confusion_counts_and_rates() {
        // Messages: FATAL(expert), FATAL(not), INFO(expert), INFO(not).
        let msgs = vec![
            bgl_msg(BglSeverity::Fatal),
            bgl_msg(BglSeverity::Fatal),
            bgl_msg(BglSeverity::Info),
            bgl_msg(BglSeverity::Info),
        ];
        let c = SeverityBaseline::paper().evaluate(&msgs, &[0, 2]);
        assert_eq!(c.true_positives, 1);
        assert_eq!(c.false_positives, 1);
        assert_eq!(c.false_negatives, 1);
        assert_eq!(c.true_negatives, 1);
        assert_eq!(c.false_positive_rate(), 0.5);
        assert_eq!(c.false_negative_rate(), 0.5);
        assert_eq!(c.precision(), 0.5);
        assert_eq!(c.recall(), 0.5);
    }

    #[test]
    fn empty_confusion_is_safe() {
        let c = Confusion::default();
        assert_eq!(c.false_positive_rate(), 0.0);
        assert_eq!(c.false_negative_rate(), 0.0);
    }

    #[test]
    fn paper_shape_fp_rate() {
        // 59% of FATAL messages are not expert alerts (Table 5 shape):
        // 100 FATAL, 41 of them expert-tagged.
        let msgs: Vec<Message> = (0..100).map(|_| bgl_msg(BglSeverity::Fatal)).collect();
        let expert: Vec<usize> = (0..41).collect();
        let c = SeverityBaseline::paper().evaluate(&msgs, &expert);
        assert!((c.false_positive_rate() - 0.59).abs() < 1e-9);
        assert_eq!(c.false_negative_rate(), 0.0);
    }
}
