//! A small in-tree regular-expression engine.
//!
//! Covers exactly the subset the expert alert-tagging rules use:
//! literals, character classes (`[a-z]`, `[^…]`, `\d`/`\w`/`\s` and
//! their negations), the `.` wildcard, anchors `^`/`$`, the quantifiers
//! `*`/`+`/`?` and bounded repetition `{m}`/`{m,}`/`{m,n}`, grouping
//! `(…)`, and alternation `|`. Matching is unanchored substring search
//! (like `regex::Regex::is_match`) and runs on a Thompson-NFA thread
//! set ("Pike VM"), so it is linear in `pattern × text` with no
//! backtracking blow-up.
//!
//! Beyond matching, compilation performs *literal-factor analysis*
//! ([`Regex::required_literals`]): it extracts, where possible, a set
//! of literal strings such that every matching text must contain at
//! least one of them. The tagger's Aho-Corasick prescan
//! ([`crate::prefilter`]) is keyed on these factors, so most lines
//! never reach the NFA at all.
//!
//! Keeping this engine (~800 lines by now, half of them tests) in the
//! tree is what lets the whole workspace build offline with zero
//! external crates; the conformance suite in `tests/re_conformance.rs`
//! pins its behaviour — match matrix and extracted literal factors —
//! on every pattern in the shipped 77-rule catalog.

use std::fmt;

/// Error from compiling a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// A set of character ranges, possibly negated (`[^…]`).
#[derive(Debug, Clone, PartialEq)]
struct ClassSet {
    ranges: Vec<(char, char)>,
    negated: bool,
}

impl ClassSet {
    fn contains(&self, c: char) -> bool {
        let inside = self.ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
        inside != self.negated
    }
}

/// One compiled NFA instruction.
#[derive(Debug, Clone)]
enum Inst {
    /// Match one specific character.
    Char(char),
    /// Match any character (`.`; excludes `\n`, as the regex crate does
    /// by default).
    Any,
    /// Match one character in a class.
    Class(ClassSet),
    /// Assert start of text.
    Start,
    /// Assert end of text.
    End,
    /// Fork execution to both targets.
    Split(usize, usize),
    /// Unconditional jump.
    Jump(usize),
    /// Accept.
    Match,
}

/// One instruction of a compiled NFA program, as reported by
/// [`Regex::program`].
///
/// This is the public mirror of the engine's internal instruction set.
/// Program counters start at 0; control flows to `pc + 1` after a
/// consuming instruction or a satisfied assertion, except through
/// [`Split`](ProgInst::Split) / [`Jump`](ProgInst::Jump), whose targets
/// are absolute indices into the same listing. Every program ends with
/// exactly one [`Match`](ProgInst::Match).
#[derive(Debug, Clone, PartialEq)]
pub enum ProgInst {
    /// Consume one specific character.
    Char(char),
    /// Consume any character except `\n` (the `.` wildcard).
    Any,
    /// Consume one character inside (or, when `negated`, outside) the
    /// union of the inclusive `ranges`.
    Class {
        /// Inclusive `(lo, hi)` character ranges.
        ranges: Vec<(char, char)>,
        /// When true the instruction matches characters *not* covered
        /// by `ranges` (`[^…]` and `\D`/`\W`/`\S`).
        negated: bool,
    },
    /// Zero-width assertion: position 0 of the text.
    Start,
    /// Zero-width assertion: end of the text.
    End,
    /// Fork execution to both absolute targets.
    Split(usize, usize),
    /// Unconditional jump to an absolute target.
    Jump(usize),
    /// Accept.
    Match,
}

impl ProgInst {
    /// True for instructions that consume one character of input
    /// (`Char`, `Any`, `Class`); false for assertions and control flow.
    pub fn is_consuming(&self) -> bool {
        matches!(
            self,
            ProgInst::Char(_) | ProgInst::Any | ProgInst::Class { .. }
        )
    }

    /// For a consuming instruction, whether it accepts character `c`;
    /// always false for non-consuming instructions.
    pub fn matches_char(&self, c: char) -> bool {
        match self {
            ProgInst::Char(want) => *want == c,
            ProgInst::Any => c != '\n',
            ProgInst::Class { ranges, negated } => {
                let inside = ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
                inside != *negated
            }
            _ => false,
        }
    }
}

/// A compiled regular expression.
///
/// # Examples
///
/// ```
/// use sclog_rules::re::Regex;
///
/// let re = Regex::new(r"EXT[0-9]-fs (error|warning)").unwrap();
/// assert!(re.is_match("kernel: EXT3-fs error (device sda5)"));
/// assert!(!re.is_match("kernel: all quiet"));
/// ```
#[derive(Clone)]
pub struct Regex {
    pattern: String,
    prog: Vec<Inst>,
    /// Set when the pattern is a plain literal (no metacharacters after
    /// parsing — escapes like `\(` reduce to chars). Matching then
    /// short-circuits to `str::contains`, which is the hot path: most
    /// of the 77 catalog rules are literal substrings, and the tagger
    /// runs every rule against every rendered line.
    literal: Option<String>,
    /// Required literal factors (see [`Regex::required_literals`]).
    factors: Option<Vec<String>>,
}

impl fmt::Debug for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Regex")
            .field("pattern", &self.pattern)
            .finish()
    }
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pattern)
    }
}

impl Regex {
    /// Compiles a pattern.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on syntax the engine does not accept:
    /// unbalanced groups or classes, dangling quantifiers, reversed
    /// ranges, or oversized bounded repetitions.
    pub fn new(pattern: &str) -> Result<Regex, Error> {
        let ast = Parser::new(pattern).parse()?;
        let mut prog = Vec::new();
        compile(&ast, &mut prog);
        prog.push(Inst::Match);
        let mut factors = analyze_factors(&ast).required;
        if let Some(alts) = &mut factors {
            alts.sort();
            alts.dedup();
        }
        Ok(Regex {
            pattern: pattern.to_owned(),
            prog,
            literal: literal_of(&ast),
            factors,
        })
    }

    /// The source pattern.
    pub fn as_str(&self) -> &str {
        &self.pattern
    }

    /// The pattern's *required literal factors*.
    ///
    /// When `Some`, every text this pattern matches contains at least
    /// one of the returned (non-empty, sorted, deduplicated) strings
    /// as a contiguous substring — a sound gate for a multi-pattern
    /// prescan: if none of the factors occur, `is_match` is guaranteed
    /// to return `false`. `None` means no factor could be extracted
    /// (e.g. `\d+`) and the pattern must always be checked.
    ///
    /// Factors come from the longest literal run every match must
    /// contain; an alternation contributes one factor per branch, and
    /// poisons extraction if any branch has none.
    ///
    /// # Examples
    ///
    /// ```
    /// use sclog_rules::re::Regex;
    ///
    /// let re = Regex::new(r"EXT[0-9]-fs (error|warning)").unwrap();
    /// assert_eq!(
    ///     re.required_literals().unwrap(),
    ///     &["error".to_string(), "warning".to_string()]
    /// );
    /// assert!(Regex::new(r"\d+").unwrap().required_literals().is_none());
    /// ```
    pub fn required_literals(&self) -> Option<&[String]> {
        self.factors.as_deref()
    }

    /// True when matching short-circuits to `str::contains` (the
    /// pattern reduced to a plain literal): such patterns never run
    /// the Pike VM, so the tagger's DFA tier skips them entirely.
    pub fn is_literal(&self) -> bool {
        self.literal.is_some()
    }

    /// The compiled NFA program, exposed for static analyzers.
    ///
    /// The listing mirrors the engine's internal instruction set
    /// one-to-one (same indices, same control flow), so an external
    /// pass can simulate, product-construct, or measure exactly the
    /// program the matcher runs. See [`ProgInst`] for the semantics of
    /// each instruction.
    pub fn program(&self) -> Vec<ProgInst> {
        self.prog
            .iter()
            .map(|inst| match inst {
                Inst::Char(c) => ProgInst::Char(*c),
                Inst::Any => ProgInst::Any,
                Inst::Class(set) => ProgInst::Class {
                    ranges: set.ranges.clone(),
                    negated: set.negated,
                },
                Inst::Start => ProgInst::Start,
                Inst::End => ProgInst::End,
                Inst::Split(a, b) => ProgInst::Split(*a, *b),
                Inst::Jump(t) => ProgInst::Jump(*t),
                Inst::Match => ProgInst::Match,
            })
            .collect()
    }

    /// True if the pattern matches anywhere in `text` (unanchored).
    pub fn is_match(&self, text: &str) -> bool {
        if let Some(lit) = &self.literal {
            return text.contains(lit.as_str());
        }
        let chars: Vec<char> = text.chars().collect();
        let n = chars.len();
        let mut current = ThreadSet::new(self.prog.len());
        let mut next = ThreadSet::new(self.prog.len());
        for i in 0..=n {
            // Unanchored search: seed a fresh attempt at every start
            // position (equivalent to a leading `.*?`).
            if add_thread(&self.prog, &mut current, 0, i, n) {
                return true;
            }
            if i == n {
                break;
            }
            let c = chars[i];
            for k in 0..current.list.len() {
                let pc = current.list[k];
                let consumed = match &self.prog[pc] {
                    Inst::Char(want) => *want == c,
                    Inst::Any => c != '\n',
                    Inst::Class(set) => set.contains(c),
                    _ => false,
                };
                if consumed && add_thread(&self.prog, &mut next, pc + 1, i + 1, n) {
                    return true;
                }
            }
            std::mem::swap(&mut current, &mut next);
            next.clear();
        }
        false
    }
}

/// A deduplicated set of live NFA program counters.
struct ThreadSet {
    on: Vec<bool>,
    list: Vec<usize>,
}

impl ThreadSet {
    fn new(len: usize) -> Self {
        ThreadSet {
            on: vec![false; len],
            list: Vec::new(),
        }
    }

    fn clear(&mut self) {
        // Reset every flag, not just the listed (consuming) pcs:
        // epsilon instructions are marked in `on` during closure
        // exploration without appearing in `list`, and a stale mark
        // would silently kill the closure at the next position.
        for f in &mut self.on {
            *f = false;
        }
        self.list.clear();
    }
}

/// Adds `pc` and its epsilon closure to `set`; returns true if the
/// closure reaches `Match`.
fn add_thread(prog: &[Inst], set: &mut ThreadSet, pc: usize, pos: usize, len: usize) -> bool {
    let mut stack = vec![pc];
    while let Some(pc) = stack.pop() {
        if set.on[pc] {
            continue;
        }
        set.on[pc] = true;
        match &prog[pc] {
            Inst::Match => return true,
            Inst::Jump(t) => stack.push(*t),
            Inst::Split(a, b) => {
                stack.push(*b);
                stack.push(*a);
            }
            Inst::Start => {
                if pos == 0 {
                    stack.push(pc + 1);
                }
            }
            Inst::End => {
                if pos == len {
                    stack.push(pc + 1);
                }
            }
            Inst::Char(_) | Inst::Any | Inst::Class(_) => set.list.push(pc),
        }
    }
    false
}

/// Returns the pattern's text when it is a pure literal — chars and
/// concatenations only, no classes, anchors, repeats, or alternation.
fn literal_of(ast: &Ast) -> Option<String> {
    fn push(ast: &Ast, out: &mut String) -> bool {
        match ast {
            Ast::Empty => true,
            Ast::Char(c) => {
                out.push(*c);
                true
            }
            Ast::Concat(parts) => parts.iter().all(|p| push(p, out)),
            _ => false,
        }
    }
    let mut s = String::new();
    push(ast, &mut s).then_some(s)
}

/// Literal-factor analysis result for one AST node.
struct FactorInfo {
    /// The node's *obligation*: when `Some`, every match of the node
    /// contains at least one of these non-empty strings as a
    /// substring.
    required: Option<Vec<String>>,
    /// `Some(s)` when the node matches exactly the string `s` and
    /// nothing else — such nodes fuse with adjacent ones into longer
    /// literal runs inside a concatenation.
    exact: Option<String>,
}

/// Strength of an obligation for prefiltering: the length of its
/// weakest alternative (the prescan must hit on *any* alternative, so
/// the shortest one bounds selectivity).
fn obligation_score(alts: &[String]) -> usize {
    alts.iter().map(String::len).min().unwrap_or(0)
}

/// Picks the stronger of two obligations: higher weakest-alternative
/// length wins, then fewer alternatives. Used both for concatenation
/// parts here and for `&&`-conjoined predicates in the rule language.
pub(crate) fn stronger_obligation(
    a: Option<Vec<String>>,
    b: Option<Vec<String>>,
) -> Option<Vec<String>> {
    match (a, b) {
        (Some(x), Some(y)) => {
            let (sx, sy) = (obligation_score(&x), obligation_score(&y));
            if sx > sy || (sx == sy && x.len() <= y.len()) {
                Some(x)
            } else {
                Some(y)
            }
        }
        (x, None) => x,
        (None, y) => y,
    }
}

/// Extracts required literal factors from an AST node.
///
/// Soundness invariant: if `required` is `Some(alts)`, then every text
/// the node matches contains at least one member of `alts`. Anchors
/// are treated as empty exact literals — they consume nothing, so the
/// characters on either side stay adjacent in any match.
fn analyze_factors(ast: &Ast) -> FactorInfo {
    match ast {
        Ast::Empty | Ast::Start | Ast::End => FactorInfo {
            required: None,
            exact: Some(String::new()),
        },
        Ast::Char(c) => FactorInfo {
            required: Some(vec![c.to_string()]),
            exact: Some(c.to_string()),
        },
        Ast::Any | Ast::Class(_) => FactorInfo {
            required: None,
            exact: None,
        },
        Ast::Concat(parts) => {
            let mut best: Option<Vec<String>> = None;
            let mut run = String::new();
            let mut unbroken = true;
            for p in parts {
                let f = analyze_factors(p);
                match f.exact {
                    // Exact parts extend the current contiguous run.
                    Some(s) => run.push_str(&s),
                    // Anything else ends the run; the part's own
                    // obligation still holds for the whole concat.
                    None => {
                        if !run.is_empty() {
                            best = stronger_obligation(best, Some(vec![std::mem::take(&mut run)]));
                        }
                        run.clear();
                        unbroken = false;
                        best = stronger_obligation(best, f.required);
                    }
                }
            }
            let exact = unbroken.then(|| run.clone());
            if !run.is_empty() {
                best = stronger_obligation(best, Some(vec![run]));
            }
            FactorInfo {
                required: best,
                exact,
            }
        }
        Ast::Alt(arms) => {
            // Every branch must contribute, or a match could slip
            // through the branch with no factor.
            let mut union: Vec<String> = Vec::new();
            for arm in arms {
                match analyze_factors(arm).required {
                    Some(alts) => union.extend(alts),
                    None => {
                        return FactorInfo {
                            required: None,
                            exact: None,
                        }
                    }
                }
            }
            FactorInfo {
                required: (!union.is_empty()).then_some(union),
                exact: None,
            }
        }
        Ast::Repeat { node, min, max } => {
            let f = analyze_factors(node);
            let exact = match (&f.exact, max) {
                // A fixed repetition of an exact literal is itself
                // exact (`a{3}` is "aaa").
                (Some(s), Some(mx)) if min == mx => Some(s.repeat(*min as usize)),
                _ => None,
            };
            let required = if *min >= 1 {
                match &exact {
                    Some(s) if !s.is_empty() => Some(vec![s.clone()]),
                    // At least one copy of the node matches, so its
                    // obligation carries over.
                    _ => f.required,
                }
            } else {
                None
            };
            FactorInfo { required, exact }
        }
    }
}

/// Parsed pattern AST.
#[derive(Debug, Clone)]
enum Ast {
    Empty,
    Char(char),
    Any,
    Class(ClassSet),
    Start,
    End,
    Concat(Vec<Ast>),
    Alt(Vec<Ast>),
    Repeat {
        node: Box<Ast>,
        min: u32,
        max: Option<u32>,
    },
}

/// Emits NFA instructions for `ast` onto `prog`.
fn compile(ast: &Ast, prog: &mut Vec<Inst>) {
    match ast {
        Ast::Empty => {}
        Ast::Char(c) => prog.push(Inst::Char(*c)),
        Ast::Any => prog.push(Inst::Any),
        Ast::Class(set) => prog.push(Inst::Class(set.clone())),
        Ast::Start => prog.push(Inst::Start),
        Ast::End => prog.push(Inst::End),
        Ast::Concat(parts) => {
            for p in parts {
                compile(p, prog);
            }
        }
        Ast::Alt(arms) => {
            // Chain of Splits; each arm jumps to the common end.
            let mut jumps = Vec::new();
            for (i, arm) in arms.iter().enumerate() {
                if i + 1 < arms.len() {
                    let split = prog.len();
                    prog.push(Inst::Split(0, 0));
                    compile(arm, prog);
                    jumps.push(prog.len());
                    prog.push(Inst::Jump(0));
                    let after = prog.len();
                    prog[split] = Inst::Split(split + 1, after);
                } else {
                    compile(arm, prog);
                }
            }
            let end = prog.len();
            for j in jumps {
                prog[j] = Inst::Jump(end);
            }
        }
        Ast::Repeat { node, min, max } => {
            // Mandatory copies…
            for _ in 0..*min {
                compile(node, prog);
            }
            match max {
                // …then an unbounded greedy loop (`x*`)…
                None => {
                    let split = prog.len();
                    prog.push(Inst::Split(0, 0));
                    compile(node, prog);
                    prog.push(Inst::Jump(split));
                    let after = prog.len();
                    prog[split] = Inst::Split(split + 1, after);
                }
                // …or (max − min) optional copies (`x?` each).
                Some(max) => {
                    let mut splits = Vec::new();
                    for _ in *min..*max {
                        splits.push(prog.len());
                        prog.push(Inst::Split(0, 0));
                        compile(node, prog);
                    }
                    let after = prog.len();
                    for s in splits {
                        prog[s] = Inst::Split(s + 1, after);
                    }
                }
            }
        }
    }
}

/// Cap on `{m,n}` bounds: generous for log rules, small enough that a
/// pathological pattern cannot balloon the compiled program.
const MAX_REPEAT: u32 = 512;

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    pattern: &'a str,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Self {
        Parser {
            chars: pattern.chars().collect(),
            pos: 0,
            pattern,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!(
            "{msg} at offset {} in /{}/",
            self.pos, self.pattern
        ))
    }

    fn parse(&mut self) -> Result<Ast, Error> {
        let ast = self.parse_alt()?;
        if let Some(c) = self.peek() {
            return Err(self.err(&format!("unexpected {c:?}")));
        }
        Ok(ast)
    }

    fn parse_alt(&mut self) -> Result<Ast, Error> {
        let mut arms = vec![self.parse_concat()?];
        while self.peek() == Some('|') {
            self.bump();
            arms.push(self.parse_concat()?);
        }
        Ok(if arms.len() == 1 {
            arms.pop().unwrap()
        } else {
            Ast::Alt(arms)
        })
    }

    fn parse_concat(&mut self) -> Result<Ast, Error> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            parts.push(self.parse_repeat()?);
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().unwrap(),
            _ => Ast::Concat(parts),
        })
    }

    fn parse_repeat(&mut self) -> Result<Ast, Error> {
        let atom = self.parse_atom()?;
        let (min, max) = match self.peek() {
            Some('*') => {
                self.bump();
                (0, None)
            }
            Some('+') => {
                self.bump();
                (1, None)
            }
            Some('?') => {
                self.bump();
                (0, Some(1))
            }
            Some('{') => match self.try_parse_bounds()? {
                Some(b) => b,
                // `{` that opens no valid bound is a literal (regex
                // crate behaviour for e.g. `a{b`).
                None => return Ok(atom),
            },
            _ => return Ok(atom),
        };
        if matches!(atom, Ast::Start | Ast::End | Ast::Empty) {
            return Err(self.err("quantifier follows nothing repeatable"));
        }
        Ok(Ast::Repeat {
            node: Box::new(atom),
            min,
            max,
        })
    }

    /// Parses `{m}`, `{m,}`, or `{m,n}` starting at `{`; returns `None`
    /// (consuming nothing) when the braces are not a valid bound.
    fn try_parse_bounds(&mut self) -> Result<Option<(u32, Option<u32>)>, Error> {
        let start = self.pos;
        self.bump(); // '{'
        let min = self.parse_number();
        let bounds = match (min, self.peek()) {
            (Some(m), Some('}')) => Some((m, Some(m))),
            (Some(m), Some(',')) => {
                self.bump();
                let max = self.parse_number();
                if self.peek() == Some('}') {
                    match max {
                        Some(x) if x < m => {
                            return Err(self.err("reversed repetition bounds"));
                        }
                        _ => Some((m, max)),
                    }
                } else {
                    None
                }
            }
            _ => None,
        };
        match bounds {
            Some((m, x)) => {
                self.bump(); // '}'
                if m > MAX_REPEAT || x.is_some_and(|x| x > MAX_REPEAT) {
                    return Err(self.err("repetition bound too large"));
                }
                Ok(Some((m, x)))
            }
            None => {
                self.pos = start;
                Ok(None)
            }
        }
    }

    fn parse_number(&mut self) -> Option<u32> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            return None;
        }
        self.chars[start..self.pos]
            .iter()
            .collect::<String>()
            .parse()
            .ok()
    }

    fn parse_atom(&mut self) -> Result<Ast, Error> {
        match self.bump() {
            None => Ok(Ast::Empty),
            Some('(') => {
                let inner = self.parse_alt()?;
                if self.bump() != Some(')') {
                    return Err(self.err("unclosed group"));
                }
                Ok(inner)
            }
            Some(')') => Err(self.err("unmatched ')'")),
            Some('[') => self.parse_class(),
            Some('.') => Ok(Ast::Any),
            Some('^') => Ok(Ast::Start),
            Some('$') => Ok(Ast::End),
            Some('*') | Some('+') | Some('?') => Err(self.err("dangling quantifier")),
            Some('\\') => self.parse_escape(false),
            Some(c) => Ok(Ast::Char(c)),
        }
    }

    /// One `\x` escape. In class position (`in_class`), perl classes
    /// contribute their ranges; elsewhere they are standalone atoms.
    fn parse_escape(&mut self, in_class: bool) -> Result<Ast, Error> {
        let Some(c) = self.bump() else {
            return Err(self.err("trailing backslash"));
        };
        let perl = |ranges: &[(char, char)], negated: bool| {
            Ast::Class(ClassSet {
                ranges: ranges.to_vec(),
                negated,
            })
        };
        Ok(match c {
            'd' => perl(&[('0', '9')], false),
            'D' => perl(&[('0', '9')], true),
            'w' => perl(&[('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')], false),
            'W' => perl(&[('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')], true),
            's' => perl(
                &[
                    (' ', ' '),
                    ('\t', '\t'),
                    ('\n', '\n'),
                    ('\r', '\r'),
                    ('\u{b}', '\u{c}'),
                ],
                false,
            ),
            'S' => perl(
                &[
                    (' ', ' '),
                    ('\t', '\t'),
                    ('\n', '\n'),
                    ('\r', '\r'),
                    ('\u{b}', '\u{c}'),
                ],
                true,
            ),
            'n' => Ast::Char('\n'),
            't' => Ast::Char('\t'),
            'r' => Ast::Char('\r'),
            '0' => Ast::Char('\0'),
            c if c.is_ascii_alphanumeric() && !in_class => {
                return Err(self.err(&format!("unsupported escape \\{c}")));
            }
            c => Ast::Char(c),
        })
    }

    /// Parses a `[…]` class body (the `[` is already consumed).
    fn parse_class(&mut self) -> Result<Ast, Error> {
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut ranges: Vec<(char, char)> = Vec::new();
        let mut first = true;
        loop {
            let c = match self.bump() {
                None => return Err(self.err("unclosed character class")),
                // `]` is literal only as the very first member.
                Some(']') if !first => break,
                Some(c) => c,
            };
            first = false;
            let lo = if c == '\\' {
                match self.parse_escape(true)? {
                    Ast::Char(c) => c,
                    Ast::Class(set) => {
                        if set.negated {
                            return Err(self.err("negated perl class inside [...]"));
                        }
                        ranges.extend(set.ranges);
                        continue;
                    }
                    _ => unreachable!("escapes are chars or classes"),
                }
            } else {
                c
            };
            // Range `lo-hi` (a trailing `-` is literal).
            if self.peek() == Some('-') && self.chars.get(self.pos + 1).is_some_and(|&c| c != ']') {
                self.bump();
                let hc = self
                    .bump()
                    .ok_or_else(|| self.err("unclosed character class"))?;
                let hi = if hc == '\\' {
                    match self.parse_escape(true)? {
                        Ast::Char(c) => c,
                        _ => return Err(self.err("perl class as range endpoint")),
                    }
                } else {
                    hc
                };
                if hi < lo {
                    return Err(self.err("reversed class range"));
                }
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        if ranges.is_empty() {
            return Err(self.err("empty character class"));
        }
        Ok(Ast::Class(ClassSet { ranges, negated }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, text: &str) -> bool {
        Regex::new(pat).unwrap().is_match(text)
    }

    #[test]
    fn literal_substring_search_is_unanchored() {
        assert!(m("EXT3-fs error", "kernel: EXT3-fs error (device sda5)"));
        assert!(!m("EXT3-fs error", "kernel: ext3-fs error"));
        assert!(m("", "anything"));
        assert!(m("", ""));
    }

    #[test]
    fn dot_matches_any_but_newline() {
        assert!(m("a.c", "abc"));
        assert!(m("a.c", "a c"));
        assert!(!m("a.c", "a\nc"));
        assert!(!m("a.c", "ac"));
    }

    #[test]
    fn star_plus_question() {
        assert!(m("ab*c", "ac"));
        assert!(m("ab*c", "abbbc"));
        assert!(!m("ab+c", "ac"));
        assert!(m("ab+c", "abc"));
        assert!(m("ab?c", "ac"));
        assert!(m("ab?c", "abc"));
        assert!(!m("ab?c", "abbc"));
    }

    #[test]
    fn dot_star_bridges_gaps() {
        assert!(m(
            "mptscsih: .* attempting task abort",
            "mptscsih: ioc0: attempting task abort!"
        ));
        assert!(m(
            "gm_mapper.*assertion failed",
            "gm_mapper[123] assertion failed. x"
        ));
        assert!(!m(
            "gm_mapper.*assertion failed",
            "assertion failed in gm_mapper"
        ));
    }

    #[test]
    fn anchors() {
        assert!(m("^foo", "foobar"));
        assert!(!m("^foo", "a foo"));
        assert!(m("bar$", "foobar"));
        assert!(!m("bar$", "bar baz"));
        assert!(m("^foo$", "foo"));
        assert!(!m("^foo$", "foo "));
        assert!(m("^$", ""));
        assert!(!m("^$", "x"));
    }

    #[test]
    fn classes_and_ranges() {
        assert!(m("[abc]", "zebra-c"));
        assert!(!m("[abc]", "xyz"));
        assert!(m("[a-f0-9]+", "deadbeef42"));
        assert!(m("[^0-9]", "a1"));
        assert!(!m("[^0-9]", "123"));
        // `]` literal when first, `-` literal when trailing.
        assert!(m("[]x]", "]"));
        assert!(m("[a-]", "-"));
    }

    #[test]
    fn perl_classes() {
        assert!(m(r"\d+", "abc 123"));
        assert!(!m(r"\d", "abc"));
        assert!(m(r"\w+", "snake_case9"));
        assert!(m(r"\s", "a b"));
        assert!(!m(r"\S", "  \t "));
        assert!(m(r"[\d]", "7"));
        assert!(m(r"[\w.]+", "file.name"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("cat|dog", "hotdog stand"));
        assert!(m("(error|warning): disk", "warning: disk full"));
        assert!(!m("(error|warning): disk", "notice: disk full"));
        assert!(m("a(bc)*d", "ad"));
        assert!(m("a(bc)*d", "abcbcd"));
        assert!(m("ab|cd|ef", "xxefxx"));
    }

    #[test]
    fn bounded_repetition() {
        assert!(m("a{3}", "baaab"));
        assert!(!m("^a{3}$", "aa"));
        assert!(!m("^a{3}$", "aaaa"));
        assert!(m("^a{2,}$", "aaaa"));
        assert!(!m("^a{2,}$", "a"));
        assert!(m("^a{1,3}$", "aa"));
        assert!(!m("^a{1,3}$", "aaaa"));
        assert!(m("(ab){2}", "xabab"));
    }

    #[test]
    fn invalid_braces_are_literal() {
        assert!(m("a{b", "xa{bx"));
        assert!(m("a{1,x}", "a{1,x}"));
        assert!(m("{", "{"));
    }

    #[test]
    fn escaped_metacharacters() {
        assert!(m(r"\(111\)", "refused (111) in open_demux"));
        assert!(m(r"gm_parity\.c", "PANIC: gm_parity.c:115"));
        assert!(!m(r"gm_parity\.c", "gm_parityXc"));
        assert!(m(r"I/O", "rejecting I/O to offline device"));
        assert!(m(r"\$\d", "cost $5"));
        assert!(m(r"a\{2}", "a{2}"));
        assert!(m(r"\\", r"back\slash"));
    }

    #[test]
    fn compile_errors() {
        for bad in [
            "(unclosed",
            "[unclosed",
            "([unclosed",
            ")",
            "*x",
            "+x",
            "?",
            "a{3,1}",
            "[z-a]",
            "[]",
            r"trailing\",
            r"\q",
            "a{600}",
        ] {
            assert!(Regex::new(bad).is_err(), "pattern {bad:?} should fail");
        }
    }

    #[test]
    fn error_messages_name_the_pattern() {
        let e = Regex::new("(a").unwrap_err();
        assert!(e.to_string().contains("(a"), "{e}");
        let e = Regex::new("[z-a]").unwrap_err();
        assert!(e.to_string().contains("reversed"), "{e}");
    }

    #[test]
    fn no_pathological_backtracking() {
        // Classic killer for backtracking engines; the thread-set VM
        // handles it in linear time.
        let re = Regex::new("(a*)*b").unwrap_or_else(|_| Regex::new("a*a*a*a*a*a*a*b").unwrap());
        let input = "a".repeat(4096);
        assert!(!re.is_match(&input));
        assert!(re.is_match(&(input + "b")));
    }

    #[test]
    fn literal_fast_path_agrees_with_the_vm() {
        // `[ ]` forces the VM path for an otherwise identical pattern;
        // the literal shortcut must give the same answers.
        let lit = Regex::new("EXT3-fs error").unwrap();
        let vm = Regex::new("EXT3-fs[ ]error").unwrap();
        for text in [
            "kernel: EXT3-fs error (device sda5)",
            "EXT3-fs error",
            "EXT3-fs  error",
            "ext3-fs error",
            "",
        ] {
            assert_eq!(lit.is_match(text), vm.is_match(text), "{text:?}");
        }
        // Escapes reduce to chars, so this stays on the fast path and
        // must still treat the metacharacters literally.
        assert!(m(r"\(111\)", "refused (111)"));
        assert!(!m(r"\(111\)", "refused 111"));
    }

    #[test]
    fn unicode_text_is_handled_per_char() {
        assert!(m("naïve", "a naïve plan"));
        assert!(m("n.ïve", "a naïve plan"));
        assert!(m("[^a]", "ü"));
    }

    fn factors(pat: &str) -> Option<Vec<String>> {
        Regex::new(pat)
            .unwrap()
            .required_literals()
            .map(<[String]>::to_vec)
    }

    fn lits(xs: &[&str]) -> Option<Vec<String>> {
        Some(xs.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn factor_of_pure_literal_is_itself() {
        assert_eq!(factors("EXT3-fs error"), lits(&["EXT3-fs error"]));
        assert_eq!(factors(r"gm_parity\.c"), lits(&["gm_parity.c"]));
        assert_eq!(factors(""), None);
    }

    #[test]
    fn factor_picks_longest_run_across_gaps() {
        assert_eq!(
            factors("mptscsih: .* attempting task abort"),
            lits(&[" attempting task abort"])
        );
        assert_eq!(factors(r"link \d+ down"), lits(&["link "]));
        assert_eq!(factors("a[0-9]bcdef"), lits(&["bcdef"]));
    }

    #[test]
    fn factor_ignores_anchors_and_keeps_adjacency() {
        assert_eq!(factors("^foo bar$"), lits(&["foo bar"]));
        assert_eq!(factors("^$"), None);
    }

    #[test]
    fn alternation_contributes_one_factor_per_branch() {
        assert_eq!(factors("(error|warning): disk"), lits(&[": disk"]));
        assert_eq!(factors("error|warning"), lits(&["error", "warning"]));
        // A factor-less branch poisons the whole alternation.
        assert_eq!(factors(r"error|\d+"), None);
    }

    #[test]
    fn repetition_factors() {
        assert_eq!(factors("a{3}"), lits(&["aaa"]));
        assert_eq!(factors("(ab)+x"), lits(&["ab"]));
        assert_eq!(factors("x(abc)?y"), lits(&["x"]));
        assert_eq!(factors("a*"), None);
        assert_eq!(factors(r"\d+"), None);
    }

    #[test]
    fn factors_are_sound_on_random_matching_texts() {
        // Every pattern with factors: any text it matches must contain
        // one of them (checked on a few handmade matching texts).
        let cases = [
            ("EXT[0-9]-fs (error|warning)", "x EXT3-fs warning y"),
            (
                "mptscsih: .* attempting task abort",
                "mptscsih: io attempting task abort!",
            ),
            ("^foo|bar$", "xbar"),
            ("a{2,4}b", "caaab"),
        ];
        for (pat, text) in cases {
            let re = Regex::new(pat).unwrap();
            assert!(re.is_match(text), "{pat} should match {text}");
            if let Some(f) = re.required_literals() {
                assert!(
                    f.iter().any(|l| text.contains(l.as_str())),
                    "factors {f:?} of /{pat}/ absent from matching text {text:?}"
                );
            }
        }
    }

    #[test]
    fn debug_and_display_show_pattern() {
        let re = Regex::new("a+b").unwrap();
        assert_eq!(re.as_str(), "a+b");
        assert_eq!(re.to_string(), "a+b");
        assert!(format!("{re:?}").contains("a+b"));
    }
}
