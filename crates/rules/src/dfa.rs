//! A lazy DFA tier over the Pike VM.
//!
//! The prefilter already gates ~99.8% of lines away from the regex
//! engine; this module makes the survivors cheap too. Instead of
//! simulating the Thompson NFA thread set per character
//! ([`crate::re::Regex::is_match`]), the tagger determinizes the
//! compiled program *on the fly*: each distinct thread set the VM
//! could be in becomes one DFA state, built the first time it is
//! reached and cached, so a line that revisits known states costs one
//! table lookup per byte.
//!
//! The tier is strictly an accelerator — it must never change a match
//! result — so it bails back to the Pike VM whenever exactness would
//! be at risk:
//!
//! * **Ineligible programs** ([`DfaProgram::new`] returns `None`):
//!   oversized programs whose subset construction could explode. The
//!   decision uses the same [`crate::re::Regex::program`]
//!   introspection the audit crate runs on.
//! * **Non-ASCII input**: the DFA steps bytes, the VM steps chars;
//!   they agree exactly on ASCII, so the first byte ≥ 0x80 aborts to
//!   the VM ([`DfaCache::matches`] returns `None`).
//! * **Cache overflow**: the state cache is bounded by `max_states`.
//!   When a line needs one state more, the cache is cleared (counted
//!   as an eviction), the line bails to the VM, and the next line
//!   rebuilds from an empty cache.
//!
//! States are keyed by (sorted consuming program counters, match
//! flags). Transitions depend only on the consuming set, and the
//! flags capture everything anchors contributed, so two thread sets
//! with equal keys behave identically forever — memoizing on the key
//! is sound. Input bytes are collapsed into equivalence classes (two
//! bytes no consuming instruction distinguishes share a column), so a
//! state's transition row is `num_classes` entries, not 256.

use crate::re::{ProgInst, Regex};
use std::collections::HashMap;

/// Default bound on cached DFA states per regex; see
/// [`DfaCache::with_max_states`].
pub const DEFAULT_MAX_STATES: usize = 64;

/// Programs longer than this are not determinized: subset construction
/// over a huge program (e.g. `x{400}` expansions) costs more to build
/// than the VM costs to run.
const MAX_PROG_INSTS: usize = 256;

/// Transition not computed yet.
const UNKNOWN: u32 = u32::MAX;

/// A Pike-VM program prepared for lazy determinization: the
/// instruction listing plus the byte equivalence classes of its
/// consuming instructions.
///
/// Immutable and shared (one per catalog regex, owned by the
/// [`crate::RuleSet`]); the mutable per-thread state lives in
/// [`DfaCache`].
pub struct DfaProgram {
    insts: Vec<ProgInst>,
    /// ASCII byte → equivalence class id.
    classes: [u8; 128],
    /// One representative byte per class (for building transitions).
    class_rep: Vec<u8>,
}

impl DfaProgram {
    /// Prepares `re` for lazy determinization, or `None` when the
    /// program is ineligible and the Pike VM should be used directly.
    pub fn new(re: &Regex) -> Option<DfaProgram> {
        let insts = re.program();
        if insts.len() > MAX_PROG_INSTS {
            return None;
        }
        let consuming: Vec<usize> = insts
            .iter()
            .enumerate()
            .filter(|(_, i)| i.is_consuming())
            .map(|(pc, _)| pc)
            .collect();
        // Two bytes belong to one class iff every consuming
        // instruction treats them identically; then they provably
        // drive identical transitions from every state.
        let mut classes = [0u8; 128];
        let mut fingerprints: Vec<Vec<bool>> = Vec::new();
        let mut class_rep: Vec<u8> = Vec::new();
        for b in 0..128u8 {
            let fp: Vec<bool> = consuming
                .iter()
                .map(|&pc| insts[pc].matches_char(b as char))
                .collect();
            let id = match fingerprints.iter().position(|f| *f == fp) {
                Some(i) => i,
                None => {
                    fingerprints.push(fp);
                    class_rep.push(b);
                    class_rep.len() - 1
                }
            };
            classes[b as usize] = id as u8;
        }
        Some(DfaProgram {
            insts,
            classes,
            class_rep,
        })
    }

    /// Number of byte equivalence classes (transition-row width).
    pub fn class_count(&self) -> usize {
        self.class_rep.len()
    }

    /// Epsilon closure of `seeds` under the position predicates
    /// `at_start`/`at_end`: returns the sorted consuming program
    /// counters reached, and whether `Match` was reached.
    fn close(&self, seeds: &[u32], at_start: bool, at_end: bool) -> (Vec<u32>, bool) {
        let mut visited = vec![false; self.insts.len()];
        let mut stack: Vec<usize> = seeds.iter().map(|&s| s as usize).collect();
        let mut consuming = Vec::new();
        let mut matched = false;
        while let Some(pc) = stack.pop() {
            if visited[pc] {
                continue;
            }
            visited[pc] = true;
            match &self.insts[pc] {
                ProgInst::Match => matched = true,
                ProgInst::Jump(t) => stack.push(*t),
                ProgInst::Split(a, b) => {
                    stack.push(*b);
                    stack.push(*a);
                }
                ProgInst::Start => {
                    if at_start {
                        stack.push(pc + 1);
                    }
                }
                ProgInst::End => {
                    if at_end {
                        stack.push(pc + 1);
                    }
                }
                ProgInst::Char(_) | ProgInst::Any | ProgInst::Class { .. } => {
                    consuming.push(pc as u32);
                }
            }
        }
        consuming.sort_unstable();
        (consuming, matched)
    }
}

impl std::fmt::Debug for DfaProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DfaProgram")
            .field("insts", &self.insts.len())
            .field("classes", &self.class_rep.len())
            .finish()
    }
}

/// One cached DFA state: a determinized Pike-VM thread set.
struct DfaState {
    /// Sorted consuming program counters of the thread set.
    consuming: Vec<u32>,
    /// `Match` is reachable here mid-text (without the end anchor).
    match_now: bool,
    /// `Match` is reachable here at end of text (a superset of
    /// `match_now`, since satisfying `$` only adds paths).
    match_eof: bool,
    /// Per-class transitions, lazily filled ([`UNKNOWN`] = not yet).
    trans: Vec<u32>,
}

/// The bounded lazy-DFA state cache for one regex.
///
/// Mutable per-thread scratch: each tagging worker owns one cache per
/// DFA-eligible regex slot and reuses it line after line, so the
/// automaton is effectively built once per worker and amortized over
/// the whole log. Memory is bounded by `max_states` — on overflow the
/// cache clears (one recorded eviction) and the current line bails to
/// the Pike VM.
///
/// # Examples
///
/// ```
/// use sclog_rules::dfa::{DfaCache, DfaProgram};
/// use sclog_rules::re::Regex;
///
/// let re = Regex::new(r"EXT[0-9]-fs (error|warning)").unwrap();
/// let prog = DfaProgram::new(&re).expect("small program is eligible");
/// let mut cache = DfaCache::new();
/// let verdict = cache.matches(&prog, "kernel: EXT3-fs error (device sda5)");
/// assert_eq!(verdict, Some(true), "resolved without the Pike VM");
/// ```
pub struct DfaCache {
    /// Hard bound on `states.len()`; every growth site checks it.
    max_states: usize,
    states: Vec<DfaState>,
    /// (consuming set, match flags) → state id.
    index: HashMap<(Vec<u32>, u8), u32>,
    /// Clears forced by the bound since the last
    /// [`DfaCache::take_evictions`].
    evictions: u64,
}

impl Default for DfaCache {
    fn default() -> Self {
        Self::new()
    }
}

impl DfaCache {
    /// A cache bounded at [`DEFAULT_MAX_STATES`].
    pub fn new() -> Self {
        Self::with_max_states(DEFAULT_MAX_STATES)
    }

    /// A cache bounded at `max_states` cached states (minimum 1).
    ///
    /// Tiny bounds are valid — they just bail more: the conformance
    /// suite uses them to force the eviction/bailout paths.
    pub fn with_max_states(max_states: usize) -> Self {
        DfaCache {
            max_states: max_states.max(1),
            states: Vec::new(),
            index: HashMap::new(),
            evictions: 0,
        }
    }

    /// Number of states currently cached.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Takes the eviction count accumulated since the last call.
    pub fn take_evictions(&mut self) -> u64 {
        std::mem::take(&mut self.evictions)
    }

    /// Interns the state for `seeds`, or `None` on cache overflow
    /// (after clearing the cache and recording the eviction).
    fn make_state(&mut self, prog: &DfaProgram, seeds: &[u32], at_start: bool) -> Option<u32> {
        let (consuming, match_now) = prog.close(seeds, at_start, false);
        let (_, match_eof) = prog.close(seeds, at_start, true);
        let key = (consuming, u8::from(match_now) | (u8::from(match_eof) << 1));
        if let Some(&id) = self.index.get(&key) {
            return Some(id);
        }
        if self.states.len() >= self.max_states {
            self.states.clear();
            self.index.clear();
            self.evictions += 1;
            return None;
        }
        let id = self.states.len() as u32;
        self.states.push(DfaState {
            consuming: key.0.clone(),
            match_now,
            match_eof,
            trans: vec![UNKNOWN; prog.class_count()],
        });
        self.index.insert(key, id);
        Some(id)
    }

    /// Runs the DFA over `text`: `Some(verdict)` when it resolved the
    /// match exactly, `None` when it bailed (non-ASCII byte or cache
    /// overflow) and the caller must fall back to
    /// [`crate::re::Regex::is_match`].
    ///
    /// The verdict, when produced, is bit-identical to the Pike VM's:
    /// unanchored substring search with the same `^`/`$`/`.`/class
    /// semantics. The conformance suite pins this on every catalog
    /// pattern.
    pub fn matches(&mut self, prog: &DfaProgram, text: &str) -> Option<bool> {
        if self.states.is_empty() {
            // State 0 is always the start state: the closure of pc 0
            // at position 0 (start anchor satisfied).
            self.make_state(prog, &[0], true)?;
        }
        let mut s = 0usize;
        if self.states[s].match_now {
            return Some(true);
        }
        for &b in text.as_bytes() {
            if b >= 0x80 {
                return None;
            }
            let cls = prog.classes[b as usize] as usize;
            let mut t = self.states[s].trans[cls];
            if t == UNKNOWN {
                let rep = prog.class_rep[cls] as char;
                // Threads that consume this byte advance; pc 0 is
                // re-seeded for the unanchored search, exactly as the
                // VM seeds every start position.
                let mut seeds: Vec<u32> = self.states[s]
                    .consuming
                    .iter()
                    .filter(|&&pc| prog.insts[pc as usize].matches_char(rep))
                    .map(|&pc| pc + 1)
                    .collect();
                seeds.push(0);
                t = self.make_state(prog, &seeds, false)?;
                self.states[s].trans[cls] = t;
            }
            s = t as usize;
            if self.states[s].match_now {
                return Some(true);
            }
        }
        Some(self.states[s].match_eof)
    }
}

impl std::fmt::Debug for DfaCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DfaCache")
            .field("states", &self.states.len())
            .field("max_states", &self.max_states)
            .field("evictions", &self.evictions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// DFA answer for `pat` on `text` with a default cache, asserting
    /// agreement with the Pike VM when the DFA resolves.
    fn agree(pat: &str, text: &str) {
        let re = Regex::new(pat).unwrap();
        let prog = DfaProgram::new(&re).expect("test patterns are eligible");
        let mut cache = DfaCache::new();
        match cache.matches(&prog, text) {
            Some(got) => assert_eq!(got, re.is_match(text), "/{pat}/ on {text:?}"),
            None => assert!(
                !text.is_ascii(),
                "/{pat}/ on {text:?}: unexpected bailout on ASCII input"
            ),
        }
    }

    #[test]
    fn agrees_with_vm_on_core_constructs() {
        let pats = [
            "abc",
            "a.c",
            "ab*c",
            "ab+c",
            "ab?c",
            "^foo",
            "bar$",
            "^foo$",
            "^$",
            "(error|warning): disk",
            "[a-f0-9]+",
            "[^0-9]",
            r"\d+",
            r"\s",
            "a{2,4}b",
            "EXT[0-9]-fs (error|warning)",
            "mptscsih: .* attempting task abort",
        ];
        let texts = [
            "",
            "abc",
            "ac",
            "abbbc",
            "foobar",
            "a foo",
            "bar baz",
            "xbar",
            "warning: disk full",
            "notice: disk",
            "deadbeef42",
            "123",
            "caaab",
            "kernel: EXT3-fs error (device sda5)",
            "mptscsih: ioc0: attempting task abort!",
            "a\nb",
        ];
        for pat in pats {
            for text in texts {
                agree(pat, text);
            }
        }
    }

    #[test]
    fn reuses_cached_states_across_lines() {
        let re = Regex::new("task abort").unwrap();
        let prog = DfaProgram::new(&re).unwrap();
        let mut cache = DfaCache::new();
        assert_eq!(cache.matches(&prog, "attempting task abort!"), Some(true));
        let built = cache.state_count();
        assert!(built > 0);
        for _ in 0..3 {
            assert_eq!(cache.matches(&prog, "attempting task abort!"), Some(true));
            assert_eq!(cache.matches(&prog, "all quiet"), Some(false));
        }
        assert!(
            cache.state_count() <= built + 2,
            "revisited lines should mostly hit cached states"
        );
        assert_eq!(cache.take_evictions(), 0);
    }

    #[test]
    fn non_ascii_input_bails_to_the_vm() {
        let re = Regex::new("[^a]").unwrap();
        let prog = DfaProgram::new(&re).unwrap();
        let mut cache = DfaCache::new();
        assert_eq!(
            cache.matches(&prog, "aaïb"),
            None,
            "the ï byte arrives before any match is certain"
        );
        // A match completed before the non-ASCII byte still resolves:
        // the scan returns early without ever seeing it.
        assert_eq!(cache.matches(&prog, "ab ï"), Some(true));
        // The same cache still resolves ASCII lines afterwards.
        assert_eq!(cache.matches(&prog, "aaaa"), Some(false));
        assert_eq!(cache.matches(&prog, "ab"), Some(true));
    }

    #[test]
    fn tiny_cache_evicts_and_bails_but_recovers() {
        let re = Regex::new("(ab|cd|ef)+x").unwrap();
        let prog = DfaProgram::new(&re).unwrap();
        let mut cache = DfaCache::with_max_states(2);
        let vm = |t: &str| re.is_match(t);
        let texts = ["abcdefx", "ababab", "x", "efx", "zzzz"];
        let mut bailed = 0;
        for t in texts {
            match cache.matches(&prog, t) {
                Some(got) => assert_eq!(got, vm(t), "{t:?}"),
                None => bailed += 1,
            }
            assert!(cache.state_count() <= 2, "bound violated on {t:?}");
        }
        assert!(bailed > 0, "a 2-state bound must force bailouts");
        assert!(cache.take_evictions() > 0, "overflow must count evictions");
        assert_eq!(cache.take_evictions(), 0, "take drains the tally");
    }

    #[test]
    fn oversized_programs_are_ineligible() {
        let re = Regex::new("a{300}").unwrap();
        assert!(
            DfaProgram::new(&re).is_none(),
            "300-instruction expansion should not determinize"
        );
        assert!(DfaProgram::new(&Regex::new("a{3}").unwrap()).is_some());
    }

    #[test]
    fn byte_classes_collapse_indistinguishable_bytes() {
        let re = Regex::new(r"\d+x").unwrap();
        let prog = DfaProgram::new(&re).unwrap();
        // Classes: digits, 'x', everything else (and '\n' only if some
        // instruction distinguishes it — `.` is absent here).
        assert!(prog.class_count() <= 4, "{prog:?}");
        let mut cache = DfaCache::new();
        assert_eq!(cache.matches(&prog, "line 42x ok"), Some(true));
        assert_eq!(cache.matches(&prog, "line 42 ok"), Some(false));
    }

    #[test]
    fn debug_is_compact() {
        let re = Regex::new("ab").unwrap();
        let prog = DfaProgram::new(&re).unwrap();
        let mut cache = DfaCache::new();
        let _ = cache.matches(&prog, "ab");
        let s = format!("{prog:?} {cache:?}");
        assert!(s.contains("max_states"), "{s}");
        assert!(!s.contains('['), "tables must not be dumped: {s}");
    }
}
