//! One `(system, day)` partition: a manifest of sealed segments plus
//! a WAL-backed in-memory tail.
//!
//! The manifest is the partition's source of truth — the id list of
//! live segments, the next id to allocate, and the highest sequence
//! already sealed. It is rewritten atomically (temp file + rename),
//! which makes every multi-file transition crash-safe:
//!
//! * **Seal**: write the segment file, commit the manifest (adds the
//!   id and advances `sealed_through`), then truncate the WAL. A
//!   crash between the last two steps replays WAL records already in
//!   a segment; recovery drops frames whose sequences are ≤
//!   `sealed_through`.
//! * **Compact**: write the merged segment, commit the manifest
//!   (swaps the run of small ids for the new one), then delete the
//!   old files. A crash at any point leaves either the old or the
//!   new segment set live; unreferenced files are swept on open.

use std::io;
use std::path::{Path, PathBuf};

use sclog_types::segment::{MANIFEST_MAGIC, SEGMENT_FORMAT_VERSION};
use sclog_types::CategoryRegistry;

use crate::crc::crc32;
use crate::record::StoredAlert;
use crate::segment::{segment_file_name, write_segment, Segment};
use crate::varint::{corrupt, get_u64, put_u64};
use crate::wal::Wal;

/// Manifest file name within a partition directory.
const MANIFEST_FILE: &str = "MANIFEST.bin";
/// WAL file name within a partition directory.
const WAL_FILE: &str = "wal.bin";

/// The durable index of one partition.
#[derive(Debug, Default, Clone, PartialEq)]
struct Manifest {
    /// Next segment id to allocate.
    next_id: u32,
    /// Highest sequence sealed into a segment, if any.
    sealed_through: Option<u64>,
    /// Live segment ids, in logical (seal) order.
    ids: Vec<u32>,
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        put_u64(&mut body, u64::from(self.next_id));
        // Option as varint: 0 = none, else value + 1.
        put_u64(&mut body, self.sealed_through.map_or(0, |s| s + 1));
        put_u64(&mut body, self.ids.len() as u64);
        for &id in &self.ids {
            put_u64(&mut body, u64::from(id));
        }
        let mut out = Vec::with_capacity(10 + body.len() + 4);
        out.extend_from_slice(&MANIFEST_MAGIC);
        out.extend_from_slice(&SEGMENT_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&body);
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out
    }

    fn decode(bytes: &[u8]) -> io::Result<Manifest> {
        if bytes.len() < 14 || bytes[..8] != MANIFEST_MAGIC {
            return Err(corrupt("manifest magic"));
        }
        let version = u16::from_le_bytes([bytes[8], bytes[9]]);
        if version != SEGMENT_FORMAT_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "store: manifest format v{version}, this build reads v{SEGMENT_FORMAT_VERSION}"
                ),
            ));
        }
        let body = &bytes[10..bytes.len() - 4];
        let crc_bytes: [u8; 4] = bytes[bytes.len() - 4..].try_into().expect("4 bytes");
        if crc32(body) != u32::from_le_bytes(crc_bytes) {
            return Err(corrupt("manifest CRC"));
        }
        let mut pos = 0usize;
        let next_id = get_u64(body, &mut pos)?;
        if next_id > u64::from(u32::MAX) {
            return Err(corrupt("manifest next id"));
        }
        let sealed_through = match get_u64(body, &mut pos)? {
            0 => None,
            s => Some(s - 1),
        };
        let id_count = get_u64(body, &mut pos)?;
        if id_count > next_id {
            return Err(corrupt("manifest id count"));
        }
        let mut ids = Vec::with_capacity(id_count as usize);
        for _ in 0..id_count {
            let id = get_u64(body, &mut pos)?;
            if id >= next_id {
                return Err(corrupt("manifest segment id"));
            }
            ids.push(id as u32);
        }
        if pos != body.len() {
            return Err(corrupt("manifest (trailing bytes)"));
        }
        Ok(Manifest {
            next_id: next_id as u32,
            sealed_through,
            ids,
        })
    }

    fn persist(&self, dir: &Path) -> io::Result<()> {
        let path = dir.join(MANIFEST_FILE);
        let tmp = dir.join("MANIFEST.tmp");
        {
            use std::io::Write;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&self.encode())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)
    }

    fn load(dir: &Path) -> io::Result<Manifest> {
        match std::fs::read(dir.join(MANIFEST_FILE)) {
            Ok(bytes) => Manifest::decode(&bytes),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Manifest::default()),
            Err(e) => Err(e),
        }
    }
}

/// One open `(system, day)` partition.
#[derive(Debug)]
pub struct Partition {
    dir: PathBuf,
    manifest: Manifest,
    wal: Wal,
    /// Unsealed records, mirrored in the WAL, in append order.
    pub tail: Vec<StoredAlert>,
    /// Sealed segments in logical order.
    pub sealed: Vec<Segment>,
}

impl Partition {
    /// Opens (or creates) the partition at `dir`: loads the manifest,
    /// opens every live segment's zone map, sweeps unreferenced
    /// segment and temp files, and recovers the WAL tail — dropping
    /// frames already covered by `sealed_through`.
    ///
    /// # Errors
    ///
    /// I/O failures or corruption in the manifest or a live segment's
    /// header/zone (a torn WAL tail is recovered, not an error).
    pub fn open(dir: &Path) -> io::Result<Partition> {
        std::fs::create_dir_all(dir)?;
        let manifest = Manifest::load(dir)?;
        let mut sealed = Vec::with_capacity(manifest.ids.len());
        for &id in &manifest.ids {
            sealed.push(Segment::open(dir, id)?);
        }
        sweep_garbage(dir, &manifest.ids)?;
        let (wal, mut tail) = Wal::open(&dir.join(WAL_FILE))?;
        if let Some(through) = manifest.sealed_through {
            tail.retain(|r| r.seq > through);
        }
        Ok(Partition {
            dir: dir.to_path_buf(),
            manifest,
            wal,
            tail,
            sealed,
        })
    }

    /// Appends `records` durably (one WAL frame) and to the tail.
    ///
    /// # Errors
    ///
    /// Any WAL write failure; the tail is untouched on error.
    pub fn append(&mut self, records: &[StoredAlert]) -> io::Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        self.wal.append(records)?;
        self.tail.extend_from_slice(records);
        Ok(())
    }

    /// Seals the tail into a new segment, commits the manifest, and
    /// truncates the WAL. No-op on an empty tail.
    ///
    /// # Errors
    ///
    /// Any I/O failure; the partition stays consistent (see module
    /// docs for the crash ordering).
    pub fn seal(&mut self, categories: &CategoryRegistry) -> io::Result<()> {
        if self.tail.is_empty() {
            return Ok(());
        }
        let id = self.manifest.next_id;
        let segment = write_segment(&self.dir, id, &self.tail, categories)?;
        let max_seq = self.tail.iter().map(|r| r.seq).max().expect("non-empty");
        let mut next = self.manifest.clone();
        next.next_id = id + 1;
        next.sealed_through = Some(
            self.manifest
                .sealed_through
                .map_or(max_seq, |s| s.max(max_seq)),
        );
        next.ids.push(id);
        next.persist(&self.dir)?;
        self.manifest = next;
        self.sealed.push(segment);
        self.tail.clear();
        self.wal.reset()
    }

    /// Merges adjacent runs of at least two sealed segments that each
    /// hold fewer than `small_than` records. Returns the number of
    /// segments removed by merging (0 when nothing qualified).
    ///
    /// # Errors
    ///
    /// Any I/O failure reading runs or committing the merge.
    pub fn compact(&mut self, categories: &CategoryRegistry, small_than: u64) -> io::Result<usize> {
        let mut removed = 0usize;
        loop {
            let Some((start, len)) = first_small_run(&self.sealed, small_than) else {
                return Ok(removed);
            };
            let mut merged: Vec<StoredAlert> = Vec::new();
            for segment in &self.sealed[start..start + len] {
                let (records, _) = segment.read_payload(false)?;
                merged.extend_from_slice(&records);
            }
            let id = self.manifest.next_id;
            let segment = write_segment(&self.dir, id, &merged, categories)?;
            let mut next = self.manifest.clone();
            next.next_id = id + 1;
            next.ids.splice(start..start + len, [id]);
            next.persist(&self.dir)?;
            self.manifest = next;
            let old: Vec<Segment> = self.sealed.splice(start..start + len, [segment]).collect();
            for segment in old {
                // Best-effort: a leftover file is swept on next open.
                let _ = std::fs::remove_file(&segment.path);
            }
            removed += len - 1;
        }
    }

    /// Records in the partition (sealed + tail).
    pub fn record_count(&self) -> u64 {
        self.sealed.iter().map(|s| s.zone.count).sum::<u64>() + self.tail.len() as u64
    }
}

/// Finds the first run of ≥ 2 adjacent segments all smaller than
/// `small_than` records, as `(start, len)`.
fn first_small_run(sealed: &[Segment], small_than: u64) -> Option<(usize, usize)> {
    let mut start = None;
    for (i, segment) in sealed.iter().enumerate() {
        if segment.zone.count < small_than {
            let s = *start.get_or_insert(i);
            if i + 1 == sealed.len() && i > s {
                return Some((s, i + 1 - s));
            }
        } else {
            if let Some(s) = start.take() {
                if i - s >= 2 {
                    return Some((s, i - s));
                }
            }
        }
    }
    None
}

/// Removes segment and temp files not referenced by the manifest.
fn sweep_garbage(dir: &Path, live: &[u32]) -> io::Result<()> {
    let live_names: Vec<String> = live.iter().map(|&id| segment_file_name(id)).collect();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let is_garbage = name.ends_with(".tmp")
            || (name.starts_with("seg-")
                && name.ends_with(".seg")
                && !live_names.iter().any(|n| n == name));
        if is_garbage {
            std::fs::remove_file(entry.path())?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sclog_types::{AlertType, CategoryId, NodeId, Severity, SystemId, Timestamp};

    fn registry() -> CategoryRegistry {
        let mut reg = CategoryRegistry::new();
        reg.register("CAT", SystemId::Liberty, AlertType::Hardware);
        reg
    }

    fn rec(seq: u64) -> StoredAlert {
        StoredAlert {
            time: Timestamp::from_micros(seq as i64 * 500_000),
            host: NodeId::from_index(seq as u32 % 3),
            category: CategoryId::from_index(0),
            severity: Severity::None,
            message_index: seq as usize,
            filtered: true,
            seq,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sclog-store-parttest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn seal_then_reopen_recovers_both_layers() {
        let reg = registry();
        let dir = temp_dir("layers");
        let mut p = Partition::open(&dir).unwrap();
        p.append(&[rec(0), rec(1)]).unwrap();
        p.seal(&reg).unwrap();
        p.append(&[rec(2)]).unwrap();
        assert_eq!(p.record_count(), 3);
        drop(p);
        let p = Partition::open(&dir).unwrap();
        assert_eq!(p.sealed.len(), 1);
        assert_eq!(p.sealed[0].zone.count, 2);
        assert_eq!(p.tail, vec![rec(2)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_frames_already_sealed_are_dropped_on_recovery() {
        let reg = registry();
        let dir = temp_dir("sealcrash");
        let mut p = Partition::open(&dir).unwrap();
        p.append(&[rec(0), rec(1)]).unwrap();
        // Simulate a crash between manifest commit and WAL truncate:
        // seal normally, then restore the pre-seal WAL bytes.
        let wal_path = dir.join(WAL_FILE);
        let wal_before = std::fs::read(&wal_path).unwrap();
        p.seal(&reg).unwrap();
        drop(p);
        std::fs::write(&wal_path, &wal_before).unwrap();
        let p = Partition::open(&dir).unwrap();
        assert_eq!(p.sealed.len(), 1);
        assert!(p.tail.is_empty(), "sealed records must not replay");
        assert_eq!(p.record_count(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_merges_small_runs_and_survives_reopen() {
        let reg = registry();
        let dir = temp_dir("compact");
        let mut p = Partition::open(&dir).unwrap();
        for seq in 0..6u64 {
            p.append(&[rec(seq)]).unwrap();
            p.seal(&reg).unwrap();
        }
        assert_eq!(p.sealed.len(), 6);
        let removed = p.compact(&reg, 4).unwrap();
        assert_eq!(removed, 5);
        assert_eq!(p.sealed.len(), 1);
        assert_eq!(p.record_count(), 6);
        let (records, _) = p.sealed[0].read_payload(false).unwrap();
        assert_eq!(records.len(), 6);
        assert!(records.windows(2).all(|w| w[0].seq < w[1].seq));
        drop(p);
        let p = Partition::open(&dir).unwrap();
        assert_eq!(p.sealed.len(), 1);
        assert_eq!(p.record_count(), 6);
        // Exactly one live segment file remains on disk.
        let seg_files = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_str()
                    .is_some_and(|n| n.ends_with(".seg"))
            })
            .count();
        assert_eq!(seg_files, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unreferenced_segment_files_are_swept() {
        let reg = registry();
        let dir = temp_dir("sweep");
        let mut p = Partition::open(&dir).unwrap();
        p.append(&[rec(0)]).unwrap();
        p.seal(&reg).unwrap();
        drop(p);
        // A garbage segment (e.g. compaction output whose manifest
        // commit never happened) and a stray temp file.
        std::fs::write(dir.join(segment_file_name(99)), b"junk").unwrap();
        std::fs::write(dir.join("MANIFEST.tmp"), b"junk").unwrap();
        let p = Partition::open(&dir).unwrap();
        assert_eq!(p.sealed.len(), 1);
        assert!(!dir.join(segment_file_name(99)).exists());
        assert!(!dir.join("MANIFEST.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
