//! The store catalog: host and category name tables.
//!
//! Records at rest carry interned ids; the catalog is the one file
//! that maps them back to names. Hosts are written in id order and
//! re-interned in that order on open, so ids stay stable across
//! restarts. Categories carry their system and class codes, which is
//! what lets zone maps and filters reason about class and system
//! without touching record payloads.
//!
//! Layout: `CATALOG_MAGIC` + version `u16`, then a varint host count
//! and length-prefixed names, a varint category count and per
//! category a length-prefixed name plus system and class code bytes,
//! and a trailing CRC-32 over everything after the magic+version.
//! Written via temp-file + rename, so it is atomically either the old
//! or the new table.

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

use sclog_types::segment::{
    class_code, class_from_code, system_code, system_from_code, CATALOG_MAGIC,
    SEGMENT_FORMAT_VERSION,
};
use sclog_types::{CategoryRegistry, SourceInterner};

use crate::crc::crc32;
use crate::varint::{corrupt, get_u64, put_u64};

/// The host and category tables for one store.
#[derive(Debug, Default)]
pub struct Catalog {
    /// Host name ↔ id table.
    pub hosts: SourceInterner,
    /// Category name/system/class table.
    pub categories: CategoryRegistry,
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn get_str(buf: &[u8], pos: &mut usize) -> io::Result<String> {
    let len = get_u64(buf, pos)?;
    if len > 1 << 16 {
        return Err(corrupt("catalog string length"));
    }
    let end = pos
        .checked_add(len as usize)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| corrupt("catalog string (truncated)"))?;
    let s = std::str::from_utf8(&buf[*pos..end]).map_err(|_| corrupt("catalog string (UTF-8)"))?;
    *pos = end;
    Ok(s.to_owned())
}

impl Catalog {
    /// Serializes the catalog to bytes (full file image).
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        put_u64(&mut body, self.hosts.len() as u64);
        for (_, name) in self.hosts.iter() {
            put_str(&mut body, name);
        }
        put_u64(&mut body, self.categories.len() as u64);
        for (_, def) in self.categories.iter() {
            put_str(&mut body, &def.name);
            body.push(system_code(def.system));
            body.push(class_code(def.alert_type));
        }
        let mut out = Vec::with_capacity(10 + body.len() + 4);
        out.extend_from_slice(&CATALOG_MAGIC);
        out.extend_from_slice(&SEGMENT_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&body);
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out
    }

    /// Deserializes a catalog written by [`Catalog::encode`].
    ///
    /// # Errors
    ///
    /// `InvalidData` on a bad magic, foreign version, CRC mismatch,
    /// or malformed table.
    pub fn decode(bytes: &[u8]) -> io::Result<Catalog> {
        if bytes.len() < 14 || bytes[..8] != CATALOG_MAGIC {
            return Err(corrupt("catalog magic"));
        }
        let version = u16::from_le_bytes([bytes[8], bytes[9]]);
        if version != SEGMENT_FORMAT_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "store: catalog format v{version}, this build reads v{SEGMENT_FORMAT_VERSION}"
                ),
            ));
        }
        let body = &bytes[10..bytes.len() - 4];
        let crc_bytes: [u8; 4] = bytes[bytes.len() - 4..].try_into().expect("4 bytes");
        if crc32(body) != u32::from_le_bytes(crc_bytes) {
            return Err(corrupt("catalog CRC"));
        }
        let mut catalog = Catalog::default();
        let mut pos = 0usize;
        let host_count = get_u64(body, &mut pos)?;
        if host_count > u64::from(u32::MAX) {
            return Err(corrupt("catalog host count"));
        }
        for _ in 0..host_count {
            let name = get_str(body, &mut pos)?;
            catalog.hosts.intern(&name);
        }
        let category_count = get_u64(body, &mut pos)?;
        if category_count > u64::from(u16::MAX) {
            return Err(corrupt("catalog category count"));
        }
        for _ in 0..category_count {
            let name = get_str(body, &mut pos)?;
            let system = *body.get(pos).ok_or_else(|| corrupt("catalog system"))?;
            pos += 1;
            let class = *body.get(pos).ok_or_else(|| corrupt("catalog class"))?;
            pos += 1;
            let system = system_from_code(system).ok_or_else(|| corrupt("catalog system code"))?;
            let class = class_from_code(class).ok_or_else(|| corrupt("catalog class code"))?;
            catalog.categories.register(&name, system, class);
        }
        if pos != body.len() {
            return Err(corrupt("catalog (trailing bytes)"));
        }
        Ok(catalog)
    }

    /// Writes the catalog to `path` atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// Any I/O failure writing, syncing, or renaming.
    pub fn persist(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&self.encode())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Loads the catalog from `path`; a missing file is an empty
    /// catalog (new store).
    ///
    /// # Errors
    ///
    /// I/O failures other than `NotFound`, or [`Catalog::decode`]
    /// corruption errors.
    pub fn load(path: &Path) -> io::Result<Catalog> {
        match std::fs::read(path) {
            Ok(bytes) => Catalog::decode(&bytes),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Catalog::default()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sclog_types::{AlertType, SystemId};

    fn sample() -> Catalog {
        let mut c = Catalog::default();
        c.hosts.intern("sn373");
        c.hosts.intern("admin1");
        c.categories
            .register("PBS_CHK", SystemId::Liberty, AlertType::Software);
        c.categories
            .register("KERNDTLB", SystemId::BlueGeneL, AlertType::Hardware);
        c
    }

    #[test]
    fn round_trip_keeps_ids_stable() {
        let c = sample();
        let got = Catalog::decode(&c.encode()).unwrap();
        assert_eq!(got.hosts.len(), 2);
        assert_eq!(got.hosts.get("sn373"), c.hosts.get("sn373"));
        assert_eq!(got.hosts.get("admin1"), c.hosts.get("admin1"));
        assert_eq!(got.categories.len(), 2);
        let (id, def) = got.categories.iter().next().unwrap();
        assert_eq!(def.name, "PBS_CHK");
        assert_eq!(def.system, SystemId::Liberty);
        assert_eq!(def.alert_type, AlertType::Software);
        assert_eq!(got.categories.name(id), c.categories.name(id));
    }

    #[test]
    fn corruption_is_detected() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(Catalog::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(Catalog::decode(&flipped).is_err());
    }

    #[test]
    fn persist_and_load() {
        let dir = std::env::temp_dir().join(format!("sclog-store-cattest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("catalog.bin");
        let _ = std::fs::remove_file(&path);
        assert_eq!(Catalog::load(&path).unwrap().hosts.len(), 0);
        let c = sample();
        c.persist(&path).unwrap();
        assert_eq!(Catalog::load(&path).unwrap().hosts.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
