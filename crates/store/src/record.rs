//! The record type at rest and its delta-varint batch codec.
//!
//! One encoding serves both WAL frames and sealed segment payloads:
//! a leading record count, then per record a zigzag-varint timestamp
//! delta, a sequence delta, varint host and category ids, one byte
//! packing severity code and the survivor bit, and a varint message
//! index. Timestamps within a partition cluster tightly, so deltas
//! are usually one or two bytes against eight for a raw `i64`.

use std::io;

use sclog_types::segment::{severity_code, severity_from_code};
use sclog_types::{CategoryId, NodeId, Severity, Timestamp};

use crate::varint::{corrupt, get_i64, get_u64, put_i64, put_u64};

/// One alert at rest, in the store's own host/category namespace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoredAlert {
    /// Time of the underlying message.
    pub time: Timestamp,
    /// Source node, interned in the store's catalog.
    pub host: NodeId,
    /// Category, registered in the store's catalog.
    pub category: CategoryId,
    /// Severity of the underlying message (`None` when the logging
    /// path records none, or when ground truth was unavailable).
    pub severity: Severity,
    /// Index of the underlying message in its system's parse order.
    pub message_index: usize,
    /// Whether the alert survived the spatio-temporal filter.
    pub filtered: bool,
    /// Store-global admission sequence; assigned on append and the
    /// tie-breaker that keeps scans deterministic across partitions.
    pub seq: u64,
}

/// The survivor bit's position in the packed severity byte.
const FILTERED_BIT: u8 = 0x80;

/// Encodes `records` (appending to `out`) in batch form.
pub fn encode_batch(records: &[StoredAlert], out: &mut Vec<u8>) {
    put_u64(out, records.len() as u64);
    let mut prev_time = 0i64;
    let mut prev_seq = 0u64;
    for r in records {
        put_i64(out, r.time.as_micros() - prev_time);
        prev_time = r.time.as_micros();
        put_i64(out, r.seq as i64 - prev_seq as i64);
        prev_seq = r.seq;
        put_u64(out, r.host.index() as u64);
        put_u64(out, r.category.index() as u64);
        out.push(severity_code(r.severity) | if r.filtered { FILTERED_BIT } else { 0 });
        put_u64(out, r.message_index as u64);
    }
}

/// Decodes one batch previously written by [`encode_batch`],
/// appending to `into`.
///
/// # Errors
///
/// `InvalidData` on truncation, an unknown severity code, trailing
/// garbage, or an implausible record count.
pub fn decode_batch(buf: &[u8], into: &mut Vec<StoredAlert>) -> io::Result<()> {
    let mut pos = 0usize;
    let count = get_u64(buf, &mut pos)?;
    // Each record is at least 6 bytes; reject counts the buffer
    // cannot possibly hold before reserving for them.
    if count > (buf.len() as u64) {
        return Err(corrupt("record count"));
    }
    into.reserve(count as usize);
    let mut prev_time = 0i64;
    let mut prev_seq = 0i64;
    for _ in 0..count {
        prev_time = prev_time
            .checked_add(get_i64(buf, &mut pos)?)
            .ok_or_else(|| corrupt("timestamp delta"))?;
        prev_seq = prev_seq
            .checked_add(get_i64(buf, &mut pos)?)
            .ok_or_else(|| corrupt("sequence delta"))?;
        if prev_seq < 0 {
            return Err(corrupt("negative sequence"));
        }
        let host = get_u64(buf, &mut pos)?;
        if host > u64::from(u32::MAX) {
            return Err(corrupt("host id"));
        }
        let category = get_u64(buf, &mut pos)?;
        if category > u64::from(u16::MAX) {
            return Err(corrupt("category id"));
        }
        let packed = *buf.get(pos).ok_or_else(|| corrupt("severity byte"))?;
        pos += 1;
        let severity =
            severity_from_code(packed & !FILTERED_BIT).ok_or_else(|| corrupt("severity code"))?;
        let message_index = get_u64(buf, &mut pos)?;
        into.push(StoredAlert {
            time: Timestamp::from_micros(prev_time),
            host: NodeId::from_index(host as u32),
            category: CategoryId::from_index(category as u16),
            severity,
            message_index: message_index as usize,
            filtered: packed & FILTERED_BIT != 0,
            seq: prev_seq as u64,
        });
    }
    if pos != buf.len() {
        return Err(corrupt("batch (trailing bytes)"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sclog_types::SyslogSeverity;

    fn sample() -> Vec<StoredAlert> {
        vec![
            StoredAlert {
                time: Timestamp::from_ymd_hms(2005, 3, 7, 7, 30, 0),
                host: NodeId::from_index(3),
                category: CategoryId::from_index(17),
                severity: Severity::None,
                message_index: 12,
                filtered: true,
                seq: 100,
            },
            StoredAlert {
                time: Timestamp::from_ymd_hms(2005, 3, 7, 7, 30, 1),
                host: NodeId::from_index(0),
                category: CategoryId::from_index(2),
                severity: Severity::Syslog(SyslogSeverity::Error),
                message_index: 13,
                filtered: false,
                seq: 103,
            },
        ]
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let records = sample();
        let mut buf = Vec::new();
        encode_batch(&records, &mut buf);
        let mut got = Vec::new();
        decode_batch(&buf, &mut got).unwrap();
        assert_eq!(got, records);
    }

    #[test]
    fn deltas_keep_close_records_small() {
        let records = sample();
        let mut buf = Vec::new();
        encode_batch(&records, &mut buf);
        // First record pays for the absolute microsecond timestamp;
        // the second, one second later, is a handful of bytes.
        assert!(buf.len() < 32, "got {} bytes", buf.len());
    }

    #[test]
    fn corruption_is_an_error_not_a_panic() {
        let records = sample();
        let mut buf = Vec::new();
        encode_batch(&records, &mut buf);
        for cut in 0..buf.len() {
            let mut got = Vec::new();
            assert!(
                decode_batch(&buf[..cut], &mut got).is_err(),
                "truncation at {cut} must error"
            );
        }
        let mut trailing = buf.clone();
        trailing.push(0);
        let mut got = Vec::new();
        assert!(decode_batch(&trailing, &mut got).is_err());
        // An unknown severity code must be rejected.
        let mut bad = Vec::new();
        encode_batch(
            &[StoredAlert {
                severity: Severity::None,
                ..records[0]
            }],
            &mut bad,
        );
        let sev_at = bad.len() - 2; // …, severity byte, message_index
        bad[sev_at] = 15; // out of range, filtered bit clear
        let mut got = Vec::new();
        assert!(decode_batch(&bad, &mut got).is_err());
    }
}
